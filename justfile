# Local targets mirroring .github/workflows/ci.yml — keep the two in
# lockstep so "works on my machine" and CI mean the same thing.

# Full CI-equivalent pass.
ci: build test fmt-check clippy bench-smoke

build:
    cargo build --release --workspace

test:
    cargo test --workspace -q

fmt:
    cargo fmt --all

fmt-check:
    cargo fmt --all --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

bench:
    cargo bench --workspace

# Re-measure the sweep executor (stepping vs trace replay) and refresh
# BENCH_sweep.json (the perf trajectory this and future PRs carry; see
# README "Performance"). Fails if sweep_cells_variants speeds up < 3x.
bench-baseline:
    cargo run --release -p rvz-bench --bin bench_baseline -- BENCH_sweep.json

# CI's committed-JSON gate, runnable locally.
bench-json-check:
    jq -e '.sweep_cells.speedup and .sweep_cells_variants.speedup' BENCH_sweep.json > /dev/null

# Compile benches, run each once (`--test` mode), emit BENCH_sweep.json,
# plus the tiny deterministic sweep CI runs.
bench-smoke:
    cargo bench --workspace --no-run
    cargo bench --workspace -- --test
    mkdir -p bench-smoke
    cargo run --release -p rvz-bench --bin bench_baseline -- bench-smoke/BENCH_sweep.json
    cargo run --release --bin experiments -- --experiment e6 --sizes 8,16 --threads 2 --json bench-smoke/e6.json
    cargo run --release --bin experiments -- --experiment e6 --sizes 8,16 --threads 1 --json bench-smoke/e6-t1.json
    cmp bench-smoke/e6.json bench-smoke/e6-t1.json

# Full-scale parallel sweep of every experiment grid.
sweep:
    cargo run --release --bin experiments -- --experiment e1,e2,e3,e4,e5,e6,e7,e8 --json results

# Classic paper tables (the seed driver's mode).
tables:
    cargo run --release --bin experiments -- all
