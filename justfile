# Local targets mirroring .github/workflows/ci.yml — keep the two in
# lockstep so "works on my machine" and CI mean the same thing.

# Full CI-equivalent pass.
ci: build test fmt-check clippy docs doctest docs-check ci-parity-check differential planner-differential crash-test bench-json-check bench-smoke

# CI/justfile drift gate: every CI job maps to the just targets that
# reproduce it (and back), and every mapped target sits in `ci:` above.
ci-parity-check:
    scripts/check_ci_parity.sh

build:
    cargo build --release --workspace

test:
    cargo test --workspace -q

fmt:
    cargo fmt --all

fmt-check:
    cargo fmt --all --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# CI's rustdoc gate: the API docs must build without warnings.
docs:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Every crate root carries a runnable doctest; run them all.
doctest:
    cargo test --doc --workspace -q

# Offline doc health: intra-repo markdown links resolve, and the README
# flag table matches `experiments --help` (drift fails the build).
docs-check:
    scripts/check_docs.sh

# CI's differential job: three-executor agreement on e8 (replay ==
# stepping to the byte; decide == replay modulo the `certified` flag),
# the e9 exhaustive certification with thread-invariance and certificate
# re-verification gates, the e10 activation-schedule smoke (same
# three-executor + thread gates on the schedule grid), then the e11
# 3-agent ensemble leg (same gates on rvz-sweep/v7 triple rows, zero
# uncertified cells).
differential:
    mkdir -p differential
    for ex in replay stepping decide; do \
      cargo run --release --bin experiments -- \
        --experiment e8 --sizes 8,12 --pairs 2 --threads 2 \
        --executor "$ex" --json "differential/e8-$ex.json"; \
    done
    cmp differential/e8-replay.json differential/e8-stepping.json
    jq 'del(.rows[].certified)' differential/e8-replay.json > differential/e8-replay-stripped.json
    jq 'del(.rows[].certified)' differential/e8-decide.json > differential/e8-decide-stripped.json
    cmp differential/e8-replay-stripped.json differential/e8-decide-stripped.json
    for t in 1 2 8; do \
      cargo run --release --bin experiments -- \
        --experiment e9 --executor decide --threads "$t" \
        --json "differential/e9-t$t.json" --certificates "differential/e9-certificates-t$t.json"; \
    done
    cmp differential/e9-t1.json differential/e9-t2.json
    cmp differential/e9-t1.json differential/e9-t8.json
    cmp differential/e9-certificates-t1.json differential/e9-certificates-t2.json
    cmp differential/e9-certificates-t1.json differential/e9-certificates-t8.json
    cp differential/e9-t1.json differential/e9.json
    cp differential/e9-certificates-t1.json differential/e9-certificates.json
    jq -e '[.rows[] | select(.certified | not)] | length == 0' differential/e9.json > /dev/null
    jq -e '[.certificates[] | select(.verified == false)] | length == 0' differential/e9-certificates.json > /dev/null
    for ex in replay stepping decide; do \
      cargo run --release --bin experiments -- \
        --experiment e10 --sizes 5,6,7 --threads 2 \
        --executor "$ex" --json "differential/e10-$ex.json"; \
    done
    cmp differential/e10-replay.json differential/e10-stepping.json
    jq 'del(.rows[].certified)' differential/e10-replay.json > differential/e10-replay-stripped.json
    jq 'del(.rows[].certified)' differential/e10-decide.json > differential/e10-decide-stripped.json
    cmp differential/e10-replay-stripped.json differential/e10-decide-stripped.json
    cargo run --release --bin experiments -- \
      --experiment e10 --sizes 5,6,7 --threads 1 \
      --executor decide --json differential/e10-t1.json
    cmp differential/e10-decide.json differential/e10-t1.json
    jq -e '[.rows[] | select(.certified | not)] | length == 0' differential/e10-decide.json > /dev/null
    for ex in replay stepping decide; do \
      cargo run --release --bin experiments -- \
        --experiment e11 --sizes 5,6,7 --threads 2 \
        --executor "$ex" --json "differential/e11-$ex.json"; \
    done
    cmp differential/e11-replay.json differential/e11-stepping.json
    jq 'del(.rows[].certified)' differential/e11-replay.json > differential/e11-replay-stripped.json
    jq 'del(.rows[].certified)' differential/e11-decide.json > differential/e11-decide-stripped.json
    cmp differential/e11-replay-stripped.json differential/e11-decide-stripped.json
    for t in 1 8; do \
      cargo run --release --bin experiments -- \
        --experiment e11 --sizes 5,6,7 --threads "$t" \
        --executor decide --json "differential/e11-t$t.json"; \
    done
    cmp differential/e11-decide.json differential/e11-t1.json
    cmp differential/e11-decide.json differential/e11-t8.json
    jq -e '.schema == "rvz-sweep/v7"' differential/e11-decide.json > /dev/null
    jq -e '[.rows[] | select(.agents != 3)] | length == 0' differential/e11-decide.json > /dev/null
    jq -e '[.rows[] | select(.certified | not)] | length == 0' differential/e11-decide.json > /dev/null

# CI's planner-differential job: the cost-model planner (`--executor
# auto`) re-run on the e8 and e10 smokes plus the e10 grid at
# --agents 3 — byte-identical across --threads 1/2/8, row-identical to
# every fixed executor once the per-executor annotations (`certified`,
# `planned`) and the schema tag are stripped, every row annotated —
# plus the decision-log extraction.
planner-differential:
    mkdir -p planner-differential
    for ex in replay stepping decide; do \
      cargo run --release --bin experiments -- \
        --experiment e8 --sizes 8,12 --pairs 2 --threads 2 \
        --executor "$ex" --json "planner-differential/e8-$ex.json"; \
    done
    for t in 1 2 8; do \
      cargo run --release --bin experiments -- \
        --experiment e8 --sizes 8,12 --pairs 2 --threads "$t" \
        --executor auto --json "planner-differential/e8-auto-t$t.json"; \
    done
    cmp planner-differential/e8-auto-t1.json planner-differential/e8-auto-t2.json
    cmp planner-differential/e8-auto-t1.json planner-differential/e8-auto-t8.json
    jq 'del(.schema) | del(.rows[].certified, .rows[].planned)' planner-differential/e8-auto-t2.json > planner-differential/e8-auto-stripped.json
    for ex in replay stepping decide; do \
      jq 'del(.schema) | del(.rows[].certified, .rows[].planned)' "planner-differential/e8-$ex.json" > "planner-differential/e8-$ex-stripped.json"; \
      cmp planner-differential/e8-auto-stripped.json "planner-differential/e8-$ex-stripped.json"; \
    done
    jq -e '.schema == "rvz-sweep/v6"' planner-differential/e8-auto-t2.json > /dev/null
    jq -e '[.rows[] | select(.planned == null)] | length == 0' planner-differential/e8-auto-t2.json > /dev/null
    for ex in replay stepping decide; do \
      cargo run --release --bin experiments -- \
        --experiment e10 --sizes 5,6,7 --threads 2 \
        --executor "$ex" --json "planner-differential/e10-$ex.json"; \
    done
    for t in 1 2 8; do \
      cargo run --release --bin experiments -- \
        --experiment e10 --sizes 5,6,7 --threads "$t" \
        --executor auto --json "planner-differential/e10-auto-t$t.json"; \
    done
    cmp planner-differential/e10-auto-t1.json planner-differential/e10-auto-t2.json
    cmp planner-differential/e10-auto-t1.json planner-differential/e10-auto-t8.json
    jq 'del(.schema) | del(.rows[].certified, .rows[].planned)' planner-differential/e10-auto-t2.json > planner-differential/e10-auto-stripped.json
    for ex in replay stepping decide; do \
      jq 'del(.schema) | del(.rows[].certified, .rows[].planned)' "planner-differential/e10-$ex.json" > "planner-differential/e10-$ex-stripped.json"; \
      cmp planner-differential/e10-auto-stripped.json "planner-differential/e10-$ex-stripped.json"; \
    done
    jq -e '[.rows[] | select(.planned == null)] | length == 0' planner-differential/e10-auto-t2.json > /dev/null
    for ex in replay stepping decide; do \
      cargo run --release --bin experiments -- \
        --experiment e10 --sizes 5,6 --agents 3 --threads 2 \
        --executor "$ex" --json "planner-differential/e10k3-$ex.json"; \
    done
    for t in 1 2 8; do \
      cargo run --release --bin experiments -- \
        --experiment e10 --sizes 5,6 --agents 3 --threads "$t" \
        --executor auto --json "planner-differential/e10k3-auto-t$t.json"; \
    done
    cmp planner-differential/e10k3-auto-t1.json planner-differential/e10k3-auto-t2.json
    cmp planner-differential/e10k3-auto-t1.json planner-differential/e10k3-auto-t8.json
    jq 'del(.schema) | del(.rows[].certified, .rows[].planned)' planner-differential/e10k3-auto-t2.json > planner-differential/e10k3-auto-stripped.json
    for ex in replay stepping decide; do \
      jq 'del(.schema) | del(.rows[].certified, .rows[].planned)' "planner-differential/e10k3-$ex.json" > "planner-differential/e10k3-$ex-stripped.json"; \
      cmp planner-differential/e10k3-auto-stripped.json "planner-differential/e10k3-$ex-stripped.json"; \
    done
    jq -e '.schema == "rvz-sweep/v7"' planner-differential/e10k3-auto-t2.json > /dev/null
    jq -e '[.rows[] | select(.planned == null)] | length == 0' planner-differential/e10k3-auto-t2.json > /dev/null
    for exp in e8 e10 e10k3; do \
      jq '[.rows[] | {family, n, variant, delay, schedule, cell_seed, choice: .planned.choice, predicted: .planned.predicted, actual: .planned.actual}]' \
        "planner-differential/$exp-auto-t2.json" > "planner-differential/$exp-decisions.json"; \
    done

# CI's crash-resume job: fault-injected + kill -9 legs on a journaled e9,
# resume at --threads 1/8 byte-compared against an uninterrupted
# reference, store corruption legs, then the self-spawning kill-resume
# integration test (needs the rvz-faults feature).
crash-test:
    scripts/crash_test.sh crash-test
    cargo test -p rvz-bench --features rvz-faults --test crash_resume
    just worker-crash-test

# The worker-supervision legs on their own: the self-spawning
# supervision differential (byte-identity across --workers counts,
# worker death mid-shard, stolen lease, poisoned-shard quarantine,
# shared-journal interop) plus the watchdog thread-hygiene regression.
# See docs/distributed.md.
worker-crash-test:
    cargo test -p rvz-bench --features rvz-faults --test worker_supervision
    cargo test -p rvz-bench --test watchdog_threads

# The exhaustive certification sweep on its own (table + artifacts).
e9:
    cargo run --release --bin experiments -- \
      --experiment e9 --executor decide \
      --json e9.json --certificates e9-certificates.json

# e9 pushed one size past the CI default: every free tree with n ≤ 11
# (+235 trees over the default axis) — minutes, not CI material.
e9-full:
    cargo run --release --bin experiments -- \
      --experiment e9 --executor decide --sizes 2,3,4,5,6,7,8,9,10,11 \
      --json e9-full.json --certificates e9-full-certificates.json
    jq -e '[.rows[] | select(.certified | not)] | length == 0' e9-full.json > /dev/null

# The activation-schedule sweep on its own (table + artifacts).
e10:
    cargo run --release --bin experiments -- \
      --experiment e10 --executor decide \
      --json e10.json --certificates e10-certificates.json

bench:
    cargo bench --workspace

# Re-measure the sweep executor (stepping vs trace replay vs decide) and
# refresh BENCH_sweep.json (the perf trajectory this and future PRs carry;
# see docs/schemas.md). Fails if sweep_cells_variants speeds up < 3x or
# decide_cells falls below 0.66x.
bench-baseline:
    cargo run --release -p rvz-bench --bin bench_baseline -- BENCH_sweep.json

# CI's committed-JSON gate, runnable locally: every benchmark section
# present, and both planner_cells sections at or above the 0.95x floor.
bench-json-check:
    jq -e '.sweep_cells.speedup and .sweep_cells_variants.speedup and .decide_cells.speedup and .ensemble_cells.speedup' BENCH_sweep.json > /dev/null
    jq -e '(.planner_cells | length) == 2' BENCH_sweep.json > /dev/null
    jq -e '[.planner_cells[] | select(.ratio_vs_best_fixed < 0.95)] | length == 0' BENCH_sweep.json > /dev/null

# Compile benches, run each once (`--test` mode), emit BENCH_sweep.json,
# plus the tiny deterministic sweep CI runs.
bench-smoke:
    cargo bench --workspace --no-run
    cargo bench --workspace -- --test
    mkdir -p bench-smoke
    cargo run --release -p rvz-bench --bin bench_baseline -- bench-smoke/BENCH_sweep.json
    cargo run --release --bin experiments -- --experiment e6 --sizes 8,16 --threads 2 --json bench-smoke/e6.json
    cargo run --release --bin experiments -- --experiment e6 --sizes 8,16 --threads 1 --json bench-smoke/e6-t1.json
    cmp bench-smoke/e6.json bench-smoke/e6-t1.json
    cargo run --release --bin experiments -- --experiment e6 --sizes 8,16 --threads 2 --executor stepping --json bench-smoke/e6-stepping.json
    cmp bench-smoke/e6.json bench-smoke/e6-stepping.json

# Full-scale parallel sweep of every experiment grid.
sweep:
    cargo run --release --bin experiments -- --experiment e1,e2,e3,e4,e5,e6,e7,e8 --json results

# Classic paper tables (the seed driver's mode).
tables:
    cargo run --release --bin experiments -- all
