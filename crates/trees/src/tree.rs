//! The anonymous, port-labeled tree substrate.
//!
//! Nodes carry no identifiers visible to agents; every edge `{u, v}` has two
//! independent *port numbers*: one in `0..deg(u)` at `u` and one in
//! `0..deg(v)` at `v` (the paper's §1 model). The `NodeId`s used here exist
//! only for the simulator and the analysis tooling — agents never see them.

use std::fmt;

/// Index of a node inside a [`Tree`]. Visible to the simulator and the
/// analysis code only, never to agents.
pub type NodeId = u32;

/// A local port number at a node: always in `0..deg`.
pub type Port = u32;

/// An undirected edge described by its two endpoints and the port number the
/// edge carries at each endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub u: NodeId,
    pub port_u: Port,
    pub v: NodeId,
    pub port_v: Port,
}

/// Errors raised while building or validating a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A node index was out of `0..n`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// Two edges claimed the same port at the same node.
    DuplicatePort { node: NodeId, port: Port },
    /// A self-loop was supplied.
    SelfLoop { node: NodeId },
    /// The edge count differs from `n - 1`.
    WrongEdgeCount { nodes: usize, edges: usize },
    /// The port numbers at some node are not exactly `0..deg`.
    NonContiguousPorts { node: NodeId },
    /// The edge set is not connected (with `n - 1` edges this also means a
    /// cycle exists elsewhere).
    Disconnected,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range (n = {n})")
            }
            TreeError::DuplicatePort { node, port } => {
                write!(f, "port {port} used twice at node {node}")
            }
            TreeError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            TreeError::WrongEdgeCount { nodes, edges } => {
                write!(f, "{edges} edges for {nodes} nodes (want n-1)")
            }
            TreeError::NonContiguousPorts { node } => {
                write!(f, "ports at node {node} are not exactly 0..deg")
            }
            TreeError::Disconnected => write!(f, "edge set is not connected"),
        }
    }
}

impl std::error::Error for TreeError {}

/// An anonymous tree with a full port labeling.
///
/// Immutable once built; relabeling produces a new tree. All analysis
/// helpers (center, contraction, canonical forms, symmetry) live in sibling
/// modules and take `&Tree`.
///
/// Storage is a flat CSR layout: node `u`'s adjacency occupies the slice
/// `offsets[u]..offsets[u+1]` of two contiguous arrays, so the per-round
/// `degree`/`neighbor`/`entry_port` lookups of the simulator hot path touch
/// at most two cache lines instead of chasing one heap pointer per node.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tree {
    /// `offsets[u]..offsets[u+1]` delimits `u`'s slots; `len == n + 1`.
    offsets: Vec<u32>,
    /// `neighbors[offsets[u] + p]` = node reached when leaving `u` by port
    /// `p`.
    neighbors: Vec<NodeId>,
    /// `back[offsets[u] + p]` = the port at the neighbor by which the walker
    /// *enters* it (i.e. the port of the same edge at the other endpoint).
    back: Vec<Port>,
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tree(n={})", self.num_nodes())?;
        for u in 0..self.num_nodes() as NodeId {
            write!(f, "  {u}:")?;
            for p in 0..self.degree(u) {
                write!(f, " {p}->({},{})", self.neighbor(u, p), self.entry_port(u, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Tree {
    /// Builds a tree from an explicit edge list and validates every model
    /// requirement: ports contiguous, `n-1` edges, connected, no loops.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Result<Self, TreeError> {
        if n == 0 {
            return Err(TreeError::WrongEdgeCount { nodes: 0, edges: edges.len() });
        }
        if edges.len() != n - 1 {
            return Err(TreeError::WrongEdgeCount { nodes: n, edges: edges.len() });
        }
        // First pass: degrees.
        let mut deg = vec![0usize; n];
        for e in edges {
            for node in [e.u, e.v] {
                if node as usize >= n {
                    return Err(TreeError::NodeOutOfRange { node, n });
                }
            }
            if e.u == e.v {
                return Err(TreeError::SelfLoop { node: e.u });
            }
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        // CSR skeleton: prefix sums of the degrees.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &d in &deg {
            total += d as u32;
            offsets.push(total);
        }
        let mut neighbors = vec![NodeId::MAX; total as usize];
        let mut back = vec![Port::MAX; total as usize];
        for e in edges {
            for (a, pa, b, pb) in [(e.u, e.port_u, e.v, e.port_v), (e.v, e.port_v, e.u, e.port_u)] {
                if pa as usize >= deg[a as usize] {
                    return Err(TreeError::NonContiguousPorts { node: a });
                }
                let slot = offsets[a as usize] as usize + pa as usize;
                if neighbors[slot] != NodeId::MAX {
                    return Err(TreeError::DuplicatePort { node: a, port: pa });
                }
                neighbors[slot] = b;
                back[slot] = pb;
            }
        }
        // Ports contiguous: every slot filled (degree slots were allocated
        // from the count of incident edges, so a gap implies an out-of-range
        // port elsewhere, already caught above; keep the check for clarity).
        for u in 0..n {
            let row = &neighbors[offsets[u] as usize..offsets[u + 1] as usize];
            if row.contains(&NodeId::MAX) {
                return Err(TreeError::NonContiguousPorts { node: u as NodeId });
            }
        }
        let tree = Tree { offsets, neighbors, back };
        if !tree.is_connected() {
            return Err(TreeError::Disconnected);
        }
        Ok(tree)
    }

    /// The single-node tree (no edges). Rendezvous is trivial there, but the
    /// analysis code must not choke on it.
    pub fn singleton() -> Self {
        Tree { offsets: vec![0, 0], neighbors: vec![], back: vec![] }
    }

    fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for p in 0..self.degree(u) {
                let v = self.neighbor(u, p);
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges (`n - 1`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_nodes() - 1
    }

    /// Start of `u`'s CSR row, bounds-checked against the node count by the
    /// indexing below.
    #[inline]
    fn row_start(&self, u: NodeId) -> usize {
        self.offsets[u as usize] as usize
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> Port {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// The node reached when leaving `u` by port `p`.
    ///
    /// `p >= deg(u)` is a caller bug (asserted in debug builds): agents' raw
    /// outputs must be reduced mod the degree *before* calling this (the
    /// simulator does that).
    #[inline]
    pub fn neighbor(&self, u: NodeId, p: Port) -> NodeId {
        debug_assert!(p < self.degree(u), "port {p} out of range at node {u}");
        self.neighbors[self.row_start(u) + p as usize]
    }

    /// The port by which a walker leaving `u` via port `p` *enters* the
    /// neighbor (the paper's "port number at v" of the edge `{u,v}`).
    #[inline]
    pub fn entry_port(&self, u: NodeId, p: Port) -> Port {
        debug_assert!(p < self.degree(u), "port {p} out of range at node {u}");
        self.back[self.row_start(u) + p as usize]
    }

    /// Iterator over `(port, neighbor, entry_port_at_neighbor)` at `u`.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (Port, NodeId, Port)> + '_ {
        let row = self.row_start(u)..self.offsets[u as usize + 1] as usize;
        self.neighbors[row.clone()]
            .iter()
            .zip(self.back[row].iter())
            .enumerate()
            .map(|(p, (&v, &pv))| (p as Port, v, pv))
    }

    /// All leaves (degree ≤ 1 — the single node of the singleton tree counts).
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId).filter(|&u| self.degree(u) <= 1).collect()
    }

    /// Number of leaves `ℓ`.
    pub fn num_leaves(&self) -> usize {
        (0..self.num_nodes() as NodeId).filter(|&u| self.degree(u) <= 1).count()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> Port {
        (0..self.num_nodes() as NodeId).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// The port at `u` of the edge `{u, v}`, if `u` and `v` are adjacent.
    pub fn port_towards(&self, u: NodeId, v: NodeId) -> Option<Port> {
        self.neighbors(u).find(|&(_, w, _)| w == v).map(|(p, _, _)| p)
    }

    /// Edge list in `(u, port_u, v, port_v)` form with `u < v`.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_nodes() as NodeId {
            for (p, v, pv) in self.neighbors(u) {
                if u < v {
                    out.push(Edge { u, port_u: p, v, port_v: pv });
                }
            }
        }
        out
    }

    /// Distance (number of edges) between two nodes. BFS; `O(n)`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> usize {
        if u == v {
            return 0;
        }
        let n = self.num_nodes();
        let mut dist = vec![usize::MAX; n];
        dist[u as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(u);
        while let Some(w) = queue.pop_front() {
            for p in 0..self.degree(w) {
                let x = self.neighbor(w, p);
                if dist[x as usize] == usize::MAX {
                    dist[x as usize] = dist[w as usize] + 1;
                    if x == v {
                        return dist[x as usize];
                    }
                    queue.push_back(x);
                }
            }
        }
        unreachable!("tree is connected");
    }

    /// The unique simple path from `u` to `v`, inclusive.
    pub fn path_between(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut parent = vec![NodeId::MAX; n];
        let mut seen = vec![false; n];
        seen[u as usize] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(u);
        while let Some(w) = queue.pop_front() {
            if w == v {
                break;
            }
            for p in 0..self.degree(w) {
                let x = self.neighbor(w, p);
                if !seen[x as usize] {
                    seen[x as usize] = true;
                    parent[x as usize] = w;
                    queue.push_back(x);
                }
            }
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != u {
            cur = parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Returns a new tree with the same structure and a fresh port labeling:
    /// at each node `u`, `perm[u]` maps old ports to new ports
    /// (`new_port = perm[u][old_port]`). Each `perm[u]` must be a permutation
    /// of `0..deg(u)`.
    pub fn relabeled(&self, perm: &[Vec<Port>]) -> Result<Self, TreeError> {
        assert_eq!(perm.len(), self.num_nodes(), "one permutation per node");
        let edges: Vec<Edge> = self
            .edges()
            .iter()
            .map(|e| Edge {
                u: e.u,
                port_u: perm[e.u as usize][e.port_u as usize],
                v: e.v,
                port_v: perm[e.v as usize][e.port_v as usize],
            })
            .collect();
        Tree::from_edges(self.num_nodes(), &edges)
    }

    /// Structure-preserving renumbering of the *nodes* (ports untouched):
    /// node `u` becomes `sigma[u]`. Useful for testing that analysis results
    /// are invariant under the hidden node names.
    pub fn renumbered(&self, sigma: &[NodeId]) -> Result<Self, TreeError> {
        assert_eq!(sigma.len(), self.num_nodes());
        let edges: Vec<Edge> = self
            .edges()
            .iter()
            .map(|e| Edge {
                u: sigma[e.u as usize],
                port_u: e.port_u,
                v: sigma[e.v as usize],
                port_v: e.port_v,
            })
            .collect();
        Tree::from_edges(self.num_nodes(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Tree {
        // 0 -1- 2 : nodes 0,1,2 in a path 0-1-2.
        Tree::from_edges(
            3,
            &[Edge { u: 0, port_u: 0, v: 1, port_v: 0 }, Edge { u: 1, port_u: 1, v: 2, port_v: 0 }],
        )
        .unwrap()
    }

    #[test]
    fn builds_path() {
        let t = path3();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.neighbor(1, 0), 0);
        assert_eq!(t.neighbor(1, 1), 2);
        assert_eq!(t.entry_port(0, 0), 0);
        assert_eq!(t.num_leaves(), 2);
    }

    #[test]
    fn rejects_duplicate_port() {
        let r = Tree::from_edges(
            3,
            &[Edge { u: 0, port_u: 0, v: 1, port_v: 0 }, Edge { u: 2, port_u: 0, v: 1, port_v: 0 }],
        );
        assert_eq!(r, Err(TreeError::DuplicatePort { node: 1, port: 0 }));
    }

    #[test]
    fn rejects_noncontiguous_ports() {
        let r = Tree::from_edges(
            3,
            &[Edge { u: 0, port_u: 0, v: 1, port_v: 0 }, Edge { u: 1, port_u: 2, v: 2, port_v: 0 }],
        );
        assert_eq!(r, Err(TreeError::NonContiguousPorts { node: 1 }));
    }

    #[test]
    fn rejects_cycle_and_disconnection() {
        // 4 nodes, 3 edges, but one component is a triangle-ish multi use.
        let r = Tree::from_edges(
            4,
            &[
                Edge { u: 0, port_u: 0, v: 1, port_v: 0 },
                Edge { u: 1, port_u: 1, v: 0, port_v: 1 },
                Edge { u: 2, port_u: 0, v: 3, port_v: 0 },
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_self_loop() {
        let r = Tree::from_edges(2, &[Edge { u: 0, port_u: 0, v: 0, port_v: 1 }]);
        assert_eq!(r, Err(TreeError::SelfLoop { node: 0 }));
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let r = Tree::from_edges(3, &[Edge { u: 0, port_u: 0, v: 1, port_v: 0 }]);
        assert!(matches!(r, Err(TreeError::WrongEdgeCount { .. })));
    }

    #[test]
    fn distance_and_path() {
        let t = path3();
        assert_eq!(t.distance(0, 2), 2);
        assert_eq!(t.path_between(0, 2), vec![0, 1, 2]);
        assert_eq!(t.path_between(2, 2), vec![2]);
        assert_eq!(t.distance(1, 1), 0);
    }

    #[test]
    fn relabel_roundtrip() {
        let t = path3();
        // Swap the two ports at node 1.
        let perm = vec![vec![0], vec![1, 0], vec![0]];
        let r = t.relabeled(&perm).unwrap();
        assert_eq!(r.neighbor(1, 0), 2);
        assert_eq!(r.neighbor(1, 1), 0);
        let back = r.relabeled(&perm).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn renumber_preserves_shape() {
        let t = path3();
        let r = t.renumbered(&[2, 1, 0]).unwrap();
        assert_eq!(r.degree(1), 2);
        assert_eq!(r.neighbor(2, 0), 1);
        assert_eq!(r.num_leaves(), 2);
    }

    #[test]
    fn singleton_is_sane() {
        let t = Tree::singleton();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.max_degree(), 0);
    }

    #[test]
    fn port_towards_finds_edge() {
        let t = path3();
        assert_eq!(t.port_towards(1, 2), Some(1));
        assert_eq!(t.port_towards(0, 2), None);
    }

    #[test]
    fn edge_list_roundtrips() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(88);
        for n in [2usize, 7, 23] {
            let t = crate::generators::random_tree(n, &mut rng);
            let rebuilt = Tree::from_edges(n, &t.edges()).unwrap();
            assert_eq!(rebuilt, t, "n={n}");
        }
    }

    #[test]
    fn neighbors_iterator_is_consistent() {
        let t = crate::generators::spider(3, 2);
        for u in 0..t.num_nodes() as NodeId {
            let listed: Vec<_> = t.neighbors(u).collect();
            assert_eq!(listed.len() as Port, t.degree(u));
            for (p, v, pv) in listed {
                assert_eq!(t.neighbor(u, p), v);
                assert_eq!(t.entry_port(u, p), pv);
                // The reverse direction agrees.
                assert_eq!(t.neighbor(v, pv), u);
            }
        }
    }
}
