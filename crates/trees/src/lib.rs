//! # rvz-trees
//!
//! The anonymous, port-labeled tree substrate for the rendezvous
//! reproduction of Fraigniaud & Pelc, *Delays induce an exponential memory
//! gap for rendezvous in trees* (SPAA 2010).
//!
//! Provides:
//! * [`tree::Tree`] — validated port-labeled trees (§2.1 model);
//! * [`generators`] — the tree families used by the paper and its
//!   experiments (lines, 2-edge-colored lines, stars, spiders, caterpillars,
//!   complete binary trees, binomial trees, brooms, random trees) and
//!   adversarial relabelings;
//! * [`mod@center`] — central node / central edge (§2.2);
//! * [`contraction`] — the contraction `T'` (§4.1);
//! * [`canon`] — AHU canonical forms (structural / port-labeled / marked)
//!   and canonical node ranks;
//! * [`symmetry`] — automorphisms, symmetry w.r.t. a labeling, topological
//!   symmetry, and the **perfect symmetrizability** decision procedure
//!   (Definition 1.2 / Fact 1.1).
//!
//! ```
//! use rvz_trees::generators::line;
//! use rvz_trees::perfectly_symmetrizable;
//!
//! // Fact 1.1: an even line can be labeled so its two halves mirror each
//! // other — identical deterministic agents starting on its leaves can
//! // never break the symmetry…
//! assert!(perfectly_symmetrizable(&line(6), 0, 5));
//! // …while an odd line's central *node* blocks every such labeling, so
//! // the leaf pair is feasible and rendezvous is the agents' problem.
//! assert!(!perfectly_symmetrizable(&line(7), 0, 6));
//! ```

pub mod canon;
pub mod center;
pub mod contraction;
pub mod dot;
pub mod enumerate;
pub mod generators;
pub mod symmetry;
pub mod tree;

pub use center::{center, Center};
pub use contraction::{contract, Contraction};
pub use symmetry::{perfectly_symmetrizable, symmetric_wrt_labeling, topologically_symmetric};
pub use tree::{Edge, NodeId, Port, Tree, TreeError};
