//! Graphviz/DOT export for port-labeled trees — a release-quality nicety
//! for inspecting instances (`dot -Tsvg`): port numbers are rendered as
//! tail/head labels, optional node marks (e.g. agent starts) as colors.

use crate::tree::{NodeId, Tree};
use std::fmt::Write;

/// Renders the tree in DOT format. `marks` colors the given nodes (agent
/// starts, landmarks); port numbers appear at both edge endpoints.
pub fn to_dot(t: &Tree, marks: &[(NodeId, &str)]) -> String {
    let mut out = String::new();
    out.push_str("graph tree {\n  node [shape=circle, fontsize=10];\n");
    for v in 0..t.num_nodes() as NodeId {
        let color = marks.iter().find(|(m, _)| *m == v).map(|(_, c)| *c);
        match color {
            Some(c) => {
                let _ = writeln!(out, "  n{v} [label=\"{v}\", style=filled, fillcolor=\"{c}\"];");
            }
            None => {
                let _ = writeln!(out, "  n{v} [label=\"{v}\"];");
            }
        }
    }
    for e in t.edges() {
        let _ = writeln!(
            out,
            "  n{} -- n{} [taillabel=\"{}\", headlabel=\"{}\", fontsize=8];",
            e.u, e.v, e.port_u, e.port_v
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{line, spider};

    #[test]
    fn renders_all_nodes_and_edges() {
        let t = spider(3, 2);
        let dot = to_dot(&t, &[(0, "lightblue")]);
        assert!(dot.starts_with("graph tree {"));
        assert!(dot.ends_with("}\n"));
        for v in 0..t.num_nodes() {
            assert!(dot.contains(&format!("n{v} ")), "node {v} missing");
        }
        assert_eq!(dot.matches(" -- ").count(), t.num_edges());
        assert!(dot.contains("fillcolor=\"lightblue\""));
    }

    #[test]
    fn port_labels_present() {
        let t = line(3);
        let dot = to_dot(&t, &[]);
        assert!(dot.contains("taillabel=\"0\""));
        assert!(dot.contains("headlabel=\"0\""));
    }
}
