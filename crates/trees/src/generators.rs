//! Tree families used throughout the paper and its experiments.
//!
//! Every generator returns a fully port-labeled [`Tree`]. Where the paper
//! fixes a specific labeling (e.g. the 2-edge-colored lines of Theorems 3.1
//! and 4.2) the generator reproduces it; otherwise labelings are a free
//! parameter and [`random_relabel`] lets the adversary pick one.

use crate::tree::{Edge, NodeId, Port, Tree};
use rand::seq::SliceRandom;
use rand::Rng;

/// A line (path) on `n` nodes, `0 — 1 — … — n-1`, with the *canonical*
/// labeling: each internal node uses port 0 towards its lower-numbered
/// neighbor and port 1 towards its higher-numbered neighbor.
pub fn line(n: usize) -> Tree {
    assert!(n >= 1);
    if n == 1 {
        return Tree::singleton();
    }
    let edges: Vec<Edge> = (0..n - 1)
        .map(|i| Edge {
            u: i as NodeId,
            port_u: if i == 0 { 0 } else { 1 },
            v: (i + 1) as NodeId,
            port_v: 0,
        })
        .collect();
    Tree::from_edges(n, &edges).expect("line construction is valid")
}

/// A line on `n` nodes with a *proper 2-edge-coloring* labeling: edge `i`
/// (between nodes `i` and `i+1`) carries the same port number at both of its
/// endpoints, namely `(i + parity) % 2`. Adjacent edges get distinct colors,
/// so each internal node sees ports `{0, 1}` as required.
///
/// This is the labeling used in the lower-bound constructions (Theorem 3.1's
/// Fig. 1 and Theorem 4.2). For a line with an even number of edges the two
/// endpoints' single ports are forced to differ from their neighbors, hence
/// the coloring is "proper" only on internal nodes; endpoints have a single
/// port which must be 0 — we therefore require `n` even or odd but remap
/// endpoint ports to 0 as the model demands (a degree-1 node has only
/// port 0).
pub fn colored_line(n: usize, parity: usize) -> Tree {
    assert!(n >= 2, "colored line needs at least one edge");
    let color = |i: usize| ((i + parity) % 2) as Port;
    let edges: Vec<Edge> = (0..n - 1)
        .map(|i| {
            let c = color(i);
            Edge {
                u: i as NodeId,
                // Degree-1 endpoints only have port 0.
                port_u: if i == 0 { 0 } else { c },
                v: (i + 1) as NodeId,
                port_v: if i + 1 == n - 1 { 0 } else { c },
            }
        })
        .collect();
    Tree::from_edges(n, &edges).expect("colored line construction is valid")
}

/// The Theorem 3.1 line: `8(K+1)+1` edges—ish layout is built by the
/// lower-bounds crate; here we provide the generic building block: a colored
/// line of `len` **edges** (so `len + 1` nodes) whose *central edge* (index
/// `len/2` for odd `len`, counting from 0) has color 0.
///
/// Panics if `len` is even (no central edge).
pub fn colored_line_center_zero(len_edges: usize) -> Tree {
    assert!(len_edges % 2 == 1, "central edge requires an odd number of edges");
    let center = len_edges / 2;
    // color(center) must be 0: color(i) = (i + parity) % 2 ⇒ parity = center % 2.
    colored_line(len_edges + 1, center % 2)
}

/// Star with `k` rays: center node `0` with `k` leaves `1..=k`. The center's
/// port towards leaf `i` is `i - 1`.
pub fn star(k: usize) -> Tree {
    assert!(k >= 1);
    let edges: Vec<Edge> = (1..=k)
        .map(|i| Edge { u: 0, port_u: (i - 1) as Port, v: i as NodeId, port_v: 0 })
        .collect();
    Tree::from_edges(k + 1, &edges).expect("star construction is valid")
}

/// Spider ("generalized star"): `legs` paths of `leg_len` edges each, glued
/// at a common center. `n = 1 + legs * leg_len`, `ℓ = legs` (for
/// `leg_len ≥ 1`, `legs ≥ 3`). Spiders with few long legs are the canonical
/// "polylogarithmically many leaves" family of the paper's gap statement.
pub fn spider(legs: usize, leg_len: usize) -> Tree {
    assert!(legs >= 1 && leg_len >= 1);
    let mut edges = Vec::with_capacity(legs * leg_len);
    let mut next: NodeId = 1;
    for leg in 0..legs {
        let mut prev: NodeId = 0;
        for step in 0..leg_len {
            let port_prev = if prev == 0 { leg as Port } else { 1 };
            edges.push(Edge { u: prev, port_u: port_prev, v: next, port_v: 0 });
            let _ = step;
            prev = next;
            next += 1;
        }
    }
    Tree::from_edges(legs * leg_len + 1, &edges).expect("spider construction is valid")
}

/// Complete binary tree of the given `height` (height 0 = single node).
/// `n = 2^(height+1) - 1`. Root has degree 2, internal nodes degree 3.
pub fn complete_binary(height: usize) -> Tree {
    let n = (1usize << (height + 1)) - 1;
    if n == 1 {
        return Tree::singleton();
    }
    let mut edges = Vec::with_capacity(n - 1);
    for v in 1..n {
        let parent = (v - 1) / 2;
        // Ports at the parent: root uses 0/1 for children; internal nodes
        // use 0 for the parent edge, 1/2 for children.
        let child_slot = ((v - 1) % 2) as Port;
        let port_parent = if parent == 0 { child_slot } else { 1 + child_slot };
        edges.push(Edge { u: parent as NodeId, port_u: port_parent, v: v as NodeId, port_v: 0 });
    }
    Tree::from_edges(n, &edges).expect("complete binary construction is valid")
}

/// Binomial tree `B_k` (Cormen et al., referenced by the paper for the case
/// where the two agents may end up in the two roots of the two `B_{k-1}`
/// halves). `n = 2^k`.
pub fn binomial(k: usize) -> Tree {
    // B_0 is a single node; B_k is two copies of B_{k-1} with an edge
    // between their roots. We build recursively over node-index offsets.
    let n = 1usize << k;
    if n == 1 {
        return Tree::singleton();
    }
    // degree bookkeeping: next free port per node.
    let mut next_port = vec![0 as Port; n];
    let mut edges = Vec::with_capacity(n - 1);
    // Iterative doubling: at stage s (s = 0..k), link root(block) of the
    // second half of each 2^(s+1) block to the root (index 0 offset) of the
    // first half.
    for s in 0..k {
        let block = 1usize << (s + 1);
        let half = 1usize << s;
        let mut start = 0usize;
        while start < n {
            let a = start; // root of first half
            let b = start + half; // root of second half
            let pa = next_port[a];
            next_port[a] += 1;
            let pb = next_port[b];
            next_port[b] += 1;
            edges.push(Edge { u: a as NodeId, port_u: pa, v: b as NodeId, port_v: pb });
            start += block;
        }
    }
    Tree::from_edges(n, &edges).expect("binomial construction is valid")
}

/// Caterpillar: a spine of `spine` nodes; `hairs[i]` leaves hang off spine
/// node `i` (`hairs.len() == spine`).
pub fn caterpillar(spine: usize, hairs: &[usize]) -> Tree {
    assert!(spine >= 1 && hairs.len() == spine);
    let n = spine + hairs.iter().sum::<usize>();
    if n == 1 {
        return Tree::singleton();
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut next_port = vec![0 as Port; n];
    for i in 0..spine - 1 {
        let (u, v) = (i as NodeId, (i + 1) as NodeId);
        let e = Edge { u, port_u: next_port[i], v, port_v: next_port[i + 1] };
        next_port[i] += 1;
        next_port[i + 1] += 1;
        edges.push(e);
    }
    let mut leaf = spine;
    for (i, &h) in hairs.iter().enumerate() {
        for _ in 0..h {
            edges.push(Edge { u: i as NodeId, port_u: next_port[i], v: leaf as NodeId, port_v: 0 });
            next_port[i] += 1;
            leaf += 1;
        }
    }
    Tree::from_edges(n, &edges).expect("caterpillar construction is valid")
}

/// The "broom" trees `T_n` from the paper's §3 opening remark: two nodes
/// `u, v` of degree `n`, both linked to a common node `w`, and each linked to
/// `n - 1` leaves. Total `2n + 1` nodes, maximum degree `n`.
pub fn broom(n: usize) -> Tree {
    assert!(n >= 1);
    let total = 2 * n + 1;
    // Node 0 = u, node 1 = v, node 2 = w, leaves 3...
    let mut edges =
        vec![Edge { u: 0, port_u: 0, v: 2, port_v: 0 }, Edge { u: 1, port_u: 0, v: 2, port_v: 1 }];
    let mut leaf: NodeId = 3;
    for hub in [0 as NodeId, 1] {
        for p in 1..n {
            edges.push(Edge { u: hub, port_u: p as Port, v: leaf, port_v: 0 });
            leaf += 1;
        }
    }
    Tree::from_edges(total, &edges).expect("broom construction is valid")
}

/// A "double spider": two hubs joined by a path of `path_len` edges, with
/// legs of the given lengths hanging off each hub.
///
/// Port convention: hub ports `0..legs` go to the legs in order, the last
/// port to the joining path; leg interiors use 0 toward the hub / 1 away;
/// path interiors use 0 toward hub A / 1 toward hub B.
///
/// The key family for the Figure-2 ablation (docs/design-notes.md §D7): with leg
/// multisets of **equal sum but different composition** (e.g. `{1,4}` vs
/// `{2,3}`) the contraction `T'` is symmetric and the two hub agents stay
/// perfectly synchronized — only the `bw(j)/cbw(j)` probes break the tie.
/// Hub A is node 0; hub B is node 1.
pub fn double_spider(legs_a: &[usize], legs_b: &[usize], path_len: usize) -> Tree {
    assert!(path_len >= 1 && !legs_a.is_empty() && !legs_b.is_empty());
    assert!(legs_a.iter().all(|&l| l >= 1) && legs_b.iter().all(|&l| l >= 1));
    let mut edges = Vec::new();
    let mut next: NodeId = 2;
    let mut grow_leg = |hub: NodeId, hub_port: Port, len: usize, next: &mut NodeId| {
        let mut prev = hub;
        let mut prev_port = hub_port;
        for step in 0..len {
            edges.push(Edge { u: prev, port_u: prev_port, v: *next, port_v: 0 });
            let _ = step;
            prev = *next;
            prev_port = 1;
            *next += 1;
        }
    };
    for (i, &len) in legs_a.iter().enumerate() {
        grow_leg(0, i as Port, len, &mut next);
    }
    for (i, &len) in legs_b.iter().enumerate() {
        grow_leg(1, i as Port, len, &mut next);
    }
    // The joining path: hub A — w_1 — … — w_{path_len-1} — hub B.
    let mut prev = 0 as NodeId;
    let mut prev_port = legs_a.len() as Port;
    for i in 1..path_len {
        let _ = i;
        edges.push(Edge { u: prev, port_u: prev_port, v: next, port_v: 0 });
        prev = next;
        prev_port = 1;
        next += 1;
    }
    edges.push(Edge { u: prev, port_u: prev_port, v: 1, port_v: legs_b.len() as Port });
    Tree::from_edges(next as usize, &edges).expect("double spider is valid")
}

/// Uniform random recursive tree on `n` nodes: node `i` attaches to a
/// uniformly random node `< i`. Port numbers assigned in attachment order,
/// then shuffled per node by [`random_relabel`]-style permutation.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Tree {
    assert!(n >= 1);
    if n == 1 {
        return Tree::singleton();
    }
    let mut next_port = vec![0 as Port; n];
    let mut edges = Vec::with_capacity(n - 1);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        let e = Edge { u: u as NodeId, port_u: next_port[u], v: v as NodeId, port_v: 0 };
        next_port[u] += 1;
        next_port[v] = 1;
        edges.push(e);
    }
    let t = Tree::from_edges(n, &edges).expect("random recursive tree is valid");
    random_relabel(&t, rng)
}

/// Random tree with maximum degree `max_deg` (≥ 2): grow by attaching each
/// new node to a random node that still has spare degree.
pub fn random_bounded_degree_tree<R: Rng>(n: usize, max_deg: u32, rng: &mut R) -> Tree {
    assert!(n >= 1 && max_deg >= 2);
    if n == 1 {
        return Tree::singleton();
    }
    let mut next_port = vec![0 as Port; n];
    let mut open: Vec<usize> = vec![0];
    let mut edges = Vec::with_capacity(n - 1);
    for v in 1..n {
        let idx = rng.gen_range(0..open.len());
        let u = open[idx];
        let e = Edge { u: u as NodeId, port_u: next_port[u], v: v as NodeId, port_v: 0 };
        next_port[u] += 1;
        edges.push(e);
        if next_port[u] >= max_deg {
            open.swap_remove(idx);
        }
        // The new node used port 0 for its parent; it can take max_deg - 1 more.
        if max_deg > 1 {
            open.push(v);
        }
        next_port[v] = 1;
    }
    let t = Tree::from_edges(n, &edges).expect("bounded-degree tree is valid");
    random_relabel(&t, rng)
}

/// Adversarial relabeling: a fresh uniformly random port permutation at every
/// node. Structure is unchanged.
pub fn random_relabel<R: Rng>(t: &Tree, rng: &mut R) -> Tree {
    let perm: Vec<Vec<Port>> = (0..t.num_nodes() as NodeId)
        .map(|u| {
            let mut p: Vec<Port> = (0..t.degree(u)).collect();
            p.shuffle(rng);
            p
        })
        .collect();
    t.relabeled(&perm).expect("permutation relabeling is valid")
}

/// Enumerates *all* port labelings of a (small) tree, for exhaustive
/// adversary checks. The count is `Π_u deg(u)!`, so keep trees tiny.
pub fn all_labelings(t: &Tree) -> Vec<Tree> {
    fn perms(k: usize) -> Vec<Vec<Port>> {
        if k == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        let mut items: Vec<Port> = (0..k as Port).collect();
        heap_permutations(&mut items, k, &mut out);
        out
    }
    fn heap_permutations(items: &mut Vec<Port>, k: usize, out: &mut Vec<Vec<Port>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap_permutations(items, k - 1, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }

    let per_node: Vec<Vec<Vec<Port>>> =
        (0..t.num_nodes() as NodeId).map(|u| perms(t.degree(u) as usize)).collect();
    let mut result = Vec::new();
    let mut choice = vec![0usize; t.num_nodes()];
    loop {
        let perm: Vec<Vec<Port>> =
            choice.iter().enumerate().map(|(u, &c)| per_node[u][c].clone()).collect();
        result.push(t.relabeled(&perm).expect("valid labeling"));
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == choice.len() {
                return result;
            }
            choice[i] += 1;
            if choice[i] < per_node[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_shape() {
        let t = line(5);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 2);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.distance(0, 4), 4);
    }

    #[test]
    fn colored_line_is_properly_colored() {
        let t = colored_line(8, 0);
        // Internal edges carry the same port at both endpoints.
        for e in t.edges() {
            let u_internal = t.degree(e.u) == 2;
            let v_internal = t.degree(e.v) == 2;
            if u_internal && v_internal {
                assert_eq!(e.port_u, e.port_v, "edge {e:?} not color-consistent");
            }
        }
    }

    #[test]
    fn colored_line_center_zero_has_zero_center() {
        let t = colored_line_center_zero(9); // 9 edges, center edge index 4
        let e = t.edges().into_iter().find(|e| e.u == 4 && e.v == 5).unwrap();
        assert_eq!(e.port_u, 0);
        assert_eq!(e.port_v, 0);
    }

    #[test]
    fn star_shape() {
        let t = star(6);
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.num_leaves(), 6);
        assert_eq!(t.degree(0), 6);
    }

    #[test]
    fn spider_shape() {
        let t = spider(3, 4);
        assert_eq!(t.num_nodes(), 13);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.distance(0, 4), 4);
    }

    #[test]
    fn complete_binary_shape() {
        let t = complete_binary(3);
        assert_eq!(t.num_nodes(), 15);
        assert_eq!(t.num_leaves(), 8);
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.degree(0), 2);
    }

    #[test]
    fn binomial_shape() {
        for k in 0..6 {
            let t = binomial(k);
            assert_eq!(t.num_nodes(), 1 << k);
            if k >= 1 {
                // Root of B_k has degree k.
                assert_eq!(t.degree(0), k as Port);
            }
        }
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(4, &[1, 0, 2, 1]);
        assert_eq!(t.num_nodes(), 8);
        // Leaves: 4 hairs + 0 spine endpoints with no hair... endpoints 0 and
        // 3 have hairs so spine ends have degree 2; hairs are the only
        // degree-1 nodes.
        assert_eq!(t.num_leaves(), 4);
    }

    #[test]
    fn broom_shape() {
        let t = broom(4);
        assert_eq!(t.num_nodes(), 9);
        assert_eq!(t.max_degree(), 4);
        assert_eq!(t.degree(2), 2);
        assert_eq!(t.num_leaves(), 6);
    }

    #[test]
    fn double_spider_shape() {
        let t = double_spider(&[1, 4], &[2, 3], 3);
        // Nodes: 2 hubs + 5 + 5 leg nodes + 2 path interiors = 14.
        assert_eq!(t.num_nodes(), 14);
        assert_eq!(t.degree(0), 3);
        assert_eq!(t.degree(1), 3);
        assert_eq!(t.num_leaves(), 4);
        assert_eq!(t.distance(0, 1), 3);
        // Contraction: 2 hubs + 4 leaves = 6 nodes.
        let c = crate::contraction::contract(&t);
        assert_eq!(c.num_nodes(), 6);
        // The T' halves are port-isomorphic (leg lengths vanish).
        assert!(crate::symmetry::halves_port_isomorphic(&c.tree));
        // Yet the hubs are NOT perfectly symmetrizable in T: leg multisets
        // differ.
        assert!(!crate::symmetry::perfectly_symmetrizable(&t, 0, 1));
    }

    #[test]
    fn double_spider_equal_sides_are_symmetrizable() {
        let t = double_spider(&[2, 3], &[2, 3], 3);
        assert!(crate::symmetry::perfectly_symmetrizable(&t, 0, 1));
    }

    #[test]
    fn random_trees_are_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 57] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.num_nodes(), n);
            let b = random_bounded_degree_tree(n, 3, &mut rng);
            assert_eq!(b.num_nodes(), n);
            assert!(b.max_degree() <= 3);
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(99);
        let t = random_tree(20, &mut rng);
        let r = random_relabel(&t, &mut rng);
        for u in 0..t.num_nodes() as NodeId {
            assert_eq!(t.degree(u), r.degree(u));
        }
        assert_eq!(t.num_leaves(), r.num_leaves());
    }

    #[test]
    fn all_labelings_count() {
        // Path on 3 nodes: middle node has 2! labelings, leaves 1 each = 2.
        let t = line(3);
        assert_eq!(all_labelings(&t).len(), 2);
        // Star with 3 rays: center 3! = 6.
        let s = star(3);
        assert_eq!(all_labelings(&s).len(), 6);
    }
}
