//! Canonical forms of (rooted, optionally marked, optionally port-labeled)
//! trees — the AHU machinery behind all symmetry decisions.
//!
//! Two flavours:
//! * **structural** canon: port numbers ignored, children sorted by their own
//!   canonical sequences — equality ⟺ rooted-tree isomorphism (the
//!   existential quantifier of Definition 1.2 ranges over labelings, so only
//!   structure matters);
//! * **port** canon: children enumerated in port order with port numbers
//!   embedded — equality ⟺ rooted isomorphism *preserving ports* (what a
//!   labeling-preserving automorphism must respect).
//!
//! A *marked* node (an agent's start) injects a marker token, so equality of
//! marked canons ⟺ an isomorphism carrying mark to mark.
//!
//! Implementation notes: canons are emitted by explicit-stack token streams
//! (no recursion — lines of 10⁵ nodes are routine here) and sibling ordering
//! uses lazy stream comparison, so the common families (paths, spiders,
//! bounded-degree trees) stay near-linear instead of the naive
//! `O(n · depth)` copying.

use crate::tree::{NodeId, Port, Tree};
use std::cmp::Ordering;

/// A canonical form: an ordered token sequence. Lexicographic `Ord` makes
/// canons totally ordered, which the ranking code relies on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Canon(Vec<u64>);

const OPEN: u64 = u64::MAX;
const CLOSE: u64 = u64::MAX - 1;
const MARK: u64 = u64::MAX - 2;

fn port_token(down: Port, up: Port) -> u64 {
    ((down as u64) << 32) | (up as u64)
}

impl Canon {
    /// Raw token view (stable across runs; useful for hashing/serializing).
    pub fn tokens(&self) -> &[u64] {
        &self.0
    }
}

/// Children of `v` excluding `parent`, in port order.
fn children(t: &Tree, v: NodeId, parent: Option<NodeId>) -> Vec<NodeId> {
    t.neighbors(v).filter(|&(_, w, _)| Some(w) != parent).map(|(_, w, _)| w).collect()
}

/// Post-order traversal of the component of `root` away from `parent`,
/// together with each node's parent within the traversal.
fn post_order(t: &Tree, root: NodeId, parent: Option<NodeId>) -> Vec<(NodeId, Option<NodeId>)> {
    let mut out = Vec::new();
    let mut stack = vec![(root, parent, false)];
    while let Some((v, par, expanded)) = stack.pop() {
        if expanded {
            out.push((v, par));
            continue;
        }
        stack.push((v, par, true));
        for (_, w, _) in t.neighbors(v) {
            if Some(w) != par {
                stack.push((w, Some(v), false));
            }
        }
    }
    out
}

/// Lazy token stream of the *structural* canon of a subtree, given
/// precomputed canonical child orders.
struct StructStream<'a> {
    marked: Option<NodeId>,
    orders: &'a [Vec<NodeId>],
    /// `(node, next_child_index)`
    stack: Vec<(NodeId, usize)>,
    /// Tokens queued for emission before continuing the walk.
    pending: std::collections::VecDeque<u64>,
}

impl<'a> StructStream<'a> {
    fn new(root: NodeId, marked: Option<NodeId>, orders: &'a [Vec<NodeId>]) -> Self {
        let mut s = StructStream {
            marked,
            orders,
            stack: Vec::new(),
            pending: std::collections::VecDeque::new(),
        };
        s.enter(root);
        s
    }

    fn enter(&mut self, v: NodeId) {
        self.pending.push_back(OPEN);
        if self.marked == Some(v) {
            self.pending.push_back(MARK);
        }
        self.stack.push((v, 0));
    }
}

impl Iterator for StructStream<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if let Some(tok) = self.pending.pop_front() {
                return Some(tok);
            }
            let &(v, i) = self.stack.last()?;
            let order = &self.orders[v as usize];
            if i < order.len() {
                self.stack.last_mut().expect("nonempty").1 += 1;
                self.enter(order[i]);
            } else {
                self.stack.pop();
                return Some(CLOSE);
            }
        }
    }
}

fn cmp_streams(mut a: StructStream<'_>, mut b: StructStream<'_>) -> Ordering {
    loop {
        match (a.next(), b.next()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(x), Some(y)) => match x.cmp(&y) {
                Ordering::Equal => continue,
                other => return other,
            },
        }
    }
}

/// Structural rooted canon of the component of `root` obtained by deleting
/// the edge to `parent` (if any). `marked` injects a marker where visited.
pub fn canon_structural(
    t: &Tree,
    root: NodeId,
    parent: Option<NodeId>,
    marked: Option<NodeId>,
) -> Canon {
    // Bottom-up: fix each node's canonical child order; children are deeper,
    // so their orders are final when the parent sorts them.
    let mut orders: Vec<Vec<NodeId>> = vec![Vec::new(); t.num_nodes()];
    for (v, par) in post_order(t, root, parent) {
        let mut kids = children(t, v, par);
        kids.sort_by(|&a, &b| {
            cmp_streams(
                StructStream::new(a, marked, &orders),
                StructStream::new(b, marked, &orders),
            )
        });
        orders[v as usize] = kids;
    }
    Canon(StructStream::new(root, marked, &orders).collect())
}

/// Port-labeled rooted canon of the component of `root` away from `parent`.
///
/// Children appear in port order and every edge contributes its two port
/// numbers, so equality of two such canons is exactly the existence of a
/// port-preserving rooted isomorphism. When `parent` is `Some`, the port at
/// `root` used by the skipped edge is recorded too (a flip must map that
/// port as well).
pub fn canon_ports(
    t: &Tree,
    root: NodeId,
    parent: Option<NodeId>,
    marked: Option<NodeId>,
) -> Canon {
    let mut tokens = Vec::with_capacity(4 * t.num_nodes());
    // Stack of (node, parent, next_port).
    let mut stack: Vec<(NodeId, Option<NodeId>, Port)> = Vec::new();
    tokens.push(OPEN);
    if let Some(p) = parent {
        let skip = t.port_towards(root, p).expect("parent is adjacent");
        tokens.push(port_token(skip, skip));
    }
    if marked == Some(root) {
        tokens.push(MARK);
    }
    stack.push((root, parent, 0));
    while let Some(&(v, par, next)) = stack.last() {
        let deg = t.degree(v);
        let mut cursor = next;
        let mut child = None;
        while cursor < deg {
            let p = cursor;
            cursor += 1;
            let w = t.neighbor(v, p);
            if Some(w) == par {
                continue;
            }
            child = Some((p, w));
            break;
        }
        stack.last_mut().expect("nonempty").2 = cursor;
        match child {
            Some((p, w)) => {
                let up = t.entry_port(v, p);
                tokens.push(OPEN);
                tokens.push(port_token(p, up));
                if marked == Some(w) {
                    tokens.push(MARK);
                }
                stack.push((w, Some(v), 0));
            }
            None => {
                stack.pop();
                tokens.push(CLOSE);
            }
        }
    }
    Canon(tokens)
}

/// Unrooted, marked, structural canonical form of the whole tree: root at the
/// center (node, or the sorted pair of half-canons for a central edge). Two
/// marked trees have equal canons iff an automorphism maps mark to mark
/// (topological symmetry of the marked positions).
pub fn unrooted_canon_structural(t: &Tree, marked: Option<NodeId>) -> Canon {
    match crate::center::center(t) {
        crate::center::Center::Node(c) => {
            let inner = canon_structural(t, c, None, marked);
            let mut tokens = vec![OPEN];
            tokens.extend_from_slice(inner.tokens());
            tokens.push(CLOSE);
            Canon(tokens)
        }
        crate::center::Center::Edge(x, y) => {
            let cx = canon_structural(t, x, Some(y), marked);
            let cy = canon_structural(t, y, Some(x), marked);
            let (a, b) = if cx <= cy { (cx, cy) } else { (cy, cx) };
            let mut tokens = vec![OPEN, OPEN];
            tokens.extend_from_slice(a.tokens());
            tokens.extend_from_slice(b.tokens());
            tokens.push(CLOSE);
            Canon(tokens)
        }
    }
}

/// Canonical ranks of all nodes, used by the arbitrary-delay baseline (§D5 of
/// docs/design-notes.md): deterministic under renaming of the hidden node ids, and two
/// nodes share a rank **iff** the (unique) port-preserving non-trivial
/// automorphism exchanges them. In particular, non-perfectly-symmetrizable
/// (hence never symmetric) agent positions always receive distinct ranks.
pub fn canonical_ranks(t: &Tree) -> Vec<u64> {
    let n = t.num_nodes();
    let mut rank = vec![0u64; n];
    match crate::center::center(t) {
        crate::center::Center::Node(c) => {
            for (i, v) in port_preorder(t, c, None).into_iter().enumerate() {
                rank[v as usize] = i as u64;
            }
        }
        crate::center::Center::Edge(x, y) => {
            let px = t.port_towards(x, y).expect("adjacent");
            let py = t.port_towards(y, x).expect("adjacent");
            let cx = canon_ports(t, x, Some(y), None);
            let cy = canon_ports(t, y, Some(x), None);
            let key_x = (cx, px);
            let key_y = (cy, py);
            let ox = port_preorder(t, x, Some(y));
            let oy = port_preorder(t, y, Some(x));
            if key_x == key_y {
                // A port-preserving flip exists: mirror nodes share ranks.
                for (i, v) in ox.into_iter().enumerate() {
                    rank[v as usize] = i as u64;
                }
                for (i, v) in oy.into_iter().enumerate() {
                    rank[v as usize] = i as u64;
                }
            } else {
                let (first, second) = if key_x < key_y { (ox, oy) } else { (oy, ox) };
                for (i, v) in first.into_iter().chain(second).enumerate() {
                    rank[v as usize] = i as u64;
                }
            }
        }
    }
    rank
}

/// Preorder of the component of `root` away from `parent`, children in port
/// order. Deterministic given the labeling.
pub fn port_preorder(t: &Tree, root: NodeId, parent: Option<NodeId>) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut stack = vec![(root, parent)];
    while let Some((v, par)) = stack.pop() {
        order.push(v);
        let kids = children(t, v, par);
        for &w in kids.iter().rev() {
            stack.push((w, Some(v)));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_binary, line, random_relabel, random_tree, spider, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structural_canon_ignores_ports() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_tree(30, &mut rng);
        let r = random_relabel(&t, &mut rng);
        assert_eq!(canon_structural(&t, 0, None, None), canon_structural(&r, 0, None, None));
    }

    #[test]
    fn port_canon_detects_relabeling() {
        // Star with 3 rays: swapping two center ports changes the port canon
        // only if a mark distinguishes the rays; unmarked rays are identical
        // subtrees so the canon is invariant. Use a marked leaf.
        let t = star(3);
        let perm = vec![vec![1, 0, 2], vec![0], vec![0], vec![0]];
        let r = t.relabeled(&perm).unwrap();
        assert_ne!(canon_ports(&t, 0, None, Some(1)), canon_ports(&r, 0, None, Some(1)));
        assert_eq!(canon_ports(&t, 0, None, None), canon_ports(&r, 0, None, None));
    }

    #[test]
    fn mark_distinguishes() {
        let t = line(5);
        assert_ne!(canon_structural(&t, 2, None, Some(0)), canon_structural(&t, 2, None, Some(1)));
        // …but marking the two symmetric leaves gives equal canons.
        assert_eq!(canon_structural(&t, 2, None, Some(0)), canon_structural(&t, 2, None, Some(4)));
    }

    #[test]
    fn structural_canon_sorts_children_canonically() {
        // A root with children [leaf, path2] vs [path2, leaf] must canonize
        // identically. Build both orders explicitly.
        use crate::tree::{Edge, Tree};
        let a = Tree::from_edges(
            4,
            &[
                Edge { u: 0, port_u: 0, v: 1, port_v: 0 }, // leaf child
                Edge { u: 0, port_u: 1, v: 2, port_v: 0 }, // path child
                Edge { u: 2, port_u: 1, v: 3, port_v: 0 },
            ],
        )
        .unwrap();
        let b = Tree::from_edges(
            4,
            &[
                Edge { u: 0, port_u: 1, v: 1, port_v: 0 },
                Edge { u: 0, port_u: 0, v: 2, port_v: 0 },
                Edge { u: 2, port_u: 1, v: 3, port_v: 0 },
            ],
        )
        .unwrap();
        assert_eq!(canon_structural(&a, 0, None, None), canon_structural(&b, 0, None, None));
    }

    #[test]
    fn unrooted_canon_invariant_under_renumbering() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [2usize, 7, 25] {
            let t = random_tree(n, &mut rng);
            let sigma: Vec<NodeId> = (0..n as NodeId).rev().collect();
            let r = t.renumbered(&sigma).unwrap();
            assert_eq!(
                unrooted_canon_structural(&t, Some(0)),
                unrooted_canon_structural(&r, Some(sigma[0]))
            );
        }
    }

    #[test]
    fn ranks_are_distinct_without_flip() {
        let t = line(7);
        let r = canonical_ranks(&t);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }

    #[test]
    fn ranks_pair_under_flip() {
        // Even line with mirror (2-edge-colored) labeling: ends symmetric.
        let t = crate::generators::colored_line_center_zero(5); // 6 nodes
        let r = canonical_ranks(&t);
        assert_eq!(r[0], r[5]);
        assert_eq!(r[1], r[4]);
        assert_eq!(r[2], r[3]);
    }

    #[test]
    fn ranks_distinct_on_asymmetric_labeling() {
        // The canonical labeling of `line` is NOT mirror-symmetric (interior
        // ports point 0 backwards / 1 forwards), so no flip: all distinct.
        let t = line(6);
        let r = canonical_ranks(&t);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn spider_legs_share_structure() {
        let t = spider(3, 2);
        let l1 = unrooted_canon_structural(&t, Some(2));
        let l2 = unrooted_canon_structural(&t, Some(4));
        let l3 = unrooted_canon_structural(&t, Some(6));
        assert_eq!(l1, l2);
        assert_eq!(l2, l3);
    }

    #[test]
    fn deep_line_stays_fast_and_safe() {
        let t = line(50_000);
        let c = canon_structural(&t, 0, None, None);
        assert_eq!(c.tokens().len(), 2 * 50_000);
        let p = canon_ports(&t, 0, None, None);
        assert!(p.tokens().len() >= 2 * 50_000);
        let _ = canonical_ranks(&t);
    }

    #[test]
    fn complete_binary_children_symmetric() {
        let t = complete_binary(3);
        let c1 = canon_structural(&t, 1, Some(0), None);
        let c2 = canon_structural(&t, 2, Some(0), None);
        assert_eq!(c1, c2);
    }

    #[test]
    fn port_preorder_enumerates_component_once() {
        let t = spider(4, 3);
        let order = port_preorder(&t, 0, None);
        assert_eq!(order.len(), t.num_nodes());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), t.num_nodes());
        assert_eq!(order[0], 0, "preorder starts at the root");
        // Half preorder stays within the half.
        let half = port_preorder(&t, 1, Some(0));
        assert!(half.len() < t.num_nodes());
        assert!(!half.contains(&0));
    }

    #[test]
    fn port_canon_records_skip_port() {
        // Two rooted halves identical except for the port of the deleted
        // edge at the root must canonize differently.
        let t = line(4); // 0-1-2-3, central edge (1,2)
        let c12 = canon_ports(&t, 1, Some(2), None);
        let c21 = canon_ports(&t, 2, Some(1), None);
        // Node 1 reaches node 2 by port 1; node 2 reaches node 1 by port 0:
        // the halves are isomorphic as port-labeled rooted trees only if the
        // skip ports agree — they don't.
        assert_ne!(c12, c21);
    }
}
