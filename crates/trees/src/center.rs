//! Center of a tree: the paper's §2.2 construction.
//!
//! Iteratively strip all leaves (`T_{i+1}` = `T_i` minus its leaves) until at
//! most two nodes remain: one node ⇒ *central node*, two nodes ⇒ *central
//! edge*. Every automorphism fixes the center, which is why both the upper-
//! bound algorithm and the symmetry analysis pivot on it.

use crate::tree::{NodeId, Tree};

/// The center of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Center {
    /// A single central node.
    Node(NodeId),
    /// A central edge; endpoints are reported in increasing `NodeId` order.
    Edge(NodeId, NodeId),
}

/// Computes the center by iterative leaf stripping, in `O(n)`.
pub fn center(t: &Tree) -> Center {
    let n = t.num_nodes();
    if n == 1 {
        return Center::Node(0);
    }
    if n == 2 {
        return Center::Edge(0, 1);
    }
    let mut deg: Vec<u32> = (0..n as NodeId).map(|u| t.degree(u)).collect();
    let mut removed = vec![false; n];
    let mut frontier: Vec<NodeId> = (0..n as NodeId).filter(|&u| deg[u as usize] <= 1).collect();
    let mut remaining = n;
    loop {
        if remaining <= 2 {
            break;
        }
        let mut next = Vec::new();
        for &u in &frontier {
            removed[u as usize] = true;
        }
        remaining -= frontier.len();
        for &u in &frontier {
            for p in 0..t.degree(u) {
                let v = t.neighbor(u, p);
                if !removed[v as usize] {
                    deg[v as usize] -= 1;
                    if deg[v as usize] <= 1 {
                        next.push(v);
                    }
                }
            }
        }
        if remaining <= 2 {
            break;
        }
        frontier = next;
    }
    let survivors: Vec<NodeId> = (0..n as NodeId).filter(|&u| !removed[u as usize]).collect();
    match survivors.as_slice() {
        [c] => Center::Node(*c),
        [a, b] => {
            debug_assert!(t.port_towards(*a, *b).is_some(), "central pair must be adjacent");
            Center::Edge(*a, *b)
        }
        _ => unreachable!("leaf stripping always ends with 1 or 2 nodes"),
    }
}

/// Eccentricity of a node (greatest distance to any node).
pub fn eccentricity(t: &Tree, u: NodeId) -> usize {
    let n = t.num_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[u as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(u);
    let mut max = 0;
    while let Some(w) = queue.pop_front() {
        for p in 0..t.degree(w) {
            let x = t.neighbor(w, p);
            if dist[x as usize] == usize::MAX {
                dist[x as usize] = dist[w as usize] + 1;
                max = max.max(dist[x as usize]);
                queue.push_back(x);
            }
        }
    }
    max
}

/// Diameter of the tree (longest path length in edges).
pub fn diameter(t: &Tree) -> usize {
    // Double BFS.
    let far = farthest_from(t, 0).0;
    farthest_from(t, far).1
}

fn farthest_from(t: &Tree, u: NodeId) -> (NodeId, usize) {
    let n = t.num_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[u as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(u);
    let mut best = (u, 0usize);
    while let Some(w) = queue.pop_front() {
        for p in 0..t.degree(w) {
            let x = t.neighbor(w, p);
            if dist[x as usize] == usize::MAX {
                dist[x as usize] = dist[w as usize] + 1;
                if dist[x as usize] > best.1 {
                    best = (x, dist[x as usize]);
                }
                queue.push_back(x);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{caterpillar, complete_binary, line, spider, star};

    #[test]
    fn line_center_parity() {
        // Odd number of nodes ⇒ central node; even ⇒ central edge.
        assert_eq!(center(&line(5)), Center::Node(2));
        assert_eq!(center(&line(6)), Center::Edge(2, 3));
        assert_eq!(center(&line(2)), Center::Edge(0, 1));
        assert_eq!(center(&line(3)), Center::Node(1));
        assert_eq!(center(&line(1)), Center::Node(0));
    }

    #[test]
    fn star_center_is_hub() {
        assert_eq!(center(&star(7)), Center::Node(0));
    }

    #[test]
    fn complete_binary_center_is_root() {
        assert_eq!(center(&complete_binary(4)), Center::Node(0));
    }

    #[test]
    fn spider_center() {
        assert_eq!(center(&spider(3, 5)), Center::Node(0));
    }

    #[test]
    fn caterpillar_center_ignores_hairs() {
        // Spine 0-1-2-3-4 with heavy hair at node 4: hairs extend
        // eccentricities by one on that side.
        let t = caterpillar(5, &[0, 0, 0, 0, 3]);
        // Longest path: node 0 .. hair of node 4 = 5 edges ⇒ center at
        // distance 2..3: diameter 5 odd ⇒ central edge (2,3).
        assert_eq!(diameter(&t), 5);
        assert_eq!(center(&t), Center::Edge(2, 3));
    }

    #[test]
    fn eccentricity_and_diameter() {
        let t = line(7);
        assert_eq!(eccentricity(&t, 0), 6);
        assert_eq!(eccentricity(&t, 3), 3);
        assert_eq!(diameter(&t), 6);
    }

    #[test]
    fn center_is_invariant_under_relabeling() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(314);
        for n in [2usize, 5, 12, 31] {
            let t = crate::generators::random_tree(n, &mut rng);
            let r = crate::generators::random_relabel(&t, &mut rng);
            assert_eq!(center(&t), center(&r), "n={n}: ports must not matter");
        }
    }

    #[test]
    fn center_commutes_with_renumbering() {
        use crate::tree::NodeId;
        let t = caterpillar(4, &[1, 0, 2, 0]);
        let sigma: Vec<NodeId> = (0..t.num_nodes() as NodeId).rev().collect();
        let r = t.renumbered(&sigma).unwrap();
        match (center(&t), center(&r)) {
            (Center::Node(c), Center::Node(d)) => assert_eq!(sigma[c as usize], d),
            (Center::Edge(a, b), Center::Edge(c, d)) => {
                let mut lhs = [sigma[a as usize], sigma[b as usize]];
                lhs.sort_unstable();
                assert_eq!(lhs.to_vec(), vec![c, d]);
            }
            other => panic!("center kind changed: {other:?}"),
        }
    }

    #[test]
    fn center_minimizes_eccentricity() {
        let t = caterpillar(6, &[2, 0, 1, 0, 0, 4]);
        let c = center(&t);
        let min_ecc = (0..t.num_nodes() as NodeId).map(|u| eccentricity(&t, u)).min().unwrap();
        match c {
            Center::Node(v) => assert_eq!(eccentricity(&t, v), min_ecc),
            Center::Edge(a, b) => {
                assert_eq!(eccentricity(&t, a), min_ecc);
                assert_eq!(eccentricity(&t, b), min_ecc);
            }
        }
    }
}
