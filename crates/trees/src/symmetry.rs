//! Symmetry analysis: automorphisms, symmetry with respect to a labeling,
//! topological symmetry, and the paper's central notion of **perfect
//! symmetrizability** (Definition 1.2) with its feasibility consequence
//! (Fact 1.1).
//!
//! # What counts as an automorphism of a free tree with ports
//!
//! A tree here is *anonymous but port-labeled*: nodes carry no identifiers an
//! agent can read, but each node numbers its incident edges `0..degree`. An
//! **automorphism** is a node bijection preserving adjacency
//! ([`is_automorphism`]); a **port-preserving** automorphism additionally
//! maps the edge leaving `u` through port `p` to the edge leaving `f(u)`
//! through the *same* port `p` ([`preserves_ports`]). Only port-preserving
//! automorphisms are invisible to a deterministic agent, because ports and
//! degrees are everything an agent observes.
//!
//! The decision procedures all reduce to canonical-form comparisons via the
//! following structural lemma (see `docs/architecture.md`, "Symmetry"): a
//! port-preserving automorphism that fixes a node must fix all its incident
//! edges (ports are distinct), hence fixes the node's neighbors, hence — by
//! induction along the tree — is the identity. Consequently every
//! *non-trivial* port-preserving automorphism is fixed-point-free, and a
//! fixed-point-free tree automorphism inverts the central edge. So a
//! port-labeled tree has **at most one** non-trivial port-preserving
//! automorphism — the central-edge flip ([`port_preserving_flip`]) — and its
//! full port-preserving automorphism group has order 1 or 2. Likewise, an
//! automorphism realizable by *some* labeling can be chosen to be an
//! involution swapping the two central-edge halves.
//!
//! # Orbits of start pairs
//!
//! [`pair_orbits`] exploits that tiny group to quotient *ordered start
//! pairs*: two pairs that differ by the flip (and, for schedules that treat
//! the two agents identically, by exchanging the agents) produce the same
//! rendezvous verdict, so an exact decider need only decide one
//! representative per orbit and replicate the verdict — remapping any
//! certificate through the flip — to the rest. See `docs/executors.md` for
//! how the sweep engine applies this.

use crate::canon::{canon_ports, canon_structural};
use crate::center::{center, Center};
use crate::tree::{NodeId, Port, Tree};

/// Does `f` (a node bijection given as a table) preserve adjacency?
pub fn is_automorphism(t: &Tree, f: &[NodeId]) -> bool {
    if f.len() != t.num_nodes() {
        return false;
    }
    let mut seen = vec![false; t.num_nodes()];
    for &y in f {
        if (y as usize) >= t.num_nodes() || seen[y as usize] {
            return false;
        }
        seen[y as usize] = true;
    }
    t.edges().iter().all(|e| {
        let (fu, fv) = (f[e.u as usize], f[e.v as usize]);
        t.port_towards(fu, fv).is_some()
    })
}

/// Does the automorphism `f` preserve the port labeling of `t`?
pub fn preserves_ports(t: &Tree, f: &[NodeId]) -> bool {
    if !is_automorphism(t, f) {
        return false;
    }
    (0..t.num_nodes() as NodeId).all(|u| {
        (0..t.degree(u)).all(|p| {
            let v = t.neighbor(u, p);
            // Edge {u,v} with port p at u must map to an edge {f(u),f(v)}
            // with the same port at f(u).
            t.neighbor(f[u as usize], p) == f[v as usize]
        })
    })
}

/// The unique non-trivial port-preserving automorphism of `t`, if any: the
/// central-edge flip. Returns the full node map.
pub fn port_preserving_flip(t: &Tree) -> Option<Vec<NodeId>> {
    let Center::Edge(x, y) = center(t) else {
        // A flip fixing the central node would fix everything.
        return None;
    };
    let px = t.port_towards(x, y).expect("adjacent");
    let py = t.port_towards(y, x).expect("adjacent");
    if px != py {
        return None;
    }
    // Parallel port-directed DFS from (x ↦ y): forced pairing; fails iff
    // degrees or ports mismatch anywhere.
    let n = t.num_nodes();
    let mut f = vec![NodeId::MAX; n];
    f[x as usize] = y;
    f[y as usize] = x;
    let mut stack = vec![(x, y, Some(y), Some(x))];
    while let Some((a, b, skip_a, skip_b)) = stack.pop() {
        if t.degree(a) != t.degree(b) {
            return None;
        }
        for p in 0..t.degree(a) {
            let wa = t.neighbor(a, p);
            let wb = t.neighbor(b, p);
            let skip_this_a = Some(wa) == skip_a;
            let skip_this_b = Some(wb) == skip_b;
            if skip_this_a != skip_this_b {
                return None;
            }
            if skip_this_a {
                continue;
            }
            // The edge's far-end ports must match for a port-preserving map.
            if t.entry_port(a, p) != t.entry_port(b, p) {
                return None;
            }
            f[wa as usize] = wb;
            f[wb as usize] = wa;
            stack.push((wa, wb, Some(a), Some(b)));
        }
    }
    debug_assert!(preserves_ports(t, &f));
    Some(f)
}

/// Is the labeled tree *symmetric* in the paper's sense (§2.2): does a
/// non-trivial automorphism preserving the port labeling exist?
pub fn is_symmetric(t: &Tree) -> bool {
    port_preserving_flip(t).is_some()
}

/// Are `u` and `v` symmetric *with respect to the given labeling* (an
/// automorphism preserving the labeling maps `u` to `v`)? `u == v` is
/// trivially symmetric (identity).
pub fn symmetric_wrt_labeling(t: &Tree, u: NodeId, v: NodeId) -> bool {
    if u == v {
        return true;
    }
    match port_preserving_flip(t) {
        Some(f) => f[u as usize] == v,
        None => false,
    }
}

/// Are `u` and `v` *topologically symmetric* (some automorphism, ports
/// ignored, maps `u` to `v`)?
pub fn topologically_symmetric(t: &Tree, u: NodeId, v: NodeId) -> bool {
    if u == v {
        return true;
    }
    crate::canon::unrooted_canon_structural(t, Some(u))
        == crate::canon::unrooted_canon_structural(t, Some(v))
}

/// Definition 1.2: are `u` and `v` **perfectly symmetrizable** — does there
/// exist a port labeling `µ` of `t` and an automorphism preserving `µ`
/// carrying one node onto the other?
///
/// Decision procedure (docs/design-notes.md §D3): true iff `t` has a central edge
/// `{x, y}` separating `u` from `v` and the rooted halves with marks,
/// `(T_x, x, u)` and `(T_y, y, v)`, are isomorphic as (unlabeled) rooted
/// marked trees. (`u == v` is trivially perfectly symmetrizable via the
/// identity; Fact 1.1 implicitly concerns distinct starts.)
pub fn perfectly_symmetrizable(t: &Tree, u: NodeId, v: NodeId) -> bool {
    if u == v {
        return true;
    }
    let Center::Edge(x, y) = center(t) else {
        return false;
    };
    // Which half is each node in? The half of x is the component of x after
    // removing {x,y}.
    let in_x_half = {
        let mut seen = vec![false; t.num_nodes()];
        seen[x as usize] = true;
        let mut stack = vec![x];
        while let Some(a) = stack.pop() {
            for p in 0..t.degree(a) {
                let b = t.neighbor(a, p);
                if (a, b) == (x, y) || (a, b) == (y, x) {
                    continue;
                }
                if !seen[b as usize] {
                    seen[b as usize] = true;
                    stack.push(b);
                }
            }
        }
        seen
    };
    let (a, b) = if in_x_half[u as usize] && !in_x_half[v as usize] {
        (u, v)
    } else if in_x_half[v as usize] && !in_x_half[u as usize] {
        (v, u)
    } else {
        return false;
    };
    canon_structural(t, x, Some(y), Some(a)) == canon_structural(t, y, Some(x), Some(b))
}

/// For a perfectly symmetrizable pair, constructs an explicit witness: a
/// relabeled tree `t'` (same structure, new ports) and the involution `f`
/// preserving `t'`'s ports with `f(u) = v`. Returns `None` when the pair is
/// not perfectly symmetrizable. Used by tests to validate the decision
/// procedure's "yes" side constructively.
pub fn symmetrization_witness(t: &Tree, u: NodeId, v: NodeId) -> Option<(Tree, Vec<NodeId>)> {
    if u == v || !perfectly_symmetrizable(t, u, v) {
        return None;
    }
    let Center::Edge(x, y) = center(t) else { unreachable!("checked above") };
    // Orient: u in the x-half.
    let (u, v, x, y) = {
        let mut seen = vec![false; t.num_nodes()];
        seen[x as usize] = true;
        let mut stack = vec![x];
        while let Some(a) = stack.pop() {
            for p in 0..t.degree(a) {
                let b = t.neighbor(a, p);
                if (a, b) == (x, y) || (a, b) == (y, x) {
                    continue;
                }
                if !seen[b as usize] {
                    seen[b as usize] = true;
                    stack.push(b);
                }
            }
        }
        // Orient the marks so u sits in x's half (the halves themselves
        // stay put — swapping both would de-synchronize marks and halves).
        if seen[u as usize] {
            (u, v, x, y)
        } else {
            (v, u, x, y)
        }
    };
    // Build the structural marked isomorphism (T_x, x, u) → (T_y, y, v) by
    // pairing children in canonical order.
    let n = t.num_nodes();
    let mut f = vec![NodeId::MAX; n];
    f[x as usize] = y;
    f[y as usize] = x;
    let mut stack = vec![(x, y, Some(y), Some(x))];
    while let Some((a, b, pa, pb)) = stack.pop() {
        let mut ka: Vec<NodeId> =
            t.neighbors(a).filter(|&(_, w, _)| Some(w) != pa).map(|(_, w, _)| w).collect();
        let mut kb: Vec<NodeId> =
            t.neighbors(b).filter(|&(_, w, _)| Some(w) != pb).map(|(_, w, _)| w).collect();
        if ka.len() != kb.len() {
            return None; // cannot happen if the canons matched
        }
        let key_a = |w: &NodeId| canon_structural(t, *w, Some(a), Some(u));
        let key_b = |w: &NodeId| canon_structural(t, *w, Some(b), Some(v));
        ka.sort_by_key(key_a);
        kb.sort_by_key(key_b);
        for (&wa, &wb) in ka.iter().zip(kb.iter()) {
            f[wa as usize] = wb;
            f[wb as usize] = wa;
            stack.push((wa, wb, Some(a), Some(b)));
        }
    }
    debug_assert_eq!(f[u as usize], v);
    // Build the labeling: keep T's ports on the x-half and on the central
    // edge's x side; mirror them onto the y-half through f.
    let mut perm: Vec<Vec<Port>> =
        (0..n as NodeId).map(|w| (0..t.degree(w)).collect::<Vec<Port>>()).collect();
    // For every node a in the x-half (including x), make the ports at f(a)
    // mirror the ports at a: the edge (a -> w by port p) maps to the edge
    // (f(a) -> f(w)) which must also get port p.
    let mut seen = vec![false; n];
    seen[x as usize] = true;
    let mut order = vec![x];
    let mut si = 0;
    while si < order.len() {
        let a = order[si];
        si += 1;
        for p in 0..t.degree(a) {
            let w = t.neighbor(a, p);
            if (a, w) == (x, y) {
                continue;
            }
            if !seen[w as usize] {
                seen[w as usize] = true;
                order.push(w);
            }
        }
    }
    for &a in &order {
        let b = f[a as usize];
        // perm[b][old_port_at_b_for_edge_to_f(w)] = port at a for edge to w.
        let mut new_ports = vec![Port::MAX; t.degree(b) as usize];
        for p in 0..t.degree(a) {
            let w = t.neighbor(a, p);
            let fw = f[w as usize];
            let old_port_at_b = t.port_towards(b, fw).expect("f preserves adjacency");
            new_ports[old_port_at_b as usize] = p;
        }
        perm[b as usize] = new_ports;
    }
    let relabeled = t.relabeled(&perm).ok()?;
    if preserves_ports(&relabeled, &f) && f[u as usize] == v {
        Some((relabeled, f))
    } else {
        None
    }
}

/// How an orbit member is reached from its orbit representative: apply the
/// central-edge flip to both coordinates (`flip`), then exchange the
/// coordinates (`swap`). The two commute — the flip acts on nodes, the swap
/// on positions — so the order is immaterial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OrbitAction {
    /// Map both start nodes through the tree's port-preserving flip.
    pub flip: bool,
    /// Exchange the two agents: `(a, b) ↦ (b, a)`.
    pub swap: bool,
}

impl OrbitAction {
    /// The do-nothing action (every representative's own action).
    pub const IDENTITY: OrbitAction = OrbitAction { flip: false, swap: false };

    /// Apply this action to an ordered pair. `flip_map` must be `Some` when
    /// `self.flip` is set (it is the table from [`port_preserving_flip`]).
    pub fn apply(&self, (a, b): (NodeId, NodeId), flip_map: Option<&[NodeId]>) -> (NodeId, NodeId) {
        let (mut a, mut b) = (a, b);
        if self.flip {
            let f = flip_map.expect("flip action requires the flip map");
            a = f[a as usize];
            b = f[b as usize];
        }
        if self.swap {
            (b, a)
        } else {
            (a, b)
        }
    }
}

/// One orbit of ordered start pairs under the group chosen in
/// [`pair_orbits`].
#[derive(Clone, Debug)]
pub struct PairOrbit {
    /// Index (into the input slice) of the representative — always the
    /// smallest member index, so output order is deterministic.
    pub rep: usize,
    /// Every orbit member present in the input, as `(index, action)` with
    /// `pairs[index] == action.apply(pairs[rep], flip)`. Sorted by index;
    /// the representative appears first with [`OrbitAction::IDENTITY`].
    pub members: Vec<(usize, OrbitAction)>,
}

/// Partition ordered start pairs into orbits under the group generated by
/// the tree's port-preserving flip (when one exists) and — iff `allow_swap`
/// — the agent exchange `(a, b) ↦ (b, a)`. The group has order at most 4.
///
/// Soundness: the flip acts on *space* and commutes with any deterministic
/// agent reading only degrees and ports, so it preserves rendezvous verdicts
/// under every activation schedule. The swap exchanges the two *agents* and
/// is sound only when the schedule treats the lanes identically (all
/// per-round activation flags equal); the caller decides and passes
/// `allow_swap = false` otherwise.
///
/// A pair whose image under a group element is absent from `pairs` simply
/// contributes no member (sampled pair pools are not closed under the
/// action); the partition of the pairs that *are* present is still
/// well-defined because "same orbit" remains an equivalence relation on
/// them. Duplicate input pairs each get their own singleton orbit rather
/// than aliasing.
pub fn pair_orbits(t: &Tree, pairs: &[(NodeId, NodeId)], allow_swap: bool) -> Vec<PairOrbit> {
    let flip = port_preserving_flip(t);
    let mut index_of = std::collections::HashMap::with_capacity(pairs.len());
    for (i, &p) in pairs.iter().enumerate() {
        // First occurrence wins; later duplicates fall through to singleton
        // orbits via the `assigned` scan below.
        index_of.entry(p).or_insert(i);
    }
    let mut assigned = vec![false; pairs.len()];
    let mut orbits = Vec::new();
    for rep in 0..pairs.len() {
        if assigned[rep] {
            continue;
        }
        let mut members = Vec::new();
        for swap in [false, true] {
            if swap && !allow_swap {
                continue;
            }
            for do_flip in [false, true] {
                if do_flip && flip.is_none() {
                    continue;
                }
                let action = OrbitAction { flip: do_flip, swap };
                let image = action.apply(pairs[rep], flip.as_deref());
                if let Some(&i) = index_of.get(&image) {
                    if !assigned[i] {
                        assigned[i] = true;
                        members.push((i, action));
                    }
                }
            }
        }
        if !assigned[rep] {
            // A duplicate pair whose first occurrence already claimed the
            // index map entry: decide it independently.
            assigned[rep] = true;
            members.push((rep, OrbitAction::IDENTITY));
        }
        members.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(members[0], (rep, OrbitAction::IDENTITY));
        orbits.push(PairOrbit { rep, members });
    }
    orbits
}

/// The two port-labeled halves of the central edge are isomorphic (including
/// ports): used to classify the Stage-2 branch of the Theorem 4.1 agent.
pub fn halves_port_isomorphic(t: &Tree) -> bool {
    let Center::Edge(x, y) = center(t) else {
        return false;
    };
    canon_ports(t, x, Some(y), None) == canon_ports(t, y, Some(x), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        colored_line_center_zero, complete_binary, line, random_relabel, random_tree, spider,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_automorphism() {
        let t = line(6);
        let id: Vec<NodeId> = (0..6).collect();
        assert!(is_automorphism(&t, &id));
        assert!(preserves_ports(&t, &id));
    }

    #[test]
    fn colored_even_line_is_symmetric() {
        let t = colored_line_center_zero(5);
        assert!(is_symmetric(&t));
        let f = port_preserving_flip(&t).unwrap();
        assert_eq!(f, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn canonical_even_line_is_not_symmetric() {
        // `line()`'s labeling points 0 backwards everywhere: the flip does
        // not preserve it.
        let t = line(6);
        assert!(!is_symmetric(&t));
    }

    #[test]
    fn odd_line_never_symmetric() {
        for labeled in crate::generators::all_labelings(&line(5)) {
            assert!(!is_symmetric(&labeled), "odd line has a central node");
        }
    }

    #[test]
    fn leaves_of_odd_line_not_perfectly_symmetrizable() {
        // Paper §1: odd-node lines' two leaves are topologically symmetric
        // but NOT perfectly symmetrizable (central node).
        let t = line(5);
        assert!(topologically_symmetric(&t, 0, 4));
        assert!(!perfectly_symmetrizable(&t, 0, 4));
    }

    #[test]
    fn leaves_of_even_line_perfectly_symmetrizable() {
        let t = line(6);
        assert!(perfectly_symmetrizable(&t, 0, 5));
        assert!(perfectly_symmetrizable(&t, 1, 4));
        assert!(perfectly_symmetrizable(&t, 2, 3));
        assert!(!perfectly_symmetrizable(&t, 0, 4));
        assert!(!perfectly_symmetrizable(&t, 1, 5));
        // Same half: never.
        assert!(!perfectly_symmetrizable(&t, 0, 1));
    }

    #[test]
    fn complete_binary_leaves_not_perfectly_symmetrizable() {
        // Paper §1: complete binary trees have a central node.
        let t = complete_binary(3);
        let leaves = t.leaves();
        assert!(topologically_symmetric(&t, leaves[0], leaves[1]));
        assert!(!perfectly_symmetrizable(&t, leaves[0], leaves[1]));
    }

    #[test]
    fn witness_validates_yes_side() {
        let t = line(8);
        for (u, v) in [(0u32, 7u32), (2, 5), (3, 4)] {
            let (relabeled, f) = symmetrization_witness(&t, u, v).expect("pair is symmetrizable");
            assert!(preserves_ports(&relabeled, &f));
            assert_eq!(f[u as usize], v);
        }
        assert!(symmetrization_witness(&t, 0, 4).is_none());
    }

    #[test]
    fn witness_on_bigger_trees() {
        let mut rng = StdRng::seed_from_u64(21);
        // Mirror-double a random tree: two copies joined by an edge; mirror
        // nodes are perfectly symmetrizable.
        let half = random_tree(9, &mut rng);
        let n = half.num_nodes();
        let mut edges = Vec::new();
        for e in half.edges() {
            edges.push(e);
            let mut m = e;
            m.u += n as NodeId;
            m.v += n as NodeId;
            edges.push(m);
        }
        // Join roots 0 and n with a fresh port at each (degree extension).
        let d0 = half.degree(0);
        edges.push(crate::tree::Edge { u: 0, port_u: d0, v: n as NodeId, port_v: d0 });
        let doubled = Tree::from_edges(2 * n, &edges).unwrap();
        for w in 0..n as NodeId {
            assert!(
                perfectly_symmetrizable(&doubled, w, w + n as NodeId),
                "mirror pair {w} failed"
            );
            let (relabeled, f) =
                symmetrization_witness(&doubled, w, w + n as NodeId).expect("witness");
            assert!(preserves_ports(&relabeled, &f));
        }
        // Distinct non-mirror nodes in the same half: not symmetrizable.
        assert!(!perfectly_symmetrizable(&doubled, 0, 1));
    }

    #[test]
    fn symmetric_wrt_labeling_matches_flip() {
        let t = colored_line_center_zero(7); // 8 nodes, mirror labeling
        assert!(symmetric_wrt_labeling(&t, 0, 7));
        assert!(symmetric_wrt_labeling(&t, 2, 5));
        assert!(!symmetric_wrt_labeling(&t, 0, 6));
        assert!(symmetric_wrt_labeling(&t, 3, 3));
    }

    #[test]
    fn perfect_symmetrizability_is_symmetric_relation() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..20 {
            let t = random_tree(12, &mut rng);
            let t = random_relabel(&t, &mut rng);
            for u in 0..12u32 {
                for v in 0..12u32 {
                    assert_eq!(
                        perfectly_symmetrizable(&t, u, v),
                        perfectly_symmetrizable(&t, v, u)
                    );
                }
            }
        }
    }

    #[test]
    fn perfectly_symmetrizable_implies_topologically_symmetric() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..20 {
            let t = random_tree(10, &mut rng);
            for u in 0..10u32 {
                for v in 0..10u32 {
                    if perfectly_symmetrizable(&t, u, v) {
                        assert!(topologically_symmetric(&t, u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn spider_is_never_perfectly_symmetrizable() {
        // Odd spider (3 legs): central node ⇒ no pair qualifies.
        let t = spider(3, 4);
        for u in 0..t.num_nodes() as NodeId {
            for v in 0..t.num_nodes() as NodeId {
                if u != v {
                    assert!(!perfectly_symmetrizable(&t, u, v));
                }
            }
        }
    }

    /// All ordered pairs of distinct nodes, in lex order (the pair-pool
    /// order `exhaustive_feasible_pairs` uses, minus the feasibility filter).
    fn all_ordered_pairs(t: &Tree) -> Vec<(NodeId, NodeId)> {
        let n = t.num_nodes() as NodeId;
        (0..n).flat_map(|a| (0..n).filter(move |&b| b != a).map(move |b| (a, b))).collect()
    }

    fn check_orbit_invariants(t: &Tree, pairs: &[(NodeId, NodeId)], allow_swap: bool) {
        let orbits = pair_orbits(t, pairs, allow_swap);
        let flip = port_preserving_flip(t);
        let mut covered = vec![false; pairs.len()];
        for orbit in &orbits {
            assert_eq!(orbit.members[0], (orbit.rep, OrbitAction::IDENTITY));
            for &(i, action) in &orbit.members {
                assert!(i >= orbit.rep, "rep must be the smallest index");
                assert!(!covered[i], "pair index {i} in two orbits");
                covered[i] = true;
                assert!(!action.swap || allow_swap);
                assert_eq!(
                    pairs[i],
                    action.apply(pairs[orbit.rep], flip.as_deref()),
                    "member {i} does not match its action"
                );
            }
        }
        assert!(covered.iter().all(|&c| c), "orbits must partition the input");
    }

    #[test]
    fn orbits_on_the_odd_line_come_only_from_swap() {
        // line(7) has a central node: no flip. Without swap every pair is
        // its own orbit; with swap the 42 ordered pairs pair up into 21.
        let t = line(7);
        let pairs = all_ordered_pairs(&t);
        assert_eq!(pairs.len(), 42);
        assert_eq!(pair_orbits(&t, &pairs, false).len(), 42);
        assert_eq!(pair_orbits(&t, &pairs, true).len(), 21);
        check_orbit_invariants(&t, &pairs, true);
    }

    #[test]
    fn orbits_on_the_mirror_labeled_even_line() {
        // 6 nodes, flip = full reversal i ↦ 5-i. 30 ordered pairs.
        // Flip alone is fixed-point-free on pairs: 15 orbits of size 2.
        // Flip + swap: the 6 anti-diagonal pairs (a, 5-a) have
        // flip == swap, giving 3 orbits of size 2; the other 24 pairs fall
        // into 6 orbits of size 4. Total 9.
        let t = colored_line_center_zero(5);
        assert!(is_symmetric(&t));
        let pairs = all_ordered_pairs(&t);
        assert_eq!(pairs.len(), 30);
        assert_eq!(pair_orbits(&t, &pairs, false).len(), 15);
        let quotiented = pair_orbits(&t, &pairs, true);
        assert_eq!(quotiented.len(), 9);
        let mut sizes: Vec<usize> = quotiented.iter().map(|o| o.members.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 2, 4, 4, 4, 4, 4, 4]);
        check_orbit_invariants(&t, &pairs, false);
        check_orbit_invariants(&t, &pairs, true);
    }

    #[test]
    fn orbits_on_star_and_spider_have_no_flip() {
        // Stars and uniform odd spiders have a central node: swap is the
        // only symmetry, so orbit count = pairs / 2 exactly.
        for t in [crate::generators::star(4), spider(3, 4)] {
            assert!(port_preserving_flip(&t).is_none());
            let pairs = all_ordered_pairs(&t);
            assert_eq!(pair_orbits(&t, &pairs, true).len(), pairs.len() / 2);
            check_orbit_invariants(&t, &pairs, true);
        }
    }

    #[test]
    fn asymmetric_n7_tree_with_central_edge_has_no_flip() {
        // Spider with legs 1, 2, 3 (7 nodes): the diameter path has odd
        // length, so the tree has a central *edge* {0, 4} — but the halves
        // have 4 and 3 nodes, so no flip exists and only swap quotients.
        use crate::tree::Edge;
        let t = Tree::from_edges(
            7,
            &[
                Edge { u: 0, port_u: 0, v: 1, port_v: 0 },
                Edge { u: 0, port_u: 1, v: 2, port_v: 0 },
                Edge { u: 2, port_u: 1, v: 3, port_v: 0 },
                Edge { u: 0, port_u: 2, v: 4, port_v: 0 },
                Edge { u: 4, port_u: 1, v: 5, port_v: 0 },
                Edge { u: 5, port_u: 1, v: 6, port_v: 0 },
            ],
        )
        .unwrap();
        assert!(matches!(center(&t), Center::Edge(0, 4)));
        assert!(port_preserving_flip(&t).is_none());
        let pairs = all_ordered_pairs(&t);
        assert_eq!(pairs.len(), 42);
        assert_eq!(pair_orbits(&t, &pairs, false).len(), 42);
        assert_eq!(pair_orbits(&t, &pairs, true).len(), 21);
    }

    #[test]
    fn orbits_on_sampled_pools_and_random_trees() {
        // Sampled pools are not closed under the action; the partition must
        // still be well-formed. Mirror-doubled trees guarantee a flip when
        // the join ports match.
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..30 {
            let n = 4 + (round % 7);
            let t = random_relabel(&random_tree(n, &mut rng), &mut rng);
            let mut pairs = all_ordered_pairs(&t);
            // Drop a pseudo-random subset to simulate a sampled pool.
            pairs.retain(|&(a, b)| !(a as usize * 31 + b as usize * 17 + round).is_multiple_of(3));
            check_orbit_invariants(&t, &pairs, false);
            check_orbit_invariants(&t, &pairs, true);
        }
    }

    #[test]
    fn orbit_partition_never_crosses_verdict_classes() {
        // Perfect symmetrizability is invariant under both generators, so an
        // orbit never mixes feasible and infeasible pairs — the invariant
        // that lets the sweep engine decide one representative per orbit.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let t = random_relabel(&random_tree(8, &mut rng), &mut rng);
            let pairs = all_ordered_pairs(&t);
            for orbit in pair_orbits(&t, &pairs, true) {
                let rep_feasible = {
                    let (a, b) = pairs[orbit.rep];
                    !perfectly_symmetrizable(&t, a, b)
                };
                for &(i, _) in &orbit.members {
                    let (a, b) = pairs[i];
                    assert_eq!(!perfectly_symmetrizable(&t, a, b), rep_feasible);
                }
            }
        }
    }

    #[test]
    fn exhaustive_definition_check_small_trees() {
        // Ground-truth Definition 1.2 by enumerating ALL labelings and ALL
        // automorphism candidates on small trees, comparing against the
        // decision procedure.
        fn ground_truth(t: &Tree, u: NodeId, v: NodeId) -> bool {
            if u == v {
                return true;
            }
            for labeled in crate::generators::all_labelings(t) {
                // Candidate flips: the unique port-preserving one.
                if let Some(f) = port_preserving_flip(&labeled) {
                    if f[u as usize] == v {
                        return true;
                    }
                }
            }
            false
        }
        let trees = vec![line(2), line(3), line(4), line(5), line(6), spider(3, 1), {
            crate::generators::caterpillar(2, &[1, 1])
        }];
        for t in trees {
            for u in 0..t.num_nodes() as NodeId {
                for v in 0..t.num_nodes() as NodeId {
                    assert_eq!(
                        perfectly_symmetrizable(&t, u, v),
                        ground_truth(&t, u, v),
                        "mismatch at ({u},{v}) in {t:?}"
                    );
                }
            }
        }
    }
}
