//! The contraction `T'` of a tree `T` (§4.1): every maximal path whose
//! interior consists of degree-2 nodes is replaced by a single edge, whose
//! ports are the ports at the two extremities of the contracted path.
//!
//! If `T` has `ℓ` leaves, `T'` has at most `2ℓ - 1` nodes and no degree-2
//! nodes (unless `T` itself is a single edge or a single node).

use crate::tree::{Edge, NodeId, Port, Tree};

/// The contraction of a tree, together with the correspondence between the
/// two node sets and the expansion of each contracted edge.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// The contracted tree `T'`.
    pub tree: Tree,
    /// For each `T` node: its `T'` id, if it survived (degree ≠ 2 in `T`).
    pub t_to_tp: Vec<Option<NodeId>>,
    /// For each `T'` node: the original `T` node.
    pub tp_to_t: Vec<NodeId>,
    /// For each `T'` node `w` and port `p`: the full path in `T` realizing
    /// that contracted edge, starting at `tp_to_t[w]` and ending at the `T`
    /// node of the other endpoint (inclusive on both ends).
    expansion: Vec<Vec<Vec<NodeId>>>,
}

impl Contraction {
    /// The number of nodes `ν` of `T'`.
    pub fn num_nodes(&self) -> usize {
        self.tree.num_nodes()
    }

    /// The `T`-path realizing the `T'`-edge leaving `w` (a `T'` node id) by
    /// port `p`; inclusive of both endpoint nodes (in `T` ids).
    pub fn expanded_edge(&self, w: NodeId, p: Port) -> &[NodeId] {
        &self.expansion[w as usize][p as usize]
    }
}

/// Computes the contraction of `t`.
///
/// Keeps every node of degree ≠ 2. Special cases: trees with ≤ 2 nodes and
/// trees that are a bare path (whose contraction is a single edge between the
/// two endpoints) are handled uniformly: the survivors are exactly the nodes
/// of degree ≠ 2, and in a tree there are always at least two of them (or one
/// for the singleton).
pub fn contract(t: &Tree) -> Contraction {
    let n = t.num_nodes();
    if n == 1 {
        return Contraction {
            tree: Tree::singleton(),
            t_to_tp: vec![Some(0)],
            tp_to_t: vec![0],
            expansion: vec![vec![]],
        };
    }
    let mut t_to_tp = vec![None; n];
    let mut tp_to_t = Vec::new();
    for u in 0..n as NodeId {
        if t.degree(u) != 2 {
            t_to_tp[u as usize] = Some(tp_to_t.len() as NodeId);
            tp_to_t.push(u);
        }
    }
    debug_assert!(tp_to_t.len() >= 2, "a tree with ≥ 2 nodes has ≥ 2 nodes of degree ≠ 2");
    // For each surviving node and each of its ports, walk through degree-2
    // nodes to the other surviving endpoint.
    let mut edges: Vec<Edge> = Vec::new();
    let mut expansion: Vec<Vec<Vec<NodeId>>> =
        tp_to_t.iter().map(|&u| vec![Vec::new(); t.degree(u) as usize]).collect();
    for (w_idx, &u) in tp_to_t.iter().enumerate() {
        for p in 0..t.degree(u) {
            let mut path = vec![u];
            let mut prev = u;
            let mut cur = t.neighbor(u, p);
            let mut entry = t.entry_port(u, p);
            while t.degree(cur) == 2 {
                path.push(cur);
                let out = 1 - entry; // degree-2: leave by the other port
                let nxt = t.neighbor(cur, out);
                entry = t.entry_port(cur, out);
                prev = cur;
                cur = nxt;
            }
            let _ = prev;
            path.push(cur);
            let w = w_idx as NodeId;
            let x = t_to_tp[cur as usize].expect("walk ends at a surviving node");
            expansion[w_idx][p as usize] = path;
            // `entry` is the port at `cur` (in T) by which the path arrives —
            // the port of the contracted edge at the other endpoint.
            if (w, p) < (x, entry) {
                edges.push(Edge { u: w, port_u: p, v: x, port_v: entry });
            }
        }
    }
    let tree = Tree::from_edges(tp_to_t.len(), &edges).expect("contraction is a valid tree");
    Contraction { tree, t_to_tp, tp_to_t, expansion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{caterpillar, complete_binary, line, random_tree, spider, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_contracts_to_edge() {
        let t = line(10);
        let c = contract(&t);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.tree.num_edges(), 1);
        assert_eq!(c.tp_to_t, vec![0, 9]);
        assert_eq!(c.expanded_edge(0, 0), &(0..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn star_is_its_own_contraction() {
        let t = star(5);
        let c = contract(&t);
        assert_eq!(c.num_nodes(), t.num_nodes());
        assert_eq!(c.tree.num_leaves(), 5);
    }

    #[test]
    fn spider_contracts_to_star() {
        let t = spider(4, 7);
        let c = contract(&t);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.tree.degree(c.t_to_tp[0].unwrap()), 4);
        // Each contracted edge expands to a leg of 7 edges = 8 nodes.
        let hub = c.t_to_tp[0].unwrap();
        for p in 0..4 {
            assert_eq!(c.expanded_edge(hub, p).len(), 8);
        }
    }

    #[test]
    fn contraction_has_no_degree2_nodes() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 3, 5, 17, 64, 200] {
            let t = random_tree(n, &mut rng);
            let c = contract(&t);
            if c.num_nodes() > 2 {
                for u in 0..c.num_nodes() as NodeId {
                    assert_ne!(c.tree.degree(u), 2, "degree-2 node survived in T'");
                }
            }
            // ν ≤ 2ℓ − 1 (paper, §4.1).
            assert!(c.num_nodes() < 2 * t.num_leaves().max(1) || t.num_nodes() <= 2);
            // Leaves are preserved.
            assert_eq!(c.tree.num_leaves(), t.num_leaves());
        }
    }

    #[test]
    fn contraction_ports_match_extremities() {
        let t = spider(3, 2);
        let c = contract(&t);
        let hub = c.t_to_tp[0].unwrap();
        // Port p at the hub in T' must reach the leaf of leg p.
        for p in 0..3 {
            let leaf_tp = c.tree.neighbor(hub, p);
            let leaf_t = c.tp_to_t[leaf_tp as usize];
            assert_eq!(t.degree(leaf_t), 1);
            let exp = c.expanded_edge(hub, p);
            assert_eq!(*exp.first().unwrap(), 0);
            assert_eq!(*exp.last().unwrap(), leaf_t);
        }
    }

    #[test]
    fn idempotent_on_degree2_free_trees() {
        // Note: the ROOT of a complete binary tree has degree 2, so it is
        // suppressed; the contraction has n − 1 nodes and is then stable.
        let t = complete_binary(3);
        let c = contract(&t);
        assert_eq!(c.num_nodes(), t.num_nodes() - 1);
        let c2 = contract(&c.tree);
        assert_eq!(c2.num_nodes(), c.num_nodes());
        // A star has no degree-2 nodes at all: contraction is the identity.
        let s = star(6);
        let cs = contract(&s);
        assert_eq!(cs.num_nodes(), s.num_nodes());
        assert_eq!(cs.tree.edges(), s.edges());
    }

    #[test]
    fn two_node_tree() {
        let t = line(2);
        let c = contract(&t);
        assert_eq!(c.num_nodes(), 2);
    }

    #[test]
    fn caterpillar_contraction() {
        // Spine nodes with hairs survive; bare internal spine nodes vanish.
        let t = caterpillar(5, &[0, 1, 0, 1, 0]);
        let c = contract(&t);
        // Survivors: spine 0 (deg 1), spine 1 (deg 3), spine 3 (deg 3),
        // spine 4 (deg 1), two hair leaves. Spine 2 (deg 2) vanishes.
        assert_eq!(c.num_nodes(), 6);
    }
}
