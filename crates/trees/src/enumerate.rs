//! Exhaustive enumeration of *free* (unlabeled, unrooted) trees.
//!
//! Implements the Wright–Richmond–Odlyzko–McKay successor algorithm
//! ("Constant time generation of free trees", SIAM J. Comput. 15(2), 1986)
//! over *level sequences*: a rooted tree on `n` nodes is written as the
//! depth of each node in preorder (`layout[0] = 0` is the root), and the
//! WROM validity condition — root the tree at its centroid, heaviest
//! subtree first, lexicographically maximal — picks exactly one rooted
//! representative per free tree. [`FreeTrees`] walks the representatives in
//! decreasing lexicographic order, starting from the path rooted at its
//! center, so the iteration order is canonical and reproducible: the pair
//! `(n, index)` names a tree forever, which is what the exhaustive
//! certification sweep (`e9`) records as its `tree_seed`.
//!
//! Every emitted [`Tree`] gets the same deterministic port labeling the
//! random generators use: each non-root node reaches its parent by port 0,
//! and a parent's ports toward its children follow preorder attachment
//! order. Enumeration is over *structures* only — callers wanting
//! adversarial labelings compose with [`crate::generators::random_relabel`]
//! or [`crate::generators::all_labelings`].
//!
//! Counts follow OEIS A000055: 1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235 …
//! for `n = 1, 2, …, 11` (pinned by test).

use crate::tree::{Edge, NodeId, Port, Tree};

/// One step of the Beyer–Hedetniemi rooted-tree successor on a level
/// sequence, with an explicit truncation point `p` (the WROM jump uses
/// this to skip invalid free-tree representatives in one move).
/// `None` when the sequence is exhausted.
fn next_rooted_tree(predecessor: &[usize], p: Option<usize>) -> Option<Vec<usize>> {
    let p = p.unwrap_or_else(|| {
        let mut p = predecessor.len() - 1;
        while predecessor[p] == 1 {
            p -= 1;
        }
        p
    });
    if p == 0 {
        return None;
    }
    let mut q = p - 1;
    while predecessor[q] != predecessor[p] - 1 {
        q -= 1;
    }
    let mut result = predecessor.to_vec();
    for i in p..result.len() {
        result[i] = result[i - p + q];
    }
    Some(result)
}

/// Splits a layout at the root: the root's first (leftmost) subtree,
/// re-based to depth 0, and the remaining tree with that subtree removed.
fn split_tree(layout: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut one_found = false;
    let mut m = layout.len();
    for (i, &d) in layout.iter().enumerate() {
        if d == 1 {
            if one_found {
                m = i;
                break;
            }
            one_found = true;
        }
    }
    let left = layout[1..m].iter().map(|&d| d - 1).collect();
    let rest = std::iter::once(0).chain(layout[m..].iter().copied()).collect();
    (left, rest)
}

/// One step of the WROM algorithm: returns `candidate` itself when it is a
/// valid free-tree representative, else jumps directly to the next valid
/// candidate (or `None` when the enumeration is exhausted).
fn next_tree(candidate: Vec<usize>) -> Option<Vec<usize>> {
    let (left, rest) = split_tree(&candidate);
    // Valid iff the left (first) subtree of the root is no taller than the
    // rest, and on equal heights no larger, and on equal sizes no
    // lexicographically later — the centroid/maximality normal form.
    let left_height = left.iter().max().copied().unwrap_or(0);
    let rest_height = rest.iter().max().copied().unwrap_or(0);
    let valid = rest_height > left_height
        || (rest_height == left_height
            && (left.len() < rest.len() || (left.len() == rest.len() && left <= rest)));
    if valid {
        return Some(candidate);
    }
    let p = left.len();
    let mut next = next_rooted_tree(&candidate, Some(p))?;
    if candidate[p] > 2 {
        let (new_left, _) = split_tree(&next);
        let new_left_height = new_left.iter().max().copied().unwrap_or(0);
        let suffix: Vec<usize> = (1..=new_left_height + 1).collect();
        let start = next.len() - suffix.len();
        next[start..].copy_from_slice(&suffix);
    }
    Some(next)
}

/// Builds the port-labeled [`Tree`] of a preorder level sequence: node `i`'s
/// parent is the nearest `j < i` with `layout[j] == layout[i] - 1`; ports
/// follow the deterministic convention in the module docs.
fn layout_to_tree(layout: &[usize]) -> Tree {
    let n = layout.len();
    debug_assert!(n >= 2 && layout[0] == 0);
    let mut next_port = vec![0 as Port; n];
    let mut edges = Vec::with_capacity(n - 1);
    // `last_at[d]` = most recent preorder node seen at depth `d`.
    let mut last_at = vec![0usize; n];
    for (v, &d) in layout.iter().enumerate().skip(1) {
        let u = last_at[d - 1];
        edges.push(Edge { u: u as NodeId, port_u: next_port[u], v: v as NodeId, port_v: 0 });
        next_port[u] += 1;
        next_port[v] = 1;
        last_at[d] = v;
    }
    Tree::from_edges(n, &edges).expect("level sequence yields a valid tree")
}

/// Iterator over every free tree on `n` nodes, in the canonical WROM
/// order. See the module docs for the labeling convention and the
/// stability guarantee behind `(n, index)` naming.
pub struct FreeTrees {
    /// Next rooted candidate to normalize, `None` when exhausted.
    layout: Option<Vec<usize>>,
    /// `n == 1` is the singleton special case (the successor algorithm
    /// needs at least one edge).
    singleton_pending: bool,
}

/// All free trees on `n ≥ 1` nodes.
pub fn free_trees(n: usize) -> FreeTrees {
    assert!(n >= 1, "free trees need at least one node");
    if n == 1 {
        return FreeTrees { layout: None, singleton_pending: true };
    }
    // The path rooted at its center: depths 0..=n/2 then 1..(n+1)/2.
    let layout = (0..=n / 2).chain(1..n.div_ceil(2)).collect();
    FreeTrees { layout: Some(layout), singleton_pending: false }
}

impl Iterator for FreeTrees {
    type Item = Tree;

    fn next(&mut self) -> Option<Tree> {
        if self.singleton_pending {
            self.singleton_pending = false;
            return Some(Tree::singleton());
        }
        let candidate = self.layout.take()?;
        let valid = next_tree(candidate)?;
        let tree = layout_to_tree(&valid);
        self.layout = next_rooted_tree(&valid, None);
        Some(tree)
    }
}

/// Number of free trees on `n` nodes (OEIS A000055), by enumeration of the
/// level sequences (no [`Tree`] is built). Exponential in `n` — the
/// exhaustive workloads clamp `n` before calling.
pub fn free_tree_count(n: usize) -> u64 {
    assert!(n >= 1);
    if n == 1 {
        return 1;
    }
    let mut count = 0;
    let mut layout: Option<Vec<usize>> = Some((0..=n / 2).chain(1..n.div_ceil(2)).collect());
    while let Some(candidate) = layout.take() {
        let Some(valid) = next_tree(candidate) else { break };
        count += 1;
        layout = next_rooted_tree(&valid, None);
    }
    count
}

/// The `index`-th free tree on `n` nodes in the canonical enumeration
/// order — the stable `(n, index)` name the exhaustive sweep records.
/// Panics when `index ≥ free_tree_count(n)`.
pub fn nth_free_tree(n: usize, index: u64) -> Tree {
    free_trees(n)
        .nth(index as usize)
        .unwrap_or_else(|| panic!("free tree index {index} out of range for n = {n}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::unrooted_canon_structural;
    use std::collections::HashSet;

    /// OEIS A000055 (number of free trees on n nodes), n = 1..=11.
    const A000055: [u64; 11] = [1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235];

    #[test]
    fn counts_match_a000055() {
        for (i, &expect) in A000055.iter().enumerate() {
            let n = i + 1;
            assert_eq!(free_tree_count(n), expect, "count at n = {n}");
            assert_eq!(free_trees(n).count() as u64, expect, "iterator at n = {n}");
        }
    }

    #[test]
    fn enumerated_trees_are_valid_and_pairwise_nonisomorphic() {
        for n in 1..=9usize {
            let mut canons = HashSet::new();
            for (i, t) in free_trees(n).enumerate() {
                assert_eq!(t.num_nodes(), n, "n = {n}, index {i}");
                assert!(
                    canons.insert(unrooted_canon_structural(&t, None)),
                    "duplicate structure at n = {n}, index {i}"
                );
            }
            assert_eq!(canons.len() as u64, free_tree_count(n));
        }
    }

    #[test]
    fn small_orders_are_the_known_shapes() {
        // n = 4: the path and the star.
        let shapes: Vec<usize> = free_trees(4).map(|t| t.max_degree() as usize).collect();
        assert_eq!(shapes.len(), 2);
        assert!(shapes.contains(&2) && shapes.contains(&3));
        // n = 5: path, spider(3legs), star.
        let mut degs: Vec<usize> = free_trees(5).map(|t| t.max_degree() as usize).collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![2, 3, 4]);
    }

    #[test]
    fn nth_matches_iteration_order() {
        for n in [5usize, 7, 9] {
            let all: Vec<Tree> = free_trees(n).collect();
            for (i, t) in all.iter().enumerate() {
                assert_eq!(&nth_free_tree(n, i as u64), t, "n = {n}, index {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_out_of_range_panics() {
        let _ = nth_free_tree(4, 2);
    }

    #[test]
    fn ports_follow_the_parent_convention() {
        for t in free_trees(7) {
            // Node 0 is the root; every other node's port 0 leads toward it.
            for v in 1..t.num_nodes() as NodeId {
                let parent = t.neighbor(v, 0);
                assert!(t.distance(parent, 0) < t.distance(v, 0), "port 0 must point rootward");
            }
        }
    }
}
