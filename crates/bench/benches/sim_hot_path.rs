//! Criterion bench for the flattened simulation hot path: CSR tree
//! lookups + dense FSA transition tables driving the round loop, zero-cost
//! runner spawning (borrow, not clone), and static vs dyn pair dispatch.
//!
//! `pair_rounds/static` vs `pair_rounds/dyn` isolates the monomorphic
//! [`run_pair_fsa`] instantiation against the dyn-compatible [`run_pair`]
//! wrapper on the identical workload: two basic-walk automata launched at
//! odd distance on a line cross forever and never meet, so every run costs
//! exactly the full round budget. The sweep executor's dispatch choice
//! (currently dyn everywhere — measured faster) is guided by this number;
//! rerun it when changing targets or toolchains.
//!
//! `trace_replay/{record,replay_pair,run_pair}` prices the trace kernel on
//! the same shuttle workload: the one-time tabulation, the per-question
//! timeline merge, and the live stepping it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::fsa::Fsa;
use rvz_agent::model::Agent;
use rvz_sim::trace::Replay;
use rvz_sim::{replay_pair, run_pair, run_pair_fsa, run_single, PairConfig, TraceRecorder};
use rvz_trees::generators::{line, random_bounded_degree_tree};
use std::hint::black_box;

fn bench_runner_spawn(c: &mut Criterion) {
    // Pre-PR, `Fsa::runner()` deep-copied the whole transition table per
    // call; now it borrows. The delta grows with the state count.
    let mut group = c.benchmark_group("runner_spawn");
    let mut rng = StdRng::seed_from_u64(17);
    for k in [4usize, 64, 1024] {
        let fsa = Fsa::random(k, 3, 0.25, &mut rng);
        group.bench_with_input(BenchmarkId::new("fsa", k), &fsa, |b, fsa| {
            b.iter(|| black_box(fsa.runner()))
        });
    }
    group.finish();
}

fn bench_pair_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_rounds");
    for n in [200usize, 2_000] {
        let t = line(n);
        let fsa = Fsa::basic_walk(2);
        let rounds = 8 * n as u64;
        let cfg = PairConfig::simultaneous(rounds);
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(BenchmarkId::new("static", n), &t, |b, t| {
            b.iter(|| {
                let mut a = fsa.runner();
                let mut bb = fsa.runner();
                black_box(run_pair_fsa(t, 0, 1, &mut a, &mut bb, cfg).crossings)
            })
        });
        group.bench_with_input(BenchmarkId::new("dyn", n), &t, |b, t| {
            b.iter(|| {
                let mut a = fsa.runner();
                let mut bb = fsa.runner();
                black_box(run_pair(t, 0, 1, &mut a, &mut bb, cfg).crossings)
            })
        });
    }
    group.finish();
}

fn bench_csr_walk(c: &mut Criterion) {
    // A degree-3 automaton walking a bounded-degree random tree: the round
    // loop is pure CSR lookup + dense table read.
    let mut group = c.benchmark_group("csr_walk");
    let mut rng = StdRng::seed_from_u64(23);
    for n in [1_000usize, 10_000] {
        let t = random_bounded_degree_tree(n, 3, &mut rng);
        let fsa = Fsa::basic_walk(3);
        let rounds = 4 * (n as u64 - 1);
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(BenchmarkId::new("fsa_rounds", n), &t, |b, t| {
            b.iter(|| {
                let mut r = fsa.runner();
                black_box(run_single(t, 0, &mut r, rounds, false).cursor)
            })
        });
    }
    group.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    // The trace kernel against live stepping on the identical workload:
    // two basic-walk automata at odd distance shuttle for the full budget
    // (the worst case for the merge — every round is a move, so no
    // joint-stay span can be jumped). `record` prices the one-time
    // tabulation; `replay_pair` is what every later (delay, pair) question
    // costs; `run_pair` is what it used to cost.
    let mut group = c.benchmark_group("trace_replay");
    for n in [200usize, 2_000] {
        let t = line(n);
        let fsa = Fsa::basic_walk(2);
        let rounds = 8 * n as u64;
        let cfg = PairConfig::simultaneous(rounds);
        let record = |start: u32| {
            let mut rec = TraceRecorder::new(start, fsa.runner_owned(), |a| a.memory_bits());
            rec.record_to(&t, rounds);
            rec.trajectory().clone()
        };
        let (ta, tb) = (record(0), record(1));
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(BenchmarkId::new("record", n), &t, |b, t| {
            b.iter(|| {
                let mut rec = TraceRecorder::new(0, fsa.runner_owned(), |a| a.memory_bits());
                rec.record_to(t, rounds);
                black_box(rec.trajectory().num_runs())
            })
        });
        group.bench_with_input(BenchmarkId::new("replay_pair", n), &t, |b, t| {
            b.iter(|| match replay_pair(t, &ta, &tb, cfg) {
                Replay::Decided(run) => black_box(run.crossings),
                Replay::NeedMore { .. } => unreachable!("recorded to the budget"),
            })
        });
        group.bench_with_input(BenchmarkId::new("run_pair", n), &t, |b, t| {
            b.iter(|| {
                let mut a = fsa.runner();
                let mut bb = fsa.runner();
                black_box(run_pair(t, 0, 1, &mut a, &mut bb, cfg).crossings)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_runner_spawn,
    bench_pair_dispatch,
    bench_csr_walk,
    bench_trace_replay
);
criterion_main!(benches);
