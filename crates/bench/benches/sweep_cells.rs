//! Criterion bench for the sweep executor at n ≈ 200: the shared-instance
//! cache versus rebuilding the world (tree + feasible-pair pool + agent
//! tables) for every cell, which is what the executor did before the cache
//! landed.
//!
//! Two grids, both defined once in the library so `just bench-baseline`
//! (which records them into `BENCH_sweep.json`) measures exactly the same
//! workloads:
//!
//! * [`sweep::perf_grid_fsa_scan`] — the bounded-horizon basic-walk
//!   automaton scan over a delay grid (`Variant::BasicWalkFsa`), the
//!   Chalopin-style delay-fault workload the instance cache targets: cells
//!   decide in `θ + 2` Euler periods, so executor overhead is the dominant
//!   per-cell cost.
//! * [`sweep::perf_grid_variants`] — the E6/E8-shaped grid over the paper's
//!   procedural agents, where long rendezvous runs dominate and the cache
//!   is a smaller (but free) win.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rvz_bench::sweep::{self, SweepSpec};
use std::hint::black_box;

fn bench_grid(c: &mut Criterion, name: &str, spec: &SweepSpec) {
    let grid = sweep::cells(spec);
    let mut group = c.benchmark_group(name);
    group.throughput(Throughput::Elements(grid.len() as u64));
    // The cached executor (what `sweep::run` does since the instance cache).
    group.bench_function("cached", |b| b.iter(|| black_box(sweep::run(spec).rows.len())));
    // The pre-cache executor shape: every cell rebuilds its instance.
    group.bench_function("rebuild_per_cell", |b| {
        b.iter(|| black_box(grid.iter().filter_map(sweep::run_cell).count()))
    });
    group.finish();
}

fn bench_sweep_cells(c: &mut Criterion) {
    bench_grid(c, "sweep_cells/fsa_delay_scan", &sweep::perf_grid_fsa_scan());
    bench_grid(c, "sweep_cells/variant_agents", &sweep::perf_grid_variants());
}

criterion_group!(benches, bench_sweep_cells);
criterion_main!(benches);
