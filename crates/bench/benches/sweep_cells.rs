//! Criterion bench for the sweep executor at n ≈ 200: the trace-replay
//! executor (record each deterministic trajectory once in the process-wide
//! store, decide every cell by timeline merge) versus the PR-2 stepping
//! executor (shared instance, both agents stepped per cell) versus
//! rebuilding the world for every cell (the pre-instance-cache shape).
//!
//! Two grids, both defined once in the library so `just bench-baseline`
//! (which records them into `BENCH_sweep.json`) measures exactly the same
//! workloads:
//!
//! * [`sweep::perf_grid_fsa_scan`] — the bounded-horizon basic-walk
//!   automaton scan over a delay grid (`Variant::BasicWalkFsa`), the
//!   Chalopin-style delay-fault workload: cells decide in `θ + 2` Euler
//!   periods, so executor overhead is the dominant per-cell cost.
//! * [`sweep::perf_grid_variants`] — the E6/E8-shaped grid over the paper's
//!   procedural agents, where long rendezvous runs dominate: the grid the
//!   trace-replay executor targets (a delay column shares two recordings;
//!   criterion's warm iterations measure the steady state, merge-only).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rvz_bench::sweep::{self, Executor, SweepSpec};
use std::hint::black_box;

fn bench_grid(c: &mut Criterion, name: &str, spec: &SweepSpec) {
    let grid = sweep::cells(spec);
    let mut group = c.benchmark_group(name);
    group.throughput(Throughput::Elements(grid.len() as u64));
    // The trace-replay executor (the default since the trace store).
    let mut replay = spec.clone();
    replay.executor = Executor::TraceReplay;
    group.bench_function("replay", |b| b.iter(|| black_box(sweep::run(&replay).rows.len())));
    // The PR-2 stepping executor: shared instances, agents stepped per cell.
    let mut stepping = spec.clone();
    stepping.executor = Executor::DynStepping;
    group.bench_function("stepping", |b| b.iter(|| black_box(sweep::run(&stepping).rows.len())));
    // The exact decider: budget-free verdicts over the joint configuration
    // graph (meaningful on the automaton grid; procedural-agent cells fall
    // back to replay).
    let mut decide = spec.clone();
    decide.executor = Executor::ExactDecide;
    group.bench_function("decide", |b| b.iter(|| black_box(sweep::run(&decide).rows.len())));
    // The pre-instance-cache executor shape: every cell rebuilds its world.
    group.bench_function("rebuild_per_cell", |b| {
        b.iter(|| black_box(grid.iter().filter_map(sweep::run_cell).count()))
    });
    group.finish();
}

fn bench_sweep_cells(c: &mut Criterion) {
    bench_grid(c, "sweep_cells/fsa_delay_scan", &sweep::perf_grid_fsa_scan());
    bench_grid(c, "sweep_cells/variant_agents", &sweep::perf_grid_variants());
}

criterion_group!(benches, bench_sweep_cells);
criterion_main!(benches);
