//! Criterion bench for E2 (Theorem 4.1): wall time of full simultaneous-
//! start rendezvous across tree families and sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvz_core::TreeRendezvousAgent;
use rvz_sim::{run_pair, PairConfig};
use rvz_trees::generators::{complete_binary, line, spider};
use rvz_trees::Tree;
use std::hint::black_box;

fn rendezvous(tree: &Tree, a: u32, b: u32) -> u64 {
    let mut x = TreeRendezvousAgent::new();
    let mut y = TreeRendezvousAgent::new();
    let run = run_pair(tree, a, b, &mut x, &mut y, PairConfig::simultaneous(1_000_000_000));
    run.outcome.round().expect("feasible instances meet")
}

fn bench_rendezvous(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_rendezvous");
    for n in [16usize, 64, 256] {
        let t = line(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("line", n), &t, |b, t| {
            b.iter(|| black_box(rendezvous(t, 1, (t.num_nodes() - 1) as u32)))
        });
        let s = spider(3, n / 3);
        group.bench_with_input(BenchmarkId::new("spider3", n), &s, |b, s| {
            b.iter(|| black_box(rendezvous(s, 1, (s.num_nodes() - 1) as u32)))
        });
    }
    let cb = complete_binary(5);
    group.bench_function("complete_binary_h5", |b| b.iter(|| black_box(rendezvous(&cb, 31, 62))));
    group.finish();
}

criterion_group!(benches, bench_rendezvous);
criterion_main!(benches);
