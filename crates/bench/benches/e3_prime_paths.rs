//! Criterion bench for E3 (Lemma 4.1): the `prime` protocol on paths —
//! meeting wall time as the path grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvz_core::prime_path::PrimePathAgent;
use rvz_sim::{run_pair, PairConfig};
use rvz_trees::generators::line;
use std::hint::black_box;

fn bench_prime_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_prime_paths");
    for m in [16usize, 64, 256, 1024] {
        let t = line(m);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("path", m), &t, |b, t| {
            b.iter(|| {
                let mut x = PrimePathAgent::unbounded();
                let mut y = PrimePathAgent::unbounded();
                let run = run_pair(
                    t,
                    1,
                    (t.num_nodes() - 1) as u32,
                    &mut x,
                    &mut y,
                    PairConfig::simultaneous(1_000_000_000),
                );
                black_box(run.outcome.round().expect("feasible pair"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prime_paths);
criterion_main!(benches);
