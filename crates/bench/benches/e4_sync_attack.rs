//! Criterion bench for E4 (Theorem 4.2): cost of the simultaneous-start
//! adversary (π' analysis + infinite-line burn-in + verification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::line_fsa::LineFsa;
use rvz_lowerbounds::sync_attack::{analyze_pi_prime, sync_attack};
use std::hint::black_box;

fn bench_sync_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_sync_attack");
    for k in [2usize, 4, 8, 16] {
        let mut rng = StdRng::seed_from_u64(k as u64 + 7);
        let fsas: Vec<LineFsa> = (0..8).map(|_| LineFsa::random(k, 0.25, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("attack/states", k), &fsas, |b, fsas| {
            let mut i = 0;
            b.iter(|| {
                let fsa = &fsas[i % fsas.len()];
                i += 1;
                black_box(sync_attack(fsa, 1 << 14).ok())
            });
        });
        group.bench_with_input(BenchmarkId::new("pi_prime/states", k), &fsas, |b, fsas| {
            let mut i = 0;
            b.iter(|| {
                let fsa = &fsas[i % fsas.len()];
                i += 1;
                black_box(analyze_pi_prime(fsa))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync_attack);
criterion_main!(benches);
