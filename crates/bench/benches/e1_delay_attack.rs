//! Criterion bench for E1 (Theorem 3.1): cost of constructing + verifying
//! the arbitrary-delay adversary as the automaton grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::line_fsa::LineFsa;
use rvz_lowerbounds::delay_attack::delay_attack;
use std::hint::black_box;

fn bench_delay_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_delay_attack");
    for k in [2usize, 8, 32, 128] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let fsas: Vec<LineFsa> = (0..8).map(|_| LineFsa::random(k, 0.25, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("states", k), &fsas, |b, fsas| {
            let mut i = 0;
            b.iter(|| {
                let fsa = &fsas[i % fsas.len()];
                i += 1;
                black_box(delay_attack(fsa).expect("defeated"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delay_attack);
criterion_main!(benches);
