//! Criterion bench for E6: side-by-side wall time of the delay-0 agent and
//! the arbitrary-delay baseline on few-leaf trees (the gap's two scenarios).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvz_core::{DelayRobustAgent, TreeRendezvousAgent};
use rvz_sim::{run_pair, PairConfig};
use rvz_trees::generators::line;
use std::hint::black_box;

fn bench_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_memory_gap");
    for n in [32usize, 128] {
        let t = line(n);
        let (a, b) = (1u32, (n - 1) as u32);
        group.bench_with_input(BenchmarkId::new("delay0_line", n), &t, |bch, t| {
            bch.iter(|| {
                let mut x = TreeRendezvousAgent::new();
                let mut y = TreeRendezvousAgent::new();
                black_box(
                    run_pair(t, a, b, &mut x, &mut y, PairConfig::simultaneous(1_000_000_000))
                        .outcome,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("anydelay_line", n), &t, |bch, t| {
            bch.iter(|| {
                let mut x = DelayRobustAgent::new();
                let mut y = DelayRobustAgent::new();
                black_box(
                    run_pair(t, a, b, &mut x, &mut y, PairConfig::delayed(n as u64, 1_000_000_000))
                        .outcome,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gap);
criterion_main!(benches);
