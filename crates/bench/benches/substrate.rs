//! Criterion bench for the substrates: simulator round throughput, the
//! canonical-form machinery, and `Explo-bis` reconstruction — the kernels
//! everything else pays for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::model::{bw_exit, Action, Agent, Obs, Step, SubAgent};
use rvz_explore::ExploBis;
use rvz_sim::{run_single, Cursor};
use rvz_trees::canon::{canon_ports, canon_structural, canonical_ranks};
use rvz_trees::generators::{line, random_relabel, random_tree};
use std::hint::black_box;

struct BasicWalker;

impl Agent for BasicWalker {
    fn act(&mut self, obs: Obs) -> Action {
        Action::Move(bw_exit(obs.entry, obs.degree))
    }
    fn memory_bits(&self) -> u64 {
        0
    }
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for n in [1_000usize, 10_000] {
        let t = line(n);
        let rounds = 4 * (n as u64 - 1);
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(BenchmarkId::new("basic_walk_rounds", n), &t, |b, t| {
            b.iter(|| black_box(run_single(t, 0, &mut BasicWalker, rounds, false).cursor))
        });
    }
    group.finish();
}

fn bench_canon(c: &mut Criterion) {
    let mut group = c.benchmark_group("canon");
    let mut rng = StdRng::seed_from_u64(11);
    for n in [100usize, 1_000, 10_000] {
        let t = random_relabel(&random_tree(n, &mut rng), &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("structural", n), &t, |b, t| {
            b.iter(|| black_box(canon_structural(t, 0, None, Some(1))))
        });
        group.bench_with_input(BenchmarkId::new("ports", n), &t, |b, t| {
            b.iter(|| black_box(canon_ports(t, 0, None, None)))
        });
        group.bench_with_input(BenchmarkId::new("ranks", n), &t, |b, t| {
            b.iter(|| black_box(canonical_ranks(t)))
        });
    }
    group.finish();
}

fn bench_explo(c: &mut Criterion) {
    let mut group = c.benchmark_group("explo_bis");
    let mut rng = StdRng::seed_from_u64(13);
    for n in [100usize, 1_000] {
        let t = random_relabel(&random_tree(n, &mut rng), &mut rng);
        let start = (0..t.num_nodes() as u32).find(|&v| t.degree(v) != 2).unwrap();
        group.throughput(Throughput::Elements(2 * (n as u64 - 1)));
        group.bench_with_input(BenchmarkId::new("reconstruct", n), &t, |b, t| {
            b.iter(|| {
                let mut e = ExploBis::new();
                let mut cur = Cursor::new(start);
                loop {
                    match e.step(cur.obs(t)) {
                        Step::Done => break,
                        Step::Move(p) => {
                            cur.apply(t, Action::Move(p));
                        }
                        Step::Stay => {}
                    }
                }
                black_box(e.result().unwrap().nu)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_canon, bench_explo);
criterion_main!(benches);
