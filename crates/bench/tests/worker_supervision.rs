//! Multi-process supervision differential (requires the `rvz-faults`
//! feature; see `[[test]]` in Cargo.toml): the supervised merged report
//! must be byte-identical to the single-process run for every worker
//! count, after an injected worker death mid-shard, and after a stolen
//! lease; a shard that keeps killing its workers must be quarantined as
//! explicit poisoned rows instead of hanging or fabricating data.
//!
//! Worker subprocesses are this same test binary re-invoked with
//! `--exact worker_supervision_child_entry` and an env-selected role
//! (the standard self-spawning pattern for abort-me tests, shared with
//! `crash_resume.rs`). `RVZ_FAULTS` counters are per-process, so each
//! worker gets its own fault budget.

use rvz_bench::checkpoint::{self, Journal};
use rvz_bench::supervisor::{self, SupervisorConfig};
use rvz_bench::sweep::{self, Delay, Executor, Family, RunOptions, SweepSpec, Variant};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const DIR_ENV: &str = "WORKER_SUP_DIR";

/// The differential workload: small but multi-axis — fixed delays beside
/// the ∀-delay quantifier, so certificates ride the worker segments too.
fn spec(threads: usize) -> SweepSpec {
    SweepSpec {
        experiment: "worker-sup".into(),
        families: vec![Family::Line, Family::Spider3],
        sizes: vec![5, 6],
        delays: vec![Delay::Zero, Delay::Fixed(1), Delay::Adversarial],
        variants: vec![Variant::BasicWalkFsa],
        pairs_per_cell: 2,
        seed: 0x5EED_F0C5,
        threads,
        executor: Executor::ExactDecide,
        agents: 2,
    }
}

/// Canonical serialized form of a report (rows + certificates) — the
/// byte-equality the supervisor promises.
fn serialized(report: &sweep::SweepReport) -> String {
    format!(
        "{}\n{}\nplanned={} dropped={}",
        serde_json::to_string_pretty(&report.rows).expect("serialize rows"),
        serde_json::to_string_pretty(&report.certificates).expect("serialize certificates"),
        report.planned_cells,
        report.dropped_cells,
    )
}

/// Worker role: claim and execute shards from the workdir in `DIR_ENV`.
/// No-op unless spawned by a supervising test.
#[test]
fn worker_supervision_child_entry() {
    let Ok(dir) = std::env::var(DIR_ENV) else { return };
    if let Err(e) = supervisor::worker_main(Path::new(&dir), &spec(1)) {
        eprintln!("worker child: {e}");
        std::process::exit(1);
    }
}

/// The worker command: this test binary, re-running only the child entry,
/// with no inherited fault plan (legs inject their own per child).
fn worker_cmd(workdir: &Path) -> Command {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg("--exact")
        .arg("worker_supervision_child_entry")
        .arg("--nocapture")
        .env(DIR_ENV, workdir)
        .env_remove("RVZ_FAULTS");
    cmd
}

/// CI-speed supervision knobs: fast heartbeats, short backoff. The
/// timeout stays generous — it only bounds the *undetectable* failure
/// (a dead worker whose lease still shows the ready marker's pid 0).
fn cfg(workers: usize, dir: &Path) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(workers);
    cfg.heartbeat_interval = Duration::from_millis(25);
    cfg.heartbeat_timeout = Duration::from_millis(1500);
    cfg.backoff_base = Duration::from_millis(20);
    cfg.workdir = Some(dir.to_path_buf());
    cfg
}

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rvz-worker-sup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn supervised_reports_are_byte_identical_across_worker_counts() {
    let reference = serialized(&sweep::run(&spec(1)));
    let base = temp_base("counts");
    for workers in [1usize, 2, 4] {
        let dir = base.join(format!("w{workers}"));
        let report = supervisor::run_supervised(
            &spec(1),
            &RunOptions::default(),
            &cfg(workers, &dir),
            &mut worker_cmd,
        );
        assert_eq!(
            serialized(&report),
            reference,
            "supervised report (workers={workers}) must be byte-identical to single-process"
        );
        assert!(!dir.exists(), "a fully harvested workdir is scratch and must be removed");
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn killed_worker_is_reassigned_and_output_unchanged() {
    let reference = serialized(&sweep::run(&spec(1)));
    let base = temp_base("kill");
    // Only the first spawned worker carries the kill plan: it completes
    // one cell, then dies hard (the kill -9 simulation) mid-shard. Its
    // completed cell must be harvested, the rest of the shard reassigned.
    let mut spawned = 0usize;
    let mut spawn = |workdir: &Path| {
        spawned += 1;
        let mut cmd = worker_cmd(workdir);
        if spawned == 1 {
            cmd.env("RVZ_FAULTS", "worker-kill=abort@2");
        }
        cmd
    };
    let report =
        supervisor::run_supervised(&spec(1), &RunOptions::default(), &cfg(2, &base), &mut spawn);
    assert!(spawned >= 2, "the dead worker must have been replaced (spawned {spawned})");
    assert_eq!(
        serialized(&report),
        reference,
        "report after a worker death mid-shard must be byte-identical to single-process"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn stolen_lease_is_detected_and_reassigned() {
    let reference = serialized(&sweep::run(&spec(1)));
    let base = temp_base("steal");
    let mut spawned = 0usize;
    let mut spawn = |workdir: &Path| {
        spawned += 1;
        let mut cmd = worker_cmd(workdir);
        if spawned == 1 {
            cmd.env("RVZ_FAULTS", "lease-steal=abort@1");
        }
        cmd
    };
    let report =
        supervisor::run_supervised(&spec(1), &RunOptions::default(), &cfg(2, &base), &mut spawn);
    assert_eq!(
        serialized(&report),
        reference,
        "report after a stolen lease must be byte-identical to single-process"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn attempt_cap_quarantines_shards_as_poisoned() {
    let base = temp_base("poison");
    // EVERY worker dies before its first cell: every shard exhausts the
    // attempt cap. The run must terminate (no hang) and quarantine every
    // cell as an explicit poisoned row — never fabricated measurements.
    let mut config = cfg(2, &base);
    config.max_shard_attempts = 2;
    config.heartbeat_timeout = Duration::from_millis(400);
    config.backoff_base = Duration::from_millis(10);
    let mut spawn = |workdir: &Path| {
        let mut cmd = worker_cmd(workdir);
        cmd.env("RVZ_FAULTS", "worker-kill=abort@1");
        cmd
    };
    let report = supervisor::run_supervised(&spec(1), &RunOptions::default(), &config, &mut spawn);
    assert!(!report.rows.is_empty());
    assert_eq!(report.rows.len() + report.dropped_cells, report.planned_cells);
    for row in &report.rows {
        assert_eq!(row.poisoned, Some(true), "every surviving row must be poisoned");
        assert!(!row.met, "a poisoned row records no run");
        assert!(!row.certified);
        assert_eq!(row.timed_out, None, "poisoned, not timed out");
    }
    assert!(report.certificates.is_empty(), "no run ⇒ no certificates");
    assert!(base.exists(), "a poisoned run keeps its workdir as evidence");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn supervised_runs_share_the_checkpoint_journal() {
    let reference = serialized(&sweep::run(&spec(1)));
    let base = temp_base("journal");
    let journal_path = base.join("sweep.ckpt");
    let fingerprint = checkpoint::spec_fingerprint(&[&spec(1)]);
    let planned = {
        let journal = Journal::open(&journal_path, false, fingerprint).expect("journal open");
        let opts = RunOptions { journal: Some(&journal), cell_timeout: None };
        let report = supervisor::run_supervised(
            &spec(1),
            &opts,
            &cfg(2, &base.join("work")),
            &mut worker_cmd,
        );
        assert_eq!(serialized(&report), reference);
        report.planned_cells
    };
    // Every cell the workers computed must have reached the shared
    // journal; a plain in-process resume replays it byte-identically.
    let journal = Journal::open(&journal_path, true, fingerprint).expect("resume journal");
    assert_eq!(journal.recovered_cells(), planned, "every cell must be journaled");
    let opts = RunOptions { journal: Some(&journal), cell_timeout: None };
    let resumed = sweep::run_with_options(&spec(1), &opts);
    assert_eq!(serialized(&resumed), reference);
    let _ = std::fs::remove_dir_all(&base);
}
