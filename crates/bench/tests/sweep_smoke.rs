//! Integration smoke tests for the sweep engine (ISSUE 1 satellite):
//!
//! * a 2×2 grid (lines of size 4/8 × delay 0/3) whose rendezvous rounds
//!   must match direct `run_pair` calls replayed from the rows;
//! * byte-identical JSON across thread counts;
//! * a JSON round-trip for the result-row schema.

use rvz_bench::sweep::{self, Delay, Executor, Family, SweepSpec, Variant};
use rvz_core::DelayRobustAgent;
use rvz_sim::{run_pair, PairConfig};

fn grid_2x2(threads: usize) -> SweepSpec {
    SweepSpec {
        experiment: "smoke".into(),
        families: vec![Family::Line],
        sizes: vec![4, 8],
        delays: vec![Delay::Fixed(0), Delay::Fixed(3)],
        variants: vec![Variant::DelayRobust],
        pairs_per_cell: 1,
        seed: 42,
        threads,
        executor: Executor::default(),
        agents: 2,
    }
}

#[test]
fn sweep_rounds_match_direct_run_pair() {
    let report = sweep::run(&grid_2x2(1));
    let rows = report.rows;
    assert_eq!(report.dropped_cells, 0);
    assert_eq!(rows.len(), 4, "2 sizes x 2 delays x 1 pair");

    for row in &rows {
        assert_eq!(row.family, "line");
        assert_eq!(row.variant, "delay-robust");
        // Replay the cell via the README recipe: rebuild the family from
        // the row's recorded tree_seed, rerun run_pair from the row.
        let tree = Family::Line.build(row.size, row.tree_seed);
        assert_eq!(tree.num_nodes(), row.n);
        let mut x = DelayRobustAgent::new();
        let mut y = DelayRobustAgent::new();
        let direct = run_pair(
            &tree,
            row.start_a,
            row.start_b,
            &mut x,
            &mut y,
            PairConfig::delayed(row.delay, row.budget),
        );
        assert_eq!(direct.outcome.met(), row.met, "met mismatch for n={}", row.n);
        assert_eq!(
            direct.outcome.round(),
            row.rounds,
            "rounds mismatch for n={} delay={} starts=({},{})",
            row.n,
            row.delay,
            row.start_a,
            row.start_b
        );
        assert!(row.met, "delay-robust must meet on feasible line instances");
    }

    // Both delays and both sizes actually appear in the grid.
    for delay in [0u64, 3] {
        assert!(rows.iter().any(|r| r.delay == delay), "delay {delay} missing");
    }
    for n in [4usize, 8] {
        assert!(rows.iter().any(|r| r.n == n), "size {n} missing");
    }
}

#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    let json1 = serde_json::to_string_pretty(&sweep::run(&grid_2x2(1)).rows).unwrap();
    for threads in [2usize, 4, 8] {
        let json = serde_json::to_string_pretty(&sweep::run(&grid_2x2(threads)).rows).unwrap();
        assert_eq!(json1, json, "--threads {threads} diverged");
    }
}

#[test]
fn replay_and_stepping_executors_are_byte_identical() {
    // The trace-replay executor is an optimization only: its JSON must
    // match the dyn-stepping executor byte for byte, at every thread count.
    let replay = serde_json::to_string_pretty(&sweep::run(&grid_2x2(1)).rows).unwrap();
    for threads in [1usize, 2, 8] {
        let mut spec = grid_2x2(threads);
        spec.executor = Executor::DynStepping;
        let stepping = serde_json::to_string_pretty(&sweep::run(&spec).rows).unwrap();
        assert_eq!(replay, stepping, "executors diverged at --threads {threads}");
    }
}

#[test]
fn sweep_row_schema_round_trips_through_json() {
    let rows = sweep::run(&grid_2x2(2)).rows;
    let value = serde_json::to_value(&rows);
    let text = serde_json::to_string_pretty(&rows).unwrap();
    let parsed = serde_json::from_str(&text).expect("sweep rows must serialize to valid JSON");
    assert_eq!(parsed, value, "JSON round-trip must preserve every field");

    // Spot-check the schema fields the README documents.
    let first = &parsed[0];
    for key in [
        "experiment",
        "family",
        "size",
        "n",
        "leaves",
        "variant",
        "delay",
        "start_a",
        "start_b",
        "met",
        "rounds",
        "crossings",
        "budget",
        "provisioned_bits",
        "measured_bits",
        "tree_seed",
        "pairs_seed",
        "cell_seed",
    ] {
        assert!(!first[key].is_null() || key == "rounds", "field `{key}` missing from row");
    }
    assert_eq!(first["family"].as_str(), Some("line"));
    assert_eq!(first["met"].as_bool(), Some(true));
}
