//! Regression for the `--cell-timeout` watchdog's thread hygiene: a
//! timed-out attempt used to leave its detached worker thread running to
//! the end of a possibly astronomical round budget, so a sweep with many
//! timeouts accumulated live threads without bound. The watchdog now
//! cancels the attempt cooperatively ([`rvz_sim::cancel`]): the executor
//! loops observe the flag at their next round-boundary poll point and the
//! thread unwinds promptly.

use rvz_bench::sweep::{
    self, Delay, Executor, Family, RunOptions, ScheduleSpec, SweepSpec, Variant,
};
use std::time::Duration;

/// A grid of deliberately slow cells: a huge lockstep period dilates
/// every trajectory by ~2²⁰×, so each cell naturally runs for far longer
/// than the 1ms budget, times out, and is cancelled. Runtime of the whole
/// test is dominated by `cells × timeout`, not by the dilation.
fn slow_spec() -> SweepSpec {
    SweepSpec {
        experiment: "watchdog-threads".into(),
        families: vec![Family::Line],
        sizes: vec![8, 10, 12],
        delays: vec![Delay::Schedule(ScheduleSpec::Lockstep { period: 1 << 20 })],
        variants: vec![Variant::BasicWalkFsa],
        pairs_per_cell: 4,
        seed: 0x5EED_7D06,
        threads: 1,
        executor: Executor::DynStepping,
        agents: 2,
    }
}

/// Live threads of this process (Linux; the leak this test pins is only
/// countable through procfs).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
}

#[cfg(target_os = "linux")]
#[test]
fn timed_out_cells_do_not_accumulate_threads() {
    let spec = slow_spec();
    let opts = RunOptions { journal: None, cell_timeout: Some(Duration::from_millis(1)) };

    // Warm-up run: counts the steady-state threads (rayon pool, test
    // harness) plus any first-run lazy initialization.
    let warmup = sweep::run_with_options(&spec, &opts);
    assert!(!warmup.rows.is_empty());
    std::thread::sleep(Duration::from_millis(200));
    let baseline = thread_count();

    // Three more sweeps × 12 cells each: the old detach-and-forget
    // watchdog would leave ~36 threads stepping through dilated budgets.
    let mut timed_out = 0usize;
    for _ in 0..3 {
        let report = sweep::run_with_options(&spec, &opts);
        assert_eq!(report.rows.len() + report.dropped_cells, report.planned_cells);
        for row in &report.rows {
            assert_eq!(
                row.timed_out,
                Some(true),
                "every dilated cell must blow the 1ms budget and be quarantined"
            );
            assert!(!row.met, "a timed-out row records no run");
        }
        timed_out += report.rows.len();
    }
    assert!(timed_out >= 12, "expected a meaningful number of timeouts, got {timed_out}");

    // Cancelled attempt threads are detached, so give stragglers a beat
    // to unwind before counting.
    std::thread::sleep(Duration::from_millis(300));
    let after = thread_count();
    assert!(
        after <= baseline + 4,
        "watchdog leaked threads: {baseline} before, {after} after {timed_out} timeouts"
    );
}
