//! Kill–resume differential (requires the `rvz-faults` feature; see
//! `[[test]]` in Cargo.toml): a journaled sweep is killed mid-run by
//! injected faults — hard aborts, a torn (short-write) append, and a
//! silent bit-flip — across several child processes, each resuming the
//! previous one's journal; the final resumed report must serialize
//! byte-identically to an uninterrupted run, for resume thread counts
//! 1, 2 and 8.
//!
//! The child processes are this same test binary re-invoked with
//! `--exact crash_resume_child_entry` and an env-selected role: the child
//! test function is a no-op in ordinary runs and only executes the
//! journaled sweep when `CRASH_RESUME_JOURNAL` is set (the standard
//! self-spawning pattern for abort-me tests). `RVZ_FAULTS` counters are
//! per-process, so each child gets its own kill depth.

use rvz_bench::checkpoint::{self, Journal};
use rvz_bench::sweep::{self, Delay, Executor, Family, RunOptions, SweepSpec, Variant};
use std::path::{Path, PathBuf};

const JOURNAL_ENV: &str = "CRASH_RESUME_JOURNAL";
const THREADS_ENV: &str = "CRASH_RESUME_THREADS";

/// The differential workload: small but multi-axis — fixed delays beside
/// the ∀-delay quantifier (so certificates ride the journal too) and two
/// families under the exact decider.
fn spec(threads: usize) -> SweepSpec {
    SweepSpec {
        experiment: "crash-resume".into(),
        families: vec![Family::Line, Family::Spider3],
        sizes: vec![5, 6, 7],
        delays: vec![Delay::Zero, Delay::Fixed(1), Delay::Adversarial],
        variants: vec![Variant::BasicWalkFsa],
        pairs_per_cell: 3,
        seed: 0x5EED_C4A5,
        threads,
        executor: Executor::ExactDecide,
        agents: 2,
    }
}

fn fingerprint() -> u64 {
    checkpoint::spec_fingerprint(&[&spec(1)])
}

/// Canonical serialized form of a report (rows + certificates) — the
/// byte-equality the whole crash model promises.
fn serialized(report: &sweep::SweepReport) -> String {
    format!(
        "{}\n{}\nplanned={} dropped={}",
        serde_json::to_string_pretty(&report.rows).expect("serialize rows"),
        serde_json::to_string_pretty(&report.certificates).expect("serialize certificates"),
        report.planned_cells,
        report.dropped_cells,
    )
}

/// Child role: resume whatever the journal already holds and keep
/// sweeping. Under an injected `journal-append` fault the process aborts
/// partway; without one it completes. No-op unless spawned by the parent.
#[test]
fn crash_resume_child_entry() {
    let Ok(journal_path) = std::env::var(JOURNAL_ENV) else { return };
    let threads: usize = std::env::var(THREADS_ENV).ok().and_then(|t| t.parse().ok()).unwrap_or(2);
    let journal =
        Journal::open(Path::new(&journal_path), true, fingerprint()).expect("child journal open");
    let opts = RunOptions { journal: Some(&journal), cell_timeout: None };
    let _ = sweep::run_with_options(&spec(threads), &opts);
}

fn spawn_child(journal: &Path, faults: Option<&str>) -> std::process::ExitStatus {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--exact")
        .arg("crash_resume_child_entry")
        .arg("--nocapture")
        .env(JOURNAL_ENV, journal)
        .env(THREADS_ENV, "2")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    match faults {
        Some(f) => cmd.env("RVZ_FAULTS", f),
        None => cmd.env_remove("RVZ_FAULTS"),
    };
    cmd.status().expect("spawn child")
}

#[test]
fn killed_sweeps_resume_byte_identical() {
    let reference = serialized(&sweep::run(&spec(1)));

    let dir = std::env::temp_dir().join(format!("rvz-crash-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let journal_path: PathBuf = dir.join("sweep.ckpt");

    // Kill the sweep at several depths. The bit-flip child *completes*
    // (the fault corrupts a record on disk without killing the writer),
    // but its corrupt record must be dropped and recomputed on resume.
    let kill_plans = [
        ("journal-append=abort@5", true),
        ("journal-append=short-write@11", true),
        ("journal-append=abort@23", true),
        ("journal-append=bit-flip@3", false),
    ];
    for (plan, kills) in kill_plans {
        let status = spawn_child(&journal_path, Some(plan));
        if kills {
            assert!(!status.success(), "fault plan {plan:?} should have killed the child");
        } else {
            assert!(status.success(), "non-killing plan {plan:?} should complete");
        }
    }
    // One fault-free child finishes whatever is left.
    assert!(spawn_child(&journal_path, None).success(), "clean child run should complete");

    // Resume from the completed journal at several thread counts: the
    // journal holds recovered cells and the report serializes
    // byte-identically to the uninterrupted reference.
    for threads in [1usize, 2, 8] {
        let journal = Journal::open(&journal_path, true, fingerprint()).expect("resume journal");
        assert!(journal.recovered_cells() > 0, "journal must hold recovered cells");
        let opts = RunOptions { journal: Some(&journal), cell_timeout: None };
        let resumed = sweep::run_with_options(&spec(threads), &opts);
        assert_eq!(
            serialized(&resumed),
            reference,
            "resumed report (threads={threads}) must be byte-identical to an uninterrupted run"
        );
    }

    // Fingerprint safety: resuming the same journal under a different
    // grid must be a hard error, not a silent splice of wrong rows.
    let mut other = spec(1);
    other.seed ^= 1;
    assert!(
        Journal::open(&journal_path, true, checkpoint::spec_fingerprint(&[&other])).is_err(),
        "resuming under a different spec fingerprint must fail"
    );

    std::fs::remove_dir_all(&dir).expect("remove temp dir");
}
