//! **E1 — Theorem 3.1 / Figure 1**: the arbitrary-delay adversary.
//!
//! For automata of `k` bits (`K = 2^k` states) the adversary produces a
//! 2-edge-colored line + delay θ with verified non-meeting. The paper's
//! quantitative content: the defeating line has `O(K) = O(2^k)` edges, so
//! `Ω(log n)` bits are necessary on `n`-node lines. The table regenerates
//! that shape: the measured defeating length grows linearly in `K`
//! (exponentially in `k`), tracking the paper's `8(K+1)+1` formula.
//!
//! The final rows point the adversary at *our own* capped `prime` protocol
//! (compiled to an explicit automaton): the constructive half of the
//! title's exponential gap.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::compile::compile_line_agent;
use rvz_agent::line_fsa::LineFsa;
use rvz_core::prime_path::PrimePathAgent;
use rvz_lowerbounds::delay_attack::delay_attack;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E1Row {
    pub agent: String,
    pub bits: u64,
    pub states: usize,
    pub paper_len: u64,
    pub measured_len_mean: f64,
    pub measured_len_max: u64,
    pub theta_max: u64,
    pub samples: usize,
    pub defeated: usize,
}

/// Sweep random automata with `k = 1..=max_bits` bits plus the compiled
/// capped prime agents.
pub fn run(max_bits: u32, samples: usize, seed: u64) -> (Vec<E1Row>, Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for k in 1..=max_bits {
        let states = 1usize << k;
        let mut lens = Vec::new();
        let mut theta_max = 0;
        let mut defeated = 0;
        for _ in 0..samples {
            let fsa = LineFsa::random(states, 0.25, &mut rng);
            let attack = delay_attack(&fsa).expect("Theorem 3.1 always wins");
            defeated += 1;
            lens.push(attack.line_edges() as u64);
            theta_max = theta_max.max(attack.theta);
        }
        rows.push(E1Row {
            agent: format!("random-{k}bit"),
            bits: k as u64,
            states,
            paper_len: 8 * (states as u64 + 1) + 1,
            measured_len_mean: lens.iter().sum::<u64>() as f64 / lens.len() as f64,
            measured_len_max: lens.iter().copied().max().unwrap_or(0),
            theta_max,
            samples,
            defeated,
        });
    }
    // Our own protocol, memory-capped and compiled.
    for cap in 1..=3u32 {
        let compiled = compile_line_agent(|| PrimePathAgent::cycling(cap), 100_000)
            .expect("cycling prime agent is finite-state");
        let attack = delay_attack(&compiled).expect("capped prime agent is defeated");
        rows.push(E1Row {
            agent: format!("prime-cycle({cap})"),
            bits: compiled.memory_bits(),
            states: compiled.num_states(),
            paper_len: 8 * (compiled.num_states() as u64 + 1) + 1,
            measured_len_mean: attack.line_edges() as f64,
            measured_len_max: attack.line_edges() as u64,
            theta_max: attack.theta,
            samples: 1,
            defeated: 1,
        });
    }
    let table = to_table(&rows);
    (rows, table)
}

fn to_table(rows: &[E1Row]) -> Table {
    let mut t = Table::new(
        "E1",
        "Thm 3.1 (Fig. 1): arbitrary-delay adversary — defeating line length vs memory",
        &[
            "agent",
            "bits k",
            "states K",
            "paper 8(K+1)+1",
            "len mean",
            "len max",
            "θ max",
            "defeated",
        ],
    );
    for r in rows {
        t.row(vec![
            r.agent.clone(),
            r.bits.to_string(),
            r.states.to_string(),
            r.paper_len.to_string(),
            f(r.measured_len_mean),
            r.measured_len_max.to_string(),
            r.theta_max.to_string(),
            format!("{}/{}", r.defeated, r.samples),
        ]);
    }
    t.note("paper: every K-state agent fails on a line of length O(K) = O(2^k) under some delay");
    t.note("shape check: 'len max' grows at most linearly with K and stays ≤ the 8(K+1)+1 budget");
    t.note("'prime-cycle(i)' rows: our own Lemma-4.1 protocol with capped counters, compiled and defeated");
    t
}
