//! The process-wide solo-lasso store behind the sweep's exact-decide
//! executor — the decide-path sibling of [`crate::trace_cache`].
//!
//! **Key.** A basic-walk solo lasso (`rvz_lowerbounds::decide::SoloLasso`)
//! is a pure function of `(tree, start)`, and within a sweep the tree is a
//! pure function of `(family, n, tree_seed)` — so the store key is
//! `(family, n, tree_seed, start, variant)`, exactly the trace store's key.
//! The variant axis is constant today (only [`Variant::BasicWalkFsa`] has
//! an exported configuration space) but kept in the key so the two stores
//! stay shape-identical and a future decidable variant slots in without a
//! migration.
//!
//! **Growth.** Unlike a trace recording, a lasso is *complete* at birth:
//! [`SoloLasso::tabulate`] walks the solo run to its first repeated
//! configuration and stops, so slots hold an immutable `Arc<SoloLasso>`
//! and need no per-slot lock or extension protocol. Every `(delay, pair)`
//! cell of a sub-grid shares the two tabulations of its endpoints; the
//! ∀-delay quantifier shares one tabulation across every delay class it
//! checks; grid reruns (benchmark repetitions, overlapping experiments)
//! share all of them. Two threads racing on a cold key may both tabulate —
//! the loser's copy is dropped; results are pure either way — in exchange
//! for never holding the store lock across a tabulation.
//!
//! **Bounds / eviction.** The store holds at most [`MAX_STORE_KEYS`]
//! lassos (tunable via `RVZ_CACHE_CAP_SOLO`, see [`crate::cache_cap`]; a
//! lasso is `O(stem + period)` = `O(Δ·n)` node ids, a few KiB at sweep
//! sizes). A full store evicts *per key*, and only keys no worker
//! currently holds (slot `Arc` strong count 1), mirroring the trace
//! store's policy: a held `Arc` keeps naming its lasso, so eviction can
//! never invalidate a decision in flight — at worst a re-tabulation later.

use crate::sweep::{Family, SweepInstance, Variant};
use rvz_lowerbounds::decide::SoloLasso;
use rvz_trees::NodeId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default store capacity in lassos; a full store evicts idle keys only.
/// Overridable via `RVZ_CACHE_CAP_SOLO` ([`crate::cache_cap`]).
const MAX_STORE_KEYS: usize = 2048;

/// The effective store capacity, read from the environment once.
fn store_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| crate::cache_cap::cache_cap("RVZ_CACHE_CAP_SOLO", MAX_STORE_KEYS))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StoreKey {
    family: Family,
    /// Requested grid size (with `tree_seed`, determines the exact tree).
    n: usize,
    tree_seed: u64,
    start: NodeId,
    variant: Variant,
}

/// A shared, immutable lasso slot.
pub(crate) type Slot = Arc<SoloLasso>;

static STORE: OnceLock<Mutex<HashMap<StoreKey, Slot>>> = OnceLock::new();

/// The memoized solo lasso for `(family, n, tree_seed, start, variant)`,
/// tabulating outside the store lock on first use.
pub(crate) fn lasso(
    inst: &SweepInstance,
    family: Family,
    n: usize,
    variant: Variant,
    start: NodeId,
) -> Slot {
    let key = StoreKey { family, n, tree_seed: inst.tree_seed, start, variant };
    let store = STORE.get_or_init(Mutex::default);
    if let Some(hit) = store.lock().expect("solo store lock").get(&key) {
        return hit.clone();
    }
    let built = Arc::new(SoloLasso::tabulate(&inst.tree, inst.basic_walk_fsa(), start));
    let mut map = store.lock().expect("solo store lock");
    let cap = store_cap();
    if map.len() >= cap && !map.contains_key(&key) {
        // Per-key eviction: drop only idle lassos (strong count 1 ⇒ the
        // map holds the sole reference), just enough to admit the new key.
        // If every slot is in use the store briefly exceeds the cap;
        // admitting the key is strictly better than re-tabulating it on
        // the next cell.
        let need = map.len() + 1 - cap;
        let idle: Vec<StoreKey> = map
            .iter()
            .filter(|(_, slot)| Arc::strong_count(slot) == 1)
            .map(|(k, _)| *k)
            .take(need)
            .collect();
        for k in idle {
            map.remove(&k);
        }
    }
    // A racing thread may have inserted first; its copy wins (ours drops).
    map.entry(key).or_insert(built).clone()
}

/// Snapshots the store for persistence: every lasso as
/// `(family, n, tree_seed, start, variant, lasso bytes)`, in canonical
/// key order (byte-identical files across runs with equal contents).
pub(crate) fn export() -> Vec<(Family, usize, u64, NodeId, Variant, Vec<u8>)> {
    let map = STORE.get_or_init(Mutex::default).lock().expect("solo store lock");
    let mut out: Vec<_> = map
        .iter()
        .map(|(k, slot)| (k.family, k.n, k.tree_seed, k.start, k.variant, slot.to_bytes()))
        .collect();
    out.sort_by(|a, b| {
        (a.0.name(), a.1, a.2, a.3, a.4.name()).cmp(&(b.0.name(), b.1, b.2, b.3, b.4.name()))
    });
    out
}

/// Installs a restored (and already re-verified — see
/// [`crate::stores`]) lasso under its key. `false` when the key is
/// already live or the store is at capacity.
pub(crate) fn install_restored(
    family: Family,
    n: usize,
    tree_seed: u64,
    start: NodeId,
    variant: Variant,
    lasso: SoloLasso,
) -> bool {
    let key = StoreKey { family, n, tree_seed, start, variant };
    let mut map = STORE.get_or_init(Mutex::default).lock().expect("solo store lock");
    if map.len() >= store_cap() || map.contains_key(&key) {
        return false;
    }
    map.insert(key, Arc::new(lasso));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Cell, Delay};

    fn line_cell(n: usize, seed: u64) -> Cell {
        Cell {
            experiment: Arc::from("solo-cache-test"),
            family: Family::Line,
            n,
            delay: Delay::Zero,
            variant: Variant::BasicWalkFsa,
            pair_index: 0,
            pairs_total: 1,
            base_seed: seed,
            tree_index: None,
            agents: 2,
        }
    }

    #[test]
    fn eviction_is_per_key_and_never_drops_held_slots() {
        // Hold one slot's Arc, then insert enough distinctly-seeded keys
        // to overflow the store (tree_seed is in the key, so re-seeding
        // the same line family mints fresh keys). The held key must keep
        // resolving to the *same* lasso (pointer-identical); idle keys
        // are evicted instead.
        let held_cell = line_cell(6, 0xD1CE);
        let held_inst = SweepInstance::for_cell(&held_cell);
        let held = lasso(&held_inst, Family::Line, 6, Variant::BasicWalkFsa, 0);
        assert_eq!(held.position(0), 0);

        let per_instance = 8;
        let instances_needed = MAX_STORE_KEYS / per_instance + 2;
        for seed in 0..instances_needed as u64 {
            let mut cell = line_cell(8, 0);
            cell.base_seed = seed;
            let inst = SweepInstance::for_cell(&cell);
            for start in 0..per_instance as NodeId {
                let _ = lasso(&inst, Family::Line, 8, Variant::BasicWalkFsa, start);
            }
        }

        let again = lasso(&held_inst, Family::Line, 6, Variant::BasicWalkFsa, 0);
        assert!(Arc::ptr_eq(&held, &again), "held slot must survive eviction pressure");
    }
}
