//! **E2 — Theorem 4.1**: the simultaneous-start upper bound.
//!
//! Runs the full `O(log ℓ + log log n)` agent over the evaluation families
//! with adversarial labelings and sampled feasible start pairs. The paper
//! predicts: success on *every* feasible instance, with charged memory
//! bounded by `c₁·log ℓ + c₂·log log n + c₃`.

use crate::instances::{families, feasible_pairs};
use crate::table::{f, Table};
use rvz_agent::bits_for;
use rvz_core::TreeRendezvousAgent;
use rvz_sim::{run_pair, PairConfig};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E2Row {
    pub family: String,
    pub n: usize,
    pub leaves: usize,
    pub pairs: usize,
    pub met: usize,
    pub rounds_mean: f64,
    pub rounds_max: u64,
    pub bits_charged_max: u64,
    pub bits_measured_max: u64,
    /// The claim's yardstick: `log2 ℓ + log2 log2 n`.
    pub yardstick: f64,
}

pub fn run(scale: usize, pairs_per_tree: usize, seed: u64) -> (Vec<E2Row>, Table) {
    let mut rows = Vec::new();
    for inst in families(scale, seed) {
        let n = inst.tree.num_nodes();
        let leaves = inst.tree.num_leaves();
        let budget = (n as u64).pow(2) * 40_000 + 1_000_000;
        let mut met = 0;
        let mut rounds = Vec::new();
        let mut bits_charged: u64 = 0;
        let mut bits_measured: u64 = 0;
        let pairs = feasible_pairs(&inst.tree, pairs_per_tree, seed ^ 0xE2);
        for &(a, b) in &pairs {
            let mut x = TreeRendezvousAgent::new();
            let mut y = TreeRendezvousAgent::new();
            let run = run_pair(&inst.tree, a, b, &mut x, &mut y, PairConfig::simultaneous(budget));
            if let Some(r) = run.outcome.round() {
                met += 1;
                rounds.push(r);
            }
            bits_charged = bits_charged.max(x.memory_bits_charged()).max(y.memory_bits_charged());
            bits_measured =
                bits_measured.max(x.memory_bits_measured()).max(y.memory_bits_measured());
        }
        let yardstick = (leaves as f64).log2() + (n as f64).log2().max(1.0).log2().max(0.0);
        rows.push(E2Row {
            family: inst.family.to_string(),
            n,
            leaves,
            pairs: pairs.len(),
            met,
            rounds_mean: if rounds.is_empty() {
                0.0
            } else {
                rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
            },
            rounds_max: rounds.iter().copied().max().unwrap_or(0),
            bits_charged_max: bits_charged,
            bits_measured_max: bits_measured,
            yardstick,
        });
    }
    let table = to_table(&rows);
    (rows, table)
}

fn to_table(rows: &[E2Row]) -> Table {
    let mut t = Table::new(
        "E2",
        "Thm 4.1: simultaneous-start rendezvous — success and memory vs log ℓ + log log n",
        &[
            "family",
            "n",
            "ℓ",
            "met",
            "rounds mean",
            "rounds max",
            "bits (charged)",
            "bits (measured)",
            "log ℓ + loglog n",
        ],
    );
    for r in rows {
        t.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.leaves.to_string(),
            format!("{}/{}", r.met, r.pairs),
            f(r.rounds_mean),
            r.rounds_max.to_string(),
            r.bits_charged_max.to_string(),
            r.bits_measured_max.to_string(),
            f(r.yardstick),
        ]);
    }
    t.note("paper: 100% success on feasible (non-perfectly-symmetrizable) instances");
    t.note("shape check: charged bits track the yardstick with a modest constant, independent of n for fixed ℓ");
    t.note(&format!(
        "sanity: bits_for(1024) = {} (what Ω(log n) would cost at n=1024)",
        bits_for(1024)
    ));
    t
}
