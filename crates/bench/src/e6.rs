//! **E6 — the title claim (§1.1)**: the exponential memory gap.
//!
//! The paper's headline figure-in-words: for trees with few leaves, memory
//! for *simultaneous-start* rendezvous is `O(log ℓ + log log n)` while
//! *arbitrary-delay* rendezvous needs `Θ(log n)`. This experiment produces
//! the two series side by side, on lines (ℓ = 2) and 3-leg spiders (ℓ = 3),
//! as `n` grows geometrically:
//!
//! * `delay-0 bits` — measured charged memory of the Theorem 4.1 agent;
//! * `any-delay bits` — measured charged memory of the `O(log n)` baseline
//!   (whose necessity is Theorem 3.1, regenerated as E1);
//! * the yardsticks `log ℓ + log log n` and `log n`.

use crate::instances::feasible_pairs;
use crate::table::{f, Table};
use rvz_core::{DelayRobustAgent, TreeRendezvousAgent};
use rvz_sim::{run_pair, PairConfig};
use rvz_trees::generators::{line, spider};
use rvz_trees::Tree;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E6Row {
    pub family: String,
    pub n: usize,
    pub leaves: usize,
    /// Provisioned automaton size for the delay-0 algorithm at this (n, ℓ).
    pub delay0_bits: u64,
    pub delay0_met: bool,
    /// Provisioned automaton size for the arbitrary-delay baseline at n.
    pub anydelay_bits: u64,
    pub anydelay_met: bool,
    pub yard_small: f64,
    pub yard_log_n: f64,
}

pub fn run(sizes: &[usize], seed: u64) -> (Vec<E6Row>, Table) {
    let mut rows = Vec::new();
    for &n in sizes {
        for (family, tree) in [("line", line(n)), ("spider3", spider(3, (n / 3).max(1)))] {
            rows.push(measure(family, &tree, seed));
        }
    }
    let table = to_table(&rows);
    (rows, table)
}

fn measure(family: &str, tree: &Tree, seed: u64) -> E6Row {
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let (a, b) = feasible_pairs(tree, 1, seed ^ 0xE6)[0];
    let budget = crate::sweep::budget_for(n);

    let mut x = TreeRendezvousAgent::new();
    let mut y = TreeRendezvousAgent::new();
    let run0 = run_pair(tree, a, b, &mut x, &mut y, PairConfig::simultaneous(budget));
    let delay0_bits = TreeRendezvousAgent::provisioned_bits(n as u64, leaves as u64);

    // The arbitrary-delay scenario: an adversarial delay of n rounds.
    let mut p = DelayRobustAgent::new();
    let mut q = DelayRobustAgent::new();
    let rund = run_pair(tree, a, b, &mut p, &mut q, PairConfig::delayed(n as u64, budget));
    let anydelay_bits = DelayRobustAgent::provisioned_bits(n as u64);

    E6Row {
        family: family.to_string(),
        n,
        leaves,
        delay0_bits,
        delay0_met: run0.outcome.met(),
        anydelay_bits,
        anydelay_met: rund.outcome.met(),
        yard_small: (leaves as f64).log2() + (n as f64).log2().log2(),
        yard_log_n: (n as f64).log2(),
    }
}

fn to_table(rows: &[E6Row]) -> Table {
    let mut t = Table::new(
        "E6",
        "Title claim: exponential memory gap on few-leaf trees (delay 0 vs arbitrary delay)",
        &[
            "family",
            "n",
            "ℓ",
            "delay-0 bits",
            "met",
            "any-delay bits",
            "met ",
            "log ℓ+loglog n",
            "log n",
        ],
    );
    // Fitted bits-per-doubling slopes, per family (the quantitative shape).
    for family in ["line", "spider3"] {
        let pts0: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.family == family)
            .map(|r| (r.n as f64, r.delay0_bits as f64))
            .collect();
        let ptsd: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.family == family)
            .map(|r| (r.n as f64, r.anydelay_bits as f64))
            .collect();
        if pts0.len() >= 2 {
            t.note(&format!(
                "{family}: fitted bits/doubling — delay-0: {:.2}, any-delay: {:.2} (paper: ~0 vs ~Θ(1)·log)",
                crate::stats::bits_per_doubling(&pts0),
                crate::stats::bits_per_doubling(&ptsd),
            ));
        }
    }
    for r in rows {
        t.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.leaves.to_string(),
            r.delay0_bits.to_string(),
            if r.delay0_met { "y" } else { "N" }.to_string(),
            r.anydelay_bits.to_string(),
            if r.anydelay_met { "y" } else { "N" }.to_string(),
            f(r.yard_small),
            f(r.yard_log_n),
        ]);
    }
    t.note("paper: delay-0 memory tracks log ℓ + log log n; arbitrary-delay memory tracks log n (Thm 3.1 makes log n necessary)");
    t.note("shape check: as n doubles repeatedly, the any-delay column climbs steadily, the delay-0 column crawls");
    t
}
