//! Persistent on-disk form of the two process-wide caches — the
//! trajectory store behind the trace-replay executor (`trace_cache`)
//! and the solo-lasso store behind the exact
//! decider (`solo_cache`) — so a resumed or repeated sweep warms
//! up from disk instead of re-stepping agents (`experiments --store DIR`).
//!
//! **Format.** One file per store (`trace.store` / `solo.store`), built
//! from the shared [`crate::wire`] frames (`len | crc32 | body`). The
//! first record is a magic + version header; every other record is a key
//! (family name, variant name, `n`, tree seed, start node) followed by
//! the entry's own versioned wire form ([`Trajectory::to_bytes`] /
//! [`SoloLasso::to_bytes`]). Snapshots are written in canonical key order
//! through [`wire::atomic_write`], so equal contents give byte-identical
//! files and a kill mid-flush leaves the previous store intact.
//!
//! **Degrade, never lie.** Loading validates everything before trusting
//! anything: frame checksums, the header, key decode, the entry's
//! structural invariants (`from_bytes`), node-range checks against the
//! rebuilt tree — and then *semantic re-verification*: every restored
//! lasso is fully re-checked by independent stepping
//! ([`SoloLasso::verify_solo`], `O(stem+period)` — tabulation cost, minus
//! the decide executor's per-cell product scans it saves), and every
//! restored trajectory is spot-checked against a freshly stepped recorder
//! over its first [`SPOT_ROUNDS`] rounds (full re-stepping would cost
//! what the cache saves; beyond the spot window, trust rests on the
//! checksums, the version tags, and the agents' determinism — and row
//! claims that matter are certified and re-verified independently of any
//! cache). A record failing any check is dropped with a warning and its
//! key recomputes on demand; a valid store never changes a single row,
//! a corrupt one merely stops saving work.

use crate::sweep::{Family, Variant};
use crate::{faults, solo_cache, trace_cache, wire};
use rvz_lowerbounds::decide::SoloLasso;
use rvz_sim::Trajectory;
use rvz_trees::{NodeId, Tree};
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// File names under the `--store` directory.
pub const TRACE_STORE_FILE: &str = "trace.store";
pub const SOLO_STORE_FILE: &str = "solo.store";

/// Store format version (bumped with any change to agent semantics, not
/// just the byte layout — a stored trajectory is only as true as the
/// stepper that recorded it).
pub const STORE_VERSION: u32 = 1;

const TRACE_MAGIC: &[u8] = b"rvz-trace-store";
const SOLO_MAGIC: &[u8] = b"rvz-solo-store";

/// Rounds of the fresh-stepped prefix a restored trajectory is checked
/// against at load time.
pub const SPOT_ROUNDS: u64 = 256;

/// Hard caps a loader enforces before *building* anything from a key:
/// a corrupt or hostile record must not make the loader construct a
/// million-node tree or index past an enumeration.
const MAX_LOAD_N: usize = 1 << 16;

fn header(magic: &[u8]) -> Vec<u8> {
    let mut h = magic.to_vec();
    h.extend_from_slice(&STORE_VERSION.to_le_bytes());
    h
}

fn encode_key(
    out: &mut Vec<u8>,
    family: Family,
    n: usize,
    tree_seed: u64,
    start: NodeId,
    variant: Variant,
) {
    let f = family.name().as_bytes();
    let v = variant.name().as_bytes();
    out.push(f.len() as u8);
    out.extend_from_slice(f);
    out.push(v.len() as u8);
    out.extend_from_slice(v);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&tree_seed.to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
}

/// Splits a record body into its decoded key and the entry payload.
fn decode_key(body: &[u8]) -> Option<(Family, usize, u64, NodeId, Variant, &[u8])> {
    let mut pos = 0usize;
    let mut take = |len: usize| -> Option<&[u8]> {
        let piece = body.get(pos..pos + len)?;
        pos += len;
        Some(piece)
    };
    let flen = take(1)?[0] as usize;
    let family = Family::from_name(std::str::from_utf8(take(flen)?).ok()?)?;
    let vlen = take(1)?[0] as usize;
    let variant = Variant::from_name(std::str::from_utf8(take(vlen)?).ok()?)?;
    let n = u64::from_le_bytes(take(8)?.try_into().ok()?);
    let n = usize::try_from(n).ok()?;
    let tree_seed = u64::from_le_bytes(take(8)?.try_into().ok()?);
    let start = NodeId::from_le_bytes(take(4)?.try_into().ok()?);
    Some((family, n, tree_seed, start, variant, &body[pos..]))
}

/// Serializes the in-memory trace store; returns the file bytes plus the
/// entry count.
pub fn encode_trace_store() -> (Vec<u8>, usize) {
    let entries = trace_cache::export();
    let mut out = Vec::new();
    wire::frame_record(&mut out, &header(TRACE_MAGIC));
    let mut count = 0usize;
    for (family, n, tree_seed, start, variant, payload) in &entries {
        let mut body = Vec::with_capacity(40 + payload.len());
        encode_key(&mut body, *family, *n, *tree_seed, *start, *variant);
        body.extend_from_slice(payload);
        if body.len() <= wire::MAX_RECORD_BYTES {
            wire::frame_record(&mut out, &body);
            count += 1;
        }
    }
    (out, count)
}

/// Serializes the in-memory solo store; returns the file bytes plus the
/// entry count.
pub fn encode_solo_store() -> (Vec<u8>, usize) {
    let entries = solo_cache::export();
    let mut out = Vec::new();
    wire::frame_record(&mut out, &header(SOLO_MAGIC));
    let mut count = 0usize;
    for (family, n, tree_seed, start, variant, payload) in &entries {
        let mut body = Vec::with_capacity(40 + payload.len());
        encode_key(&mut body, *family, *n, *tree_seed, *start, *variant);
        body.extend_from_slice(payload);
        if body.len() <= wire::MAX_RECORD_BYTES {
            wire::frame_record(&mut out, &body);
            count += 1;
        }
    }
    (out, count)
}

/// What one store load recovered.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Entries validated, verified, and installed.
    pub loaded: usize,
    /// Entries rejected by any validation or verification step.
    pub dropped: usize,
    /// Valid entries not installed (key already live, or store full).
    pub skipped: usize,
}

/// Builds (and memoizes per load) the tree a key names, refusing keys
/// that would panic or allocate absurdly instead of building them.
fn tree_for(
    trees: &mut HashMap<(Family, usize, u64), Option<Tree>>,
    family: Family,
    n: usize,
    tree_seed: u64,
) -> Option<&Tree> {
    trees
        .entry((family, n, tree_seed))
        .or_insert_with(|| {
            if n == 0 || n > MAX_LOAD_N {
                return None;
            }
            if family == Family::EnumFree
                && (n > crate::sweep::MAX_ENUM_SIZE
                    || tree_seed >= rvz_trees::enumerate::free_tree_count(n))
            {
                return None;
            }
            Some(family.build(n, tree_seed))
        })
        .as_ref()
}

/// The load-time spot check of a restored trajectory: re-step a fresh
/// recorder for `min(rounds, SPOT_ROUNDS)` rounds and demand identical
/// positions and memory marks throughout.
fn verify_trajectory(tree: &Tree, variant: Variant, start: NodeId, traj: &Trajectory) -> bool {
    let n = tree.num_nodes();
    if traj.start() != start || (start as usize) >= n || (traj.max_node() as usize) >= n {
        return false;
    }
    let spot = traj.rounds().min(SPOT_ROUNDS);
    let mut probe = trace_cache::VariantRecorder::rebuild(variant, start, tree);
    probe.record_to(tree, spot);
    let fresh = probe.trajectory();
    (0..=spot).all(|r| fresh.position(r) == traj.position(r))
        && (0..=spot).all(|a| fresh.bits_at(a) == traj.bits_at(a))
}

/// Parses + verifies + installs trace-store bytes. Never panics on
/// corrupt input; every reject is counted (and the file-level caller
/// reports them).
pub fn load_trace_store_bytes(bytes: &[u8]) -> LoadStats {
    let (records, clean) = wire::read_records(bytes);
    let mut stats = LoadStats::default();
    if records.first().map(|r| *r != header(TRACE_MAGIC)).unwrap_or(true) {
        // Wrong magic or version: a whole-file reject, not a prefix.
        stats.dropped = records.len().max(1);
        return stats;
    }
    if !clean {
        stats.dropped += 1;
    }
    let mut trees: HashMap<(Family, usize, u64), Option<Tree>> = HashMap::new();
    for body in &records[1..] {
        let Some((family, n, tree_seed, start, variant, payload)) = decode_key(body) else {
            stats.dropped += 1;
            continue;
        };
        let Ok(traj) = Trajectory::from_bytes(payload) else {
            stats.dropped += 1;
            continue;
        };
        let Some(tree) = tree_for(&mut trees, family, n, tree_seed) else {
            stats.dropped += 1;
            continue;
        };
        if !verify_trajectory(tree, variant, start, &traj) {
            stats.dropped += 1;
            continue;
        }
        if trace_cache::install_restored(family, n, tree_seed, start, variant, traj) {
            stats.loaded += 1;
        } else {
            stats.skipped += 1;
        }
    }
    stats
}

/// Parses + verifies + installs solo-store bytes. Every restored lasso is
/// *fully* re-verified by independent stepping before installation.
pub fn load_solo_store_bytes(bytes: &[u8]) -> LoadStats {
    let (records, clean) = wire::read_records(bytes);
    let mut stats = LoadStats::default();
    if records.first().map(|r| *r != header(SOLO_MAGIC)).unwrap_or(true) {
        stats.dropped = records.len().max(1);
        return stats;
    }
    if !clean {
        stats.dropped += 1;
    }
    let mut trees: HashMap<(Family, usize, u64), Option<Tree>> = HashMap::new();
    for body in &records[1..] {
        let Some((family, n, tree_seed, start, variant, payload)) = decode_key(body) else {
            stats.dropped += 1;
            continue;
        };
        // Only the automaton variant has an exported configuration space.
        if variant != Variant::BasicWalkFsa {
            stats.dropped += 1;
            continue;
        }
        let Ok(lasso) = SoloLasso::from_bytes(payload) else {
            stats.dropped += 1;
            continue;
        };
        let Some(tree) = tree_for(&mut trees, family, n, tree_seed) else {
            stats.dropped += 1;
            continue;
        };
        let fsa = rvz_agent::Fsa::basic_walk(tree.max_degree().max(1));
        if lasso.position(0) != start || !lasso.verify_solo(tree, &fsa) {
            stats.dropped += 1;
            continue;
        }
        if solo_cache::install_restored(family, n, tree_seed, start, variant, lasso) {
            stats.loaded += 1;
        } else {
            stats.skipped += 1;
        }
    }
    stats
}

/// Reads a store file with the `cache-load` fail point applied (the
/// fault-injection harness corrupts, truncates, aborts, or errors here).
fn read_store_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    match faults::check(faults::Site::CacheLoad) {
        None => {}
        Some(faults::Action::Abort) => std::process::abort(),
        Some(faults::Action::BitFlip) => {
            let mid = bytes.len() / 2;
            if let Some(b) = bytes.get_mut(mid) {
                *b ^= 0x10;
            }
        }
        Some(faults::Action::ShortWrite) => {
            let half = bytes.len() / 2;
            bytes.truncate(half);
        }
        Some(faults::Action::Enospc) => {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected read error (rvz-faults)",
            ));
        }
    }
    Ok(bytes)
}

fn load_one(path: &Path, load: fn(&[u8]) -> LoadStats, what: &str) -> LoadStats {
    match read_store_file(path) {
        Ok(bytes) => {
            let stats = load(&bytes);
            if stats.dropped > 0 {
                eprintln!(
                    "warning: {}: dropped {} corrupt/unverifiable {what} record(s); \
                     {} loaded — dropped entries will be recomputed on demand",
                    path.display(),
                    stats.dropped,
                    stats.loaded
                );
            }
            stats
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => LoadStats::default(),
        Err(e) => {
            eprintln!(
                "warning: cannot read {} ({e}); continuing with a cold {what} store",
                path.display()
            );
            LoadStats::default()
        }
    }
}

/// Loads both stores from `DIR` (missing files are simply cold starts;
/// unreadable or corrupt ones degrade with a warning, never an error).
pub fn load_all(dir: &Path) -> (LoadStats, LoadStats) {
    (
        load_one(&dir.join(TRACE_STORE_FILE), load_trace_store_bytes, "trajectory"),
        load_one(&dir.join(SOLO_STORE_FILE), load_solo_store_bytes, "lasso"),
    )
}

fn write_store(path: &Path, mut bytes: Vec<u8>) -> io::Result<()> {
    match faults::mangle_write(faults::Site::StoreFlush, &mut bytes)? {
        faults::WriteFate::Full => wire::atomic_write(path, &bytes),
        faults::WriteFate::Short(k) => {
            // The injected torn flush deliberately bypasses the atomic
            // path: it writes a ragged prefix under the real name — the
            // legacy failure the clean-prefix loader must absorb.
            std::fs::write(path, &bytes[..k])?;
            faults::finish_short_write()
        }
    }
}

/// Flushes both in-memory stores to `DIR` atomically; returns the entry
/// counts `(trace, solo)`.
pub fn save_all(dir: &Path) -> io::Result<(usize, usize)> {
    std::fs::create_dir_all(dir)?;
    let (trace_bytes, trace_count) = encode_trace_store();
    write_store(&dir.join(TRACE_STORE_FILE), trace_bytes)?;
    let (solo_bytes, solo_count) = encode_solo_store();
    write_store(&dir.join(SOLO_STORE_FILE), solo_bytes)?;
    Ok((trace_count, solo_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{self, Delay, Executor, SweepSpec};

    /// Runs a tiny sweep so both stores hold entries keyed by `seed`.
    fn warm_stores(seed: u64) -> sweep::SweepReport {
        let spec = SweepSpec {
            experiment: "stores-test".into(),
            families: vec![sweep::Family::Line, sweep::Family::Spider3],
            sizes: vec![6, 7],
            delays: vec![Delay::Zero, Delay::Fixed(2)],
            variants: vec![sweep::Variant::BasicWalkFsa],
            pairs_per_cell: 2,
            seed,
            threads: 1,
            executor: Executor::ExactDecide,
            agents: 2,
        };
        sweep::run(&spec)
    }

    #[test]
    fn stores_round_trip_and_survive_any_corruption() {
        let report = warm_stores(0xC0FFEE);
        assert!(!report.rows.is_empty());
        let (trace_bytes, trace_count) = encode_trace_store();
        let (solo_bytes, solo_count) = encode_solo_store();
        assert!(solo_count > 0, "the decide executor must have tabulated lassos");

        // A clean load re-validates everything; entries are skipped (the
        // live store already holds those keys) or loaded, never dropped.
        let stats = load_solo_store_bytes(&solo_bytes);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.loaded + stats.skipped, solo_count);
        let stats = load_trace_store_bytes(&trace_bytes);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.loaded + stats.skipped, trace_count);

        // Truncation at every byte: never a panic, never more entries than
        // written, and what does load passed the same verification. Both
        // sweeps fuzz a bounded *prefix* of the encoding: the stores are
        // process-wide, so under the full `cargo test` run they hold every
        // other test's trajectories and an unstrided sweep is quadratic in
        // the file size (each load re-parses up to its cut — unbounded, it
        // once pinned the debug suite for 20+ minutes). The header and the
        // first records are where every framing decision lives, and a
        // solo run (small store) still covers the whole file.
        const FUZZ_CAP: usize = 1 << 14;
        for bytes in [&trace_bytes, &solo_bytes] {
            let load = if std::ptr::eq(bytes, &trace_bytes) {
                load_trace_store_bytes as fn(&[u8]) -> LoadStats
            } else {
                load_solo_store_bytes
            };
            let cap = bytes.len().min(FUZZ_CAP);
            for cut in (0..cap).step_by(7) {
                let stats = load(&bytes[..cut]);
                assert!(stats.loaded + stats.skipped <= trace_count.max(solo_count));
            }
            // Single-bit flips across the capped prefix (stride keeps the
            // test fast): a flip either hits a checksum (record dropped)
            // or the header (file dropped) — never a wrong entry.
            for bit in (0..cap * 8).step_by(41) {
                let mut bad = bytes[..cap].to_vec();
                bad[bit / 8] ^= 1 << (bit % 8);
                let _ = load(&bad);
            }
        }
    }

    #[test]
    fn save_all_writes_loadable_files() {
        let _ = warm_stores(0xBEEF);
        let dir = std::env::temp_dir().join(format!("rvz-stores-test-{}", std::process::id()));
        let (trace_count, solo_count) = save_all(&dir).expect("save");
        let (trace_stats, solo_stats) = load_all(&dir);
        assert_eq!(trace_stats.dropped, 0);
        assert_eq!(solo_stats.dropped, 0);
        assert_eq!(trace_stats.loaded + trace_stats.skipped, trace_count);
        assert_eq!(solo_stats.loaded + solo_stats.skipped, solo_count);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
