//! The per-cell cost-model planner behind [`Executor::Auto`].
//!
//! The three fixed executors have wildly different profiles — replay is
//! ~146x on long procedural runs but only ~1.8x on short scans, the
//! decider is budget-free but pays a configuration-graph traversal, plain
//! stepping pays dyn dispatch per round — yet `--executor` picks one
//! globally. The planner instead prices every cell under a deterministic
//! cost model and routes it to the cheapest path, including a fourth path
//! the fixed executors don't have: the batched structure-of-arrays
//! stepping kernel ([`rvz_sim::batch`]), which fuses all same-instance
//! `bw-fsa` cells into one wide kernel call.
//!
//! **Everything here is a pure function of the spec and the cell
//! coordinates.** The model's features are observable before running the
//! cell — decision-budget size, variant class (bw-fsa vs procedural),
//! schedule shape, instance size `n`, the decide-cost hook
//! [`rvz_lowerbounds::decide::decide_cost_bound`], and *predicted*
//! trace-store warmth (the position of the cell's delay class in the
//! spec's axis — never the live cache state, which depends on execution
//! order). That is what keeps rows — `planned` annotation included —
//! byte-identical across `--threads`, `--workers`, and resume.
//!
//! ## Cost model
//!
//! Costs are in *work units* — agent activations, the currency every
//! route shares. For a θ cell with round budget `B`, a bounded run
//! activates the pair at most `acts = B + (B − θ)` times; a genuinely
//! scheduled cell at most `acts = 2B`. On top of that:
//!
//! | route | predicted cost | available |
//! |---|---|---|
//! | batch | `acts` (no dispatch, shared tables) | bw-fsa, non-adversarial |
//! | decide | [`decide_cost_bound`]`(fsa, n, cycle)` | bw-fsa |
//! | replay | `acts` warm, `3·acts` cold (recording ≈ `2·acts`) | all |
//! | stepping | `4·acts` (per-round dyn dispatch) | all |
//!
//! Ties break in that order (batch first): on equal predicted cost the
//! route with the better constant factor wins. Adversarial-delay cells
//! are always routed to the decider — no other route can answer the
//! universal quantifier. Procedural variants choose between replay and
//! stepping only (no exported FSA tables).
//!
//! Ensemble cells (`--agents k` with `k > 2`) drop the batch route — the
//! SoA kernel is a pair kernel — and re-price the survivors with k-lane
//! activation counts and [`ensemble_decide_cost_bound`] (the
//! `choose_ensemble` branch of the chooser).

use crate::sweep::{
    self, basic_walk_budget_for, budget_and_provisioned, budget_for, fnv, make_row, mix,
    prime_budget_for, schedule_budget_for, Cell, CellMode, Certificate, Delay, Executor, Planned,
    ScheduleSpec, SweepInstance, SweepRow, SweepSpec, Variant,
};
use rvz_lowerbounds::decide::{decide_cost_bound, ensemble_decide_cost_bound};
use rvz_sim::{run_batch_fsa, run_batch_fsa_scheduled, BatchLane};
use std::sync::Arc;

/// Per-round cost factor of the dyn-dispatch stepping path relative to a
/// batch-kernel lane.
const STEPPING_FACTOR: u64 = 4;

/// Cost of recording one activation into the trace store, relative to
/// replaying it (a cold replay cell records both solo trajectories first).
const RECORD_FACTOR: u64 = 2;

/// The cost-model planner: a pure function of the spec's delay axis (the
/// only spec field the model needs — warmth prediction and batch-group
/// membership both walk it). [`run_with_options`](sweep::run_with_options)
/// builds one per run; distributed workers build their own from the same
/// spec and price cells identically.
#[derive(Debug, Clone)]
pub struct Planner {
    delays: Vec<Delay>,
}

/// Where the planner sends a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// The batched SoA kernel, as a member of this lane group.
    Batch(BatchGroup),
    /// [`sweep::run_cell_replay`] — trace-store timeline merge.
    Replay,
    /// [`sweep::run_cell_on`] — per-cell dyn stepping.
    Stepping,
    /// [`sweep::run_cell_decide_certified`] — exact, budget-free.
    Decide,
}

/// The lane group a batch-routed cell belongs to. Group membership is a
/// pure function of `(spec.delays, instance)`, so every member cell
/// reconstructs the identical group — and the identical memo key — and
/// the kernel runs once per `(instance, group)` per process (the
/// process-wide lane store in `batch_cache`, the kernel's sibling of the
/// trajectory store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchGroup {
    /// All θ-shaped, batch-routed delay classes of the spec's axis at this
    /// instance, in axis order: one lane per (θ, pair). `my_theta` indexes
    /// this cell's θ within `thetas`.
    Theta { thetas: Vec<u64>, my_theta: usize },
    /// One genuinely scheduled delay class: one lane per pair, all under
    /// the spec's resolved schedule.
    Scheduled(ScheduleSpec),
}

/// A priced routing decision, as [`run_cell_auto`] consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    pub route: Route,
    /// The `planned.choice` label: `"batch"` / `"replay"` / `"stepping"`
    /// / `"decide"`.
    pub name: &'static str,
    /// Model-predicted cost in work units (`planned.predicted`).
    pub predicted: u64,
    /// Predicted trace-store warmth the replay price assumed — kept so
    /// `planned.actual` re-prices the outcome under the same assumption.
    pub warm: bool,
}

impl Planner {
    /// Builds the planner for a spec. Pure in the spec: two calls with
    /// equal specs price every cell identically, whatever process or
    /// thread they run on.
    pub fn from_spec(spec: &SweepSpec) -> Planner {
        Planner { delays: spec.delays.clone() }
    }

    /// Predicted trace-store warmth: the store keys trajectories by
    /// `(family, n, start, variant)` — no delay axis — so every delay
    /// class after the variant's first reuses the first class's
    /// recordings. Conservative (pair-endpoint sharing *within* the first
    /// class is ignored), but a pure function of the spec where the live
    /// hit state is not.
    fn warm_for(&self, cell: &Cell) -> bool {
        self.delays
            .iter()
            .copied()
            .filter(|&d| cell.variant.supports(cell.family, d))
            .position(|d| d == cell.delay)
            .is_some_and(|index| index > 0)
    }

    /// Prices every route available to `cell` and returns the cheapest
    /// (ties break toward the route listed first in the module table).
    pub fn choose(&self, cell: &Cell, inst: &SweepInstance) -> Choice {
        let n = inst.tree.num_nodes();
        if cell.delay == Delay::Adversarial {
            // Only the quantifier layer can answer "every delay"; the
            // bound prices one delay class of its configuration graph.
            let predicted = decide_cost_bound(inst.basic_walk_fsa(), n, 1);
            return Choice { route: Route::Decide, name: "decide", predicted, warm: false };
        }
        let warm = self.warm_for(cell);
        if cell.agents > 2 {
            return choose_ensemble(cell, inst, n, warm);
        }
        match cell.variant {
            Variant::BasicWalkFsa => self.choose_bw(cell, inst, n, warm),
            _ => choose_procedural(cell, n, warm),
        }
    }

    /// Routing for the automaton variant: all four routes compete.
    fn choose_bw(&self, cell: &Cell, inst: &SweepInstance, n: usize, warm: bool) -> Choice {
        let fsa = inst.basic_walk_fsa();
        let (acts, decide, group) = match cell.mode(n) {
            CellMode::Delay(theta) => {
                let acts = theta_acts(n, theta);
                let decide = decide_cost_bound(fsa, n, 1);
                (acts, decide, None)
            }
            CellMode::Scheduled(spec) => {
                let sched = spec.resolve(n);
                let acts = schedule_budget_for(n, &sched).saturating_mul(2);
                let decide = decide_cost_bound(fsa, n, sched.cycle_len());
                (acts, decide, Some(spec))
            }
        };
        let replay = replay_cost(acts, warm);
        let stepping = acts.saturating_mul(STEPPING_FACTOR);
        // First strict minimum in table order: batch, decide, replay,
        // stepping. `acts ≤ replay` and `acts ≤ stepping` always hold, so
        // batch wins exactly when it beats (or ties) the decide bound.
        if acts <= decide {
            let batch = match group {
                Some(spec) => BatchGroup::Scheduled(spec),
                None => self.theta_group(cell, inst, n),
            };
            Choice { route: Route::Batch(batch), name: "batch", predicted: acts, warm }
        } else if decide <= replay && decide <= stepping {
            Choice { route: Route::Decide, name: "decide", predicted: decide, warm }
        } else if replay <= stepping {
            Choice { route: Route::Replay, name: "replay", predicted: replay, warm }
        } else {
            Choice { route: Route::Stepping, name: "stepping", predicted: stepping, warm }
        }
    }

    /// The θ lane group at this instance: every delay class of the axis
    /// that is θ-shaped and itself batch-routed here (`acts ≤ decide
    /// bound` — the same predicate [`Planner::choose_bw`] applies), in
    /// axis order. The calling cell's delay is θ-shaped and batch-routed
    /// by precondition, so it is always a member.
    fn theta_group(&self, cell: &Cell, inst: &SweepInstance, n: usize) -> BatchGroup {
        let decide = decide_cost_bound(inst.basic_walk_fsa(), n, 1);
        let mut thetas = Vec::new();
        let mut my_theta = None;
        for &d in &self.delays {
            let Some(theta) = theta_shape(d, n) else { continue };
            if theta_acts(n, theta) > decide {
                continue;
            }
            if my_theta.is_none() && d == cell.delay {
                my_theta = Some(thetas.len());
            }
            thetas.push(theta);
        }
        let my_theta = my_theta.expect("the calling cell's delay is in its own group");
        BatchGroup::Theta { thetas, my_theta }
    }
}

/// Routing for `k > 2` ensemble cells. The batch kernel is a pair kernel
/// (two SoA lanes per [`BatchLane`]), so the batch route is off the table;
/// the remaining three compete under the k-lane generalization of the
/// pair prices. A bounded k-lane run activates at most `k·B − θ` lanes
/// within its round budget `B` (every lane runs every round except the
/// θ-delayed last lane; genuinely scheduled cells price the all-active
/// worst case `k·B`), and the decide price is the honest
/// [`ensemble_decide_cost_bound`] — `cycle · (|C|+1)^(k−1)` — which grows
/// a factor of `(|C|+1)` per extra lane, exactly the product-construction
/// cost the joint walk pays. At `k = 2` these formulas reduce to the pair
/// model, but this path is never taken there: the pair model keeps its
/// batch route.
fn choose_ensemble(cell: &Cell, inst: &SweepInstance, n: usize, warm: bool) -> Choice {
    let k = cell.agents as u64;
    let (budget, theta, cycle) = match cell.mode(n) {
        CellMode::Delay(theta) => {
            let budget = match cell.variant {
                Variant::BasicWalkFsa => basic_walk_budget_for(n, theta),
                Variant::PrimePath => prime_budget_for(n),
                _ => budget_for(n),
            };
            (budget, theta, 1)
        }
        CellMode::Scheduled(spec) => {
            let esched = spec.resolve_ensemble(n, cell.agents);
            let budget = match cell.variant {
                Variant::BasicWalkFsa => esched.prefix_len().saturating_add(
                    esched.cycle_len().saturating_mul(sweep::basic_walk_two_periods(n)),
                ),
                Variant::PrimePath => prime_budget_for(n),
                _ => budget_for(n),
            };
            (budget, 0, esched.cycle_len().max(1))
        }
    };
    let acts = budget.saturating_mul(k).saturating_sub(theta);
    let replay = replay_cost(acts, warm);
    let stepping = acts.saturating_mul(STEPPING_FACTOR);
    if cell.variant == Variant::BasicWalkFsa {
        let decide = ensemble_decide_cost_bound(inst.basic_walk_fsa(), n, cell.agents, cycle);
        if decide <= replay && decide <= stepping {
            return Choice { route: Route::Decide, name: "decide", predicted: decide, warm };
        }
    }
    if replay <= stepping {
        Choice { route: Route::Replay, name: "replay", predicted: replay, warm }
    } else {
        Choice { route: Route::Stepping, name: "stepping", predicted: stepping, warm }
    }
}

/// Routing for the procedural variants: no exported FSA tables, so only
/// replay and stepping compete — and `replay ≤ 3·acts < 4·acts =
/// stepping` under this model, matching the measured reality (replay wins
/// even cold; the flag exists so the model stays honest if the constants
/// ever move).
///
/// Pricing reads the round budget directly rather than going through
/// `budget_and_provisioned`: the provisioned-bits half prices primes
/// (`nth_prime` over §4.1-sized bounds — microseconds), which the routed
/// executor already pays once while assembling the row, and paying it
/// twice per cell is exactly the kind of overhead the 0.95× bench floor
/// exists to catch.
fn choose_procedural(cell: &Cell, n: usize, warm: bool) -> Choice {
    let budget = match cell.variant {
        Variant::PrimePath => prime_budget_for(n),
        _ => budget_for(n),
    };
    let acts = match cell.mode(n) {
        CellMode::Delay(theta) => budget.saturating_add(budget.saturating_sub(theta)),
        CellMode::Scheduled(_) => budget.saturating_mul(2),
    };
    let replay = replay_cost(acts, warm);
    let stepping = acts.saturating_mul(STEPPING_FACTOR);
    if replay <= stepping {
        Choice { route: Route::Replay, name: "replay", predicted: replay, warm }
    } else {
        Choice { route: Route::Stepping, name: "stepping", predicted: stepping, warm }
    }
}

/// `Some(θ)` when the delay runs on the θ-indexed executors at size `n` —
/// the per-delay form of [`Cell::mode`].
fn theta_shape(delay: Delay, n: usize) -> Option<u64> {
    match delay {
        Delay::Adversarial => None,
        Delay::Schedule(spec) => spec.as_start_delay(),
        d => Some(d.resolve(n)),
    }
}

/// Activation count of a bounded θ run at its full budget:
/// `B + (B − θ)` with `B = basic_walk_budget_for(n, θ)`, saturating.
fn theta_acts(n: usize, theta: u64) -> u64 {
    let budget = basic_walk_budget_for(n, theta);
    budget.saturating_add(budget.saturating_sub(theta))
}

/// The replay price: the merge walks the timelines (≈ `acts`), and a cold
/// key first records both solo trajectories (≈ [`RECORD_FACTOR`]` · acts`).
fn replay_cost(acts: u64, warm: bool) -> u64 {
    if warm {
        acts
    } else {
        acts.saturating_add(acts.saturating_mul(RECORD_FACTOR))
    }
}

/// Executes one batch-routed cell: runs (or joins) the group's one kernel
/// call via the process-wide [`crate::batch_cache`] and reads this cell's
/// lane. Lane order is (group θ index) × (pair index) — pure grid
/// coordinates, so every member reads the same vector at a disjoint slot.
/// Rows are byte-identical to [`sweep::run_cell_on`]'s (the kernel is
/// pinned lane-by-lane against `run_pair_fsa` in `rvz_sim::batch`).
fn run_cell_batch(cell: &Cell, inst: &SweepInstance, group: &BatchGroup) -> Option<SweepRow> {
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let &starts = inst.pairs.get(cell.pair_index)?;
    let fsa = inst.basic_walk_fsa();
    let pair_count = inst.pairs.len();
    // The store is process-wide, so the group key carries the full
    // instance identity ahead of the group fingerprint — two sweeps only
    // share lanes when they would compute the identical lanes.
    let identity = mix(
        fnv(cell.family.name()),
        &[n as u64, inst.tree_seed, inst.pairs_seed, pair_count as u64],
    );
    match group {
        BatchGroup::Theta { thetas, my_theta } => {
            let key = mix(mix(fnv("batch-theta"), &[identity]), thetas);
            let slot = crate::batch_cache::outcomes(key, || {
                let mut lanes = Vec::with_capacity(thetas.len().saturating_mul(pair_count));
                for &theta in thetas {
                    let budget = basic_walk_budget_for(n, theta);
                    for &(a, b) in &inst.pairs {
                        lanes.push(BatchLane { start_a: a, start_b: b, delay: theta, budget });
                    }
                }
                run_batch_fsa(tree, fsa, &lanes)
            });
            let outcome = slot.get().expect("kernel ran")[my_theta * pair_count + cell.pair_index];
            let theta = thetas[*my_theta];
            let (budget, provisioned) = budget_and_provisioned(cell, inst, n, leaves, theta, None);
            Some(make_row(
                cell,
                inst,
                n,
                leaves,
                (theta, None),
                (outcome.met, outcome.round, outcome.crossings),
                budget,
                provisioned,
                fsa.memory_bits(),
                starts,
                false,
            ))
        }
        BatchGroup::Scheduled(spec) => {
            let sched = spec.resolve(n);
            let key = mix(fnv("batch-sched"), &[identity, cell.delay.code()]);
            let slot = crate::batch_cache::outcomes(key, || {
                let budget = schedule_budget_for(n, &sched);
                let lanes: Vec<BatchLane> = inst
                    .pairs
                    .iter()
                    .map(|&(a, b)| BatchLane { start_a: a, start_b: b, delay: 0, budget })
                    .collect();
                run_batch_fsa_scheduled(tree, fsa, &sched, &lanes)
            });
            let outcome = slot.get().expect("kernel ran")[cell.pair_index];
            let (budget, provisioned) =
                budget_and_provisioned(cell, inst, n, leaves, 0, Some(&sched));
            Some(make_row(
                cell,
                inst,
                n,
                leaves,
                (0, Some(spec.label(n))),
                (outcome.met, outcome.round, outcome.crossings),
                budget,
                provisioned,
                fsa.memory_bits(),
                starts,
                false,
            ))
        }
    }
}

/// The `planned` annotation: the choice, its prediction, and the outcome
/// re-priced under the same model — `actual` substitutes the run's true
/// end round for the budget, everything else (dispatch factors, the
/// *predicted* warmth) held fixed, so the field is a pure function of the
/// row and the spec rather than a wall-clock measurement.
fn annotate(choice: &Choice, row: &SweepRow) -> Planned {
    let end = row.rounds.unwrap_or(row.budget);
    // `k − 1` undelayed lanes run every round; the delayed last lane
    // contributes `end − θ`. At the pair default (`agents` absent) this is
    // the original `end + (end − θ)` byte for byte.
    let k = row.agents.unwrap_or(2) as u64;
    let acts = if row.schedule.is_some() {
        end.saturating_mul(k)
    } else {
        end.saturating_mul(k.saturating_sub(1)).saturating_add(end.saturating_sub(row.delay))
    };
    let actual = match choice.route {
        Route::Batch(_) => acts,
        Route::Replay => replay_cost(acts, choice.warm),
        Route::Stepping => acts.saturating_mul(STEPPING_FACTOR),
        // The decider's work is the graph traversal, not the meeting
        // round; its bound is the honest per-cell price either way.
        Route::Decide => choice.predicted,
    };
    Planned { choice: choice.name.to_string(), predicted: choice.predicted, actual }
}

/// Executes one cell under [`Executor::Auto`]: price, route, run, and
/// stamp the [`Planned`] annotation. The row is byte-identical to the
/// routed fixed executor's plus the annotation (decide-routed cells also
/// carry `certified: true`, exactly as under `--executor decide`).
pub fn run_cell_auto(
    cell: &Cell,
    inst: &SweepInstance,
    planner: &Planner,
) -> (Option<SweepRow>, Option<Certificate>) {
    let choice = planner.choose(cell, inst);
    let (mut row, cert) = match &choice.route {
        Route::Batch(group) => (run_cell_batch(cell, inst, group), None),
        Route::Replay => (sweep::run_cell_replay(cell, inst), None),
        Route::Stepping => (sweep::run_cell_on(cell, inst), None),
        Route::Decide => match sweep::run_cell_decide_certified(cell, inst) {
            Some((row, cert)) => (Some(row), cert),
            None => (None, None),
        },
    };
    if let Some(row) = &mut row {
        row.planned = Some(annotate(&choice, row));
    }
    (row, cert)
}

/// [`run_cell_auto`] under the per-attempt watchdog: the choice maps to
/// the matching fixed executor (batch → stepping — the downgrade ladder
/// is defined over the fixed executors, and the two are row-identical)
/// and the cell runs down [`sweep`]'s ordinary retry chain. Quarantined
/// `timed_out` rows record *no run*, so they carry no annotation; the
/// annotation otherwise records the plan — the watchdog path is already
/// documented as not producing reference outputs.
pub fn run_cell_auto_watchdogged(
    cell: &Cell,
    inst: &Arc<SweepInstance>,
    planner: &Planner,
    timeout: std::time::Duration,
) -> (Option<SweepRow>, Option<Certificate>) {
    let choice = planner.choose(cell, inst);
    let fixed = match choice.route {
        Route::Decide => Executor::ExactDecide,
        Route::Replay => Executor::TraceReplay,
        Route::Stepping | Route::Batch(_) => Executor::DynStepping,
    };
    let (mut row, cert) = sweep::run_cell_watchdogged(cell, inst, fixed, timeout);
    if let Some(row) = &mut row {
        if row.timed_out.is_none() {
            row.planned = Some(annotate(&choice, row));
        }
    }
    (row, cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Family;

    fn spec(delays: Vec<Delay>, variants: Vec<Variant>) -> SweepSpec {
        SweepSpec {
            experiment: "planner-test".into(),
            families: vec![Family::Random],
            sizes: vec![8],
            delays,
            variants,
            pairs_per_cell: 2,
            seed: 11,
            threads: 1,
            executor: Executor::Auto,
            agents: 2,
        }
    }

    fn first_cell(s: &SweepSpec) -> (Cell, SweepInstance) {
        let grid = sweep::cells(s);
        let cell = grid[0].clone();
        let inst = SweepInstance::for_cell(&cell);
        (cell, inst)
    }

    #[test]
    fn small_theta_bw_cells_route_to_the_batch_kernel() {
        let s = spec(vec![Delay::Zero, Delay::Fixed(3)], vec![Variant::BasicWalkFsa]);
        let planner = Planner::from_spec(&s);
        let (cell, inst) = first_cell(&s);
        let choice = planner.choose(&cell, &inst);
        assert_eq!(choice.name, "batch");
        // Both axis classes are θ-shaped and batch-routed, so the group
        // fuses them in axis order and this (first) cell indexes θ = 0.
        match choice.route {
            Route::Batch(BatchGroup::Theta { ref thetas, my_theta }) => {
                assert_eq!(thetas, &[0, 3]);
                assert_eq!(my_theta, 0);
            }
            ref other => panic!("expected a θ batch group, got {other:?}"),
        }
        assert_eq!(choice.predicted, theta_acts(inst.tree.num_nodes(), 0));
    }

    #[test]
    fn astronomical_theta_routes_to_the_budget_free_decider() {
        // acts ≈ 2θ while the decide bound is θ-independent, so a large
        // enough fixed delay must flip the routing.
        let s = spec(vec![Delay::Fixed(u64::MAX / 4)], vec![Variant::BasicWalkFsa]);
        let planner = Planner::from_spec(&s);
        let (cell, inst) = first_cell(&s);
        let choice = planner.choose(&cell, &inst);
        assert_eq!(choice.name, "decide");
        assert_eq!(choice.route, Route::Decide);
    }

    #[test]
    fn procedural_cells_route_to_replay_and_predict_warmth_from_the_axis() {
        let s = spec(vec![Delay::Zero, Delay::Fixed(3)], vec![Variant::DelayRobust]);
        let planner = Planner::from_spec(&s);
        let grid = sweep::cells(&s);
        let inst = SweepInstance::for_cell(&grid[0]);
        let cold = grid.iter().find(|c| c.delay == Delay::Zero).unwrap();
        let warm = grid.iter().find(|c| c.delay == Delay::Fixed(3)).unwrap();
        let (cold, warm) = (planner.choose(cold, &inst), planner.choose(warm, &inst));
        assert_eq!((cold.name, cold.warm), ("replay", false));
        assert_eq!((warm.name, warm.warm), ("replay", true));
        assert!(warm.predicted < cold.predicted, "warm keys skip the recording price");
    }

    #[test]
    fn adversarial_cells_are_forced_onto_the_decider() {
        let s = spec(vec![Delay::Adversarial], vec![Variant::BasicWalkFsa]);
        let planner = Planner::from_spec(&s);
        let (cell, inst) = first_cell(&s);
        let choice = planner.choose(&cell, &inst);
        assert_eq!(choice.route, Route::Decide);
        assert_eq!(
            choice.predicted,
            decide_cost_bound(inst.basic_walk_fsa(), inst.tree.num_nodes(), 1)
        );
    }

    #[test]
    fn choices_are_pure_functions_of_spec_and_coordinates() {
        let s = spec(
            vec![Delay::Zero, Delay::Schedule(ScheduleSpec::Intermittent { period: 2, phase: 0 })],
            vec![Variant::BasicWalkFsa, Variant::DelayRobust],
        );
        let grid = sweep::cells(&s);
        for cell in &grid {
            let inst = SweepInstance::for_cell(cell);
            let a = Planner::from_spec(&s).choose(cell, &inst);
            let b = Planner::from_spec(&s).choose(cell, &SweepInstance::for_cell(cell));
            assert_eq!(a, b, "two planners priced {cell:?} differently");
        }
    }
}
