//! E11 — three-agent gathering under crash faults, exhaustively
//! certified.
//!
//! E10 ends on a reassuring note: crashing one of the two agents
//! mid-run *rescues* rendezvous, because the survivor's Euler tour
//! covers the tree and walks over the parked crash site — the crash
//! column meets on every feasible pair. E11 asks whether that rescue is
//! an artifact of the pair setting, by rerunning the same adversary
//! against *gathering*: `k = 3` identical basic-walk copies
//! ([`crate::sweep::SweepSpec::agents`]) that must all stand on one
//! node **in the same round**. For each size `n ≤ 7` it takes all free
//! trees ([`crate::sweep::Family::EnumFree`]), all ordered feasible
//! start triples ([`crate::instances::exhaustive_feasible_tuples`]),
//! and decides three schedule columns: simultaneous start, `θ = 1` on
//! the last lane, and a crash of the last lane after `⌈n/2⌉` rounds.
//!
//! Under the decide executor (the default) every verdict comes from the
//! k-lane product construction
//! ([`rvz_lowerbounds::decide::decide_ensemble`]), so `met == false` is
//! always a certified never-gathers with a verified ensemble lasso,
//! never a budget timeout — and the headline is the inversion of e10's:
//! the crashed copy parks, the two survivors' tours sweep over it at
//! *different* rounds, and for most triples there is **no** round where
//! both survivors sit on the crash site together. The crash rescue does
//! not survive gathering.

use crate::sweep::SweepReport;
use crate::table::Table;
use serde::Serialize;

/// Per-(size, schedule) aggregate of an E11 report — the gathering
/// sibling of [`crate::e10::ScheduleSummary`], counting ordered start
/// triples instead of pairs.
#[derive(Debug, Clone, Serialize)]
pub struct GatheringSummary {
    /// Instance size `n`.
    pub n: usize,
    /// Schedule label (legacy start scenarios reconstructed from the
    /// `delay` field: `"simultaneous"` / `"start-delay(θ)"`).
    pub schedule: String,
    /// Ordered feasible start triples decided under this schedule.
    pub triples: u64,
    /// Triples whose three copies gather (co-locate in one round).
    pub gathered: u64,
    /// Triples certified never-gathers (carrying a verified ensemble
    /// lasso under the decide executor).
    pub never: u64,
    /// Worst gathering round over the gathering triples.
    pub worst_round: u64,
    /// Cells exactly decided (all of them under the decide executor).
    pub certified: u64,
}

/// Aggregates an E11 sweep report into its per-(size, schedule) table.
/// Rows are grouped in grid order (sizes ascending, schedules in the
/// spec's column order), so the table reads like the schedule axis.
pub fn summarize(report: &SweepReport) -> (Vec<GatheringSummary>, Table) {
    let mut out: Vec<GatheringSummary> = Vec::new();
    for row in &report.rows {
        let label = crate::e10::row_schedule(row);
        let entry = match out.iter_mut().find(|s| s.n == row.size && s.schedule == label) {
            Some(entry) => entry,
            None => {
                out.push(GatheringSummary {
                    n: row.size,
                    schedule: label,
                    triples: 0,
                    gathered: 0,
                    never: 0,
                    worst_round: 0,
                    certified: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        entry.triples += 1;
        if row.met {
            entry.gathered += 1;
            entry.worst_round = entry.worst_round.max(row.rounds.unwrap_or(0));
        } else {
            entry.never += 1;
        }
        if row.certified {
            entry.certified += 1;
        }
    }
    out.sort_by_key(|s| s.n);
    let mut t = Table::new(
        "E11",
        "3-agent gathering: all free trees, all ordered feasible triples, basic walk",
        &["n", "schedule", "triples", "gathered", "never", "worst-round", "certified"],
    );
    for s in &out {
        t.row(vec![
            s.n.to_string(),
            s.schedule.clone(),
            s.triples.to_string(),
            s.gathered.to_string(),
            s.never.to_string(),
            s.worst_round.to_string(),
            s.certified.to_string(),
        ]);
    }
    let lassos = report.certificates.iter().filter(|c| c.lasso_stem.is_some()).count();
    let bogus = report.certificates.iter().filter(|c| c.verified == Some(false)).count();
    t.note(&format!(
        "{} never-gathers certificates ({lassos} lassos, every one re-verified by independent \
         k-lane scheduled stepping{})",
        report.certificates.len(),
        if bogus > 0 { " — VERIFICATION FAILURES PRESENT" } else { "" }
    ));
    let uncertified = report.rows.iter().filter(|r| !r.certified).count();
    if uncertified > 0 {
        t.note(&format!(
            "{uncertified} cells answered by bounded simulation, not certified — \
             run with --executor decide for certified verdicts"
        ));
    }
    (out, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{self, Executor};

    #[test]
    fn e11_certifies_that_the_crash_rescue_fails_for_gathering() {
        let mut spec = sweep::preset("e11", &[4, 5, 6], 1, 3).expect("e11 preset");
        spec.executor = Executor::ExactDecide;
        let report = sweep::run(&spec);
        let (summary, table) = summarize(&report);
        // 3 sizes × 3 schedule columns.
        assert_eq!(summary.len(), 9);
        let mut per_size: std::collections::BTreeMap<usize, Vec<&GatheringSummary>> =
            Default::default();
        for s in &summary {
            assert_eq!(s.gathered + s.never, s.triples, "n={} {}", s.n, s.schedule);
            assert_eq!(s.certified, s.triples, "decide certifies everything");
            per_size.entry(s.n).or_default().push(s);
        }
        for (n, rows) in &per_size {
            // Every schedule column covers the same triple axis.
            assert!(rows.windows(2).all(|w| w[0].triples == w[1].triples), "n={n}");
            // The headline inversion of e10: there, the crash column met
            // on EVERY pair (the survivor's Euler tour walks over the
            // parked crash site). For gathering the two survivors must
            // sit on the crash site in the SAME round, and for some
            // triples no such round exists.
            let crash = rows
                .iter()
                .find(|s| s.schedule == format!("crash-after({})", n.div_ceil(2)))
                .expect("crash column");
            assert!(
                crash.never > 0,
                "n={n}: some triple must be certified never-gathers under the crash"
            );
        }
        // Every never-gathers verdict carries a re-verified lasso.
        assert!(report.certificates.iter().all(|c| c.verified == Some(true)));
        assert!(report.certificates.iter().all(|c| c.agents == Some(3)));
        // Ensemble rows are schema v7: every row carries its width and
        // the starts beyond the leading pair.
        assert!(report.rows.iter().all(|r| r.agents == Some(3)));
        assert!(report.rows.iter().all(|r| r.start_rest.as_ref().is_some_and(|s| s.len() == 1)));
        assert!(table.render().contains("3-agent gathering"));
    }
}
