//! The parallel batch-experiment engine.
//!
//! A *sweep* fans an experiment's instance grid — tree family × size ×
//! start delay × agent variant × start pair — across threads and collects
//! one typed [`SweepRow`] per grid cell. Three properties are load-bearing:
//!
//! 1. **Deterministic per-cell seeding.** Every cell derives its seeds from
//!    the grid coordinates alone (never from execution order or thread
//!    identity), so a cell's result is a pure function of the spec.
//! 2. **Order-preserving fan-out.** Cells run under `rayon` but results are
//!    collected in grid order, so the output — including its JSON
//!    serialization — is byte-identical for any `--threads` value.
//! 3. **Reproducible rows.** Each row carries the resolved instance
//!    (family, `n`, starts, delay, budget), so any cell can be replayed
//!    with a direct [`rvz_sim::run_pair`] call; the integration smoke test
//!    does exactly that.
//! 4. **Trace-replay execution.** The paper's agents are deterministic and
//!    oblivious, so by default ([`Executor::TraceReplay`]) the executor
//!    records each `(family, n, start, variant)` trajectory once — in a
//!    process-wide store layered on the shared [`SweepInstance`]s — and
//!    answers every `(delay, pair)` cell by timeline merge
//!    (`rvz_sim::trace`), falling back to per-cell stepping
//!    ([`Executor::DynStepping`], still available behind the flag) only
//!    when a recording would exceed the cap. Both executors are
//!    byte-identical by test.
//!
//! The per-experiment presets in [`preset`] translate E1–E8 (see the
//! sibling `e1`..`e8` modules and README.md) into grids over the shared
//! instance pool of [`crate::instances`].

use crate::instances;
use crate::solo_cache;
use crate::table::Table;
use crate::trace_cache;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rvz_core::prime_path::PrimePathAgent;
use rvz_core::primes::{next_prime, primorial_index_bound};
use rvz_core::{DelayRobustAgent, TreeRendezvousAgent};
use rvz_lowerbounds::decide::{
    decide_ensemble, decide_ensemble_from_lassos, decide_from_lassos, decide_pair_scheduled,
    verify_ensemble_lasso, verify_lasso, verify_schedule_lasso, worst_case_from_lassos, Decision,
    EnsembleDecision, ScheduleDecision, SoloLasso, WorstCase,
};
use rvz_sim::trace::Replay;
use rvz_sim::{
    replay_ensemble, replay_pair, replay_pair_scheduled, run_ensemble_fsa, run_pair,
    run_pair_scheduled, EnsembleReplay, EnsembleRun, EnsembleSchedule, PairConfig, PairRun,
    Schedule,
};
use rvz_trees::symmetry::{pair_orbits, OrbitAction};
use rvz_trees::{NodeId, Tree};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Tree families the sweep can grid over (names as in
/// [`instances::FAMILY_NAMES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    Line,
    LineRnd,
    Spider3,
    Caterpillar,
    Random,
    RandomDeg3,
    CompleteBinary,
    Binomial,
    Star,
    /// *All* free trees at each size, in the canonical
    /// [`rvz_trees::enumerate`] order — the exhaustive-certification axis
    /// (`e9`). The tree axis is the enumeration index (recorded as
    /// `tree_seed`), and the pair axis is every ordered feasible pair, so
    /// a sweep over this family quantifies over the whole instance space
    /// instead of sampling it.
    EnumFree,
}

impl Family {
    pub fn name(self) -> &'static str {
        match self {
            Family::Line => "line",
            Family::LineRnd => "line-rnd",
            Family::Spider3 => "spider3",
            Family::Caterpillar => "caterpillar",
            Family::Random => "random",
            Family::RandomDeg3 => "random-deg3",
            Family::CompleteBinary => "complete-binary",
            Family::Binomial => "binomial",
            Family::Star => "star",
            Family::EnumFree => "enum-free",
        }
    }

    /// Inverse of [`Family::name`] — how the persistent stores decode
    /// their on-disk keys ([`crate::stores`]). `None` for unknown names
    /// (e.g. a store written by a future version with a new family).
    pub fn from_name(name: &str) -> Option<Family> {
        const ALL: [Family; 10] = [
            Family::Line,
            Family::LineRnd,
            Family::Spider3,
            Family::Caterpillar,
            Family::Random,
            Family::RandomDeg3,
            Family::CompleteBinary,
            Family::Binomial,
            Family::Star,
            Family::EnumFree,
        ];
        ALL.into_iter().find(|f| f.name() == name)
    }

    /// Builds this family's member at size `n` with a deterministic stream.
    /// For [`Family::EnumFree`] the "seed" is the enumeration index — the
    /// stable `(n, index)` name of the tree.
    pub fn build(self, n: usize, seed: u64) -> Tree {
        if self == Family::EnumFree {
            return rvz_trees::enumerate::nth_free_tree(n, seed);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        instances::build_family(self.name(), n, &mut rng).expect("known family")
    }

    /// `true` when members are paths (the `prime` protocol's domain).
    fn is_path(self) -> bool {
        matches!(self, Family::Line | Family::LineRnd)
    }
}

/// Compact, `Copy` description of an activation schedule — the sweep-axis
/// form of [`rvz_sim::Schedule`], resolved per instance size by
/// [`ScheduleSpec::resolve`]. A spec that is *exactly* the legacy
/// start-delay scenario ([`ScheduleSpec::as_start_delay`]) is routed
/// through the θ-indexed executors and emits the identical row (no
/// `schedule` field, same seeds) — `Schedule(StartDelay(θ))` cells are
/// byte-for-byte the `Fixed(θ)` cells, by test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleSpec {
    /// Both agents every round (≡ `Delay::Zero` spelled as a schedule).
    Simultaneous,
    /// A from round 1, B from round θ+1 (≡ `Delay::Fixed(θ)`).
    StartDelay(u64),
    /// A every round; B once per `period` rounds, at `phase`.
    Intermittent { period: u64, phase: u64 },
    /// Both agents for the given number of rounds, then B crashes. The
    /// round count is capped at `Schedule::MAX_MATERIALIZED_PREFIX`
    /// (2²²) — `resolve` panics loudly beyond it rather than
    /// materializing a multi-gigabyte prefix (a crash later than any
    /// decision horizon is indistinguishable from no crash).
    CrashAfter(u64),
    /// [`ScheduleSpec::CrashAfter`] at ⌈n/2⌉, resolved per instance size
    /// (the e10 crash column). Resolves to the same schedule — and the
    /// same row label — as the matching `CrashAfter(⌈n/2⌉)`, but as its
    /// own axis point with its own seed code (like `Zero` beside
    /// `Fixed(0)`); don't list both at one size.
    CrashAfterHalfN,
    /// Both agents together once per `period` rounds, frozen in between —
    /// global stalls (time dilation). Outcome-equivalent to simultaneous
    /// start but `period`× slower, so it carries the simultaneous
    /// scenario's never-meets pairs into the genuinely-scheduled machinery
    /// (parity lassos survive dilation, unlike under intermittence).
    Lockstep { period: u64 },
    /// A seeded draw from [`Schedule::adversarial`] (prefix ≤ 8 rounds,
    /// cycle ≤ 6 — small enough that the bw decision horizon stays tight).
    Adversarial { seed: u64 },
}

impl ScheduleSpec {
    /// Caps for the seeded adversarial sampler.
    const ADV_MAX_PREFIX: usize = 8;
    const ADV_MAX_CYCLE: usize = 6;

    /// The concrete schedule at instance size `n`.
    pub fn resolve(self, n: usize) -> Schedule {
        match self {
            ScheduleSpec::Simultaneous => Schedule::simultaneous(),
            ScheduleSpec::StartDelay(theta) => Schedule::start_delay(theta),
            ScheduleSpec::Intermittent { period, phase } => Schedule::intermittent(period, phase),
            ScheduleSpec::CrashAfter(rounds) => Schedule::crash_after(rounds),
            ScheduleSpec::CrashAfterHalfN => Schedule::crash_after(n.div_ceil(2) as u64),
            ScheduleSpec::Lockstep { period } => {
                assert!(period >= 1, "lockstep period must be at least 1");
                Schedule::new(
                    Vec::new(),
                    (0..period)
                        .map(|i| {
                            let on = i == 0;
                            (on, on)
                        })
                        .collect(),
                )
            }
            ScheduleSpec::Adversarial { seed } => {
                Schedule::adversarial(seed, Self::ADV_MAX_PREFIX, Self::ADV_MAX_CYCLE)
            }
        }
    }

    /// The concrete `lanes`-lane ensemble schedule at instance size `n` —
    /// the k-agent generalization of [`ScheduleSpec::resolve`], lane-for-
    /// lane identical to it at `lanes = 2` (the lane-asymmetric specs put
    /// their faulty lane *last*, matching the pair convention of faulting
    /// agent B). [`ScheduleSpec::Adversarial`] has no ensemble form — the
    /// grid filter keeps it off `--agents k > 2` sweeps.
    pub fn resolve_ensemble(self, n: usize, lanes: usize) -> EnsembleSchedule {
        match self {
            ScheduleSpec::Simultaneous => EnsembleSchedule::simultaneous(lanes),
            ScheduleSpec::StartDelay(theta) => {
                let mut delays = vec![0; lanes];
                delays[lanes - 1] = theta;
                EnsembleSchedule::start_delays(&delays)
            }
            ScheduleSpec::Intermittent { period, phase } => {
                EnsembleSchedule::intermittent_last(lanes, period, phase)
            }
            ScheduleSpec::CrashAfter(rounds) => EnsembleSchedule::crash_last_after(lanes, rounds),
            ScheduleSpec::CrashAfterHalfN => {
                EnsembleSchedule::crash_last_after(lanes, n.div_ceil(2) as u64)
            }
            ScheduleSpec::Lockstep { period } => {
                assert!(period >= 1, "lockstep period must be at least 1");
                EnsembleSchedule::new(
                    lanes,
                    Vec::new(),
                    (0..period).map(|i| vec![i == 0; lanes]).collect(),
                )
            }
            ScheduleSpec::Adversarial { .. } => {
                unreachable!("adversarial schedules are a pair axis (grid-filtered at k > 2)")
            }
        }
    }

    /// `Some(θ)` when this spec is the legacy start-delay scenario — those
    /// cells run on the θ-indexed paths and emit legacy rows.
    pub fn as_start_delay(self) -> Option<u64> {
        match self {
            ScheduleSpec::Simultaneous => Some(0),
            ScheduleSpec::StartDelay(theta) => Some(theta),
            ScheduleSpec::Intermittent { period: 1, .. } => Some(0),
            ScheduleSpec::Lockstep { period: 1 } => Some(0),
            _ => None,
        }
    }

    /// The schedule string recorded in the row (genuine schedules only —
    /// start-delay-shaped specs emit legacy rows without it).
    pub fn label(self, n: usize) -> String {
        match self {
            ScheduleSpec::Simultaneous => "simultaneous".into(),
            ScheduleSpec::StartDelay(theta) => format!("start-delay({theta})"),
            ScheduleSpec::Intermittent { period, phase } => {
                format!("intermittent({period},{phase})")
            }
            ScheduleSpec::CrashAfter(rounds) => format!("crash-after({rounds})"),
            ScheduleSpec::CrashAfterHalfN => format!("crash-after({})", n.div_ceil(2)),
            ScheduleSpec::Lockstep { period } => format!("lockstep({period})"),
            ScheduleSpec::Adversarial { seed } => format!("adversarial({seed})"),
        }
    }

    /// Seed-mixing code, unique per spec (start-delay-shaped specs share
    /// the matching [`Delay::Fixed`] code — deliberately: same scenario,
    /// same cell seeds, same rows).
    fn code(self) -> u64 {
        if let Some(theta) = self.as_start_delay() {
            return Delay::Fixed(theta).code();
        }
        match self {
            ScheduleSpec::Intermittent { period, phase } => {
                mix(fnv("sched-intermittent"), &[period, phase])
            }
            ScheduleSpec::CrashAfter(rounds) => mix(fnv("sched-crash"), &[rounds]),
            ScheduleSpec::CrashAfterHalfN => fnv("sched-crash-half-n"),
            ScheduleSpec::Lockstep { period } => mix(fnv("sched-lockstep"), &[period]),
            ScheduleSpec::Adversarial { seed } => mix(fnv("sched-adversarial"), &[seed]),
            ScheduleSpec::Simultaneous | ScheduleSpec::StartDelay(_) => {
                unreachable!("start-delay shapes take the Fixed code")
            }
        }
    }
}

/// Start-delay axis of a grid; `LinearN` resolves to the instance size, the
/// adversarial “delay of n rounds” the E6 series uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delay {
    Zero,
    Fixed(u64),
    LinearN,
    /// The universal quantifier: "under *every* finite start delay". Only
    /// the exact decider can answer it ([`rvz_lowerbounds::decide::worst_case_delay`]);
    /// cells with this delay are routed to the decide path under every
    /// executor. The row's `delay` field reports the decisive delay — the
    /// smallest defeating θ, or the θ attaining the worst meeting round.
    Adversarial,
    /// A full activation schedule (per-round delay faults). The row's
    /// `delay` field reports the spec's θ-equivalent (0 for genuine
    /// schedules) and the `schedule` field carries the resolved label.
    Schedule(ScheduleSpec),
}

impl Delay {
    /// The concrete start delay θ at instance size `n`.
    /// [`Delay::Adversarial`] has no static resolution — those cells are
    /// answered by the quantifier layer, never by bounded simulation.
    /// A [`Delay::Schedule`] resolves to its θ-equivalent (the executors
    /// route genuine schedules through the scheduled paths instead).
    pub fn resolve(self, n: usize) -> u64 {
        match self {
            Delay::Zero => 0,
            Delay::Fixed(d) => d,
            Delay::LinearN => n as u64,
            Delay::Adversarial => {
                unreachable!("adversarial delay is resolved by the exact decider")
            }
            Delay::Schedule(spec) => spec.as_start_delay().unwrap_or(0),
        }
    }

    /// Seed-mixing code for the delay axis. `Fixed` saturates (a
    /// `u64::MAX` delay used to overflow `1 + d` in debug builds) and is
    /// clamped below the `LinearN`/`Adversarial` sentinels so no fixed
    /// delay collides with them. The clamp deliberately collapses the
    /// top few fixed delays (`≥ u64::MAX − 3`) onto one code: those
    /// cells are degenerate anyway — their budgets saturate to
    /// `u64::MAX`, so they are the same unusable scenario.
    pub(crate) fn code(self) -> u64 {
        match self {
            Delay::Zero => 0,
            Delay::Fixed(d) => d.saturating_add(1).min(u64::MAX - 2),
            Delay::LinearN => u64::MAX,
            Delay::Adversarial => u64::MAX - 1,
            Delay::Schedule(spec) => spec.code(),
        }
    }

    /// `true` when this delay resolves to 0 for every instance size —
    /// `Zero`, `Fixed(0)` and the simultaneous-shaped schedule specs are
    /// the same scenario and must be treated identically by grid filters
    /// (so e.g. `Schedule(Simultaneous)` keeps the zero-delay-only
    /// variants, exactly like `Fixed(0)`).
    fn is_always_zero(self) -> bool {
        match self {
            Delay::Zero | Delay::Fixed(0) => true,
            Delay::Schedule(spec) => spec.as_start_delay() == Some(0),
            _ => false,
        }
    }
}

/// Agent variant run in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Theorem 4.1 agent — simultaneous start, arbitrary trees.
    TreeRvz,
    /// The `O(log n)` arbitrary-delay baseline.
    DelayRobust,
    /// Lemma 4.1 `prime` protocol — simultaneous start, paths only.
    PrimePath,
    /// The §2.2 basic-walk automaton pair ([`rvz_agent::Fsa::basic_walk`]):
    /// the memoryless delay-scan workload (à la Chalopin et al.'s
    /// delay-fault grids). Both trajectories are periodic with period
    /// `2(n−1)` once started, so "meets under delay θ" is *decided* within
    /// `θ + 2` joint periods — the cell budget is exact, not provisioned.
    BasicWalkFsa,
}

impl Variant {
    pub fn name(self) -> &'static str {
        match self {
            Variant::TreeRvz => "tree-rvz",
            Variant::DelayRobust => "delay-robust",
            Variant::PrimePath => "prime-path",
            Variant::BasicWalkFsa => "bw-fsa",
        }
    }

    /// Inverse of [`Variant::name`] — how the persistent stores decode
    /// their on-disk keys ([`crate::stores`]).
    pub fn from_name(name: &str) -> Option<Variant> {
        const ALL: [Variant; 4] =
            [Variant::TreeRvz, Variant::DelayRobust, Variant::PrimePath, Variant::BasicWalkFsa];
        ALL.into_iter().find(|v| v.name() == name)
    }

    /// Grid filter: only combinations the algorithm is specified for.
    /// The universal delay quantifier is decidable only for the explicit
    /// automaton variant (the procedural agents have no exported finite
    /// configuration space), so [`Delay::Adversarial`] is bw-fsa-only.
    pub(crate) fn supports(self, family: Family, delay: Delay) -> bool {
        match self {
            Variant::TreeRvz => delay.is_always_zero(),
            Variant::DelayRobust => delay != Delay::Adversarial,
            Variant::PrimePath => family.is_path() && delay.is_always_zero(),
            Variant::BasicWalkFsa => true,
        }
    }
}

/// Exact decision horizon for a basic-walk pair under start delay `delay`:
/// once both agents run, the joint configuration is periodic with period
/// `2(n−1)`, so two periods past the delay decide the meeting question.
/// (`n = 0` is clamped to the singleton's empty horizon rather than
/// underflowing, and the arithmetic saturates — `delay + …` used to
/// overflow in debug builds at `Delay::Fixed(u64::MAX)`.)
pub fn basic_walk_budget_for(n: usize, delay: u64) -> u64 {
    delay.saturating_add(basic_walk_two_periods(n))
}

/// Two basic-walk Euler periods plus slack: `4(n−1) + 2`, saturating.
pub(crate) fn basic_walk_two_periods(n: usize) -> u64 {
    4u64.saturating_mul(n.max(1) as u64 - 1).saturating_add(2)
}

/// Exact decision horizon for a basic-walk pair under an activation
/// schedule: the basic walk is purely periodic in its activation count
/// (period `2(n−1)` — the closed Euler tour), so past the prefix the
/// joint state `(position_a, position_b, cycle index)` repeats within
/// `cycle · 2(n−1)` rounds; `prefix + cycle · (4(n−1) + 2)` covers two
/// such joint periods. For `start_delay(θ)` this is exactly
/// [`basic_walk_budget_for`]`(n, θ)` — prefix θ, cycle 1.
pub fn schedule_budget_for(n: usize, schedule: &Schedule) -> u64 {
    schedule
        .prefix_len()
        .saturating_add(schedule.cycle_len().saturating_mul(basic_walk_two_periods(n)))
}

/// How the executor answers the delay × pair sub-grid of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Record each `(family, n, start, variant)` trajectory once in the
    /// process-wide trace store and decide every cell by timeline merge
    /// (`rvz_sim::trace`) — no agent stepping on cache hits.
    #[default]
    TraceReplay,
    /// Step both agents per cell through dyn [`run_pair`] (the pre-trace
    /// executor). Kept behind this flag for differential testing; it is
    /// also the replay path's fallback for cells whose trajectories would
    /// exceed the recording cap. Output is byte-identical to
    /// [`Executor::TraceReplay`] by construction (and by test).
    DynStepping,
    /// Answer each cell by the exact decider over the joint configuration
    /// graph ([`rvz_lowerbounds::decide`]): no round budget, `NeverMeets`
    /// certified by lasso instead of reported as timeout. Exact for the
    /// automaton variant (`bw-fsa`); procedural-agent cells fall back to
    /// [`Executor::TraceReplay`]. Rows are byte-identical to the other
    /// executors except for the `certified` flag (by test).
    ExactDecide,
    /// Route every cell through the per-cell cost-model planner
    /// ([`crate::planner`]): each cell goes to decide, replay, stepping or
    /// the batched SoA kernel ([`rvz_sim::batch`]) by predicted cost, and
    /// the row records the choice in the optional `planned` annotation.
    /// Rows are byte-identical to the fixed executors modulo `planned`
    /// (and `certified` on decide-routed cells) — by test and by the CI
    /// `planner-differential` job.
    Auto,
}

/// A full grid specification; [`run`] executes it.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Tag recorded in every row (e.g. `"e6"`).
    pub experiment: String,
    pub families: Vec<Family>,
    pub sizes: Vec<usize>,
    pub delays: Vec<Delay>,
    pub variants: Vec<Variant>,
    /// Feasible start pairs sampled per (family, size) instance.
    pub pairs_per_cell: usize,
    pub seed: u64,
    /// Worker threads; `0` = all cores.
    pub threads: usize,
    /// Cell execution strategy (replay by default).
    pub executor: Executor,
    /// Ensemble width: how many agent copies run per cell (`--agents k`).
    /// `2` is the classic pair engine and emits byte-identical legacy rows
    /// (schema unchanged); `k > 2` switches every cell to the k-lane
    /// ensemble paths — the start axis becomes feasible *k-tuples*, the
    /// outcome becomes gathering (all `k` on one node simultaneously), and
    /// rows/certificates grow the optional `agents`/`start_rest` fields
    /// (schema `rvz-sweep/v7`; see docs/gathering.md).
    pub agents: usize,
}

/// One grid cell: everything [`run_cell`] needs, and nothing that depends
/// on execution order. The experiment label is interned (`Arc<str>`): the
/// whole grid shares one allocation instead of cloning a `String` per
/// cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub experiment: Arc<str>,
    pub family: Family,
    pub n: usize,
    pub delay: Delay,
    pub variant: Variant,
    pub pair_index: usize,
    pub pairs_total: usize,
    pub base_seed: u64,
    /// Enumeration index into [`rvz_trees::enumerate::free_trees`]`(n)`
    /// for [`Family::EnumFree`] cells (`None` for sampled families). When
    /// set, it *is* the tree seed: `(n, index)` names the tree forever.
    pub tree_index: Option<u64>,
    /// Ensemble width ([`SweepSpec::agents`]). `2` = the pair engine;
    /// `pair_index` then indexes [`SweepInstance::pairs`], otherwise
    /// [`SweepInstance::tuples`].
    pub agents: usize,
}

/// One result row; the JSON schema of `--json` output (see docs/schemas.md).
/// `experiment` shares the grid's interned label (serialized as a plain
/// JSON string, exactly like the `String` it replaced).
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    pub experiment: Arc<str>,
    pub family: String,
    /// Requested size; `n` is the realized node count.
    pub size: usize,
    pub n: usize,
    pub leaves: usize,
    pub variant: String,
    pub delay: u64,
    /// Resolved activation-schedule label for genuine schedule cells
    /// (e.g. `"intermittent(2,0)"`); absent — not `null` — on every
    /// start-delay cell, so legacy rows keep their exact serialized shape
    /// (schema `rvz-sweep/v3` = v2 plus this optional field).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub schedule: Option<String>,
    pub start_a: NodeId,
    pub start_b: NodeId,
    pub met: bool,
    /// Meeting round (`null` on timeout).
    pub rounds: Option<u64>,
    pub crossings: u64,
    pub budget: u64,
    /// Provisioned automaton size for this variant at this instance.
    pub provisioned_bits: u64,
    /// Memory the two (identical) agents actually reported after the run.
    pub measured_bits: u64,
    /// Seed the instance tree was built from — `Family::build(size, tree_seed)`
    /// reconstructs the exact tree, randomized families included.
    pub tree_seed: u64,
    /// Seed of the start-pair pool the cell drew from.
    pub pairs_seed: u64,
    /// Full-coordinate seed, for provenance.
    pub cell_seed: u64,
    /// `true` when the outcome is *exactly decided* (the
    /// [`Executor::ExactDecide`] path): `met == false` then means
    /// certified never-meets, not a budget timeout. Bounded executors
    /// always report `false`.
    pub certified: bool,
    /// `Some(true)` when every executor attempt for the cell exceeded the
    /// `--cell-timeout` wall budget and the row records *no run at all*
    /// (`met: false`, `rounds: null`, zero crossings/bits). Absent — not
    /// `null` — everywhere else, so rows without watchdogs keep their
    /// exact serialized shape (schema `rvz-sweep/v4` = v3 plus this
    /// optional field; see docs/schemas.md).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub timed_out: Option<bool>,
    /// `Some(true)` when the cell's shard exceeded the supervisor's
    /// attempt cap — every worker sent to it died — and the row records
    /// *no run at all*, exactly like a timeout (`met: false`,
    /// `rounds: null`, zero crossings/bits). Absent — not `null` —
    /// everywhere else, so single-process rows keep their exact
    /// serialized shape (schema `rvz-sweep/v5` = v4 plus this optional
    /// field; see docs/schemas.md and docs/distributed.md).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub poisoned: Option<bool>,
    /// The planner's per-cell record under [`Executor::Auto`]: which
    /// executor the cost model chose and its predicted/actual cost in
    /// deterministic work units (agent activations — never wall clock, so
    /// rows stay pure functions of the cell coordinates). Absent — not
    /// `null` — under every fixed executor, so their rows keep their exact
    /// serialized shape (schema `rvz-sweep/v6` = v5 plus this optional
    /// field; see docs/schemas.md).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub planned: Option<Planned>,
    /// Ensemble width for `--agents k > 2` cells; `met` then means all
    /// `k` copies gathered on one node simultaneously. Absent — not
    /// `null` — on every pair cell, so legacy rows keep their exact
    /// serialized shape (schema `rvz-sweep/v7` = v6 plus this and
    /// `start_rest`; see docs/schemas.md and docs/gathering.md).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub agents: Option<usize>,
    /// Starts of lanes 2.. (lane 0 is `start_a`, lane 1 is `start_b`).
    /// Present exactly when `agents` is.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub start_rest: Option<Vec<NodeId>>,
}

/// The planner's decision record, embedded in [`SweepRow::planned`]. All
/// three fields are deterministic: `choice` and `predicted` are pure
/// functions of the spec and the cell coordinates, `actual` re-prices the
/// row's outcome under the same model (see [`crate::planner`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Planned {
    /// `"batch"` / `"replay"` / `"stepping"` / `"decide"`.
    pub choice: String,
    /// Model-predicted cost of the chosen route, in work units.
    pub predicted: u64,
    /// Post-hoc cost of the route given the row's outcome, same units.
    pub actual: u64,
}

/// A machine-checkable decision certificate emitted by the
/// [`Executor::ExactDecide`] path — one per certified never-meets cell and
/// one per universal-delay ([`Delay::Adversarial`]) cell. The lasso fields
/// replicate [`rvz_lowerbounds::decide::Lasso`] flattened for JSON; every
/// lasso is re-verified by independent stepping
/// ([`rvz_lowerbounds::verify_lasso`]) before it is emitted (`verified`).
#[derive(Debug, Clone, Serialize)]
pub struct Certificate {
    pub experiment: Arc<str>,
    pub family: String,
    pub size: usize,
    pub n: usize,
    pub tree_seed: u64,
    pub variant: String,
    pub start_a: NodeId,
    pub start_b: NodeId,
    /// `"meets"` / `"never-meets"` for fixed-delay cells;
    /// `"all-delays-meet"` / `"delay-defeats"` for universal cells.
    pub verdict: String,
    /// Resolved schedule label for scheduled never-meets certificates;
    /// absent on delay-axis certificates (schema `rvz-certificates/v2` =
    /// v1 plus this optional field).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub schedule: Option<String>,
    /// The decisive delay: the cell's fixed θ, the smallest defeating θ,
    /// or the θ attaining the worst meeting round.
    pub delay: u64,
    /// Meeting round (absent for never-meets verdicts).
    pub round: Option<u64>,
    /// Distinct delay classes the quantifier decided (universal cells).
    pub delays_checked: Option<u64>,
    /// Lasso certificate for never-meets verdicts.
    pub lasso_stem: Option<u64>,
    pub lasso_period: Option<u64>,
    /// Re-verification result of the lasso by independent stepping.
    pub verified: Option<bool>,
    /// Ensemble width for `--agents k > 2` certificates (the verdict is
    /// then `"gathers"` / `"never-gathers"`). Absent on pair
    /// certificates, so those keep their exact serialized shape (schema
    /// `rvz-certificates/v3` = v2 plus this and `start_rest`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub agents: Option<usize>,
    /// Starts of lanes 2.. (lane 0 is `start_a`, lane 1 is `start_b`).
    /// Present exactly when `agents` is.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub start_rest: Option<Vec<NodeId>>,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Mixes grid coordinates into a seed. Position-independent by
/// construction: only the listed tokens enter.
pub(crate) fn mix(base: u64, tokens: &[u64]) -> u64 {
    let mut h = splitmix(base);
    for &t in tokens {
        h = splitmix(h ^ t);
    }
    h
}

impl Cell {
    /// The tree is a function of (family, size) only — every delay/variant/
    /// pair cell on the same instance sees the identical tree. For the
    /// enumerated family the "seed" is the enumeration index itself.
    pub fn tree_seed(&self) -> u64 {
        if let Some(index) = self.tree_index {
            return index;
        }
        mix(self.base_seed, &[fnv("tree"), fnv(self.family.name()), self.n as u64])
    }

    /// Likewise the start-pair pool (the enumerated family's pair axis is
    /// exhaustive and deterministic — no seed enters it).
    pub fn pairs_seed(&self) -> u64 {
        if self.tree_index.is_some() {
            return 0;
        }
        mix(self.base_seed, &[fnv("pairs"), fnv(self.family.name()), self.n as u64])
    }

    /// Full-coordinate seed recorded in the row. Sampled-family cells mix
    /// exactly the pre-enumeration token list, so their seeds — and hence
    /// every historical row — are unchanged by the tree-index axis.
    pub fn cell_seed(&self) -> u64 {
        let mut tokens = vec![
            fnv(&self.experiment),
            fnv(self.family.name()),
            self.n as u64,
            self.delay.code(),
            fnv(self.variant.name()),
            self.pair_index as u64,
        ];
        if let Some(index) = self.tree_index {
            tokens.push(fnv("tree-index"));
            tokens.push(index);
        }
        // Pair cells mix exactly the historical token list: the ensemble
        // axis enters the seed only when it actually widens the cell, so
        // every `--agents 2` row is byte-identical to its pre-ensemble
        // ancestor.
        if self.agents > 2 {
            tokens.push(fnv("agents"));
            tokens.push(self.agents as u64);
        }
        mix(self.base_seed, &tokens)
    }
}

/// Largest size the enumerated-family axis accepts: free-tree counts are
/// exponential (A000055), and every tree × every ordered feasible pair is
/// a cell. 11 keeps the exhaustive grid in the hundreds of trees.
pub const MAX_ENUM_SIZE: usize = 11;

/// Enumerates the grid in deterministic (family, size, \[tree,\] delay,
/// variant, pair) lexicographic order, dropping unsupported combinations.
///
/// For [`Family::EnumFree`] the tree axis is *exhaustive*: one sub-grid
/// per free tree at each size, and the pair axis is every ordered feasible
/// pair of that tree (so `pairs_per_cell` is ignored and the planned cell
/// count is exact — nothing is dropped at run time).
pub fn cells(spec: &SweepSpec) -> Vec<Cell> {
    assert!(spec.agents >= 2, "a sweep runs at least two agents (--agents {})", spec.agents);
    let experiment: Arc<str> = Arc::from(spec.experiment.as_str());
    let mut out = Vec::new();
    // The ∀-delay quantifier and the seeded adversarial schedules are
    // pair adversaries (the quantifier's θ axis delays one of two lanes;
    // the sampler draws two-lane rows) — the ensemble grid drops them
    // rather than silently reinterpreting them.
    let ensemble_supports = |delay: Delay| {
        spec.agents == 2
            || !matches!(
                delay,
                Delay::Adversarial | Delay::Schedule(ScheduleSpec::Adversarial { .. })
            )
    };
    let push_subgrid = |family: Family,
                        n: usize,
                        tree_index: Option<u64>,
                        pairs_total: usize,
                        out: &mut Vec<Cell>| {
        for &delay in &spec.delays {
            if !ensemble_supports(delay) {
                continue;
            }
            for &variant in &spec.variants {
                if !variant.supports(family, delay) {
                    continue;
                }
                for pair_index in 0..pairs_total {
                    out.push(Cell {
                        experiment: experiment.clone(),
                        family,
                        n,
                        delay,
                        variant,
                        pair_index,
                        pairs_total,
                        base_seed: spec.seed,
                        tree_index,
                        agents: spec.agents,
                    });
                }
            }
        }
    };
    for &family in &spec.families {
        for &n in &spec.sizes {
            if family == Family::EnumFree {
                assert!(
                    n <= MAX_ENUM_SIZE,
                    "enum-free at n = {n} would enumerate millions of trees (cap {MAX_ENUM_SIZE})"
                );
                for (index, tree) in rvz_trees::enumerate::free_trees(n).enumerate() {
                    let starts_total = if spec.agents > 2 {
                        instances::exhaustive_feasible_tuples(&tree, spec.agents).len()
                    } else {
                        instances::exhaustive_feasible_pairs(&tree).len()
                    };
                    push_subgrid(family, n, Some(index as u64), starts_total, &mut out);
                }
            } else {
                push_subgrid(family, n, None, spec.pairs_per_cell, &mut out);
            }
        }
    }
    out
}

/// Round budget for the general tree algorithms (as E6 provisions).
/// Saturating: `n² · 60_000` overflows plain `u64` arithmetic for
/// `n ≥ 2³²`, and the budget is a cap, so clamping at `u64::MAX` is the
/// correct degeneration.
pub fn budget_for(n: usize) -> u64 {
    (n as u64).saturating_mul(n as u64).saturating_mul(60_000).saturating_add(2_000_000)
}

/// Round budget for the `prime` path protocol (as E3 derives from the
/// analysis bound).
pub fn prime_budget_for(m: usize) -> u64 {
    let mut rounds = m as u64;
    let mut p = 2u64;
    for _ in 0..primorial_index_bound((m * m) as u64) + 2 {
        rounds += 2 * (m as u64 - 1) * p + p;
        p = next_prime(p);
    }
    rounds * 2
}

/// The shared immutable per-instance state: the tree and its feasible
/// start-pair pool, a pure function of `(family, n, tree_seed, pairs_seed)`.
/// The executor builds each one once and shares it (via `Arc`) across the
/// whole delay × variant × pair sub-grid — `feasible_pairs` alone costs
/// hundreds of symmetrizability checks, which used to be repaid by *every*
/// cell on the instance.
#[derive(Debug)]
pub struct SweepInstance {
    pub tree: Tree,
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Feasible start `k`-tuples for `--agents k > 2` cells (empty on
    /// pair instances; `pairs` is empty in turn on ensemble instances).
    /// Drawn from the same `pairs_seed` stream, exhaustive for the
    /// enumerated family — the k-lane generalization of `pairs`.
    pub tuples: Vec<Vec<NodeId>>,
    pub tree_seed: u64,
    pub pairs_seed: u64,
    /// Shared basic-walk automaton for [`Variant::BasicWalkFsa`] cells,
    /// built on first use (its table is a function of the tree's maximum
    /// degree only).
    bw_fsa: OnceLock<rvz_agent::Fsa>,
    /// The tree's unique nontrivial port-preserving automorphism, if one
    /// exists — the `flip` half of the start-pair orbit group (see
    /// [`rvz_trees::symmetry::pair_orbits`]). Computed on first decide
    /// cell.
    flip: OnceLock<Option<Vec<NodeId>>>,
    /// `pair index → (orbit representative index, action mapping the
    /// representative pair onto this pair)` over `pairs`, one table per
    /// swap-allowance (`[without swap, with swap]` — the swap is sound
    /// only for lane-symmetric activation, so delay classes pick their
    /// table).
    orbit_lookups: [OnceLock<Vec<(usize, OrbitAction)>>; 2],
    /// Decided orbit representatives, keyed `(delay code, rep index)` —
    /// the decide executor answers each representative once per
    /// `(instance, delay class)` and replicates the relabeled verdict to
    /// the rest of the orbit. The per-key `OnceLock` makes racing orbit
    /// members block on (rather than duplicate) the one decision.
    decide_memo: Mutex<HashMap<(u64, usize), Arc<OnceLock<RepDecision>>>>,
}

impl Clone for SweepInstance {
    /// Clones the instance *data* plus whatever the pure-function caches
    /// (`bw_fsa`, `flip`, `orbit_lookups`) already hold; the decision memo
    /// starts cold (every cache here is a pure function of the data, so
    /// nothing observable changes either way).
    fn clone(&self) -> Self {
        SweepInstance {
            tree: self.tree.clone(),
            pairs: self.pairs.clone(),
            tuples: self.tuples.clone(),
            tree_seed: self.tree_seed,
            pairs_seed: self.pairs_seed,
            bw_fsa: self.bw_fsa.clone(),
            flip: self.flip.clone(),
            orbit_lookups: self.orbit_lookups.clone(),
            decide_memo: Mutex::default(),
        }
    }
}

/// A decided orbit representative, one flavor per delay-axis class. The
/// memo key includes [`Delay::code`], which separates the flavors, so a
/// lookup always finds its own kind.
#[derive(Debug, Clone)]
enum RepDecision {
    Fixed(Decision),
    Universal(WorstCase),
    Scheduled(ScheduleDecision),
}

impl RepDecision {
    /// The decision for the orbit member reached from the representative
    /// by `action` — delegates to the certified relabeling in
    /// [`rvz_lowerbounds::decide`] (rounds/crossings invariant, lasso
    /// configurations mapped).
    fn relabel(&self, action: OrbitAction, flip: Option<&[NodeId]>) -> RepDecision {
        let map = action.flip.then(|| flip.expect("flip action requires the flip map"));
        match self {
            RepDecision::Fixed(d) => RepDecision::Fixed(d.relabel(map, action.swap)),
            RepDecision::Universal(wc) => {
                debug_assert!(!action.swap, "the ∀-delay quantifier never admits the swap");
                RepDecision::Universal(wc.relabel(map))
            }
            RepDecision::Scheduled(d) => RepDecision::Scheduled(d.relabel(map, action.swap)),
        }
    }
}

impl SweepInstance {
    /// Builds the instance a cell runs on. Depends only on the cell's
    /// instance coordinates (`family`, `n`, `base_seed`, `pairs_total`,
    /// and for the enumerated family `tree_index`) — every cell of the
    /// same sub-grid builds the identical value.
    pub fn for_cell(cell: &Cell) -> Self {
        let tree_seed = cell.tree_seed();
        let pairs_seed = cell.pairs_seed();
        let tree = cell.family.build(cell.n, tree_seed);
        // For the enumerated family this repeats work `cells()` did while
        // planning (`nth_free_tree` re-walks the WROM succession, the pair
        // scan re-runs) — quadratic in the tree count, accepted because
        // [`MAX_ENUM_SIZE`] caps it in the hundreds of trees and it keeps
        // `Cell` a plain coordinate (any cell rebuilds standalone).
        let (pairs, tuples) = if cell.agents > 2 {
            let tuples = if cell.tree_index.is_some() {
                instances::exhaustive_feasible_tuples(&tree, cell.agents)
            } else {
                instances::feasible_tuples(&tree, cell.agents, cell.pairs_total, pairs_seed)
            };
            (Vec::new(), tuples)
        } else if cell.tree_index.is_some() {
            (instances::exhaustive_feasible_pairs(&tree), Vec::new())
        } else {
            (instances::feasible_pairs(&tree, cell.pairs_total, pairs_seed), Vec::new())
        };
        SweepInstance {
            tree,
            pairs,
            tuples,
            tree_seed,
            pairs_seed,
            bw_fsa: OnceLock::new(),
            flip: OnceLock::new(),
            orbit_lookups: [OnceLock::new(), OnceLock::new()],
            decide_memo: Mutex::default(),
        }
    }

    /// The basic-walk automaton matched to this instance's degree bound;
    /// every `bw-fsa` cell on the instance borrows the same table.
    pub fn basic_walk_fsa(&self) -> &rvz_agent::Fsa {
        self.bw_fsa.get_or_init(|| rvz_agent::Fsa::basic_walk(self.tree.max_degree().max(1)))
    }

    /// The tree's port-preserving flip, as a node-image table.
    fn flip_map(&self) -> Option<&[NodeId]> {
        self.flip.get_or_init(|| rvz_trees::symmetry::port_preserving_flip(&self.tree)).as_deref()
    }

    /// The orbit table for this swap-allowance: every pair index maps to
    /// its orbit representative plus the action reaching it from there.
    fn orbit_lookup(&self, allow_swap: bool) -> &[(usize, OrbitAction)] {
        self.orbit_lookups[allow_swap as usize].get_or_init(|| {
            // Force the flip first so both caches agree on it.
            let _ = self.flip_map();
            let mut lookup = vec![(0, OrbitAction::IDENTITY); self.pairs.len()];
            for orbit in pair_orbits(&self.tree, &self.pairs, allow_swap) {
                for (index, action) in orbit.members {
                    lookup[index] = (orbit.rep, action);
                }
            }
            lookup
        })
    }

    /// The memoized decision of an orbit representative; `compute` runs at
    /// most once per key per instance — concurrent orbit members block on
    /// the `OnceLock` instead of re-deciding.
    fn rep_decision(
        &self,
        key: (u64, usize),
        compute: impl FnOnce() -> RepDecision,
    ) -> Arc<OnceLock<RepDecision>> {
        let slot = {
            let mut memo = self.decide_memo.lock().expect("decide memo lock");
            memo.entry(key).or_default().clone()
        };
        slot.get_or_init(compute);
        slot
    }
}

/// Executes one cell standalone, rebuilding its instance from the cell
/// coordinates. Pure in the cell: no global state, no clock, no thread
/// identity. Returns `None` when the instance yielded fewer feasible start
/// pairs than `pair_index`. The batch executor ([`run`]) avoids the rebuild
/// by sharing a [`SweepInstance`] across the sub-grid via
/// [`run_cell_on`].
pub fn run_cell(cell: &Cell) -> Option<SweepRow> {
    run_cell_on(cell, &SweepInstance::for_cell(cell))
}

/// How a cell's delay axis executes at a resolved instance size: either
/// the legacy θ-indexed path (every delay flavor, including
/// start-delay-shaped schedule specs — which thereby emit byte-identical
/// legacy rows), or the genuinely scheduled path.
pub(crate) enum CellMode {
    Delay(u64),
    Scheduled(ScheduleSpec),
}

impl Cell {
    /// The execution mode at instance size `n`. Must not be called on
    /// [`Delay::Adversarial`] cells (the quantifier layer owns those).
    pub(crate) fn mode(&self, n: usize) -> CellMode {
        match self.delay {
            Delay::Schedule(spec) => match spec.as_start_delay() {
                Some(theta) => CellMode::Delay(theta),
                None => CellMode::Scheduled(spec),
            },
            delay => CellMode::Delay(delay.resolve(n)),
        }
    }

    /// The k-lane execution mode at instance size `n`: the row metadata
    /// (θ-equivalent delay, optional schedule label — exactly the pair
    /// split of [`Cell::mode`]) plus the resolved [`EnsembleSchedule`].
    /// θ-shaped cells delay the *last* lane, matching the pair convention
    /// of delaying agent B.
    pub(crate) fn ensemble_mode(&self, n: usize) -> ((u64, Option<String>), EnsembleSchedule) {
        match self.mode(n) {
            CellMode::Delay(theta) => {
                let mut delays = vec![0; self.agents];
                delays[self.agents - 1] = theta;
                ((theta, None), EnsembleSchedule::start_delays(&delays))
            }
            CellMode::Scheduled(spec) => {
                ((0, Some(spec.label(n))), spec.resolve_ensemble(n, self.agents))
            }
        }
    }
}

/// Round budget and provisioned automaton size for a `--agents k > 2`
/// cell — the ensemble twin of [`budget_and_provisioned`]. Procedural
/// budgets are per-instance and lane-count-free (the provisioning
/// argument bounds *each* copy); the basic-walk horizon generalizes
/// [`schedule_budget_for`] verbatim: every lane's solo trajectory is
/// purely periodic with period `2(n−1)` activations, each lane gains a
/// fixed activation count per schedule cycle, and the per-lane repeat
/// times all divide `2(n−1)` cycles — so the *joint* state repeats
/// within `cycle · 2(n−1)` rounds past the prefix, the same bound as the
/// pair (for θ-shapes this is exactly [`basic_walk_budget_for`]).
pub(crate) fn ensemble_budget_and_provisioned(
    cell: &Cell,
    inst: &SweepInstance,
    n: usize,
    leaves: usize,
    esched: &EnsembleSchedule,
) -> (u64, u64) {
    match cell.variant {
        Variant::TreeRvz => {
            (budget_for(n), TreeRendezvousAgent::provisioned_bits(n as u64, leaves as u64))
        }
        Variant::DelayRobust => (budget_for(n), DelayRobustAgent::provisioned_bits(n as u64)),
        Variant::PrimePath => (prime_budget_for(n), 0),
        Variant::BasicWalkFsa => {
            let fsa = inst.basic_walk_fsa();
            let budget = esched
                .prefix_len()
                .saturating_add(esched.cycle_len().saturating_mul(basic_walk_two_periods(n)));
            (budget, fsa.memory_bits())
        }
    }
}

/// Round budget and provisioned automaton size for a cell's variant at
/// this instance (shared by the stepping and replay executors). `sched`
/// is the resolved schedule for genuinely scheduled cells (`delay` is
/// then the θ-equivalent and only the schedule shapes the bw horizon).
pub(crate) fn budget_and_provisioned(
    cell: &Cell,
    inst: &SweepInstance,
    n: usize,
    leaves: usize,
    delay: u64,
    sched: Option<&Schedule>,
) -> (u64, u64) {
    match cell.variant {
        Variant::TreeRvz => {
            (budget_for(n), TreeRendezvousAgent::provisioned_bits(n as u64, leaves as u64))
        }
        Variant::DelayRobust => (budget_for(n), DelayRobustAgent::provisioned_bits(n as u64)),
        Variant::PrimePath => (prime_budget_for(n), 0),
        Variant::BasicWalkFsa => {
            let fsa = inst.basic_walk_fsa();
            let budget = match sched {
                Some(s) => schedule_budget_for(n, s),
                None => basic_walk_budget_for(n, delay),
            };
            (budget, fsa.memory_bits())
        }
    }
}

/// Assembles the result row — the single place the 20-field row shape
/// lives, shared by all three executors (stepping and replay pass the
/// bounded run's outcome with `certified: false`; the decide path passes
/// its exact verdict with `certified: true`). Byte-identity across
/// executors is maintained here, not per call site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_row(
    cell: &Cell,
    inst: &SweepInstance,
    n: usize,
    leaves: usize,
    (delay, schedule): (u64, Option<String>),
    (met, rounds, crossings): (bool, Option<u64>, u64),
    budget: u64,
    provisioned_bits: u64,
    measured_bits: u64,
    starts: (NodeId, NodeId),
    certified: bool,
) -> SweepRow {
    SweepRow {
        experiment: cell.experiment.clone(),
        family: cell.family.name().to_string(),
        size: cell.n,
        n,
        leaves,
        variant: cell.variant.name().to_string(),
        delay,
        schedule,
        start_a: starts.0,
        start_b: starts.1,
        met,
        rounds,
        crossings,
        budget,
        provisioned_bits,
        measured_bits,
        tree_seed: inst.tree_seed,
        pairs_seed: inst.pairs_seed,
        cell_seed: cell.cell_seed(),
        certified,
        timed_out: None,
        poisoned: None,
        planned: None,
        agents: None,
        start_rest: None,
    }
}

/// Stamps the ensemble fields onto a pair-shaped row: lanes 0/1 stay in
/// `start_a`/`start_b` (so every pair-keyed consumer keeps working) and
/// lanes 2.. land in `start_rest`. The single place rows learn they are
/// k-lane — keeping [`make_row`] untouched is what keeps `--agents 2`
/// byte-identical.
fn stamp_ensemble(mut row: SweepRow, starts: &[NodeId]) -> SweepRow {
    row.agents = Some(starts.len());
    row.start_rest = Some(starts[2..].to_vec());
    row
}

/// The `(met, rounds, crossings)` triple of a bounded run, as
/// [`make_row`] consumes it.
fn bounded_outcome(run: &PairRun) -> (bool, Option<u64>, u64) {
    (run.outcome.met(), run.outcome.round(), run.crossings)
}

/// The `(met, rounds, crossings)` triple of a bounded k-lane run — `met`
/// is *gathering*: all `k` copies on one node at a round boundary.
fn ensemble_outcome(run: &EnsembleRun) -> (bool, Option<u64>, u64) {
    (run.outcome.met(), run.outcome.round(), run.crossings)
}

/// Executes one `--agents k > 2` cell by *stepping* all `k` lanes through
/// the ensemble round loop ([`rvz_sim::run_ensemble_fsa`]) — the k-lane
/// [`Executor::DynStepping`] path, also the ensemble replay fallback.
/// Each variant runs a homogeneous concrete bank (rather than boxing into
/// dyn agents) so the per-variant measured-bits meters stay readable,
/// exactly as [`run_cell_on`] reads them.
fn run_cell_ensemble_stepping(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let starts = inst.tuples.get(cell.pair_index)?.as_slice();
    let ((delay, schedule), esched) = cell.ensemble_mode(n);
    let (budget, provisioned_bits) =
        ensemble_budget_and_provisioned(cell, inst, n, leaves, &esched);

    let (run, measured_bits) = match cell.variant {
        Variant::TreeRvz => {
            let mut bank: Vec<TreeRendezvousAgent> =
                (0..cell.agents).map(|_| TreeRendezvousAgent::new()).collect();
            let run = run_ensemble_fsa(tree, starts, &mut bank, &esched, budget, false);
            (run, bank.iter().map(|a| a.memory_bits_measured()).max().unwrap_or(0))
        }
        Variant::DelayRobust => {
            let mut bank: Vec<DelayRobustAgent> =
                (0..cell.agents).map(|_| DelayRobustAgent::new()).collect();
            let run = run_ensemble_fsa(tree, starts, &mut bank, &esched, budget, false);
            (run, bank.iter().map(|a| a.memory_bits_measured()).max().unwrap_or(0))
        }
        Variant::PrimePath => {
            let mut bank: Vec<PrimePathAgent> =
                (0..cell.agents).map(|_| PrimePathAgent::unbounded()).collect();
            let run = run_ensemble_fsa(tree, starts, &mut bank, &esched, budget, false);
            use rvz_agent::model::Agent;
            (run, bank.iter().map(|a| a.memory_bits()).max().unwrap_or(0))
        }
        Variant::BasicWalkFsa => {
            let fsa = inst.basic_walk_fsa();
            let mut bank: Vec<_> = (0..cell.agents).map(|_| fsa.runner()).collect();
            let run = run_ensemble_fsa(tree, starts, &mut bank, &esched, budget, false);
            use rvz_agent::model::Agent;
            (run, bank.iter().map(|a| a.memory_bits()).max().unwrap_or(0))
        }
    };

    Some(stamp_ensemble(
        make_row(
            cell,
            inst,
            n,
            leaves,
            (delay, schedule),
            ensemble_outcome(&run),
            budget,
            provisioned_bits,
            measured_bits,
            (starts[0], starts[1]),
            false,
        ),
        starts,
    ))
}

/// Executes one `--agents k > 2` cell from recorded solo trajectories
/// (the k-lane [`Executor::TraceReplay`] path): all `k` timelines come
/// from the *same* process-wide per-agent trace store the pair executor
/// uses — a solo trajectory is a pure function of activation count, so
/// the store needs no ensemble axis — and the cell is decided by
/// [`rvz_sim::replay_ensemble`]'s k-cursor merge. Rows are bit-for-bit
/// [`run_cell_ensemble_stepping`]'s; cells needing recordings past the
/// cap fall back to it.
fn run_cell_ensemble_replay(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let starts = inst.tuples.get(cell.pair_index)?.as_slice();
    let ((delay, schedule), esched) = cell.ensemble_mode(n);
    let (budget, provisioned_bits) =
        ensemble_budget_and_provisioned(cell, inst, n, leaves, &esched);

    let slots: Vec<trace_cache::Slot> = starts
        .iter()
        .map(|&s| trace_cache::slot(inst, cell.family, cell.n, cell.variant, s))
        .collect();
    fn enter(slot: &trace_cache::Slot) -> std::sync::MutexGuard<'_, trace_cache::VariantRecorder> {
        slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
    // Feasible tuples have pairwise-distinct starts, so the slots differ;
    // lock them in ascending start order so cells sharing endpoints cannot
    // deadlock (the k-lane form of the pair executor's two-lock protocol).
    let mut order: Vec<usize> = (0..starts.len()).collect();
    order.sort_by_key(|&i| starts[i]);
    loop {
        rvz_sim::cancel::checkpoint();
        let mut guards: Vec<Option<std::sync::MutexGuard<'_, trace_cache::VariantRecorder>>> =
            (0..starts.len()).map(|_| None).collect();
        for &i in &order {
            guards[i] = Some(enter(&slots[i]));
        }
        let trajs: Vec<&rvz_sim::Trajectory> =
            guards.iter().map(|g| g.as_ref().expect("locked above").trajectory()).collect();
        match replay_ensemble(tree, &trajs, &esched, budget, false) {
            EnsembleReplay::Decided(run) => {
                // Meters read at each lane's activation count by the final
                // round, exactly as the stepping bank reports them.
                let end = run.outcome.round().unwrap_or(budget);
                let measured_bits = (0..starts.len())
                    .map(|i| {
                        let acts = esched.index(i).acts_at(end);
                        guards[i].as_ref().expect("locked above").trajectory().bits_at(acts)
                    })
                    .max()
                    .unwrap_or(0);
                return Some(stamp_ensemble(
                    make_row(
                        cell,
                        inst,
                        n,
                        leaves,
                        (delay, schedule),
                        ensemble_outcome(&run),
                        budget,
                        provisioned_bits,
                        measured_bits,
                        (starts[0], starts[1]),
                        false,
                    ),
                    starts,
                ));
            }
            EnsembleReplay::NeedMore { rounds } => {
                if rounds.iter().any(|&need| need > trace_cache::MAX_RECORD_ROUNDS) {
                    drop(guards);
                    return run_cell_ensemble_stepping(cell, inst);
                }
                // Grow only the lanes the verdict flagged (0 / already
                // decided = long enough) — warm recordings are never
                // re-stepped because a partner lane was short.
                for (i, &need) in rounds.iter().enumerate() {
                    let g = guards[i].as_mut().expect("locked above");
                    if need > 0 && !g.trajectory().decided_to(need) {
                        let target = grow_target(g.trajectory().rounds(), need, budget);
                        g.record_to(tree, target);
                    }
                }
            }
        }
    }
}

/// Executes one `--agents k > 2` cell through the exact ensemble decider
/// ([`rvz_lowerbounds::decide::decide_ensemble`]) — no round budget,
/// never-*gathers* certified by a joint lasso re-verified by independent
/// k-lane stepping. Start-delay-shaped cells reuse the process-wide solo
/// -lasso store lane by lane (the k-lane closed form); genuine schedules
/// walk the product configuration graph. Exact for the automaton variant
/// only — procedural cells fall back to ensemble replay, exactly like the
/// pair decide path. No orbit quotient at `k > 2`: the ensemble grids are
/// capped at `n ≤ 7`, where deciding every tuple directly is affordable.
fn run_cell_ensemble_decide(
    cell: &Cell,
    inst: &SweepInstance,
) -> Option<(SweepRow, Option<Certificate>)> {
    if cell.variant != Variant::BasicWalkFsa {
        return run_cell_ensemble_replay(cell, inst).map(|row| (row, None));
    }
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let starts = inst.tuples.get(cell.pair_index)?.as_slice();
    let fsa = inst.basic_walk_fsa();
    let ((delay, schedule), esched) = cell.ensemble_mode(n);
    let (budget, provisioned_bits) =
        ensemble_budget_and_provisioned(cell, inst, n, leaves, &esched);

    let decision: EnsembleDecision = match esched.as_start_delays() {
        Some(delays) => {
            // The per-lane solo lassos come from the same persistent store
            // the pair decide path reads — the tabulation is shared across
            // every tuple, delay class, and sweep repetition touching the
            // start.
            let lassos: Vec<solo_cache::Slot> = starts
                .iter()
                .map(|&s| solo_cache::lasso(inst, cell.family, cell.n, cell.variant, s))
                .collect();
            let refs: Vec<&SoloLasso> = lassos.iter().map(|l| l.as_ref()).collect();
            decide_ensemble_from_lassos(&refs, &delays)
        }
        None => decide_ensemble(tree, fsa, starts, &esched),
    };

    let row = |outcome: (bool, Option<u64>, u64)| {
        stamp_ensemble(
            make_row(
                cell,
                inst,
                n,
                leaves,
                (delay, schedule.clone()),
                outcome,
                budget,
                provisioned_bits,
                fsa.memory_bits(),
                (starts[0], starts[1]),
                true,
            ),
            starts,
        )
    };
    Some(match decision.round() {
        Some(round) => (row((true, Some(round), decision.crossings_within(round))), None),
        None => {
            let lasso = decision.lasso().expect("no round means a lasso");
            let cert = Certificate {
                experiment: cell.experiment.clone(),
                family: cell.family.name().to_string(),
                size: cell.n,
                n,
                tree_seed: inst.tree_seed,
                variant: cell.variant.name().to_string(),
                start_a: starts[0],
                start_b: starts[1],
                verdict: "never-gathers".to_string(),
                schedule: schedule.clone(),
                delay,
                round: None,
                delays_checked: None,
                lasso_stem: Some(lasso.stem),
                lasso_period: Some(lasso.period),
                verified: Some(verify_ensemble_lasso(tree, fsa, starts, &esched, lasso)),
                agents: Some(starts.len()),
                start_rest: Some(starts[2..].to_vec()),
            };
            (row((false, None, decision.crossings_within(budget))), Some(cert))
        }
    })
}

/// Executes one cell on a prebuilt instance by *stepping* both agents
/// (the [`Executor::DynStepping`] path; also the replay fallback). `inst`
/// must be (equal to) `SweepInstance::for_cell(cell)` — the executor
/// guarantees this by keying instances on `(family, n, tree_index)`
/// within one spec (the enumerated family keys each tree individually).
pub fn run_cell_on(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    if cell.agents > 2 {
        // The k-lane grid admits no adversarial axis (grid-filtered), so
        // the ensemble stepping path answers every cell.
        return run_cell_ensemble_stepping(cell, inst);
    }
    if cell.delay == Delay::Adversarial {
        // Only the quantifier layer can answer "every delay".
        return run_cell_decide(cell, inst);
    }
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let &(start_a, start_b) = inst.pairs.get(cell.pair_index)?;

    // One generic runner per activation mode: the θ path steps through the
    // dyn-compatible `run_pair` wrapper exactly as before (measured-fastest
    // — monomorphizing the round loop benched slower, see the
    // `sim_hot_path/pair_rounds` static-vs-dyn comparison); genuinely
    // scheduled cells step the same agents under `run_pair_scheduled`.
    let (delay, schedule, budget, provisioned_bits, stepper): (
        u64,
        Option<String>,
        u64,
        u64,
        Box<dyn Fn(&mut dyn rvz_agent::model::Agent, &mut dyn rvz_agent::model::Agent) -> PairRun>,
    ) = match cell.mode(n) {
        CellMode::Delay(delay) => {
            let (budget, provisioned) = budget_and_provisioned(cell, inst, n, leaves, delay, None);
            let cfg = PairConfig::delayed(delay, budget);
            let step = move |x: &mut dyn rvz_agent::model::Agent,
                             y: &mut dyn rvz_agent::model::Agent| {
                run_pair(tree, start_a, start_b, x, y, cfg)
            };
            (delay, None, budget, provisioned, Box::new(step))
        }
        CellMode::Scheduled(spec) => {
            let sched = spec.resolve(n);
            let (budget, provisioned) =
                budget_and_provisioned(cell, inst, n, leaves, 0, Some(&sched));
            let step = move |x: &mut dyn rvz_agent::model::Agent,
                             y: &mut dyn rvz_agent::model::Agent| {
                run_pair_scheduled(tree, start_a, start_b, x, y, &sched, budget, false)
            };
            (0, Some(spec.label(n)), budget, provisioned, Box::new(step))
        }
    };

    let (run, measured_bits) = match cell.variant {
        Variant::TreeRvz => {
            let mut x = TreeRendezvousAgent::new();
            let mut y = TreeRendezvousAgent::new();
            let run = stepper(&mut x, &mut y);
            (run, x.memory_bits_measured().max(y.memory_bits_measured()))
        }
        Variant::DelayRobust => {
            let mut x = DelayRobustAgent::new();
            let mut y = DelayRobustAgent::new();
            let run = stepper(&mut x, &mut y);
            (run, x.memory_bits_measured().max(y.memory_bits_measured()))
        }
        Variant::PrimePath => {
            let mut x = PrimePathAgent::unbounded();
            let mut y = PrimePathAgent::unbounded();
            let run = stepper(&mut x, &mut y);
            use rvz_agent::model::Agent;
            (run, x.memory_bits().max(y.memory_bits()))
        }
        Variant::BasicWalkFsa => {
            let fsa = inst.basic_walk_fsa();
            let mut x = fsa.runner();
            let mut y = fsa.runner();
            let run = stepper(&mut x, &mut y);
            use rvz_agent::model::Agent;
            (run, x.memory_bits().max(y.memory_bits()))
        }
    };

    Some(make_row(
        cell,
        inst,
        n,
        leaves,
        (delay, schedule),
        bounded_outcome(&run),
        budget,
        provisioned_bits,
        measured_bits,
        (start_a, start_b),
        false,
    ))
}

/// Demand-driven recording growth: at least `need`, at least double the
/// current horizon (so a cell retries O(log) times, not per round), never
/// past the budget or the hard cap.
fn grow_target(current: u64, need: u64, budget: u64) -> u64 {
    need.max(current.saturating_mul(2))
        .max(1 << 12)
        .min(budget)
        .min(trace_cache::MAX_RECORD_ROUNDS)
        .max(need)
}

/// Executes one cell from recorded trajectories (the
/// [`Executor::TraceReplay`] path): both timelines come from the
/// process-wide trace store keyed `(family, n, tree_seed, start,
/// variant)`, are extended on demand, and the cell is decided by
/// `rvz_sim::trace::replay_pair` — no agent stepping on warm keys. Rows
/// are byte-identical to [`run_cell_on`]; cells that would need recordings
/// past the cap fall back to it.
pub fn run_cell_replay(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    if cell.agents > 2 {
        return run_cell_ensemble_replay(cell, inst);
    }
    if cell.delay == Delay::Adversarial {
        // Only the quantifier layer can answer "every delay".
        return run_cell_decide(cell, inst);
    }
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let &(start_a, start_b) = inst.pairs.get(cell.pair_index)?;

    // Genuinely scheduled cells replay against the *same* recordings as
    // every θ cell (the trace store key has no schedule axis): the frozen
    // semantics makes a solo trajectory a pure function of activation
    // count, so the schedule only re-times the merge. The θ-equivalent
    // metadata below mirrors the mode split of [`run_cell_on`].
    let (delay, sched): (u64, Option<(ScheduleSpec, Schedule)>) = match cell.mode(n) {
        CellMode::Delay(delay) => (delay, None),
        CellMode::Scheduled(spec) => (0, Some((spec, spec.resolve(n)))),
    };
    let (budget, provisioned_bits) =
        budget_and_provisioned(cell, inst, n, leaves, delay, sched.as_ref().map(|(_, s)| s));
    let cfg = PairConfig::delayed(delay, budget);

    let slot_a = trace_cache::slot(inst, cell.family, cell.n, cell.variant, start_a);
    let slot_b = trace_cache::slot(inst, cell.family, cell.n, cell.variant, start_b);
    // A slot poisoned by a cancelled attempt is safe to re-enter: the
    // cancellation checkpoints sit at round boundaries, so a recording
    // interrupted mid-growth is a shorter but *consistent* prefix.
    fn enter(slot: &trace_cache::Slot) -> std::sync::MutexGuard<'_, trace_cache::VariantRecorder> {
        slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
    loop {
        rvz_sim::cancel::checkpoint();
        // Feasible pairs have distinct starts, so the slots differ; lock
        // them in start order so cells sharing an endpoint cannot deadlock.
        let (mut ga, mut gb);
        if start_a <= start_b {
            ga = enter(&slot_a);
            gb = enter(&slot_b);
        } else {
            gb = enter(&slot_b);
            ga = enter(&slot_a);
        }
        let verdict = match &sched {
            None => replay_pair(tree, ga.trajectory(), gb.trajectory(), cfg),
            Some((_, s)) => {
                replay_pair_scheduled(tree, ga.trajectory(), gb.trajectory(), s, budget, false)
            }
        };
        match verdict {
            Replay::Decided(run) => {
                // The stepping path reports the meters after exactly as
                // many activations as each agent got by the final round;
                // read the same points off the recorded mark lists (the
                // θ path's counts are `round` and `round − θ`, the
                // scheduled path's come from the activation index).
                let end = run.outcome.round().unwrap_or(budget);
                let (acts_a, acts_b) = match &sched {
                    None => (end, end.saturating_sub(delay)),
                    Some((_, s)) => (s.index_a().acts_at(end), s.index_b().acts_at(end)),
                };
                let measured_bits =
                    ga.trajectory().bits_at(acts_a).max(gb.trajectory().bits_at(acts_b));
                return Some(make_row(
                    cell,
                    inst,
                    n,
                    leaves,
                    (delay, sched.map(|(spec, _)| spec.label(n))),
                    bounded_outcome(&run),
                    budget,
                    provisioned_bits,
                    measured_bits,
                    (start_a, start_b),
                    false,
                ));
            }
            Replay::NeedMore { a_rounds, b_rounds } => {
                if a_rounds > trace_cache::MAX_RECORD_ROUNDS
                    || b_rounds > trace_cache::MAX_RECORD_ROUNDS
                {
                    drop(ga);
                    drop(gb);
                    return run_cell_on(cell, inst);
                }
                // Grow only the lane(s) the verdict flagged (`0` / already
                // decided means "long enough") — a warm recording must not
                // be re-stepped just because its partner was short. Both
                // verdict flavors report *solo recording rounds*, i.e.
                // activation counts.
                if !ga.trajectory().decided_to(a_rounds) {
                    let target = grow_target(ga.trajectory().rounds(), a_rounds, budget);
                    ga.record_to(tree, target);
                }
                if !gb.trajectory().decided_to(b_rounds) {
                    let target = grow_target(gb.trajectory().rounds(), b_rounds, budget);
                    gb.record_to(tree, target);
                }
            }
        }
    }
}

/// Executes one cell through the exact decider (the
/// [`Executor::ExactDecide`] path); see [`run_cell_decide_certified`] for
/// the certificate-carrying form.
pub fn run_cell_decide(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    run_cell_decide_certified(cell, inst).map(|(row, _)| row)
}

/// Executes one cell by reachability over the joint configuration graph
/// ([`rvz_lowerbounds::decide`]) — no round budget. Exact for the
/// automaton variant; procedural-agent cells fall back to the replay
/// executor (their configuration spaces are not exported). Fixed-delay
/// rows are byte-identical to the bounded executors' except for
/// `certified: true`: the meeting round, the crossing count *at the
/// bounded executors' budget* (closed-form along the certified cycle) and
/// every provenance field coincide. Returns the row plus a
/// [`Certificate`] for never-meets and universal-delay cells.
pub fn run_cell_decide_certified(
    cell: &Cell,
    inst: &SweepInstance,
) -> Option<(SweepRow, Option<Certificate>)> {
    if cell.agents > 2 {
        return run_cell_ensemble_decide(cell, inst);
    }
    if cell.variant != Variant::BasicWalkFsa {
        // The grid filter keeps adversarial delays off procedural agents;
        // guard against hand-built cells re-entering the replay path.
        assert!(cell.delay != Delay::Adversarial, "adversarial delay needs the automaton variant");
        return run_cell_replay(cell, inst).map(|row| (row, None));
    }
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let &(start_a, start_b) = inst.pairs.get(cell.pair_index)?;
    let fsa = inst.basic_walk_fsa();
    let provisioned_bits = fsa.memory_bits();
    let measured_bits = fsa.memory_bits();

    let base_certificate = |verdict: &str, delay: u64| Certificate {
        experiment: cell.experiment.clone(),
        family: cell.family.name().to_string(),
        size: cell.n,
        n,
        tree_seed: inst.tree_seed,
        variant: cell.variant.name().to_string(),
        start_a,
        start_b,
        verdict: verdict.to_string(),
        schedule: None,
        delay,
        round: None,
        delays_checked: None,
        lasso_stem: None,
        lasso_period: None,
        verified: None,
        agents: None,
        start_rest: None,
    };
    let certificate = |verdict: &str,
                       delay: u64,
                       round: Option<u64>,
                       delays_checked: Option<u64>,
                       lasso: Option<&rvz_lowerbounds::Lasso>| {
        Certificate {
            round,
            delays_checked,
            lasso_stem: lasso.map(|l| l.stem),
            lasso_period: lasso.map(|l| l.period),
            verified: lasso.map(|l| verify_lasso(tree, fsa, start_a, start_b, delay, l)),
            ..base_certificate(verdict, delay)
        }
    };
    // The one certified-row assembler: shares [`make_row`] with the
    // bounded executors, so the 20-field row shape lives in one place.
    let row = |(delay, schedule): (u64, Option<String>),
               outcome: (bool, Option<u64>, u64),
               budget: u64| {
        make_row(
            cell,
            inst,
            n,
            leaves,
            (delay, schedule),
            outcome,
            budget,
            provisioned_bits,
            measured_bits,
            (start_a, start_b),
            true,
        )
    };

    // The orbit quotient: classify the cell's delay axis, pick the orbit
    // table whose group is sound for it, decide the orbit representative
    // once per `(instance, delay class)` — both solo halves from the
    // process-wide store — and replicate the relabeled verdict to the
    // rest of the orbit. Replication is exact (see
    // [`rvz_lowerbounds::decide::Decision::relabel`]): the row below is
    // byte-identical to deciding the pair directly, and the certificate
    // is re-verified against *this* pair's starts.
    enum Path {
        Fixed(u64),
        Universal,
        Scheduled(ScheduleSpec, Schedule),
    }
    let path = match cell.delay {
        Delay::Adversarial => Path::Universal,
        // Genuinely scheduled cells take the cycle-position product
        // construction; start-delay-shaped specs fall through to the
        // θ-indexed decider and emit byte-identical legacy rows.
        Delay::Schedule(spec) if spec.as_start_delay().is_none() => {
            Path::Scheduled(spec, spec.resolve(n))
        }
        _ => match cell.mode(n) {
            CellMode::Delay(delay) => Path::Fixed(delay),
            CellMode::Scheduled(_) => unreachable!("genuine schedules matched above"),
        },
    };
    // The flip acts on space and is sound under every activation pattern;
    // the swap exchanges the agents and is sound only when the schedule
    // treats the lanes identically (θ = 0 / lane-symmetric schedules —
    // never the ∀-delay quantifier, whose θ axis is lane-asymmetric).
    let allow_swap = match &path {
        Path::Fixed(delay) => *delay == 0,
        Path::Universal => false,
        Path::Scheduled(_, sched) => sched.lane_symmetric(),
    };
    let (rep, action) = inst.orbit_lookup(allow_swap)[cell.pair_index];
    let (rep_a, rep_b) = inst.pairs[rep];
    let solo = |start| solo_cache::lasso(inst, cell.family, cell.n, cell.variant, start);
    let slot = inst.rep_decision((cell.delay.code(), rep), || match &path {
        Path::Fixed(delay) => {
            // Feasible pairs have distinct starts, so the precomputed-
            // lasso entry points apply.
            RepDecision::Fixed(decide_from_lassos(&solo(rep_a), &solo(rep_b), *delay))
        }
        Path::Universal => {
            RepDecision::Universal(worst_case_from_lassos(&solo(rep_a), &solo(rep_b)))
        }
        Path::Scheduled(_, sched) => {
            RepDecision::Scheduled(decide_pair_scheduled(tree, fsa, rep_a, rep_b, sched))
        }
    });
    let rep_decision = slot.get().expect("representative decided above");
    let relabeled;
    let decided: &RepDecision = if action == OrbitAction::IDENTITY {
        rep_decision
    } else {
        relabeled = rep_decision.relabel(action, inst.flip_map());
        &relabeled
    };

    Some(match (&path, decided) {
        (Path::Scheduled(spec, sched), RepDecision::Scheduled(decision)) => {
            let budget = schedule_budget_for(n, sched);
            let label = spec.label(n);
            match decision.round() {
                Some(round) => {
                    let crossings = decision.crossings_within(round);
                    (row((0, Some(label)), (true, Some(round), crossings), budget), None)
                }
                None => {
                    let lasso = decision.lasso().expect("no round means a lasso");
                    let cert = Certificate {
                        schedule: Some(label.clone()),
                        lasso_stem: Some(lasso.stem),
                        lasso_period: Some(lasso.period),
                        verified: Some(verify_schedule_lasso(
                            tree, fsa, start_a, start_b, sched, lasso,
                        )),
                        ..base_certificate("never-meets", 0)
                    };
                    let crossings = decision.crossings_within(budget);
                    (row((0, Some(label)), (false, None, crossings), budget), Some(cert))
                }
            }
        }
        (Path::Universal, RepDecision::Universal(wc)) => match wc {
            WorstCase::AllMeet { worst_delay, worst_round, delays_checked, decision } => {
                let budget = basic_walk_budget_for(n, *worst_delay);
                let crossings = decision.crossings_within(*worst_round);
                let cert = certificate(
                    "all-delays-meet",
                    *worst_delay,
                    Some(*worst_round),
                    Some(*delays_checked),
                    None,
                );
                (
                    row((*worst_delay, None), (true, Some(*worst_round), crossings), budget),
                    Some(cert),
                )
            }
            WorstCase::Defeated { delay, decision, delays_checked } => {
                let budget = basic_walk_budget_for(n, *delay);
                let lasso = decision.lasso().expect("defeat carries a lasso");
                let cert =
                    certificate("delay-defeats", *delay, None, Some(*delays_checked), Some(lasso));
                (
                    row((*delay, None), (false, None, decision.crossings_within(budget)), budget),
                    Some(cert),
                )
            }
        },
        (Path::Fixed(delay), RepDecision::Fixed(decision)) => {
            let delay = *delay;
            let budget = basic_walk_budget_for(n, delay);
            match decision.round() {
                Some(round) => {
                    // `crossings_within(round)` == the simulator's count:
                    // it stops counting at the meeting round too.
                    let crossings = decision.crossings_within(round);
                    (row((delay, None), (true, Some(round), crossings), budget), None)
                }
                None => {
                    let lasso = decision.lasso().expect("no round means a lasso");
                    let cert = certificate("never-meets", delay, None, None, Some(lasso));
                    let crossings = decision.crossings_within(budget);
                    (row((delay, None), (false, None, crossings), budget), Some(cert))
                }
            }
        }
        _ => unreachable!("the memo key separates decision flavors"),
    })
}

/// What a sweep produced: the rows, plus how much of the planned grid they
/// cover. `dropped_cells > 0` means some instances had fewer feasible start
/// pairs than `pairs_per_cell` — those cells never ran, and pretending
/// otherwise would make row counts silently incomparable across sizes.
/// `certificates` carries the exact decider's machine-checkable evidence
/// (empty under the bounded executors), in grid order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub rows: Vec<SweepRow>,
    pub planned_cells: usize,
    pub dropped_cells: usize,
    pub certificates: Vec<Certificate>,
    /// Journal appends that failed (or were skipped after the journal was
    /// declared dead) during this run — `0` without a journal. Nonzero
    /// means the report in hand is complete but the on-disk checkpoint is
    /// not; `--strict-checkpoint` turns the first such failure into a
    /// hard error instead.
    pub append_failures: u64,
}

/// Dispatches one cell to `executor` — the single dispatch shared by
/// [`run_with_options`] and the watchdog's downgrade chain. Adversarial
/// cells are answered by the quantifier layer under *every* executor,
/// routed through the certified entry point so the universal verdict's
/// evidence (the per-cell [`Certificate`], lassos included) is kept in
/// the report instead of being computed and dropped inside the bounded
/// executors' delegation.
pub fn run_cell_with_executor(
    cell: &Cell,
    inst: &SweepInstance,
    executor: Executor,
) -> (Option<SweepRow>, Option<Certificate>) {
    let decide_certified = || match run_cell_decide_certified(cell, inst) {
        Some((row, cert)) => (Some(row), cert),
        None => (None, None),
    };
    match executor {
        _ if cell.delay == Delay::Adversarial => decide_certified(),
        Executor::TraceReplay => (run_cell_replay(cell, inst), None),
        Executor::DynStepping => (run_cell_on(cell, inst), None),
        Executor::ExactDecide => decide_certified(),
        // The planner owns Auto routing end to end
        // ([`crate::planner::run_cell_auto`]): a fall-through here would
        // have to invent a spec-less cost model whose `planned` bytes
        // diverge from the real planner's, silently breaking
        // thread-count byte-identity.
        Executor::Auto => unreachable!("Executor::Auto is routed through crate::planner"),
    }
}

/// The watchdog's retry ladder: a timed-out attempt moves to the
/// next-cheaper executor before the cell is given up as [`timed_out_row`].
/// "Cheaper" here is per-cell marginal cost — the decider explores a joint
/// configuration graph, replay decides from (possibly warm) recordings,
/// and plain stepping does the minimum: one bounded run, no shared state.
fn downgrade_chain(executor: Executor) -> &'static [Executor] {
    match executor {
        Executor::ExactDecide => {
            &[Executor::ExactDecide, Executor::TraceReplay, Executor::DynStepping]
        }
        Executor::TraceReplay => &[Executor::TraceReplay, Executor::DynStepping],
        Executor::DynStepping => &[Executor::DynStepping],
        // The planner maps its choice to a fixed executor before entering
        // the watchdog ([`crate::planner::run_cell_auto_watchdogged`]).
        Executor::Auto => unreachable!("Executor::Auto is routed through crate::planner"),
    }
}

/// The shared shape of a quarantine row: "no run happened" — `met: false`,
/// `rounds: null`, zero crossings and measured bits, `certified: false`.
/// The caller stamps the reason flag (`timed_out` or `poisoned`); provenance
/// (budget, provisioned bits, θ/schedule) is still reported so the row
/// names exactly which computation was skipped. `None` when the pair index
/// is out of range (the ordinary dropped-cell case).
fn quarantine_row(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    if cell.agents > 2 {
        let starts = inst.tuples.get(cell.pair_index)?.as_slice();
        let ((delay, schedule), esched) = cell.ensemble_mode(n);
        let (budget, provisioned_bits) =
            ensemble_budget_and_provisioned(cell, inst, n, leaves, &esched);
        return Some(stamp_ensemble(
            make_row(
                cell,
                inst,
                n,
                leaves,
                (delay, schedule),
                (false, None, 0),
                budget,
                provisioned_bits,
                0,
                (starts[0], starts[1]),
                false,
            ),
            starts,
        ));
    }
    let &starts = inst.pairs.get(cell.pair_index)?;
    let (mode, budget, provisioned_bits) = if cell.delay == Delay::Adversarial {
        // The quantifier never reached a decisive delay; there is no θ or
        // budget to report, only the provisioned automaton size.
        ((0u64, None), 0u64, inst.basic_walk_fsa().memory_bits())
    } else {
        let (delay, schedule, sched) = match cell.mode(n) {
            CellMode::Delay(delay) => (delay, None, None),
            CellMode::Scheduled(spec) => (0, Some(spec.label(n)), Some(spec.resolve(n))),
        };
        let (budget, provisioned) =
            budget_and_provisioned(cell, inst, n, leaves, delay, sched.as_ref());
        ((delay, schedule), budget, provisioned)
    };
    Some(make_row(
        cell,
        inst,
        n,
        leaves,
        mode,
        (false, None, 0),
        budget,
        provisioned_bits,
        0,
        starts,
        false,
    ))
}

/// The explicit timeout row: a cell whose every attempt blew the wall
/// budget, with `timed_out: true` so it can never be mistaken for a
/// certified never-meets or an in-budget timeout.
fn timed_out_row(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    let mut row = quarantine_row(cell, inst)?;
    row.timed_out = Some(true);
    Some(row)
}

/// The explicit poisoned-shard row: a cell whose shard killed every worker
/// sent to it (supervisor attempt cap exceeded), with `poisoned: true` —
/// same "no fabricated measurements" discipline as [`timed_out_row`].
pub(crate) fn poisoned_row(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    let mut row = quarantine_row(cell, inst)?;
    row.poisoned = Some(true);
    Some(row)
}

/// Runs one cell under a wall-clock budget per attempt: the cell executes
/// on a watchdogged thread, and an attempt that exceeds `timeout` is
/// *cancelled* — the watchdog sets the attempt's cooperative cancellation
/// flag ([`rvz_sim::cancel`]), the executor loops observe it at their next
/// poll point and unwind, and the thread exits — while the cell retries
/// down [`downgrade_chain`]. (The thread is still detached rather than
/// joined so one unresponsive attempt cannot wedge the sweep, but unlike
/// the old detach-and-forget scheme it terminates promptly instead of
/// stepping to the end of a possibly astronomical budget; pinned by
/// `tests/watchdog_threads.rs`.) A cell that exhausts the chain is
/// quarantined as an explicit [`timed_out_row`]. Adversarial cells get a
/// single attempt: every executor routes them through the same quantifier
/// layer, so a "downgrade" would re-run the identical computation.
pub(crate) fn run_cell_watchdogged(
    cell: &Cell,
    inst: &Arc<SweepInstance>,
    executor: Executor,
    timeout: std::time::Duration,
) -> (Option<SweepRow>, Option<Certificate>) {
    use rvz_sim::cancel;
    cancel::silence_cancelled_panics();
    let chain: &[Executor] = if cell.delay == Delay::Adversarial {
        &[Executor::ExactDecide]
    } else {
        downgrade_chain(executor)
    };
    for (step, &attempt) in chain.iter().enumerate() {
        let (tx, rx) = std::sync::mpsc::channel();
        let cancel_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let c = cell.clone();
        let i = Arc::clone(inst);
        let flag = Arc::clone(&cancel_flag);
        std::thread::spawn(move || {
            let _guard = cancel::CancelGuard::install(flag);
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_cell_with_executor(&c, &i, attempt)
            })) {
                // The receiver may be long gone (timeout) — a dead send is fine.
                Ok(out) => drop(tx.send(out)),
                Err(payload) if cancel::CancelGuard::is_cancelled_payload(&*payload) => {}
                Err(payload) => std::panic::resume_unwind(payload),
            }
        });
        match rx.recv_timeout(timeout) {
            Ok(out) => return out,
            Err(_) => {
                cancel_flag.store(true, std::sync::atomic::Ordering::Relaxed);
                eprintln!(
                    "warning: cell {:#018x} ({} n={} {} pair {}) exceeded {timeout:?} on the \
                     {attempt:?} executor — {}",
                    cell.cell_seed(),
                    cell.family.name(),
                    cell.n,
                    cell.variant.name(),
                    cell.pair_index,
                    if step + 1 < chain.len() {
                        "retrying on the next-cheaper executor"
                    } else {
                        "quarantining as a timed_out row"
                    },
                );
            }
        }
    }
    (timed_out_row(cell, inst), None)
}

/// Crash-safety and robustness options for [`run_with_options`]; the
/// plain [`run`] entry point uses the default (no journal, no watchdog).
#[derive(Debug, Default)]
pub struct RunOptions<'a> {
    /// Checkpoint journal: cells already journaled are skipped (their
    /// recorded outcome is spliced into the report unchanged), cells
    /// computed this run are appended as they complete.
    pub journal: Option<&'a crate::checkpoint::Journal>,
    /// Per-cell wall budget (`run_cell_watchdogged`). **Opt-in and
    /// determinism-breaking across runs**: whether a cell times out
    /// depends on the machine and the moment, so two runs with a timeout
    /// may differ — the flag exists to survive pathological cells, not
    /// for reference outputs.
    pub cell_timeout: Option<std::time::Duration>,
}

/// Runs the whole grid. Rows come back in grid order whatever the thread
/// count — see the module docs for why that matters.
///
/// Instances are built once per `(family, n)` key — in parallel, since
/// each is a pure function of its coordinates — and shared immutably
/// across the delay × variant × pair sub-grid. Cell results are unchanged
/// (same seeds, same trees, same pairs), so the output stays byte-identical
/// to the per-cell-rebuild executor for every `--threads` value.
pub fn run(spec: &SweepSpec) -> SweepReport {
    run_with_options(spec, &RunOptions::default())
}

/// [`run`] plus the crash-safety layer: journaled cells are skipped and
/// spliced back in grid order, completed cells are appended to the
/// journal, and each cell optionally runs under the per-cell watchdog.
/// Because every row is a pure function of the cell coordinates and rows
/// are collected in grid order, a resumed sweep's report — and its JSON —
/// is byte-identical to an uninterrupted run's, for any thread count
/// (pinned by `tests/crash_resume.rs` and the CI `crash-resume` job).
pub fn run_with_options(spec: &SweepSpec, opts: &RunOptions<'_>) -> SweepReport {
    let grid = cells(spec);
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(spec.threads).build().expect("thread pool");

    // One representative cell per instance key, in first-appearance order
    // (the enumerated family keys each tree individually).
    type InstanceKey = (Family, usize, Option<u64>);
    let key = |c: &Cell| -> InstanceKey { (c.family, c.n, c.tree_index) };
    let mut reps: Vec<&Cell> = Vec::new();
    let mut seen: std::collections::HashSet<InstanceKey> = std::collections::HashSet::new();
    for cell in &grid {
        if seen.insert(key(cell)) {
            reps.push(cell);
        }
    }
    // Built once per run so every worker prices cells against the same
    // axes; the planner is a pure function of the spec, which is what
    // keeps `planned` bytes identical across `--threads` and `--workers`.
    let planner =
        (spec.executor == Executor::Auto).then(|| crate::planner::Planner::from_spec(spec));
    let run_one = |c: &Cell, inst: &Arc<SweepInstance>| {
        let cell_seed = c.cell_seed();
        if let Some(journal) = opts.journal {
            if let Some(rec) = journal.lookup(cell_seed) {
                return (rec.row.clone(), rec.certificate.clone());
            }
        }
        let out = match (&planner, opts.cell_timeout) {
            (Some(p), Some(timeout)) => {
                crate::planner::run_cell_auto_watchdogged(c, inst, p, timeout)
            }
            (Some(p), None) => crate::planner::run_cell_auto(c, inst, p),
            (None, Some(timeout)) => run_cell_watchdogged(c, inst, spec.executor, timeout),
            (None, None) => run_cell_with_executor(c, inst, spec.executor),
        };
        if let Some(journal) = opts.journal {
            journal.record(&crate::checkpoint::CellRecord {
                cell_seed,
                row: out.0.clone(),
                certificate: out.1.clone(),
            });
        }
        out
    };
    let results: Vec<(Option<SweepRow>, Option<Certificate>)> = pool.install(|| {
        let built: Vec<Arc<SweepInstance>> =
            reps.par_iter().map(|c| Arc::new(SweepInstance::for_cell(c))).collect();
        let by_key: HashMap<InstanceKey, Arc<SweepInstance>> =
            reps.iter().zip(built).map(|(c, inst)| (key(c), inst)).collect();
        grid.par_iter().map(|c| run_one(c, &by_key[&key(c)])).collect()
    });
    if let Some(journal) = opts.journal {
        journal.sync();
    }
    let planned_cells = results.len();
    let mut rows = Vec::with_capacity(planned_cells);
    let mut certificates = Vec::new();
    for (row, cert) in results {
        rows.extend(row);
        certificates.extend(cert);
    }
    SweepReport {
        dropped_cells: planned_cells - rows.len(),
        planned_cells,
        rows,
        certificates,
        append_failures: opts.journal.map_or(0, |j| j.appends_lost()),
    }
}

/// Renders a sweep report as the same kind of aligned table the classic
/// experiment drivers print.
pub fn to_table(experiment: &str, report: &SweepReport) -> Table {
    let rows = &report.rows;
    let mut t = Table::new(
        &experiment.to_uppercase(),
        &format!("sweep grid ({} rows)", rows.len()),
        &[
            "family",
            "n",
            "ℓ",
            "variant",
            "delay",
            "a",
            "b",
            "met",
            "rounds",
            "prov-bits",
            "meas-bits",
        ],
    );
    for r in rows {
        t.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.leaves.to_string(),
            r.variant.clone(),
            r.schedule.clone().unwrap_or_else(|| r.delay.to_string()),
            r.start_a.to_string(),
            r.start_b.to_string(),
            if r.met { "y" } else { "N" }.to_string(),
            r.rounds.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
            r.provisioned_bits.to_string(),
            r.measured_bits.to_string(),
        ]);
    }
    let met = rows.iter().filter(|r| r.met).count();
    t.note(&format!("{met}/{} cells met within budget", rows.len()));
    let certified = rows.iter().filter(|r| r.certified).count();
    if certified > 0 {
        let never = rows.iter().filter(|r| r.certified && !r.met).count();
        t.note(&format!(
            "{certified} cells exactly decided ({never} certified never-meets, no timeouts)"
        ));
    }
    let timed_out = rows.iter().filter(|r| r.timed_out == Some(true)).count();
    if timed_out > 0 {
        t.note(&format!(
            "{timed_out} cells quarantined by the --cell-timeout watchdog (no run recorded)"
        ));
    }
    let poisoned = rows.iter().filter(|r| r.poisoned == Some(true)).count();
    if poisoned > 0 {
        t.note(&format!(
            "{poisoned} cells quarantined as poisoned (their shard exceeded the worker attempt \
             cap; no run recorded)"
        ));
    }
    if report.append_failures > 0 {
        t.note(&format!(
            "{} journal appends failed — the checkpoint on disk is incomplete (rerun with \
             --strict-checkpoint to make this fatal)",
            report.append_failures
        ));
    }
    if report.dropped_cells > 0 {
        t.note(&format!(
            "{} of {} planned cells dropped (instance had fewer feasible start pairs than --pairs)",
            report.dropped_cells, report.planned_cells
        ));
    }
    t
}

/// Default grid for each experiment id (`e1`..`e9`); `None` for unknown
/// ids. `sizes`/`threads`/`seed` come from the caller (CLI).
pub fn preset(id: &str, sizes: &[usize], threads: usize, seed: u64) -> Option<SweepSpec> {
    use Delay::*;
    use Family::*;
    use Variant::*;
    let spec = |families: Vec<Family>, delays: Vec<Delay>, variants: Vec<Variant>| SweepSpec {
        experiment: id.to_string(),
        families,
        sizes: sizes.to_vec(),
        delays,
        variants,
        pairs_per_cell: 2,
        seed,
        threads,
        executor: Executor::default(),
        agents: 2,
    };
    Some(match id {
        // Theorem 3.1 territory: arbitrary delays on lines.
        "e1" => spec(vec![Line, LineRnd], vec![Fixed(1), Fixed(7), LinearN], vec![DelayRobust]),
        // Theorem 4.1: simultaneous start across tree families.
        "e2" => spec(
            vec![Line, Spider3, Caterpillar, Random, CompleteBinary],
            vec![Zero],
            vec![TreeRvz],
        ),
        // Lemma 4.1: prime on paths.
        "e3" => spec(vec![Line], vec![Zero], vec![PrimePath]),
        // Theorem 4.2 territory: simultaneous start, adversarial labelings.
        "e4" => spec(vec![LineRnd, Random], vec![Zero], vec![TreeRvz, PrimePath]),
        // Theorem 4.3 territory: few-leaf side trees under delays.
        "e5" => spec(vec![Spider3, Caterpillar], vec![Zero, LinearN], vec![DelayRobust]),
        // §1.1 title claim: the two memory series side by side.
        "e6" => spec(vec![Line, Spider3], vec![Zero, LinearN], vec![TreeRvz, DelayRobust]),
        // Figure 2 machinery: contrasting structured families.
        "e7" => spec(vec![CompleteBinary, Binomial, Star], vec![Zero], vec![TreeRvz]),
        // Ablation-adjacent: the generic random workload, all variants
        // (the automaton variant doubles as the three-executor
        // differential workload — the only one the exact decider answers
        // natively).
        "e8" => spec(
            vec![Random, RandomDeg3],
            vec![Zero, Fixed(3), LinearN],
            vec![TreeRvz, DelayRobust, BasicWalkFsa],
        ),
        // Exhaustive certification: every free tree at each size, every
        // ordered feasible pair, delay 0 and the universal quantifier —
        // sampled families replaced by the whole instance space. Run with
        // `--executor decide`; `pairs_per_cell` is ignored (the pair axis
        // is exhaustive).
        "e9" => spec(vec![EnumFree], vec![Zero, Adversarial], vec![BasicWalkFsa]),
        // Activation schedules, exhaustively: every free tree × every
        // ordered feasible pair × the e10 schedule column — the legacy
        // start scenarios (simultaneous, θ=1) beside genuine per-round
        // delay faults (intermittent duty cycles, a mid-run crash). All
        // cells are bw-fsa, so the decide executor (the default) certifies
        // every one; the bounded executors answer the same grid within
        // the exact `schedule_budget_for` horizons for the differential
        // gates.
        "e10" => spec(
            vec![EnumFree],
            vec![
                Schedule(ScheduleSpec::Simultaneous),
                Schedule(ScheduleSpec::StartDelay(1)),
                Schedule(ScheduleSpec::Intermittent { period: 2, phase: 0 }),
                Schedule(ScheduleSpec::Intermittent { period: 3, phase: 0 }),
                Schedule(ScheduleSpec::CrashAfterHalfN),
            ],
            vec![BasicWalkFsa],
        ),
        // Gathering, exhaustively: three basic-walk copies on every free
        // tree × every ordered feasible start *triple* × the e10 headline
        // schedules. The point is the crash column: e10 certifies that a
        // mid-run crash never prevents a *pair* from meeting (the
        // survivor's Euler tour covers the tree), but a crashed copy
        // parks on a node and gathering demands all three co-locate
        // simultaneously — e11 certifies that rescue does **not** survive
        // the jump from rendezvous to gathering. All cells are bw-fsa, so
        // the decide executor (the default) certifies every one.
        "e11" => {
            let mut s = spec(
                vec![EnumFree],
                vec![
                    Schedule(ScheduleSpec::Simultaneous),
                    Schedule(ScheduleSpec::StartDelay(1)),
                    Schedule(ScheduleSpec::CrashAfterHalfN),
                ],
                vec![BasicWalkFsa],
            );
            s.agents = 3;
            s
        }
        _ => return None,
    })
}

/// The default size axis presets run when the CLI passes none.
pub const DEFAULT_SIZES: &[usize] = &[16, 32, 64, 128];

/// The default size axis of the exhaustive `e9` sweep: every tree with
/// `n ≤ 10` (201 free trees; the acceptance grid of the certification
/// workload — the orbit-quotiented decider keeps it CI-sized). The
/// `n = 11` axis (+235 trees) stays behind `just e9-full`; larger axes
/// are capped at [`MAX_ENUM_SIZE`].
pub const E9_DEFAULT_SIZES: &[usize] = &[2, 3, 4, 5, 6, 7, 8, 9, 10];

/// The default size axis of the `e10` schedule sweep: every free tree
/// with `n ≤ 8` (47 trees) — one size below e9, since the schedule
/// column multiplies the grid fivefold.
pub const E10_DEFAULT_SIZES: &[usize] = &[2, 3, 4, 5, 6, 7, 8];

/// The default size axis of the `e11` gathering sweep: every free tree
/// with `3 ≤ n ≤ 7` — one size below e10, since the ordered-triple axis
/// is a factor `n − 2` wider than the pair axis (and `n = 2` admits no
/// triple of distinct nodes at all).
pub const E11_DEFAULT_SIZES: &[usize] = &[3, 4, 5, 6, 7];

fn perf_grid(families: Vec<Family>, delays: Vec<Delay>, variants: Vec<Variant>) -> SweepSpec {
    SweepSpec {
        experiment: "bench".into(),
        families,
        sizes: vec![200],
        delays,
        variants,
        pairs_per_cell: 8,
        seed: 0x5EED_2010,
        threads: 1,
        executor: Executor::default(),
        agents: 2,
    }
}

/// The headline perf-trajectory grid at n ≈ 200: 5 instances × (4 delays ×
/// 8 pairs) of `bw-fsa` cells, each decided within its exact
/// [`basic_walk_budget_for`] horizon — the Chalopin-style delay-fault scan
/// the instance cache targets. Shared by the `sweep_cells` criterion bench
/// and the `bench_baseline` recorder so `BENCH_sweep.json` always measures
/// the same workload the bench tracks.
pub fn perf_grid_fsa_scan() -> SweepSpec {
    perf_grid(
        vec![Family::Line, Family::LineRnd, Family::Spider3, Family::Caterpillar, Family::Random],
        vec![Delay::Zero, Delay::Fixed(1), Delay::Fixed(7), Delay::LinearN],
        vec![Variant::BasicWalkFsa],
    )
}

/// The secondary perf-trajectory grid: E6/E8-shaped procedural agents,
/// where the rendezvous simulations dominate and the instance cache is a
/// smaller (but free) win. Tracked for regressions, not for wins.
pub fn perf_grid_variants() -> SweepSpec {
    let mut spec = perf_grid(
        vec![Family::Random, Family::Spider3],
        vec![Delay::Zero, Delay::Fixed(3), Delay::LinearN],
        vec![Variant::TreeRvz, Variant::DelayRobust],
    );
    spec.pairs_per_cell = 4;
    spec
}

/// The ensemble perf-trajectory grid: [`perf_grid_fsa_scan`]'s headline
/// delay scan widened to three lanes — the same 5 families × 4 delays ×
/// 8 starts at n ≈ 200, each cell an ordered feasible *triple* deciding
/// gathering within its exact k-lane horizon. `bench_baseline` times the
/// k-lane trace merge against k-lane stepping on it (`ensemble_cells` in
/// `BENCH_sweep.json`; the merge must at least keep pace).
pub fn perf_grid_ensemble() -> SweepSpec {
    let mut spec = perf_grid_fsa_scan();
    spec.agents = 3;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_sim::run_pair_fsa;

    fn small_spec(threads: usize) -> SweepSpec {
        SweepSpec {
            experiment: "test".into(),
            families: vec![Family::Line, Family::Spider3],
            sizes: vec![8, 16],
            delays: vec![Delay::Zero, Delay::Fixed(3)],
            variants: vec![Variant::DelayRobust, Variant::TreeRvz, Variant::BasicWalkFsa],
            pairs_per_cell: 2,
            seed: 0xC0FFEE,
            threads,
            executor: Executor::default(),
            agents: 2,
        }
    }

    #[test]
    fn grid_filters_unsupported_combinations() {
        let grid = cells(&small_spec(1));
        assert!(grid.iter().all(|c| c.variant != Variant::TreeRvz || c.delay == Delay::Zero));
        // 2 families × 2 sizes × (delay0×3 variants + delay3×2 variants) × 2 pairs
        assert_eq!(grid.len(), 2 * 2 * 5 * 2);
    }

    #[test]
    fn basic_walk_budget_is_a_decision_horizon() {
        // The bw-fsa budget claims to *decide* the meeting question: running
        // the same cell with a 4× budget must not change any outcome.
        let spec = SweepSpec {
            experiment: "bw".into(),
            families: vec![Family::Line, Family::Spider3, Family::Random],
            sizes: vec![9, 16],
            delays: vec![Delay::Zero, Delay::Fixed(2), Delay::LinearN],
            variants: vec![Variant::BasicWalkFsa],
            pairs_per_cell: 3,
            seed: 21,
            threads: 1,
            executor: Executor::default(),
            agents: 2,
        };
        let report = run(&spec);
        assert!(!report.rows.is_empty());
        for row in &report.rows {
            let family = spec.families.iter().find(|f| f.name() == row.family).unwrap();
            let tree = family.build(row.size, row.tree_seed);
            let fsa = rvz_agent::Fsa::basic_walk(tree.max_degree().max(1));
            let mut x = fsa.runner();
            let mut y = fsa.runner();
            let rerun = run_pair_fsa(
                &tree,
                row.start_a,
                row.start_b,
                &mut x,
                &mut y,
                PairConfig::delayed(row.delay, row.budget * 4),
            );
            assert_eq!(rerun.outcome.met(), row.met, "budget must be a decision horizon: {row:?}");
            if row.met {
                assert_eq!(rerun.outcome.round(), row.rounds);
            }
        }
    }

    #[test]
    fn fixed_zero_delay_is_the_simultaneous_scenario() {
        // Delay::Fixed(0) and Delay::Zero resolve identically; grid filters
        // must not silently drop simultaneous-start variants over spelling.
        let spec = SweepSpec {
            experiment: "zero".into(),
            families: vec![Family::Line],
            sizes: vec![8],
            delays: vec![Delay::Fixed(0)],
            variants: vec![Variant::TreeRvz, Variant::PrimePath],
            pairs_per_cell: 1,
            seed: 5,
            threads: 1,
            executor: Executor::default(),
            agents: 2,
        };
        let grid = cells(&spec);
        assert_eq!(grid.len(), 2, "both zero-delay variants must survive Fixed(0)");
    }

    #[test]
    fn cell_seeds_depend_on_coordinates_not_order() {
        let grid = cells(&small_spec(1));
        let seeds: Vec<u64> = grid.iter().map(Cell::cell_seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "cell seeds must be distinct");
        // Same instance ⇒ same tree seed, across delays/variants/pairs.
        for c in &grid {
            for d in &grid {
                if c.family == d.family && c.n == d.n {
                    assert_eq!(c.tree_seed(), d.tree_seed());
                    assert_eq!(c.pairs_seed(), d.pairs_seed());
                }
            }
        }
    }

    #[test]
    fn cached_executor_matches_per_cell_rebuild() {
        // The instance cache is an executor optimization only: running every
        // cell standalone (rebuilding tree + pair pool from its coordinates)
        // must produce the identical row stream.
        let spec = small_spec(2);
        let report = run(&spec);
        let rebuilt: Vec<SweepRow> = cells(&spec).iter().filter_map(run_cell).collect();
        assert_eq!(
            serde_json::to_string(&report.rows).unwrap(),
            serde_json::to_string(&rebuilt).unwrap(),
            "cached executor must match the rebuild-per-cell path byte-for-byte"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let report1 = run(&small_spec(1));
        let report4 = run(&small_spec(4));
        assert!(!report1.rows.is_empty());
        assert_eq!(report1.planned_cells, report4.planned_cells);
        assert_eq!(report1.dropped_cells, report4.dropped_cells);
        assert_eq!(
            serde_json::to_string(&report1.rows).unwrap(),
            serde_json::to_string(&report4.rows).unwrap(),
            "sweep must be byte-identical across thread counts"
        );
    }

    #[test]
    fn randomized_family_rows_replay_from_tree_seed() {
        // Finding-driven: a row from a randomized family must carry enough
        // provenance to rebuild the exact instance and rerun the cell.
        let spec = SweepSpec {
            experiment: "replay".into(),
            families: vec![Family::Random],
            sizes: vec![12],
            delays: vec![Delay::Fixed(2)],
            variants: vec![Variant::DelayRobust],
            pairs_per_cell: 1,
            seed: 7,
            threads: 1,
            executor: Executor::default(),
            agents: 2,
        };
        let report = run(&spec);
        assert_eq!(report.dropped_cells, 0);
        for row in &report.rows {
            let tree = Family::Random.build(row.size, row.tree_seed);
            assert_eq!(tree.num_nodes(), row.n, "tree_seed must rebuild the same instance");
            let mut x = DelayRobustAgent::new();
            let mut y = DelayRobustAgent::new();
            let rerun = run_pair(
                &tree,
                row.start_a,
                row.start_b,
                &mut x,
                &mut y,
                PairConfig::delayed(row.delay, row.budget),
            );
            assert_eq!(rerun.outcome.met(), row.met);
            assert_eq!(rerun.outcome.round(), row.rounds);
        }
    }

    #[test]
    fn dropped_cells_are_counted_not_hidden() {
        // A 4-node star has very few feasible pairs; asking for an absurd
        // pairs_per_cell must surface as dropped cells, not silence.
        let spec = SweepSpec {
            experiment: "drop".into(),
            families: vec![Family::Star],
            sizes: vec![4],
            delays: vec![Delay::Zero],
            variants: vec![Variant::DelayRobust],
            pairs_per_cell: 50,
            seed: 3,
            threads: 1,
            executor: Executor::default(),
            agents: 2,
        };
        let report = run(&spec);
        assert_eq!(report.planned_cells, 50);
        assert_eq!(report.rows.len() + report.dropped_cells, report.planned_cells);
        assert!(report.dropped_cells > 0, "star(4) cannot have 50 distinct feasible pairs");
        let table = to_table("drop", &report);
        assert!(table.render().contains("planned cells dropped"));
    }

    #[test]
    fn experiment_label_is_interned_across_cells_and_rows() {
        // ISSUE 3 satellite: the grid shares ONE `Arc<str>` label — no
        // per-cell / per-row `String` clone — and it serializes as a plain
        // JSON string.
        let spec = small_spec(1);
        let grid = cells(&spec);
        assert!(grid.windows(2).all(|w| Arc::ptr_eq(&w[0].experiment, &w[1].experiment)));
        let report = run(&spec);
        assert!(report.rows.windows(2).all(|w| Arc::ptr_eq(&w[0].experiment, &w[1].experiment)));
        let json = serde_json::to_string(&report.rows[0]).unwrap();
        assert!(json.contains("\"experiment\":\"test\""), "{json}");
    }

    #[test]
    fn orbit_quotient_is_invisible_cell_by_cell() {
        // Quotiented vs unquotiented, per cell: every decide row must
        // equal the *raw* decider's answer for that exact pair (the
        // quotient decides only the orbit representative and replicates
        // the relabeled verdict — invisibly, or it is wrong). Sampled
        // families and the exhaustive family both run; the exhaustive
        // pair pools are closed under swap, so multi-member orbits are
        // guaranteed to exercise the replication path.
        use rvz_lowerbounds::decide::{decide_pair, worst_case_delay};
        let spec = SweepSpec {
            experiment: "orbit".into(),
            families: vec![Family::Line, Family::Random, Family::EnumFree],
            sizes: vec![6, 7],
            delays: vec![Delay::Zero, Delay::Fixed(2), Delay::Adversarial],
            variants: vec![Variant::BasicWalkFsa],
            pairs_per_cell: 6,
            seed: 0x02B1,
            threads: 1,
            executor: Executor::ExactDecide,
            agents: 2,
        };
        let grid = cells(&spec);
        let mut replicated = 0usize;
        for cell in &grid {
            let inst = SweepInstance::for_cell(cell);
            let Some((row, cert)) = run_cell_decide_certified(cell, &inst) else {
                continue;
            };
            let allow_swap = cell.delay.is_always_zero();
            if inst.orbit_lookup(allow_swap)[cell.pair_index].1 != OrbitAction::IDENTITY {
                replicated += 1;
            }
            let fsa = inst.basic_walk_fsa();
            let (a, b) = inst.pairs[cell.pair_index];
            match cell.delay {
                Delay::Adversarial => match worst_case_delay(&inst.tree, fsa, a, b) {
                    rvz_lowerbounds::decide::WorstCase::AllMeet {
                        worst_delay,
                        worst_round,
                        ..
                    } => {
                        assert!(row.met, "{row:?}");
                        assert_eq!(row.rounds, Some(worst_round), "{row:?}");
                        assert_eq!(row.delay, worst_delay, "{row:?}");
                    }
                    rvz_lowerbounds::decide::WorstCase::Defeated { delay, .. } => {
                        assert!(!row.met, "{row:?}");
                        assert_eq!(row.delay, delay, "{row:?}");
                    }
                },
                delay => {
                    let theta = delay.resolve(inst.tree.num_nodes());
                    let direct = decide_pair(&inst.tree, fsa, a, b, theta);
                    assert_eq!(row.met, direct.met(), "{row:?}");
                    assert_eq!(row.rounds, direct.round(), "{row:?}");
                    assert_eq!(
                        row.crossings,
                        direct.crossings_within(direct.round().unwrap_or(row.budget)),
                        "{row:?}"
                    );
                }
            }
            // Replicated certificates are re-verified against *this*
            // pair's starts — the verification must actually pass.
            if let Some(cert) = cert {
                assert_eq!(cert.start_a, a);
                assert_eq!(cert.start_b, b);
                assert_eq!(cert.verified, cert.lasso_stem.is_some().then_some(true), "{cert:?}");
            }
        }
        assert!(replicated > 0, "the grid must contain orbit members answered by replication");
    }

    #[test]
    fn orbit_quotient_matches_per_pair_verdicts_on_random_trees() {
        // Proptest-style: on seeded random trees n ≤ 8, the orbit tables
        // themselves must agree with brute force — every member's
        // relabeled representative decision equals its direct decision,
        // for both swap-allowances and all three delay classes.
        use rvz_lowerbounds::decide::decide_pair;
        for trial in 0..12u64 {
            let n = 4 + (trial as usize) % 5;
            let cell = Cell {
                experiment: Arc::from("orbit-prop"),
                family: Family::Random,
                n,
                delay: Delay::Zero,
                variant: Variant::BasicWalkFsa,
                pair_index: 0,
                pairs_total: 8,
                base_seed: 0xBEEF ^ trial,
                tree_index: None,
                agents: 2,
            };
            let inst = SweepInstance::for_cell(&cell);
            let fsa = inst.basic_walk_fsa();
            for allow_swap in [false, true] {
                let theta = if allow_swap { 0 } else { 3 };
                let lookup = inst.orbit_lookup(allow_swap).to_vec();
                for (index, &(rep, action)) in lookup.iter().enumerate() {
                    let (ra, rb) = inst.pairs[rep];
                    let (a, b) = inst.pairs[index];
                    let rep_dec = decide_pair(&inst.tree, fsa, ra, rb, theta);
                    let direct = decide_pair(&inst.tree, fsa, a, b, theta);
                    let map = action.flip.then(|| inst.flip_map().expect("flip map"));
                    assert_eq!(
                        rep_dec.relabel(map, action.swap),
                        direct,
                        "trial {trial} pair {index} via rep {rep} ({action:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn decide_executor_matches_replay_modulo_certification() {
        // The exact decider must agree with the bounded executors on every
        // field of every row — meeting rounds, crossings at the budget,
        // provenance — differing only in the `certified` flag on the cells
        // it answers natively. (Procedural-agent cells fall back to replay
        // and stay bit-identical outright.)
        let mut spec = small_spec(2);
        spec.executor = Executor::ExactDecide;
        let decided = run(&spec);
        spec.executor = Executor::TraceReplay;
        let replayed = run(&spec);
        assert_eq!(decided.rows.len(), replayed.rows.len());
        let strip = |rows: &[SweepRow]| {
            let mut rows = rows.to_vec();
            for r in &mut rows {
                r.certified = false;
            }
            serde_json::to_string(&rows).unwrap()
        };
        assert_eq!(strip(&decided.rows), strip(&replayed.rows));
        // Certification covers exactly the automaton cells…
        for (d, r) in decided.rows.iter().zip(&replayed.rows) {
            assert_eq!(d.certified, d.variant == Variant::BasicWalkFsa.name(), "{d:?}");
            // …and replay timeouts on those cells are certified refusals.
            if d.certified {
                assert_eq!(!d.met, !r.met);
            }
        }
        // Bounded executors emit no certificates; the decider's all verify.
        assert!(replayed.certificates.is_empty());
        for cert in &decided.certificates {
            assert_eq!(cert.verified, cert.lasso_stem.is_some().then_some(true), "{cert:?}");
        }
    }

    /// Serializes rows with the per-executor annotations (`certified`,
    /// `planned`) cleared — the canonical cross-executor comparison (the
    /// CI planner-differential job does the same with `jq del(…)`).
    fn strip_annotations(rows: &[SweepRow]) -> String {
        let mut rows = rows.to_vec();
        for r in &mut rows {
            r.certified = false;
            r.planned = None;
        }
        serde_json::to_string(&rows).unwrap()
    }

    #[test]
    fn auto_executor_matches_every_fixed_executor_modulo_annotations() {
        // The planner must be a pure routing layer: whatever it picks per
        // cell, the row stream is the fixed executors' stream plus the
        // `planned` annotation (and `certified` where it chose decide).
        let mut spec = small_spec(2);
        spec.executor = Executor::Auto;
        let auto = run(&spec);
        assert!(!auto.rows.is_empty());
        for fixed in [Executor::TraceReplay, Executor::DynStepping, Executor::ExactDecide] {
            spec.executor = fixed;
            let reference = run(&spec);
            assert_eq!(
                strip_annotations(&auto.rows),
                strip_annotations(&reference.rows),
                "auto must match {fixed:?} modulo certified/planned"
            );
        }
        for row in &auto.rows {
            let planned = row.planned.as_ref().expect("every auto row carries the annotation");
            assert!(
                ["batch", "replay", "stepping", "decide"].contains(&planned.choice.as_str()),
                "{planned:?}"
            );
            assert_eq!(row.certified, planned.choice == "decide", "{row:?}");
            assert!(planned.predicted > 0 && planned.actual > 0, "{planned:?}");
        }
        // This grid has small-θ bw cells (batch territory) and procedural
        // cells (replay territory) — the planner must actually route, not
        // collapse onto one executor.
        let choices: std::collections::HashSet<String> =
            auto.rows.iter().filter_map(|r| r.planned.as_ref().map(|p| p.choice.clone())).collect();
        assert!(choices.contains("batch"), "bw θ cells should hit the kernel: {choices:?}");
        assert!(choices.contains("replay"), "procedural cells should replay: {choices:?}");
    }

    #[test]
    fn auto_executor_is_byte_identical_across_thread_counts() {
        // Full-byte comparison, `planned` included: the annotation must be
        // a pure function of the spec and the coordinates, never of which
        // thread warmed which cache first.
        let mut spec1 = small_spec(1);
        spec1.executor = Executor::Auto;
        let mut spec4 = small_spec(4);
        spec4.executor = Executor::Auto;
        let report1 = run(&spec1);
        let report4 = run(&spec4);
        assert!(!report1.rows.is_empty());
        assert_eq!(
            serde_json::to_string(&report1.rows).unwrap(),
            serde_json::to_string(&report4.rows).unwrap(),
            "auto rows (planned annotation included) must not depend on thread count"
        );
    }

    #[test]
    fn auto_executor_matches_fixed_executors_on_scheduled_and_adversarial_cells() {
        // The planner's other two route families: genuine schedules (the
        // scheduled batch kernel / scheduled decider) and the universal
        // delay quantifier (forced decide).
        let spec = |executor| SweepSpec {
            experiment: "auto-sched".into(),
            families: vec![Family::Line, Family::Random],
            sizes: vec![8],
            delays: vec![
                Delay::Schedule(ScheduleSpec::Intermittent { period: 2, phase: 0 }),
                Delay::Schedule(ScheduleSpec::Lockstep { period: 2 }),
                Delay::Adversarial,
            ],
            variants: vec![Variant::BasicWalkFsa, Variant::DelayRobust],
            pairs_per_cell: 2,
            seed: 0xA07_05C4ED,
            threads: 2,
            executor,
            agents: 2,
        };
        let auto = run(&spec(Executor::Auto));
        let replayed = run(&spec(Executor::TraceReplay));
        assert!(!auto.rows.is_empty());
        assert_eq!(strip_annotations(&auto.rows), strip_annotations(&replayed.rows));
        // Adversarial cells carry certificates under every executor —
        // routing through the planner must not drop the evidence: the
        // universal-verdict subsets must agree exactly. Decide-routed
        // scheduled cells may *add* never-meets lassos on top — certified
        // evidence the bounded executors cannot produce.
        let universal = |certs: &[Certificate]| {
            let subset: Vec<&Certificate> = certs
                .iter()
                .filter(|c| matches!(c.verdict.as_str(), "all-delays-meet" | "delay-defeats"))
                .collect();
            serde_json::to_string(&subset).expect("serialize")
        };
        assert_eq!(universal(&auto.certificates), universal(&replayed.certificates));
        assert!(auto.certificates.len() >= replayed.certificates.len());
        for cert in &auto.certificates {
            assert_ne!(cert.verified, Some(false), "{cert:?}");
        }
        for row in &auto.rows {
            let planned = row.planned.as_ref().expect("annotated");
            if row.schedule.is_none() {
                // The only θ-less rows in this grid are adversarial cells.
                assert_eq!(planned.choice, "decide", "{row:?}");
            }
        }
    }

    #[test]
    fn delay_codes_saturate_and_stay_distinct_at_the_extremes() {
        // ISSUE 5 satellite: `Delay::Fixed(u64::MAX)` used to panic in
        // debug builds (`1 + d` overflow). The saturated code must also
        // stay clear of the LinearN/Adversarial sentinels.
        let extremes = [Delay::Fixed(u64::MAX), Delay::LinearN, Delay::Adversarial];
        for (i, a) in extremes.iter().enumerate() {
            for b in &extremes[i + 1..] {
                assert_ne!(a.code(), b.code(), "{a:?} vs {b:?}");
            }
        }
        assert_eq!(Delay::Fixed(0).code(), 1, "small fixed delays keep their codes");
        assert_eq!(Delay::Fixed(7).code(), 8);
        // Start-delay-shaped schedule specs share the Fixed code — same
        // scenario, same cell seeds — while genuine schedules get their
        // own.
        assert_eq!(Delay::Schedule(ScheduleSpec::StartDelay(7)).code(), Delay::Fixed(7).code());
        assert_eq!(Delay::Schedule(ScheduleSpec::Simultaneous).code(), Delay::Fixed(0).code());
        let sched_codes = [
            Delay::Schedule(ScheduleSpec::Intermittent { period: 2, phase: 0 }).code(),
            Delay::Schedule(ScheduleSpec::Intermittent { period: 3, phase: 0 }).code(),
            Delay::Schedule(ScheduleSpec::CrashAfter(4)).code(),
            Delay::Schedule(ScheduleSpec::CrashAfterHalfN).code(),
            Delay::Schedule(ScheduleSpec::Adversarial { seed: 9 }).code(),
        ];
        let mut dedup = sched_codes.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sched_codes.len(), "schedule codes must be distinct");
    }

    #[test]
    fn budgets_saturate_instead_of_overflowing() {
        // ISSUE 5 satellite: the budget formulas must clamp, not panic,
        // on extreme inputs (u64::MAX delays, usize::MAX sizes).
        assert_eq!(basic_walk_budget_for(16, u64::MAX), u64::MAX);
        assert_eq!(budget_for(usize::MAX), u64::MAX);
        assert_eq!(basic_walk_budget_for(usize::MAX, 0), u64::MAX);
        // And the ordinary values are unchanged.
        assert_eq!(basic_walk_budget_for(16, 3), 3 + 4 * 15 + 2);
        assert_eq!(budget_for(16), 256 * 60_000 + 2_000_000);
        // The schedule horizon degenerates to the θ formula on start-delay
        // schedules (prefix θ, cycle 1).
        for (n, theta) in [(2usize, 0u64), (9, 1), (16, 7), (40, 1000)] {
            assert_eq!(
                schedule_budget_for(n, &Schedule::start_delay(theta)),
                basic_walk_budget_for(n, theta),
                "n={n} θ={theta}"
            );
        }
    }

    #[test]
    fn start_delay_schedule_cells_are_byte_identical_to_fixed_delay_cells() {
        // ISSUE 5 satellite: `Schedule(StartDelay(θ))` is the legacy θ
        // scenario — its rows (seeds included, `schedule` field absent)
        // must be byte-for-byte the `Fixed(θ)` rows under every executor.
        for executor in [Executor::TraceReplay, Executor::DynStepping, Executor::ExactDecide] {
            let mut legacy = small_spec(2);
            legacy.executor = executor;
            legacy.delays = vec![Delay::Fixed(0), Delay::Fixed(3)];
            let mut scheduled = legacy.clone();
            scheduled.delays = vec![
                Delay::Schedule(ScheduleSpec::Simultaneous),
                Delay::Schedule(ScheduleSpec::StartDelay(3)),
            ];
            let legacy_rows = run(&legacy).rows;
            let scheduled_rows = run(&scheduled).rows;
            assert!(!legacy_rows.is_empty());
            assert_eq!(
                serde_json::to_string(&legacy_rows).unwrap(),
                serde_json::to_string(&scheduled_rows).unwrap(),
                "start-delay schedules must emit the legacy rows ({executor:?})"
            );
        }
    }

    #[test]
    fn scheduled_cells_agree_across_all_three_executors() {
        // Genuine schedules: replay and stepping byte-identical; decide
        // identical modulo `certified` on the automaton cells, with every
        // bw timeout a certified never-meets.
        let spec = |executor| SweepSpec {
            experiment: "sched".into(),
            families: vec![Family::Line, Family::Spider3, Family::Random],
            sizes: vec![8, 13],
            delays: vec![
                Delay::Schedule(ScheduleSpec::Intermittent { period: 2, phase: 0 }),
                Delay::Schedule(ScheduleSpec::Intermittent { period: 3, phase: 1 }),
                Delay::Schedule(ScheduleSpec::CrashAfterHalfN),
                Delay::Schedule(ScheduleSpec::Lockstep { period: 2 }),
                Delay::Schedule(ScheduleSpec::Adversarial { seed: 0xE10 }),
            ],
            variants: vec![Variant::BasicWalkFsa, Variant::DelayRobust],
            pairs_per_cell: 2,
            seed: 0x5C_4ED,
            threads: 2,
            executor,
            agents: 2,
        };
        let replayed = run(&spec(Executor::TraceReplay));
        let stepped = run(&spec(Executor::DynStepping));
        let decided = run(&spec(Executor::ExactDecide));
        assert!(!replayed.rows.is_empty());
        assert!(replayed.rows.iter().any(|r| r.schedule.is_some()));
        assert_eq!(
            serde_json::to_string(&replayed.rows).unwrap(),
            serde_json::to_string(&stepped.rows).unwrap(),
            "replay and stepping must agree to the byte on schedule cells"
        );
        let strip = |rows: &[SweepRow]| {
            let mut rows = rows.to_vec();
            for r in &mut rows {
                r.certified = false;
            }
            serde_json::to_string(&rows).unwrap()
        };
        assert_eq!(strip(&decided.rows), strip(&replayed.rows));
        for (d, r) in decided.rows.iter().zip(&replayed.rows) {
            assert_eq!(d.certified, d.variant == Variant::BasicWalkFsa.name(), "{d:?}");
            if d.certified {
                assert_eq!(d.met, r.met, "bw schedule budgets are decision horizons");
            }
        }
        // Scheduled never-meets certificates carry the schedule label and
        // verify.
        let sched_certs: Vec<_> =
            decided.certificates.iter().filter(|c| c.schedule.is_some()).collect();
        assert!(!sched_certs.is_empty(), "some schedule must defeat some bw pair");
        for cert in &decided.certificates {
            assert_eq!(cert.verified, Some(true), "{cert:?}");
        }
    }

    #[test]
    fn e10_schedule_grid_is_certified_and_thread_invariant() {
        let mut spec = preset("e10", &[4, 5, 6], 1, 10).expect("e10 preset");
        spec.executor = Executor::ExactDecide;
        let report1 = run(&spec);
        spec.threads = 4;
        let report4 = run(&spec);
        assert_eq!(
            serde_json::to_string(&report1.rows).unwrap(),
            serde_json::to_string(&report4.rows).unwrap(),
            "e10 must be byte-identical across thread counts"
        );
        assert_eq!(
            serde_json::to_string(&report1.certificates).unwrap(),
            serde_json::to_string(&report4.certificates).unwrap(),
        );
        assert_eq!(report1.dropped_cells, 0);
        assert_eq!(report1.planned_cells, report1.rows.len());
        assert!(!report1.rows.is_empty());
        for row in &report1.rows {
            assert!(row.certified, "e10 cell not exactly decided: {row:?}");
        }
        // The schedule column splits into legacy rows (simultaneous, θ=1 —
        // no schedule field) and genuine schedule rows, 5 per pair total.
        let legacy = report1.rows.iter().filter(|r| r.schedule.is_none()).count();
        let scheduled = report1.rows.iter().filter(|r| r.schedule.is_some()).count();
        assert_eq!(legacy * 3, scheduled * 2, "2 legacy + 3 scheduled per pair");
        // θ=1 defeats the basic walk on every pair (the e9 result), so
        // never-meets certificates exist; every lasso re-verifies.
        assert!(report1.certificates.iter().any(|c| c.schedule.is_none()));
        for cert in &report1.certificates {
            assert_eq!(cert.verdict, "never-meets");
            assert_eq!(cert.verified, Some(true), "{cert:?}");
        }
    }

    #[test]
    fn e9_exhaustive_grid_is_certified_and_thread_invariant() {
        let mut spec = preset("e9", &[2, 3, 4, 5, 6], 1, 9).expect("e9 preset");
        spec.executor = Executor::ExactDecide;
        let report1 = run(&spec);
        spec.threads = 4;
        let report4 = run(&spec);
        assert_eq!(
            serde_json::to_string(&report1.rows).unwrap(),
            serde_json::to_string(&report4.rows).unwrap(),
            "e9 must be byte-identical across thread counts"
        );
        assert_eq!(
            serde_json::to_string(&report1.certificates).unwrap(),
            serde_json::to_string(&report4.certificates).unwrap(),
        );
        // The planned grid is exact (the pair axis is enumerated, not
        // sampled): nothing may be dropped, and every cell is decided.
        assert_eq!(report1.dropped_cells, 0);
        assert_eq!(report1.planned_cells, report1.rows.len());
        assert!(!report1.rows.is_empty());
        for row in &report1.rows {
            assert!(row.certified, "e9 cell not exactly decided: {row:?}");
            assert_eq!(row.family, "enum-free");
            // `(n, tree_seed)` rebuilds the instance.
            let tree = Family::EnumFree.build(row.size, row.tree_seed);
            assert_eq!(tree.num_nodes(), row.n);
        }
        // The tree axis covers every free tree that has a feasible pair at
        // all (the single edge at n = 2 is perfectly symmetrizable and
        // contributes zero cells — correctly, not silently).
        for n in [2usize, 3, 4, 5, 6] {
            let expect = rvz_trees::enumerate::free_trees(n)
                .filter(|t| !instances::exhaustive_feasible_pairs(t).is_empty())
                .count();
            let seen: std::collections::HashSet<u64> =
                report1.rows.iter().filter(|r| r.size == n).map(|r| r.tree_seed).collect();
            assert_eq!(seen.len(), expect, "n = {n} must cover all feasible free trees");
        }
        // Universal-delay cells carry a certificate each.
        let universal = cells(&spec).iter().filter(|c| c.delay == Delay::Adversarial).count();
        assert!(report1.certificates.len() >= universal);
    }

    #[test]
    fn presets_cover_e1_to_e9() {
        for id in ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"] {
            let spec = preset(id, &[8, 16], 1, 1).expect("preset exists");
            assert!(!cells(&spec).is_empty(), "{id} grid is empty");
        }
        let e9 = preset("e9", &[5, 6], 1, 1).expect("e9 exists");
        assert!(!cells(&e9).is_empty(), "e9 grid is empty");
        let e10 = preset("e10", &[5, 6], 1, 1).expect("e10 exists");
        assert!(!cells(&e10).is_empty(), "e10 grid is empty");
        let e11 = preset("e11", &[5, 6], 1, 1).expect("e11 exists");
        assert_eq!(e11.agents, 3, "e11 sweeps triples by default");
        assert!(!cells(&e11).is_empty(), "e11 grid is empty");
        assert!(preset("e12", &[8], 1, 1).is_none());
    }
}
