//! The parallel batch-experiment engine.
//!
//! A *sweep* fans an experiment's instance grid — tree family × size ×
//! start delay × agent variant × start pair — across threads and collects
//! one typed [`SweepRow`] per grid cell. Three properties are load-bearing:
//!
//! 1. **Deterministic per-cell seeding.** Every cell derives its seeds from
//!    the grid coordinates alone (never from execution order or thread
//!    identity), so a cell's result is a pure function of the spec.
//! 2. **Order-preserving fan-out.** Cells run under `rayon` but results are
//!    collected in grid order, so the output — including its JSON
//!    serialization — is byte-identical for any `--threads` value.
//! 3. **Reproducible rows.** Each row carries the resolved instance
//!    (family, `n`, starts, delay, budget), so any cell can be replayed
//!    with a direct [`rvz_sim::run_pair`] call; the integration smoke test
//!    does exactly that.
//! 4. **Trace-replay execution.** The paper's agents are deterministic and
//!    oblivious, so by default ([`Executor::TraceReplay`]) the executor
//!    records each `(family, n, start, variant)` trajectory once — in a
//!    process-wide store layered on the shared [`SweepInstance`]s — and
//!    answers every `(delay, pair)` cell by timeline merge
//!    (`rvz_sim::trace`), falling back to per-cell stepping
//!    ([`Executor::DynStepping`], still available behind the flag) only
//!    when a recording would exceed the cap. Both executors are
//!    byte-identical by test.
//!
//! The per-experiment presets in [`preset`] translate E1–E8 (see the
//! sibling `e1`..`e8` modules and README.md) into grids over the shared
//! instance pool of [`crate::instances`].

use crate::instances;
use crate::table::Table;
use crate::trace_cache;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rvz_core::prime_path::PrimePathAgent;
use rvz_core::primes::{next_prime, primorial_index_bound};
use rvz_core::{DelayRobustAgent, TreeRendezvousAgent};
use rvz_sim::trace::Replay;
use rvz_sim::{replay_pair, run_pair, PairConfig, PairRun};
use rvz_trees::{NodeId, Tree};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// Tree families the sweep can grid over (names as in
/// [`instances::FAMILY_NAMES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    Line,
    LineRnd,
    Spider3,
    Caterpillar,
    Random,
    RandomDeg3,
    CompleteBinary,
    Binomial,
    Star,
}

impl Family {
    pub fn name(self) -> &'static str {
        match self {
            Family::Line => "line",
            Family::LineRnd => "line-rnd",
            Family::Spider3 => "spider3",
            Family::Caterpillar => "caterpillar",
            Family::Random => "random",
            Family::RandomDeg3 => "random-deg3",
            Family::CompleteBinary => "complete-binary",
            Family::Binomial => "binomial",
            Family::Star => "star",
        }
    }

    /// Builds this family's member at size `n` with a deterministic stream.
    pub fn build(self, n: usize, seed: u64) -> Tree {
        let mut rng = StdRng::seed_from_u64(seed);
        instances::build_family(self.name(), n, &mut rng).expect("known family")
    }

    /// `true` when members are paths (the `prime` protocol's domain).
    fn is_path(self) -> bool {
        matches!(self, Family::Line | Family::LineRnd)
    }
}

/// Start-delay axis of a grid; `LinearN` resolves to the instance size, the
/// adversarial “delay of n rounds” the E6 series uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delay {
    Zero,
    Fixed(u64),
    LinearN,
}

impl Delay {
    /// The concrete start delay θ at instance size `n`.
    pub fn resolve(self, n: usize) -> u64 {
        match self {
            Delay::Zero => 0,
            Delay::Fixed(d) => d,
            Delay::LinearN => n as u64,
        }
    }

    fn code(self) -> u64 {
        match self {
            Delay::Zero => 0,
            Delay::Fixed(d) => 1 + d,
            Delay::LinearN => u64::MAX,
        }
    }

    /// `true` when this delay resolves to 0 for every instance size —
    /// `Zero` and `Fixed(0)` are the same scenario and must be treated
    /// identically by grid filters.
    fn is_always_zero(self) -> bool {
        matches!(self, Delay::Zero | Delay::Fixed(0))
    }
}

/// Agent variant run in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Theorem 4.1 agent — simultaneous start, arbitrary trees.
    TreeRvz,
    /// The `O(log n)` arbitrary-delay baseline.
    DelayRobust,
    /// Lemma 4.1 `prime` protocol — simultaneous start, paths only.
    PrimePath,
    /// The §2.2 basic-walk automaton pair ([`rvz_agent::Fsa::basic_walk`]):
    /// the memoryless delay-scan workload (à la Chalopin et al.'s
    /// delay-fault grids). Both trajectories are periodic with period
    /// `2(n−1)` once started, so "meets under delay θ" is *decided* within
    /// `θ + 2` joint periods — the cell budget is exact, not provisioned.
    BasicWalkFsa,
}

impl Variant {
    pub fn name(self) -> &'static str {
        match self {
            Variant::TreeRvz => "tree-rvz",
            Variant::DelayRobust => "delay-robust",
            Variant::PrimePath => "prime-path",
            Variant::BasicWalkFsa => "bw-fsa",
        }
    }

    /// Grid filter: only combinations the algorithm is specified for.
    fn supports(self, family: Family, delay: Delay) -> bool {
        match self {
            Variant::TreeRvz => delay.is_always_zero(),
            Variant::DelayRobust => true,
            Variant::PrimePath => family.is_path() && delay.is_always_zero(),
            Variant::BasicWalkFsa => true,
        }
    }
}

/// Exact decision horizon for a basic-walk pair under start delay `delay`:
/// once both agents run, the joint configuration is periodic with period
/// `2(n−1)`, so two periods past the delay decide the meeting question.
/// (`n = 0` is clamped to the singleton's empty horizon rather than
/// underflowing.)
pub fn basic_walk_budget_for(n: usize, delay: u64) -> u64 {
    delay + 4 * (n.max(1) as u64 - 1) + 2
}

/// How the executor answers the delay × pair sub-grid of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Record each `(family, n, start, variant)` trajectory once in the
    /// process-wide trace store and decide every cell by timeline merge
    /// (`rvz_sim::trace`) — no agent stepping on cache hits.
    #[default]
    TraceReplay,
    /// Step both agents per cell through dyn [`run_pair`] (the pre-trace
    /// executor). Kept behind this flag for differential testing; it is
    /// also the replay path's fallback for cells whose trajectories would
    /// exceed the recording cap. Output is byte-identical to
    /// [`Executor::TraceReplay`] by construction (and by test).
    DynStepping,
}

/// A full grid specification; [`run`] executes it.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Tag recorded in every row (e.g. `"e6"`).
    pub experiment: String,
    pub families: Vec<Family>,
    pub sizes: Vec<usize>,
    pub delays: Vec<Delay>,
    pub variants: Vec<Variant>,
    /// Feasible start pairs sampled per (family, size) instance.
    pub pairs_per_cell: usize,
    pub seed: u64,
    /// Worker threads; `0` = all cores.
    pub threads: usize,
    /// Cell execution strategy (replay by default).
    pub executor: Executor,
}

/// One grid cell: everything [`run_cell`] needs, and nothing that depends
/// on execution order. The experiment label is interned (`Arc<str>`): the
/// whole grid shares one allocation instead of cloning a `String` per
/// cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub experiment: Arc<str>,
    pub family: Family,
    pub n: usize,
    pub delay: Delay,
    pub variant: Variant,
    pub pair_index: usize,
    pub pairs_total: usize,
    pub base_seed: u64,
}

/// One result row; the JSON schema of `--json` output (see README.md).
/// `experiment` shares the grid's interned label (serialized as a plain
/// JSON string, exactly like the `String` it replaced).
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    pub experiment: Arc<str>,
    pub family: String,
    /// Requested size; `n` is the realized node count.
    pub size: usize,
    pub n: usize,
    pub leaves: usize,
    pub variant: String,
    pub delay: u64,
    pub start_a: NodeId,
    pub start_b: NodeId,
    pub met: bool,
    /// Meeting round (`null` on timeout).
    pub rounds: Option<u64>,
    pub crossings: u64,
    pub budget: u64,
    /// Provisioned automaton size for this variant at this instance.
    pub provisioned_bits: u64,
    /// Memory the two (identical) agents actually reported after the run.
    pub measured_bits: u64,
    /// Seed the instance tree was built from — `Family::build(size, tree_seed)`
    /// reconstructs the exact tree, randomized families included.
    pub tree_seed: u64,
    /// Seed of the start-pair pool the cell drew from.
    pub pairs_seed: u64,
    /// Full-coordinate seed, for provenance.
    pub cell_seed: u64,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Mixes grid coordinates into a seed. Position-independent by
/// construction: only the listed tokens enter.
fn mix(base: u64, tokens: &[u64]) -> u64 {
    let mut h = splitmix(base);
    for &t in tokens {
        h = splitmix(h ^ t);
    }
    h
}

impl Cell {
    /// The tree is a function of (family, size) only — every delay/variant/
    /// pair cell on the same instance sees the identical tree.
    pub fn tree_seed(&self) -> u64 {
        mix(self.base_seed, &[fnv("tree"), fnv(self.family.name()), self.n as u64])
    }

    /// Likewise the start-pair pool.
    pub fn pairs_seed(&self) -> u64 {
        mix(self.base_seed, &[fnv("pairs"), fnv(self.family.name()), self.n as u64])
    }

    /// Full-coordinate seed recorded in the row.
    pub fn cell_seed(&self) -> u64 {
        mix(
            self.base_seed,
            &[
                fnv(&self.experiment),
                fnv(self.family.name()),
                self.n as u64,
                self.delay.code(),
                fnv(self.variant.name()),
                self.pair_index as u64,
            ],
        )
    }
}

/// Enumerates the grid in deterministic (family, size, delay, variant,
/// pair) lexicographic order, dropping unsupported combinations.
pub fn cells(spec: &SweepSpec) -> Vec<Cell> {
    let experiment: Arc<str> = Arc::from(spec.experiment.as_str());
    let mut out = Vec::new();
    for &family in &spec.families {
        for &n in &spec.sizes {
            for &delay in &spec.delays {
                for &variant in &spec.variants {
                    if !variant.supports(family, delay) {
                        continue;
                    }
                    for pair_index in 0..spec.pairs_per_cell {
                        out.push(Cell {
                            experiment: experiment.clone(),
                            family,
                            n,
                            delay,
                            variant,
                            pair_index,
                            pairs_total: spec.pairs_per_cell,
                            base_seed: spec.seed,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Round budget for the general tree algorithms (as E6 provisions).
pub fn budget_for(n: usize) -> u64 {
    (n as u64).pow(2) * 60_000 + 2_000_000
}

/// Round budget for the `prime` path protocol (as E3 derives from the
/// analysis bound).
pub fn prime_budget_for(m: usize) -> u64 {
    let mut rounds = m as u64;
    let mut p = 2u64;
    for _ in 0..primorial_index_bound((m * m) as u64) + 2 {
        rounds += 2 * (m as u64 - 1) * p + p;
        p = next_prime(p);
    }
    rounds * 2
}

/// The shared immutable per-instance state: the tree and its feasible
/// start-pair pool, a pure function of `(family, n, tree_seed, pairs_seed)`.
/// The executor builds each one once and shares it (via `Arc`) across the
/// whole delay × variant × pair sub-grid — `feasible_pairs` alone costs
/// hundreds of symmetrizability checks, which used to be repaid by *every*
/// cell on the instance.
#[derive(Debug, Clone)]
pub struct SweepInstance {
    pub tree: Tree,
    pub pairs: Vec<(NodeId, NodeId)>,
    pub tree_seed: u64,
    pub pairs_seed: u64,
    /// Shared basic-walk automaton for [`Variant::BasicWalkFsa`] cells,
    /// built on first use (its table is a function of the tree's maximum
    /// degree only).
    bw_fsa: std::sync::OnceLock<rvz_agent::Fsa>,
}

impl SweepInstance {
    /// Builds the instance a cell runs on. Depends only on the cell's
    /// instance coordinates (`family`, `n`, `base_seed`, `pairs_total`) —
    /// every cell of the same sub-grid builds the identical value.
    pub fn for_cell(cell: &Cell) -> Self {
        let tree_seed = cell.tree_seed();
        let pairs_seed = cell.pairs_seed();
        let tree = cell.family.build(cell.n, tree_seed);
        let pairs = instances::feasible_pairs(&tree, cell.pairs_total, pairs_seed);
        SweepInstance { tree, pairs, tree_seed, pairs_seed, bw_fsa: std::sync::OnceLock::new() }
    }

    /// The basic-walk automaton matched to this instance's degree bound;
    /// every `bw-fsa` cell on the instance borrows the same table.
    pub fn basic_walk_fsa(&self) -> &rvz_agent::Fsa {
        self.bw_fsa.get_or_init(|| rvz_agent::Fsa::basic_walk(self.tree.max_degree().max(1)))
    }
}

/// Executes one cell standalone, rebuilding its instance from the cell
/// coordinates. Pure in the cell: no global state, no clock, no thread
/// identity. Returns `None` when the instance yielded fewer feasible start
/// pairs than `pair_index`. The batch executor ([`run`]) avoids the rebuild
/// by sharing a [`SweepInstance`] across the sub-grid via
/// [`run_cell_on`].
pub fn run_cell(cell: &Cell) -> Option<SweepRow> {
    run_cell_on(cell, &SweepInstance::for_cell(cell))
}

/// Round budget and provisioned automaton size for a cell's variant at
/// this instance (shared by the stepping and replay executors).
fn budget_and_provisioned(
    cell: &Cell,
    inst: &SweepInstance,
    n: usize,
    leaves: usize,
    delay: u64,
) -> (u64, u64) {
    match cell.variant {
        Variant::TreeRvz => {
            (budget_for(n), TreeRendezvousAgent::provisioned_bits(n as u64, leaves as u64))
        }
        Variant::DelayRobust => (budget_for(n), DelayRobustAgent::provisioned_bits(n as u64)),
        Variant::PrimePath => (prime_budget_for(n), 0),
        Variant::BasicWalkFsa => {
            let fsa = inst.basic_walk_fsa();
            (basic_walk_budget_for(n, delay), fsa.memory_bits())
        }
    }
}

/// Assembles the result row (shared by the stepping and replay executors —
/// both must produce byte-identical rows).
#[allow(clippy::too_many_arguments)]
fn make_row(
    cell: &Cell,
    inst: &SweepInstance,
    n: usize,
    leaves: usize,
    delay: u64,
    run: &PairRun,
    budget: u64,
    provisioned_bits: u64,
    measured_bits: u64,
    starts: (NodeId, NodeId),
) -> SweepRow {
    SweepRow {
        experiment: cell.experiment.clone(),
        family: cell.family.name().to_string(),
        size: cell.n,
        n,
        leaves,
        variant: cell.variant.name().to_string(),
        delay,
        start_a: starts.0,
        start_b: starts.1,
        met: run.outcome.met(),
        rounds: run.outcome.round(),
        crossings: run.crossings,
        budget,
        provisioned_bits,
        measured_bits,
        tree_seed: inst.tree_seed,
        pairs_seed: inst.pairs_seed,
        cell_seed: cell.cell_seed(),
    }
}

/// Executes one cell on a prebuilt instance by *stepping* both agents
/// (the [`Executor::DynStepping`] path; also the replay fallback). `inst`
/// must be (equal to) `SweepInstance::for_cell(cell)` — the executor
/// guarantees this by keying instances on `(family, n)` within one spec.
pub fn run_cell_on(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let &(start_a, start_b) = inst.pairs.get(cell.pair_index)?;
    let delay = cell.delay.resolve(n);
    let (budget, provisioned_bits) = budget_and_provisioned(cell, inst, n, leaves, delay);
    let cfg = PairConfig::delayed(delay, budget);

    // Dispatch per variant: every arm goes through the dyn-compatible
    // `run_pair` wrapper. Counterintuitively this is the measured-fastest
    // choice across the board — monomorphizing the round loop (the
    // `run_pair_fsa` fast path) is available per call site, but inlining
    // agents' `act` bodies into the loop benched *slower* here for both the
    // big procedural agents and the tiny automaton runners (see the
    // `sim_hot_path/pair_rounds` static-vs-dyn comparison).
    let (run, measured_bits) = match cell.variant {
        Variant::TreeRvz => {
            let mut x = TreeRendezvousAgent::new();
            let mut y = TreeRendezvousAgent::new();
            let run = run_pair(tree, start_a, start_b, &mut x, &mut y, cfg);
            (run, x.memory_bits_measured().max(y.memory_bits_measured()))
        }
        Variant::DelayRobust => {
            let mut x = DelayRobustAgent::new();
            let mut y = DelayRobustAgent::new();
            let run = run_pair(tree, start_a, start_b, &mut x, &mut y, cfg);
            (run, x.memory_bits_measured().max(y.memory_bits_measured()))
        }
        Variant::PrimePath => {
            let mut x = PrimePathAgent::unbounded();
            let mut y = PrimePathAgent::unbounded();
            let run = run_pair(tree, start_a, start_b, &mut x, &mut y, cfg);
            use rvz_agent::model::Agent;
            (run, x.memory_bits().max(y.memory_bits()))
        }
        Variant::BasicWalkFsa => {
            let fsa = inst.basic_walk_fsa();
            let mut x = fsa.runner();
            let mut y = fsa.runner();
            let run = run_pair(tree, start_a, start_b, &mut x, &mut y, cfg);
            use rvz_agent::model::Agent;
            (run, x.memory_bits().max(y.memory_bits()))
        }
    };

    Some(make_row(
        cell,
        inst,
        n,
        leaves,
        delay,
        &run,
        budget,
        provisioned_bits,
        measured_bits,
        (start_a, start_b),
    ))
}

/// Demand-driven recording growth: at least `need`, at least double the
/// current horizon (so a cell retries O(log) times, not per round), never
/// past the budget or the hard cap.
fn grow_target(current: u64, need: u64, budget: u64) -> u64 {
    need.max(current.saturating_mul(2))
        .max(1 << 12)
        .min(budget)
        .min(trace_cache::MAX_RECORD_ROUNDS)
        .max(need)
}

/// Executes one cell from recorded trajectories (the
/// [`Executor::TraceReplay`] path): both timelines come from the
/// process-wide trace store keyed `(family, n, tree_seed, start,
/// variant)`, are extended on demand, and the cell is decided by
/// `rvz_sim::trace::replay_pair` — no agent stepping on warm keys. Rows
/// are byte-identical to [`run_cell_on`]; cells that would need recordings
/// past the cap fall back to it.
pub fn run_cell_replay(cell: &Cell, inst: &SweepInstance) -> Option<SweepRow> {
    let tree = &inst.tree;
    let n = tree.num_nodes();
    let leaves = tree.num_leaves();
    let &(start_a, start_b) = inst.pairs.get(cell.pair_index)?;
    let delay = cell.delay.resolve(n);
    let (budget, provisioned_bits) = budget_and_provisioned(cell, inst, n, leaves, delay);
    let cfg = PairConfig::delayed(delay, budget);

    let slot_a = trace_cache::slot(inst, cell.family, cell.n, cell.variant, start_a);
    let slot_b = trace_cache::slot(inst, cell.family, cell.n, cell.variant, start_b);
    loop {
        // Feasible pairs have distinct starts, so the slots differ; lock
        // them in start order so cells sharing an endpoint cannot deadlock.
        let (mut ga, mut gb);
        if start_a <= start_b {
            ga = slot_a.lock().expect("trace slot");
            gb = slot_b.lock().expect("trace slot");
        } else {
            gb = slot_b.lock().expect("trace slot");
            ga = slot_a.lock().expect("trace slot");
        }
        match replay_pair(tree, ga.trajectory(), gb.trajectory(), cfg) {
            Replay::Decided(run) => {
                // The stepping path reports the meters after exactly
                // `meeting round` activations of A and `round − θ` of B;
                // read the same points off the recorded mark lists.
                let acts_a = run.outcome.round().unwrap_or(budget);
                let acts_b = acts_a.saturating_sub(delay);
                let measured_bits =
                    ga.trajectory().bits_at(acts_a).max(gb.trajectory().bits_at(acts_b));
                return Some(make_row(
                    cell,
                    inst,
                    n,
                    leaves,
                    delay,
                    &run,
                    budget,
                    provisioned_bits,
                    measured_bits,
                    (start_a, start_b),
                ));
            }
            Replay::NeedMore { a_rounds, b_rounds } => {
                if a_rounds > trace_cache::MAX_RECORD_ROUNDS
                    || b_rounds > trace_cache::MAX_RECORD_ROUNDS
                {
                    drop(ga);
                    drop(gb);
                    return run_cell_on(cell, inst);
                }
                // Grow only the lane(s) the verdict flagged (`0` / already
                // decided means "long enough") — a warm recording must not
                // be re-stepped just because its partner was short.
                if !ga.trajectory().decided_to(a_rounds) {
                    let target = grow_target(ga.trajectory().rounds(), a_rounds, budget);
                    ga.record_to(tree, target);
                }
                if !gb.trajectory().decided_to(b_rounds) {
                    let target = grow_target(gb.trajectory().rounds(), b_rounds, budget);
                    gb.record_to(tree, target);
                }
            }
        }
    }
}

/// What a sweep produced: the rows, plus how much of the planned grid they
/// cover. `dropped_cells > 0` means some instances had fewer feasible start
/// pairs than `pairs_per_cell` — those cells never ran, and pretending
/// otherwise would make row counts silently incomparable across sizes.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub rows: Vec<SweepRow>,
    pub planned_cells: usize,
    pub dropped_cells: usize,
}

/// Runs the whole grid. Rows come back in grid order whatever the thread
/// count — see the module docs for why that matters.
///
/// Instances are built once per `(family, n)` key — in parallel, since
/// each is a pure function of its coordinates — and shared immutably
/// across the delay × variant × pair sub-grid. Cell results are unchanged
/// (same seeds, same trees, same pairs), so the output stays byte-identical
/// to the per-cell-rebuild executor for every `--threads` value.
pub fn run(spec: &SweepSpec) -> SweepReport {
    let grid = cells(spec);
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(spec.threads).build().expect("thread pool");

    // One representative cell per instance key, in first-appearance order.
    let mut reps: Vec<&Cell> = Vec::new();
    let mut seen: std::collections::HashSet<(Family, usize)> = std::collections::HashSet::new();
    for cell in &grid {
        if seen.insert((cell.family, cell.n)) {
            reps.push(cell);
        }
    }
    let run_one = |c: &Cell, inst: &SweepInstance| match spec.executor {
        Executor::TraceReplay => run_cell_replay(c, inst),
        Executor::DynStepping => run_cell_on(c, inst),
    };
    let results: Vec<Option<SweepRow>> = pool.install(|| {
        let built: Vec<Arc<SweepInstance>> =
            reps.par_iter().map(|c| Arc::new(SweepInstance::for_cell(c))).collect();
        let by_key: HashMap<(Family, usize), Arc<SweepInstance>> =
            reps.iter().zip(built).map(|(c, inst)| ((c.family, c.n), inst)).collect();
        grid.par_iter().map(|c| run_one(c, &by_key[&(c.family, c.n)])).collect()
    });
    let planned_cells = results.len();
    let rows: Vec<SweepRow> = results.into_iter().flatten().collect();
    SweepReport { dropped_cells: planned_cells - rows.len(), planned_cells, rows }
}

/// Renders a sweep report as the same kind of aligned table the classic
/// experiment drivers print.
pub fn to_table(experiment: &str, report: &SweepReport) -> Table {
    let rows = &report.rows;
    let mut t = Table::new(
        &experiment.to_uppercase(),
        &format!("sweep grid ({} rows)", rows.len()),
        &[
            "family",
            "n",
            "ℓ",
            "variant",
            "delay",
            "a",
            "b",
            "met",
            "rounds",
            "prov-bits",
            "meas-bits",
        ],
    );
    for r in rows {
        t.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.leaves.to_string(),
            r.variant.clone(),
            r.delay.to_string(),
            r.start_a.to_string(),
            r.start_b.to_string(),
            if r.met { "y" } else { "N" }.to_string(),
            r.rounds.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
            r.provisioned_bits.to_string(),
            r.measured_bits.to_string(),
        ]);
    }
    let met = rows.iter().filter(|r| r.met).count();
    t.note(&format!("{met}/{} cells met within budget", rows.len()));
    if report.dropped_cells > 0 {
        t.note(&format!(
            "{} of {} planned cells dropped (instance had fewer feasible start pairs than --pairs)",
            report.dropped_cells, report.planned_cells
        ));
    }
    t
}

/// Default grid for each classic experiment id (`e1`..`e8`); `None` for
/// unknown ids. `sizes`/`threads`/`seed` come from the caller (CLI).
pub fn preset(id: &str, sizes: &[usize], threads: usize, seed: u64) -> Option<SweepSpec> {
    use Delay::*;
    use Family::*;
    use Variant::*;
    let spec = |families: Vec<Family>, delays: Vec<Delay>, variants: Vec<Variant>| SweepSpec {
        experiment: id.to_string(),
        families,
        sizes: sizes.to_vec(),
        delays,
        variants,
        pairs_per_cell: 2,
        seed,
        threads,
        executor: Executor::default(),
    };
    Some(match id {
        // Theorem 3.1 territory: arbitrary delays on lines.
        "e1" => spec(vec![Line, LineRnd], vec![Fixed(1), Fixed(7), LinearN], vec![DelayRobust]),
        // Theorem 4.1: simultaneous start across tree families.
        "e2" => spec(
            vec![Line, Spider3, Caterpillar, Random, CompleteBinary],
            vec![Zero],
            vec![TreeRvz],
        ),
        // Lemma 4.1: prime on paths.
        "e3" => spec(vec![Line], vec![Zero], vec![PrimePath]),
        // Theorem 4.2 territory: simultaneous start, adversarial labelings.
        "e4" => spec(vec![LineRnd, Random], vec![Zero], vec![TreeRvz, PrimePath]),
        // Theorem 4.3 territory: few-leaf side trees under delays.
        "e5" => spec(vec![Spider3, Caterpillar], vec![Zero, LinearN], vec![DelayRobust]),
        // §1.1 title claim: the two memory series side by side.
        "e6" => spec(vec![Line, Spider3], vec![Zero, LinearN], vec![TreeRvz, DelayRobust]),
        // Figure 2 machinery: contrasting structured families.
        "e7" => spec(vec![CompleteBinary, Binomial, Star], vec![Zero], vec![TreeRvz]),
        // Ablation-adjacent: the generic random workload, all variants.
        "e8" => spec(
            vec![Random, RandomDeg3],
            vec![Zero, Fixed(3), LinearN],
            vec![TreeRvz, DelayRobust],
        ),
        _ => return None,
    })
}

/// The default size axis presets run when the CLI passes none.
pub const DEFAULT_SIZES: &[usize] = &[16, 32, 64, 128];

fn perf_grid(families: Vec<Family>, delays: Vec<Delay>, variants: Vec<Variant>) -> SweepSpec {
    SweepSpec {
        experiment: "bench".into(),
        families,
        sizes: vec![200],
        delays,
        variants,
        pairs_per_cell: 8,
        seed: 0x5EED_2010,
        threads: 1,
        executor: Executor::default(),
    }
}

/// The headline perf-trajectory grid at n ≈ 200: 5 instances × (4 delays ×
/// 8 pairs) of `bw-fsa` cells, each decided within its exact
/// [`basic_walk_budget_for`] horizon — the Chalopin-style delay-fault scan
/// the instance cache targets. Shared by the `sweep_cells` criterion bench
/// and the `bench_baseline` recorder so `BENCH_sweep.json` always measures
/// the same workload the bench tracks.
pub fn perf_grid_fsa_scan() -> SweepSpec {
    perf_grid(
        vec![Family::Line, Family::LineRnd, Family::Spider3, Family::Caterpillar, Family::Random],
        vec![Delay::Zero, Delay::Fixed(1), Delay::Fixed(7), Delay::LinearN],
        vec![Variant::BasicWalkFsa],
    )
}

/// The secondary perf-trajectory grid: E6/E8-shaped procedural agents,
/// where the rendezvous simulations dominate and the instance cache is a
/// smaller (but free) win. Tracked for regressions, not for wins.
pub fn perf_grid_variants() -> SweepSpec {
    let mut spec = perf_grid(
        vec![Family::Random, Family::Spider3],
        vec![Delay::Zero, Delay::Fixed(3), Delay::LinearN],
        vec![Variant::TreeRvz, Variant::DelayRobust],
    );
    spec.pairs_per_cell = 4;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_sim::run_pair_fsa;

    fn small_spec(threads: usize) -> SweepSpec {
        SweepSpec {
            experiment: "test".into(),
            families: vec![Family::Line, Family::Spider3],
            sizes: vec![8, 16],
            delays: vec![Delay::Zero, Delay::Fixed(3)],
            variants: vec![Variant::DelayRobust, Variant::TreeRvz, Variant::BasicWalkFsa],
            pairs_per_cell: 2,
            seed: 0xC0FFEE,
            threads,
            executor: Executor::default(),
        }
    }

    #[test]
    fn grid_filters_unsupported_combinations() {
        let grid = cells(&small_spec(1));
        assert!(grid.iter().all(|c| c.variant != Variant::TreeRvz || c.delay == Delay::Zero));
        // 2 families × 2 sizes × (delay0×3 variants + delay3×2 variants) × 2 pairs
        assert_eq!(grid.len(), 2 * 2 * 5 * 2);
    }

    #[test]
    fn basic_walk_budget_is_a_decision_horizon() {
        // The bw-fsa budget claims to *decide* the meeting question: running
        // the same cell with a 4× budget must not change any outcome.
        let spec = SweepSpec {
            experiment: "bw".into(),
            families: vec![Family::Line, Family::Spider3, Family::Random],
            sizes: vec![9, 16],
            delays: vec![Delay::Zero, Delay::Fixed(2), Delay::LinearN],
            variants: vec![Variant::BasicWalkFsa],
            pairs_per_cell: 3,
            seed: 21,
            threads: 1,
            executor: Executor::default(),
        };
        let report = run(&spec);
        assert!(!report.rows.is_empty());
        for row in &report.rows {
            let family = spec.families.iter().find(|f| f.name() == row.family).unwrap();
            let tree = family.build(row.size, row.tree_seed);
            let fsa = rvz_agent::Fsa::basic_walk(tree.max_degree().max(1));
            let mut x = fsa.runner();
            let mut y = fsa.runner();
            let rerun = run_pair_fsa(
                &tree,
                row.start_a,
                row.start_b,
                &mut x,
                &mut y,
                PairConfig::delayed(row.delay, row.budget * 4),
            );
            assert_eq!(rerun.outcome.met(), row.met, "budget must be a decision horizon: {row:?}");
            if row.met {
                assert_eq!(rerun.outcome.round(), row.rounds);
            }
        }
    }

    #[test]
    fn fixed_zero_delay_is_the_simultaneous_scenario() {
        // Delay::Fixed(0) and Delay::Zero resolve identically; grid filters
        // must not silently drop simultaneous-start variants over spelling.
        let spec = SweepSpec {
            experiment: "zero".into(),
            families: vec![Family::Line],
            sizes: vec![8],
            delays: vec![Delay::Fixed(0)],
            variants: vec![Variant::TreeRvz, Variant::PrimePath],
            pairs_per_cell: 1,
            seed: 5,
            threads: 1,
            executor: Executor::default(),
        };
        let grid = cells(&spec);
        assert_eq!(grid.len(), 2, "both zero-delay variants must survive Fixed(0)");
    }

    #[test]
    fn cell_seeds_depend_on_coordinates_not_order() {
        let grid = cells(&small_spec(1));
        let seeds: Vec<u64> = grid.iter().map(Cell::cell_seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "cell seeds must be distinct");
        // Same instance ⇒ same tree seed, across delays/variants/pairs.
        for c in &grid {
            for d in &grid {
                if c.family == d.family && c.n == d.n {
                    assert_eq!(c.tree_seed(), d.tree_seed());
                    assert_eq!(c.pairs_seed(), d.pairs_seed());
                }
            }
        }
    }

    #[test]
    fn cached_executor_matches_per_cell_rebuild() {
        // The instance cache is an executor optimization only: running every
        // cell standalone (rebuilding tree + pair pool from its coordinates)
        // must produce the identical row stream.
        let spec = small_spec(2);
        let report = run(&spec);
        let rebuilt: Vec<SweepRow> = cells(&spec).iter().filter_map(run_cell).collect();
        assert_eq!(
            serde_json::to_string(&report.rows).unwrap(),
            serde_json::to_string(&rebuilt).unwrap(),
            "cached executor must match the rebuild-per-cell path byte-for-byte"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let report1 = run(&small_spec(1));
        let report4 = run(&small_spec(4));
        assert!(!report1.rows.is_empty());
        assert_eq!(report1.planned_cells, report4.planned_cells);
        assert_eq!(report1.dropped_cells, report4.dropped_cells);
        assert_eq!(
            serde_json::to_string(&report1.rows).unwrap(),
            serde_json::to_string(&report4.rows).unwrap(),
            "sweep must be byte-identical across thread counts"
        );
    }

    #[test]
    fn randomized_family_rows_replay_from_tree_seed() {
        // Finding-driven: a row from a randomized family must carry enough
        // provenance to rebuild the exact instance and rerun the cell.
        let spec = SweepSpec {
            experiment: "replay".into(),
            families: vec![Family::Random],
            sizes: vec![12],
            delays: vec![Delay::Fixed(2)],
            variants: vec![Variant::DelayRobust],
            pairs_per_cell: 1,
            seed: 7,
            threads: 1,
            executor: Executor::default(),
        };
        let report = run(&spec);
        assert_eq!(report.dropped_cells, 0);
        for row in &report.rows {
            let tree = Family::Random.build(row.size, row.tree_seed);
            assert_eq!(tree.num_nodes(), row.n, "tree_seed must rebuild the same instance");
            let mut x = DelayRobustAgent::new();
            let mut y = DelayRobustAgent::new();
            let rerun = run_pair(
                &tree,
                row.start_a,
                row.start_b,
                &mut x,
                &mut y,
                PairConfig::delayed(row.delay, row.budget),
            );
            assert_eq!(rerun.outcome.met(), row.met);
            assert_eq!(rerun.outcome.round(), row.rounds);
        }
    }

    #[test]
    fn dropped_cells_are_counted_not_hidden() {
        // A 4-node star has very few feasible pairs; asking for an absurd
        // pairs_per_cell must surface as dropped cells, not silence.
        let spec = SweepSpec {
            experiment: "drop".into(),
            families: vec![Family::Star],
            sizes: vec![4],
            delays: vec![Delay::Zero],
            variants: vec![Variant::DelayRobust],
            pairs_per_cell: 50,
            seed: 3,
            threads: 1,
            executor: Executor::default(),
        };
        let report = run(&spec);
        assert_eq!(report.planned_cells, 50);
        assert_eq!(report.rows.len() + report.dropped_cells, report.planned_cells);
        assert!(report.dropped_cells > 0, "star(4) cannot have 50 distinct feasible pairs");
        let table = to_table("drop", &report);
        assert!(table.render().contains("planned cells dropped"));
    }

    #[test]
    fn experiment_label_is_interned_across_cells_and_rows() {
        // ISSUE 3 satellite: the grid shares ONE `Arc<str>` label — no
        // per-cell / per-row `String` clone — and it serializes as a plain
        // JSON string.
        let spec = small_spec(1);
        let grid = cells(&spec);
        assert!(grid.windows(2).all(|w| Arc::ptr_eq(&w[0].experiment, &w[1].experiment)));
        let report = run(&spec);
        assert!(report.rows.windows(2).all(|w| Arc::ptr_eq(&w[0].experiment, &w[1].experiment)));
        let json = serde_json::to_string(&report.rows[0]).unwrap();
        assert!(json.contains("\"experiment\":\"test\""), "{json}");
    }

    #[test]
    fn presets_cover_e1_to_e8() {
        for id in ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"] {
            let spec = preset(id, &[8, 16], 1, 1).expect("preset exists");
            assert!(!cells(&spec).is_empty(), "{id} grid is empty");
        }
        assert!(preset("e9", &[8], 1, 1).is_none());
    }
}
