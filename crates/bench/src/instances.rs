//! Instance generation shared by the experiments: tree families and
//! feasible (non-perfectly-symmetrizable) start pairs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rvz_trees::generators;
use rvz_trees::{perfectly_symmetrizable, NodeId, Tree};

/// A named tree family member.
#[derive(Debug, Clone)]
pub struct Instance {
    pub family: &'static str,
    pub tree: Tree,
}

/// Canonical family names accepted by [`build_family`], in grid order.
pub const FAMILY_NAMES: &[&str] = &[
    "line",
    "line-rnd",
    "spider3",
    "caterpillar",
    "random",
    "random-deg3",
    "complete-binary",
    "binomial",
    "star",
];

/// Builds the member of a named family at target size `n` (randomized
/// families draw from `rng`). Returns `None` for an unknown family name.
///
/// Height-parameterized families (`complete-binary`, `binomial`) pick the
/// height whose node count is nearest `n`, clamped to tractable depths, so
/// every family can sit on a common size axis.
pub fn build_family(family: &str, n: usize, rng: &mut StdRng) -> Option<Tree> {
    let n = n.max(4);
    let h = (n as f64).log2() as usize;
    Some(match family {
        "line" => generators::line(n),
        "line-rnd" => generators::random_relabel(&generators::line(n), rng),
        "spider3" => generators::spider(3, (n / 3).max(1)),
        "caterpillar" => {
            let spine = (n / 2).max(2);
            let hairs: Vec<usize> = (0..spine).map(|i| usize::from(i % 2 == 0)).collect();
            generators::caterpillar(spine, &hairs)
        }
        "random" => generators::random_relabel(&generators::random_tree(n, rng), rng),
        "random-deg3" => generators::random_bounded_degree_tree(n, 3, rng),
        "complete-binary" => generators::complete_binary(h.clamp(2, 9)),
        "binomial" => generators::binomial(h.clamp(2, 12)),
        "star" => generators::star(n.max(3)),
        _ => return None,
    })
}

/// The evaluation families: the workloads the paper's introduction
/// motivates (lines for the lower bounds, few-leaf trees for the gap, the
/// classical symmetric families, and random trees as the generic case).
pub fn families(scale: usize, seed: u64) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let per_size: &[&str] =
        &["line", "line-rnd", "spider3", "caterpillar", "random", "random-deg3"];
    for &n in &[scale / 2, scale] {
        for &family in per_size {
            out.push(Instance {
                family,
                tree: build_family(family, n, &mut rng).expect("known family"),
            });
        }
    }
    for family in ["complete-binary", "binomial", "star"] {
        out.push(Instance {
            family,
            tree: build_family(family, scale, &mut rng).expect("known family"),
        });
    }
    out
}

/// Up to `count` distinct feasible (non-perfectly-symmetrizable, distinct)
/// start pairs, sampled deterministically.
pub fn feasible_pairs(tree: &Tree, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tree.num_nodes() as NodeId;
    let mut pairs = Vec::new();
    let mut attempts = 0;
    while pairs.len() < count && attempts < 200 {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || pairs.contains(&(a, b)) {
            continue;
        }
        if !perfectly_symmetrizable(tree, a, b) {
            pairs.push((a, b));
        }
    }
    // Deterministic fallback for tiny trees.
    if pairs.is_empty() {
        'outer: for a in 0..n {
            for b in 0..n {
                if a != b && !perfectly_symmetrizable(tree, a, b) {
                    pairs.push((a, b));
                    break 'outer;
                }
            }
        }
    }
    pairs.shuffle(&mut rng);
    pairs.truncate(count);
    pairs
}

/// Up to `count` distinct feasible start `k`-tuples (pairwise distinct,
/// no pairwise perfectly-symmetrizable entries — see
/// [`exhaustive_feasible_tuples`] for why that is the right feasibility
/// notion), sampled deterministically — the k-lane generalization of
/// [`feasible_pairs`], sharing its seed discipline and shuffle-truncate
/// shape so a sampled-family ensemble sweep draws its start axis the way
/// the pair sweep always has.
pub fn feasible_tuples(tree: &Tree, k: usize, count: usize, seed: u64) -> Vec<Vec<NodeId>> {
    assert!(k >= 2, "an ensemble has at least two lanes");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tree.num_nodes() as NodeId;
    let feasible = |tuple: &[NodeId]| {
        for i in 0..tuple.len() {
            for j in i + 1..tuple.len() {
                if tuple[i] == tuple[j] || perfectly_symmetrizable(tree, tuple[i], tuple[j]) {
                    return false;
                }
            }
        }
        true
    };
    let mut tuples: Vec<Vec<NodeId>> = Vec::new();
    let mut attempts = 0;
    while tuples.len() < count && attempts < 200 {
        attempts += 1;
        let tuple: Vec<NodeId> = (0..k).map(|_| rng.gen_range(0..n)).collect();
        if !tuples.contains(&tuple) && feasible(&tuple) {
            tuples.push(tuple);
        }
    }
    // Deterministic fallback for tiny trees: the lexicographically first
    // feasible tuple, if any exists.
    if tuples.is_empty() {
        if let Some(first) = exhaustive_feasible_tuples(tree, k).into_iter().next() {
            tuples.push(first);
        }
    }
    tuples.shuffle(&mut rng);
    tuples.truncate(count);
    tuples
}

/// *Every* ordered feasible start pair of a tree, in lexicographic order:
/// the exhaustive-certification axis (`e9`) quantifies over all of them,
/// so no rng and no sampling are involved. Ordered, because under start
/// delays "delay B at `b`" and "delay B at `a`" are different adversaries.
pub fn exhaustive_feasible_pairs(tree: &Tree) -> Vec<(NodeId, NodeId)> {
    let n = tree.num_nodes() as NodeId;
    let mut out = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b && !perfectly_symmetrizable(tree, a, b) {
                out.push((a, b));
            }
        }
    }
    out
}

/// *Every* ordered feasible start `k`-tuple of a tree, in lexicographic
/// order — the ensemble generalization of [`exhaustive_feasible_pairs`]
/// (`k = 2` yields exactly that list). A tuple is feasible when its
/// entries are pairwise distinct and **no pair** of them is perfectly
/// symmetrizable: a symmetrizable pair can never meet, so a tuple
/// containing one can never gather — quantifying over it would blame the
/// instance, not the automaton. Ordered, because lane-asymmetric
/// ensemble schedules (delay or crash on a specific lane) make "delay
/// the copy at `c`" and "delay the copy at `a`" different adversaries.
pub fn exhaustive_feasible_tuples(tree: &Tree, k: usize) -> Vec<Vec<NodeId>> {
    assert!(k >= 2, "an ensemble has at least two lanes");
    let n = tree.num_nodes() as NodeId;
    // Memoize the symmetric pair predicate once; the tuple walk below
    // re-reads each unordered pair many times.
    let feasible_pair = |a: NodeId, b: NodeId| !perfectly_symmetrizable(tree, a, b);
    let mut ok = vec![true; (n * n) as usize];
    for a in 0..n {
        for b in 0..n {
            ok[(a * n + b) as usize] = a != b && feasible_pair(a, b);
        }
    }
    let mut out = Vec::new();
    let mut tuple: Vec<NodeId> = Vec::with_capacity(k);
    // Iterative lexicographic DFS over ordered tuples without repetition.
    fn extend(
        tuple: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        ok: &[bool],
        n: NodeId,
        k: usize,
    ) {
        if tuple.len() == k {
            out.push(tuple.clone());
            return;
        }
        'candidate: for v in 0..n {
            for &u in tuple.iter() {
                if !ok[(u * n + v) as usize] {
                    continue 'candidate;
                }
            }
            tuple.push(v);
            extend(tuple, out, ok, n, k);
            tuple.pop();
        }
    }
    extend(&mut tuple, &mut out, &ok, n, k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_nonempty_and_valid() {
        let fam = families(32, 7);
        assert!(fam.len() >= 8);
        for inst in &fam {
            assert!(inst.tree.num_nodes() >= 3, "{}", inst.family);
        }
    }

    #[test]
    fn exhaustive_pairs_are_ordered_feasible_and_complete() {
        // Hand-derived expectations (not recomputed via the same predicate,
        // which would be a tautology): a line with a central NODE admits no
        // perfect symmetrization at all, so every ordered pair is feasible;
        // a line with a central EDGE symmetrizes exactly the mirror pairs
        // (a, n-1-a), which must all be excluded.
        let odd = generators::line(5);
        let pairs = exhaustive_feasible_pairs(&odd);
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "lexicographic order");
        assert_eq!(pairs.len(), 5 * 4, "all 20 ordered pairs of line(5) are feasible");

        let even = generators::line(6);
        let pairs = exhaustive_feasible_pairs(&even);
        assert_eq!(pairs.len(), 6 * 5 - 6, "exactly the 6 mirror pairs of line(6) are excluded");
        for a in 0..6u32 {
            assert!(!pairs.contains(&(a, 5 - a)), "mirror pair ({a}, {}) is infeasible", 5 - a);
        }
        for &(a, b) in &pairs {
            assert_ne!(a, b);
            assert!(!perfectly_symmetrizable(&even, a, b));
        }
    }

    #[test]
    fn exhaustive_tuples_generalize_the_pairs() {
        for t in [generators::line(5), generators::line(6), generators::spider(3, 2)] {
            // k = 2 is byte-identical to the pair enumeration.
            let tuples = exhaustive_feasible_tuples(&t, 2);
            let pairs = exhaustive_feasible_pairs(&t);
            assert_eq!(tuples.len(), pairs.len());
            for (tu, (a, b)) in tuples.iter().zip(&pairs) {
                assert_eq!(tu.as_slice(), &[*a, *b]);
            }
            // k = 3: lexicographic, pairwise distinct, pairwise feasible.
            let triples = exhaustive_feasible_tuples(&t, 3);
            assert!(triples.windows(2).all(|w| w[0] < w[1]), "lexicographic order");
            for tr in &triples {
                for i in 0..3 {
                    for j in i + 1..3 {
                        assert_ne!(tr[i], tr[j]);
                        assert!(!perfectly_symmetrizable(&t, tr[i], tr[j]));
                    }
                }
            }
        }
        // Hand-derived count: line(5) has no symmetrizable pair at all, so
        // every ordered triple of distinct nodes is feasible.
        assert_eq!(exhaustive_feasible_tuples(&generators::line(5), 3).len(), 5 * 4 * 3);
        // line(6) excludes exactly triples containing a mirror pair: by
        // inclusion over the 3 slots pairs can occupy, 6·5·4 − 6·3·4·... —
        // count directly instead: each of the 6 ordered mirror pairs can sit
        // in 3 ordered slot choices with 4 free third nodes, and no triple
        // contains two distinct mirror pairs, so 120 − 6·3·4 = 48.
        assert_eq!(exhaustive_feasible_tuples(&generators::line(6), 3).len(), 48);
    }

    #[test]
    fn pairs_are_feasible() {
        for inst in families(24, 3) {
            for (a, b) in feasible_pairs(&inst.tree, 3, 11) {
                assert_ne!(a, b);
                assert!(!perfectly_symmetrizable(&inst.tree, a, b), "{}", inst.family);
            }
        }
    }
}
