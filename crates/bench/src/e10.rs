//! E10 — adversarial activation schedules, exhaustively certified.
//!
//! Where E9 quantifies over start delays, E10 quantifies over *when the
//! agents run at all*: for each size `n` it takes all free trees
//! ([`crate::sweep::Family::EnumFree`]), all ordered feasible start
//! pairs, and runs the §2.2 basic-walk automaton under the e10 schedule
//! column — the legacy scenarios (simultaneous start, θ = 1) beside
//! genuine per-round delay faults (`intermittent(2)`, `intermittent(3)`
//! duty cycles and a crash after ⌈n/2⌉ rounds). Under the decide executor
//! (the default) every cell is answered by the cycle-position product
//! construction ([`rvz_lowerbounds::decide::decide_pair_scheduled`]), so
//! `met == false` is always a certified never-meets with a verified
//! schedule lasso, never a timeout.
//!
//! The read-out extends the e9 story: θ = 1 already defeats the
//! memoryless walk on every feasible pair, and the schedule columns show
//! *which* of the adversary's finer-grained powers (slowing one agent,
//! crashing it) preserve or break that defeat — e.g. intermittence breaks
//! the parity argument behind the shuttle lassos, so some pairs that
//! never meet simultaneously *do* meet at half speed.

use crate::sweep::{SweepReport, SweepRow};
use crate::table::Table;
use serde::Serialize;

/// Per-(size, schedule) aggregate of an E10 report.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduleSummary {
    /// Instance size `n`.
    pub n: usize,
    /// Schedule label (legacy start scenarios reconstructed from the
    /// `delay` field: `"simultaneous"` / `"start-delay(θ)"`).
    pub schedule: String,
    /// Ordered feasible pairs decided under this schedule.
    pub pairs: u64,
    /// Pairs meeting under this schedule.
    pub met: u64,
    /// Pairs certified never-meets (carrying a verified lasso under the
    /// decide executor).
    pub never: u64,
    /// Worst meeting round over the meeting pairs.
    pub worst_round: u64,
    /// Cells exactly decided (all of them under the decide executor).
    pub certified: u64,
}

/// The schedule label of a row: the `schedule` field when present, else
/// the legacy start scenario the `delay` field encodes.
pub fn row_schedule(row: &SweepRow) -> String {
    row.schedule.clone().unwrap_or_else(|| {
        if row.delay == 0 {
            "simultaneous".into()
        } else {
            format!("start-delay({})", row.delay)
        }
    })
}

/// Aggregates an E10 sweep report into its per-(size, schedule) table.
/// Rows are grouped in grid order (sizes ascending, schedules in the
/// spec's column order), so the table reads like the delay axis.
pub fn summarize(report: &SweepReport) -> (Vec<ScheduleSummary>, Table) {
    let mut out: Vec<ScheduleSummary> = Vec::new();
    for row in &report.rows {
        let label = row_schedule(row);
        let entry = match out.iter_mut().find(|s| s.n == row.size && s.schedule == label) {
            Some(entry) => entry,
            None => {
                out.push(ScheduleSummary {
                    n: row.size,
                    schedule: label,
                    pairs: 0,
                    met: 0,
                    never: 0,
                    worst_round: 0,
                    certified: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        entry.pairs += 1;
        if row.met {
            entry.met += 1;
            entry.worst_round = entry.worst_round.max(row.rounds.unwrap_or(0));
        } else {
            entry.never += 1;
        }
        if row.certified {
            entry.certified += 1;
        }
    }
    out.sort_by_key(|s| s.n);
    let mut t = Table::new(
        "E10",
        "activation schedules: all free trees, all ordered feasible pairs, basic walk",
        &["n", "schedule", "pairs", "met", "never", "worst-round", "certified"],
    );
    for s in &out {
        t.row(vec![
            s.n.to_string(),
            s.schedule.clone(),
            s.pairs.to_string(),
            s.met.to_string(),
            s.never.to_string(),
            s.worst_round.to_string(),
            s.certified.to_string(),
        ]);
    }
    let lassos = report.certificates.iter().filter(|c| c.lasso_stem.is_some()).count();
    let bogus = report.certificates.iter().filter(|c| c.verified == Some(false)).count();
    t.note(&format!(
        "{} never-meets certificates ({lassos} lassos, every one re-verified by independent \
         scheduled stepping{})",
        report.certificates.len(),
        if bogus > 0 { " — VERIFICATION FAILURES PRESENT" } else { "" }
    ));
    let uncertified = report.rows.iter().filter(|r| !r.certified).count();
    if uncertified > 0 {
        t.note(&format!(
            "{uncertified} cells answered by bounded simulation, not certified — \
             run with --executor decide for certified verdicts"
        ));
    }
    (out, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{self, Executor};

    #[test]
    fn e10_summary_accounts_for_every_pair_and_schedule() {
        let mut spec = sweep::preset("e10", &[4, 5, 6], 1, 3).expect("e10 preset");
        spec.executor = Executor::ExactDecide;
        let report = sweep::run(&spec);
        let (summary, table) = summarize(&report);
        // 3 sizes × 5 schedule columns.
        assert_eq!(summary.len(), 15);
        let mut per_size: std::collections::BTreeMap<usize, Vec<&ScheduleSummary>> =
            Default::default();
        for s in &summary {
            assert_eq!(s.met + s.never, s.pairs, "n={} {}", s.n, s.schedule);
            assert_eq!(s.certified, s.pairs, "decide certifies everything");
            per_size.entry(s.n).or_default().push(s);
        }
        for (n, rows) in &per_size {
            // Every schedule column covers the same pair axis.
            assert!(rows.windows(2).all(|w| w[0].pairs == w[1].pairs), "n={n}");
            let sim = rows.iter().find(|s| s.schedule == "simultaneous").expect("sim column");
            let start_delay_1 =
                rows.iter().find(|s| s.schedule == "start-delay(1)").expect("θ=1 column");
            // The e9 certified result (θ* ≤ 1 defeats every pair): every
            // pair is defeated at θ=0 or at θ=1, so the two columns'
            // never-meets sets cover the pair axis.
            assert!(sim.never + start_delay_1.never >= sim.pairs, "n={n}");
            assert!(start_delay_1.never > 0, "n={n}: some pair is defeated by θ=1");
            // A crashed agent is met where it stopped: A's Euler tour
            // covers the tree, so the crash column always meets.
            let crash = rows
                .iter()
                .find(|s| s.schedule == format!("crash-after({})", n.div_ceil(2)))
                .expect("crash column");
            assert_eq!(crash.met, crash.pairs, "n={n}");
        }
        // Intermittence differs from the simultaneous column somewhere:
        // the duty cycle breaks parity arguments both ways.
        let differs = per_size.values().any(|rows| {
            let sim = rows.iter().find(|s| s.schedule == "simultaneous").unwrap();
            rows.iter().filter(|s| s.schedule.starts_with("intermittent")).any(|s| s.met != sim.met)
        });
        assert!(differs, "schedules must change outcomes somewhere");
        // The summary counts must not depend on the executor (bounded
        // budgets are decision horizons on bw cells).
        let mut replay_spec = spec.clone();
        replay_spec.executor = Executor::TraceReplay;
        let (replay_summary, replay_table) = summarize(&sweep::run(&replay_spec));
        assert_eq!(
            replay_summary
                .iter()
                .map(|s| (s.n, s.schedule.clone(), s.pairs, s.met, s.never, s.worst_round))
                .collect::<Vec<_>>(),
            summary
                .iter()
                .map(|s| (s.n, s.schedule.clone(), s.pairs, s.met, s.never, s.worst_round))
                .collect::<Vec<_>>(),
            "summary counts must not depend on the executor"
        );
        assert!(replay_table.render().contains("not certified"));
        assert!(table.render().contains("activation schedules"));
    }
}
