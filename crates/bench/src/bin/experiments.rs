//! The experiment driver: regenerates every table/figure-equivalent of the
//! paper (see EXPERIMENTS.md).
//!
//! ```text
//! experiments [e1 e2 e3 e4 e5 e6 e7 | all] [--full] [--json DIR]
//! ```
//!
//! Default is a laptop-scale pass (a couple of minutes); `--full` enlarges
//! the sweeps. `--json DIR` additionally writes one JSON file per
//! experiment with the raw rows.

use rvz_bench::{e1, e2, e3, e4, e5, e6, e7, e8, Table};
use std::io::Write;

struct Cfg {
    full: bool,
    json_dir: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let cfg = Cfg { full, json_dir };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with('e') && a.len() == 2)
        .cloned()
        .collect();
    let all = wanted.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || wanted.iter().any(|w| w == id);

    let seed = 0x5EED_2010;

    if want("e1") {
        let samples = if cfg.full { 40 } else { 12 };
        let bits = if cfg.full { 8 } else { 6 };
        let (rows, table) = e1::run(bits, samples, seed);
        emit(&cfg, "e1", &table, &rows);
    }
    if want("e2") {
        let scale = if cfg.full { 256 } else { 48 };
        let (rows, table) = e2::run(scale, if cfg.full { 6 } else { 3 }, seed);
        emit(&cfg, "e2", &table, &rows);
    }
    if want("e3") {
        let sizes: &[usize] = if cfg.full {
            &[8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        } else {
            &[8, 16, 32, 64, 128, 256]
        };
        let (rows, table) = e3::run(sizes, if cfg.full { 10 } else { 5 }, seed);
        emit(&cfg, "e3", &table, &rows);
    }
    if want("e4") {
        let samples = if cfg.full { 30 } else { 10 };
        let bits = if cfg.full { 5 } else { 4 };
        let (rows, table) = e4::run(bits, samples, 1 << 16, seed);
        emit(&cfg, "e4", &table, &rows);
    }
    if want("e5") {
        let states: &[usize] = if cfg.full { &[2, 3, 4, 5] } else { &[2, 3] };
        let (rows, table) = e5::run(states, if cfg.full { 10 } else { 5 }, 14, seed);
        let twins = e5::verify_symmetric_twins(10);
        println!("E5 twin check: {twins} symmetric T1–T1 instances verified infeasible-by-symmetry");
        emit(&cfg, "e5", &table, &rows);
    }
    if want("e6") {
        let sizes: &[usize] = if cfg.full {
            &[16, 32, 64, 128, 256, 512, 1024]
        } else {
            &[16, 32, 64, 128, 256]
        };
        let (rows, table) = e6::run(sizes, seed);
        emit(&cfg, "e6", &table, &rows);
    }
    if want("e7") {
        let (rows, table) = e7::run(if cfg.full { 60 } else { 20 }, seed);
        emit(&cfg, "e7", &table, &rows);
    }
    if want("e8") {
        let (rows, table) = e8::run(if cfg.full { 120_000_000 } else { 40_000_000 });
        emit(&cfg, "e8", &table, &rows);
    }
}

fn emit<R: serde::Serialize>(cfg: &Cfg, id: &str, table: &Table, rows: &R) {
    println!("{}", table.render());
    if let Some(dir) = &cfg.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{id}.json");
        let mut f = std::fs::File::create(&path).expect("create json file");
        let payload = serde_json::json!({
            "table": table,
            "rows": rows,
        });
        writeln!(f, "{}", serde_json::to_string_pretty(&payload).expect("serialize"))
            .expect("write json");
        println!("  (raw rows written to {path})\n");
    }
}
