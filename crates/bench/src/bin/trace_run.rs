//! ASCII visualization of a two-agent rendezvous run on a line — a
//! developer tool for watching the algorithms move.
//!
//! ```text
//! trace_run [n] [a] [b] [max_rows]        # Theorem 4.1 agents on line(n)
//! trace_run --prime [n] [a] [b] [rows]    # Lemma 4.1 blind prime agents
//! ```
//!
//! Each printed row is one round: `A`/`B` mark the agents, `*` co-location.

use rvz_agent::model::Agent;
use rvz_core::{PrimePathAgent, TreeRendezvousAgent};
use rvz_sim::Cursor;
use rvz_trees::generators::line;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prime = args.iter().any(|a| a == "--prime");
    let nums: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let n = *nums.first().unwrap_or(&13);
    let a0 = *nums.get(1).unwrap_or(&0);
    let b0 = *nums.get(2).unwrap_or(&(n / 2));
    let rows = *nums.get(3).unwrap_or(&200);

    let t = line(n);
    let mut agent_a: Box<dyn Agent> = if prime {
        Box::new(PrimePathAgent::unbounded())
    } else {
        Box::new(TreeRendezvousAgent::new())
    };
    let mut agent_b: Box<dyn Agent> = if prime {
        Box::new(PrimePathAgent::unbounded())
    } else {
        Box::new(TreeRendezvousAgent::new())
    };
    let mut ca = Cursor::new(a0 as u32);
    let mut cb = Cursor::new(b0 as u32);
    println!(
        "line({n}), agents at {a0} and {b0}, protocol = {}",
        if prime { "prime (Lemma 4.1)" } else { "Theorem 4.1" }
    );
    for round in 0..=rows as u64 {
        let mut lane: Vec<char> = vec!['.'; n];
        if ca.node == cb.node {
            lane[ca.node as usize] = '*';
        } else {
            lane[ca.node as usize] = 'A';
            lane[cb.node as usize] = 'B';
        }
        println!("{round:>6} {}", lane.iter().collect::<String>());
        if ca.node == cb.node && round > 0 {
            println!("rendezvous at node {} in round {round}", ca.node);
            return;
        }
        let act_a = agent_a.act(ca.obs(&t));
        ca.apply(&t, act_a);
        let act_b = agent_b.act(cb.obs(&t));
        cb.apply(&t, act_b);
    }
    println!("(no meeting within {rows} rounds — raise the row budget)");
}
