//! Perf-trajectory recorder: times the sweep executor on the standard
//! n ≈ 200 grids ([`sweep::perf_grid_fsa_scan`] / [`sweep::perf_grid_variants`],
//! shared with the `sweep_cells` criterion bench) and writes
//! `BENCH_sweep.json` with before/after numbers.
//!
//! **before** is the PR-2 stepping executor ([`Executor::DynStepping`]):
//! one shared `Arc<SweepInstance>` per (family, size), both agents stepped
//! through dyn `run_pair` in every cell. **after** is the trace-replay
//! executor ([`Executor::TraceReplay`]): each `(family, n, start, variant)`
//! trajectory is recorded once into the process-wide trace store and every
//! cell is decided by timeline merge — the best-of-`reps` timing therefore
//! reports the warm steady state, which is what repeated sweeps, delay
//! columns and overlapping grids actually pay. Both legs produce the
//! identical row stream (asserted before any number is written), so the
//! ratio is pure executor cost.
//!
//! The run *fails* (exit 1) if `sweep_cells_variants` — the procedural
//! agent grid whose simulation time used to dominate — speeds up by less
//! than 3× (the ISSUE-3 floor; the committed baseline records well above),
//! if `decide_cells` — the exact decider against stepping — falls below
//! 0.66× (the ISSUE-6 floor for the orbit-quotiented, memoized rebuild),
//! if `ensemble_cells` — the k-lane timeline merge against k-lane
//! stepping on the 3-agent gathering grid — falls below 1× (the ISSUE-10
//! floor: the merge reuses solo recordings and must keep pace), or if
//! any `planner_cells` section — `Executor::Auto` against the best
//! fixed executor on the same grid — falls below the 0.95× floor (the
//! ISSUE-9 gate: the cost-model planner must never lose more than 5% to
//! the executor it should have picked).
//!
//! Usage: `bench_baseline [OUT.json]` (default `BENCH_sweep.json`);
//! `just bench-baseline` and CI's bench-smoke call this.

use rvz_bench::sweep::{self, Executor, SweepSpec};
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in nanoseconds, plus its last output.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_nanos());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// Serializes rows with the per-executor annotations cleared — `certified`
/// (the exact decider's flag) and `planned` (the Auto planner's record),
/// the only fields executors are *allowed* to differ on.
fn rows_modulo_certification(rows: &[sweep::SweepRow]) -> String {
    let mut rows = rows.to_vec();
    for r in &mut rows {
        r.certified = false;
        r.planned = None;
    }
    serde_json::to_string(&rows).expect("serialize")
}

/// Measures one grid under a before/after executor pair and returns its
/// JSON record plus the measured speedup.
fn measure_pair(
    name: &str,
    spec: &SweepSpec,
    reps: usize,
    before_exec: (Executor, &str),
    after_exec: (Executor, &str),
) -> (serde_json::Value, f64) {
    let cells = sweep::cells(spec).len();
    let mut before_spec = spec.clone();
    before_spec.executor = before_exec.0;
    let mut after_spec = spec.clone();
    after_spec.executor = after_exec.0;

    let (before_ns, before_report) = time_best(reps, || sweep::run(&before_spec));
    let (after_ns, after_report) = time_best(reps, || sweep::run(&after_spec));

    // Executors must agree on every row (modulo the certification flag,
    // which only the exact decider sets).
    assert_eq!(
        rows_modulo_certification(&before_report.rows),
        rows_modulo_certification(&after_report.rows),
        "{name}: executors diverged"
    );

    let speedup = before_ns as f64 / after_ns as f64;
    let grid_meta = serde_json::json!({
        "families": spec.families.iter().map(|f| f.name()).collect::<Vec<_>>(),
        "sizes": spec.sizes,
        "delays": spec.delays.iter().map(|d| format!("{d:?}")).collect::<Vec<_>>(),
        "variants": spec.variants.iter().map(|v| v.name()).collect::<Vec<_>>(),
        "pairs_per_cell": spec.pairs_per_cell,
        "seed": spec.seed
    });
    let before = serde_json::json!({
        "executor": before_exec.1,
        "total_ns": before_ns as u64,
        "ns_per_cell": (before_ns / cells as u128) as u64
    });
    let after = serde_json::json!({
        "executor": after_exec.1,
        "total_ns": after_ns as u64,
        "ns_per_cell": (after_ns / cells as u128) as u64
    });
    println!(
        "{name}: {cells} cells, before {:.2} ms, after {:.2} ms, speedup {speedup:.2}x",
        before_ns as f64 / 1e6,
        after_ns as f64 / 1e6
    );
    let record = serde_json::json!({
        "benchmark": name,
        "grid": grid_meta,
        "cells": cells,
        "reps": reps,
        "before": before,
        "after": after,
        "speedup": (speedup * 100.0).round() / 100.0
    });
    (record, speedup)
}

/// The hard floor on every `planner_cells` section: `Executor::Auto` must
/// stay within 5% of the *best* fixed executor on that grid (and is
/// expected to beat it where the batch kernel applies).
const PLANNER_FLOOR: f64 = 0.95;

/// Measures one grid under `Executor::Auto` against every fixed executor
/// and returns the section's JSON record plus `best_fixed_ns / auto_ns`
/// (≥ 1 means the planner won outright; the gate holds it to
/// [`PLANNER_FLOOR`]). Row streams are asserted identical modulo the
/// `certified`/`planned` annotations before any number is written.
fn measure_planner(name: &str, spec: &SweepSpec, reps: usize) -> (serde_json::Value, f64) {
    let cells = sweep::cells(spec).len();
    let mut auto_spec = spec.clone();
    auto_spec.executor = Executor::Auto;
    let (auto_ns, auto_report) = time_best(reps, || sweep::run(&auto_spec));

    let mut fixed_legs = Vec::new();
    let mut best: Option<(&str, u128)> = None;
    for (label, executor) in [
        ("stepping", Executor::DynStepping),
        ("replay", Executor::TraceReplay),
        ("decide", Executor::ExactDecide),
    ] {
        let mut fixed_spec = spec.clone();
        fixed_spec.executor = executor;
        let (ns, report) = time_best(reps, || sweep::run(&fixed_spec));
        assert_eq!(
            rows_modulo_certification(&auto_report.rows),
            rows_modulo_certification(&report.rows),
            "{name}: auto diverged from {label}"
        );
        fixed_legs.push(serde_json::json!({
            "executor": label,
            "total_ns": ns as u64,
            "ns_per_cell": (ns / cells as u128) as u64
        }));
        if best.is_none_or(|(_, b)| ns < b) {
            best = Some((label, ns));
        }
    }
    let (best_label, best_ns) = best.expect("at least one fixed executor");
    let ratio = best_ns as f64 / auto_ns as f64;

    // The planner's routing census — which executors the cost model
    // actually picked on this grid.
    let mut choices: Vec<(String, u64)> = Vec::new();
    for row in &auto_report.rows {
        let choice = row.planned.as_ref().expect("auto rows are annotated").choice.clone();
        match choices.iter_mut().find(|(c, _)| *c == choice) {
            Some((_, count)) => *count += 1,
            None => choices.push((choice, 1)),
        }
    }
    let routed: Vec<serde_json::Value> = choices
        .iter()
        .map(|(choice, count)| serde_json::json!({"choice": choice.clone(), "cells": *count}))
        .collect();

    println!(
        "{name}: {cells} cells, auto {:.2} ms vs best fixed ({best_label}) {:.2} ms, \
         ratio {ratio:.2}x",
        auto_ns as f64 / 1e6,
        best_ns as f64 / 1e6
    );
    let record = serde_json::json!({
        "benchmark": name,
        "cells": cells,
        "reps": reps,
        "auto_total_ns": auto_ns as u64,
        "auto_ns_per_cell": (auto_ns / cells as u128) as u64,
        "fixed": fixed_legs,
        "best_fixed": best_label,
        "ratio_vs_best_fixed": (ratio * 100.0).round() / 100.0,
        "floor": PLANNER_FLOOR,
        "routed": routed
    });
    (record, ratio)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sweep.json".into());
    let reps = 5;
    const STEPPING: (Executor, &str) =
        (Executor::DynStepping, "shared-instance dyn stepping (PR-2; Executor::DynStepping)");
    const REPLAY: (Executor, &str) =
        (Executor::TraceReplay, "trace replay over the warm process-wide trajectory store");
    const DECIDE: (Executor, &str) = (
        Executor::ExactDecide,
        "exact decider over the joint configuration graph (budget-free, certifying)",
    );
    let (primary, _) =
        measure_pair("sweep_cells", &sweep::perf_grid_fsa_scan(), reps, STEPPING, REPLAY);
    let (secondary, variants_speedup) =
        measure_pair("sweep_cells_variants", &sweep::perf_grid_variants(), reps, STEPPING, REPLAY);
    // The decider is measured against stepping on the automaton grid — the
    // workload it answers natively. Since the orbit-quotiented, memoized
    // rebuild it is expected to at least keep pace with stepping while
    // also certifying; the ISSUE-6 floor below holds it to ≥ 0.66x.
    let (decide, decide_speedup) =
        measure_pair("decide_cells", &sweep::perf_grid_fsa_scan(), reps, STEPPING, DECIDE);
    // The ensemble leg: the e11 gathering workload at its top size (three
    // basic-walk copies, every free tree at n = 7, every ordered feasible
    // start triple, the three e11 schedule columns). The k-lane timeline
    // merge reuses each lane's solo recording across every triple and
    // schedule that visits it, so it must at least keep pace with k-lane
    // stepping; the 1x floor below pins that.
    let (ensemble, ensemble_speedup) =
        measure_pair("ensemble_cells", &sweep::perf_grid_ensemble(), reps, STEPPING, REPLAY);
    // The planner sections: Auto against the best fixed executor on both
    // standard grids (schema v4; the bench-smoke job gates the floor).
    // Extra reps here: the 0.95× floor compares legs within ~5% of each
    // other (on the variants grid the best fixed leg runs the *identical*
    // replay path Auto routes to), so the best-of-N needs to converge
    // tighter than the per-rep noise on sub-millisecond grids.
    let planner_reps = 3 * reps;
    let (planner_fsa, fsa_ratio) =
        measure_planner("planner_cells_fsa_scan", &sweep::perf_grid_fsa_scan(), planner_reps);
    let (planner_variants, variants_ratio) =
        measure_planner("planner_cells_variants", &sweep::perf_grid_variants(), planner_reps);
    let payload = serde_json::json!({
        "schema": "rvz-bench-sweep/v5",
        "n": 200,
        "sweep_cells": primary,
        "sweep_cells_variants": secondary,
        "decide_cells": decide,
        "ensemble_cells": ensemble,
        "planner_cells": vec![planner_fsa, planner_variants]
    });
    let body = serde_json::to_string_pretty(&payload).expect("serialize");
    rvz_bench::wire::atomic_write(std::path::Path::new(&out_path), format!("{body}\n").as_bytes())
        .expect("write BENCH_sweep.json");
    println!("  (written to {out_path})");
    if variants_speedup < 3.0 {
        eprintln!(
            "error: sweep_cells_variants speedup {variants_speedup:.2}x is below the 3x floor \
             (trace replay must beat the PR-2 stepping path)"
        );
        std::process::exit(1);
    }
    if decide_speedup < 0.66 {
        eprintln!(
            "error: decide_cells speedup {decide_speedup:.2}x is below the 0.66x floor \
             (the quotiented+memoized exact decider must stay within 1.5x of stepping)"
        );
        std::process::exit(1);
    }
    if ensemble_speedup < 1.0 {
        eprintln!(
            "error: ensemble_cells speedup {ensemble_speedup:.2}x is below the 1x floor \
             (the k-lane timeline merge must keep pace with k-lane stepping)"
        );
        std::process::exit(1);
    }
    for (name, ratio) in
        [("planner_cells_fsa_scan", fsa_ratio), ("planner_cells_variants", variants_ratio)]
    {
        if ratio < PLANNER_FLOOR {
            eprintln!(
                "error: {name} ratio {ratio:.2}x is below the {PLANNER_FLOOR}x floor \
                 (the cost-model planner must stay within 5% of the best fixed executor)"
            );
            std::process::exit(1);
        }
    }
}
