//! Perf-trajectory recorder: times the sweep executor on the standard
//! n ≈ 200 grids ([`sweep::perf_grid_fsa_scan`] / [`sweep::perf_grid_variants`],
//! shared with the `sweep_cells` criterion bench) and writes
//! `BENCH_sweep.json` with before/after numbers.
//!
//! **before** is the PR-2 stepping executor ([`Executor::DynStepping`]):
//! one shared `Arc<SweepInstance>` per (family, size), both agents stepped
//! through dyn `run_pair` in every cell. **after** is the trace-replay
//! executor ([`Executor::TraceReplay`]): each `(family, n, start, variant)`
//! trajectory is recorded once into the process-wide trace store and every
//! cell is decided by timeline merge — the best-of-`reps` timing therefore
//! reports the warm steady state, which is what repeated sweeps, delay
//! columns and overlapping grids actually pay. Both legs produce the
//! identical row stream (asserted before any number is written), so the
//! ratio is pure executor cost.
//!
//! The run *fails* (exit 1) if `sweep_cells_variants` — the procedural
//! agent grid whose simulation time used to dominate — speeds up by less
//! than 3× (the ISSUE-3 floor; the committed baseline records well above),
//! or if `decide_cells` — the exact decider against stepping — falls below
//! 0.66× (the ISSUE-6 floor for the orbit-quotiented, memoized rebuild).
//!
//! Usage: `bench_baseline [OUT.json]` (default `BENCH_sweep.json`);
//! `just bench-baseline` and CI's bench-smoke call this.

use rvz_bench::sweep::{self, Executor, SweepSpec};
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in nanoseconds, plus its last output.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_nanos());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// Serializes rows with the `certified` flag cleared — the one field the
/// exact decider is *allowed* to differ on.
fn rows_modulo_certification(rows: &[sweep::SweepRow]) -> String {
    let mut rows = rows.to_vec();
    for r in &mut rows {
        r.certified = false;
    }
    serde_json::to_string(&rows).expect("serialize")
}

/// Measures one grid under a before/after executor pair and returns its
/// JSON record plus the measured speedup.
fn measure_pair(
    name: &str,
    spec: &SweepSpec,
    reps: usize,
    before_exec: (Executor, &str),
    after_exec: (Executor, &str),
) -> (serde_json::Value, f64) {
    let cells = sweep::cells(spec).len();
    let mut before_spec = spec.clone();
    before_spec.executor = before_exec.0;
    let mut after_spec = spec.clone();
    after_spec.executor = after_exec.0;

    let (before_ns, before_report) = time_best(reps, || sweep::run(&before_spec));
    let (after_ns, after_report) = time_best(reps, || sweep::run(&after_spec));

    // Executors must agree on every row (modulo the certification flag,
    // which only the exact decider sets).
    assert_eq!(
        rows_modulo_certification(&before_report.rows),
        rows_modulo_certification(&after_report.rows),
        "{name}: executors diverged"
    );

    let speedup = before_ns as f64 / after_ns as f64;
    let grid_meta = serde_json::json!({
        "families": spec.families.iter().map(|f| f.name()).collect::<Vec<_>>(),
        "sizes": spec.sizes,
        "delays": spec.delays.iter().map(|d| format!("{d:?}")).collect::<Vec<_>>(),
        "variants": spec.variants.iter().map(|v| v.name()).collect::<Vec<_>>(),
        "pairs_per_cell": spec.pairs_per_cell,
        "seed": spec.seed
    });
    let before = serde_json::json!({
        "executor": before_exec.1,
        "total_ns": before_ns as u64,
        "ns_per_cell": (before_ns / cells as u128) as u64
    });
    let after = serde_json::json!({
        "executor": after_exec.1,
        "total_ns": after_ns as u64,
        "ns_per_cell": (after_ns / cells as u128) as u64
    });
    println!(
        "{name}: {cells} cells, before {:.2} ms, after {:.2} ms, speedup {speedup:.2}x",
        before_ns as f64 / 1e6,
        after_ns as f64 / 1e6
    );
    let record = serde_json::json!({
        "benchmark": name,
        "grid": grid_meta,
        "cells": cells,
        "reps": reps,
        "before": before,
        "after": after,
        "speedup": (speedup * 100.0).round() / 100.0
    });
    (record, speedup)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sweep.json".into());
    let reps = 5;
    const STEPPING: (Executor, &str) =
        (Executor::DynStepping, "shared-instance dyn stepping (PR-2; Executor::DynStepping)");
    const REPLAY: (Executor, &str) =
        (Executor::TraceReplay, "trace replay over the warm process-wide trajectory store");
    const DECIDE: (Executor, &str) = (
        Executor::ExactDecide,
        "exact decider over the joint configuration graph (budget-free, certifying)",
    );
    let (primary, _) =
        measure_pair("sweep_cells", &sweep::perf_grid_fsa_scan(), reps, STEPPING, REPLAY);
    let (secondary, variants_speedup) =
        measure_pair("sweep_cells_variants", &sweep::perf_grid_variants(), reps, STEPPING, REPLAY);
    // The decider is measured against stepping on the automaton grid — the
    // workload it answers natively. Since the orbit-quotiented, memoized
    // rebuild it is expected to at least keep pace with stepping while
    // also certifying; the ISSUE-6 floor below holds it to ≥ 0.66x.
    let (decide, decide_speedup) =
        measure_pair("decide_cells", &sweep::perf_grid_fsa_scan(), reps, STEPPING, DECIDE);
    let payload = serde_json::json!({
        "schema": "rvz-bench-sweep/v3",
        "n": 200,
        "sweep_cells": primary,
        "sweep_cells_variants": secondary,
        "decide_cells": decide
    });
    let body = serde_json::to_string_pretty(&payload).expect("serialize");
    rvz_bench::wire::atomic_write(std::path::Path::new(&out_path), format!("{body}\n").as_bytes())
        .expect("write BENCH_sweep.json");
    println!("  (written to {out_path})");
    if variants_speedup < 3.0 {
        eprintln!(
            "error: sweep_cells_variants speedup {variants_speedup:.2}x is below the 3x floor \
             (trace replay must beat the PR-2 stepping path)"
        );
        std::process::exit(1);
    }
    if decide_speedup < 0.66 {
        eprintln!(
            "error: decide_cells speedup {decide_speedup:.2}x is below the 0.66x floor \
             (the quotiented+memoized exact decider must stay within 1.5x of stepping)"
        );
        std::process::exit(1);
    }
}
