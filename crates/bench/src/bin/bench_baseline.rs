//! Perf-trajectory recorder: times the sweep executor on the standard
//! n ≈ 200 grids ([`sweep::perf_grid_fsa_scan`] / [`sweep::perf_grid_variants`],
//! shared with the `sweep_cells` criterion bench) and writes
//! `BENCH_sweep.json` with before/after numbers.
//!
//! **before** re-enacts the pre-instance-cache executor: every cell
//! rebuilds its tree, feasible-pair pool and agent tables from its
//! coordinates — that is exactly what the standalone [`sweep::run_cell`]
//! still does — plus, for automaton cells, the per-runner transition-table
//! clone the pre-PR `Fsa::runner` performed. **after** is the current batch
//! executor ([`sweep::run`]): one shared immutable instance per (family,
//! size). Both legs produce the identical row stream (asserted), so the
//! ratio is pure executor overhead.
//!
//! Usage: `bench_baseline [OUT.json]` (default `BENCH_sweep.json`);
//! `just bench-baseline` and CI's bench-smoke call this.

use rvz_bench::sweep::{self, Cell, SweepInstance, SweepRow, SweepSpec, Variant};
use std::hint::black_box;
use std::time::Instant;

/// The pre-PR executor, re-enacted cell by cell. [`sweep::run_cell`] already
/// rebuilds the whole instance from the cell coordinates; automaton cells
/// additionally pay the per-runner table deep-copies the pre-PR
/// `Fsa::runner` made.
fn run_cell_legacy(cell: &Cell) -> Option<SweepRow> {
    if cell.variant != Variant::BasicWalkFsa {
        return sweep::run_cell(cell);
    }
    let inst = SweepInstance::for_cell(cell);
    let fsa = inst.basic_walk_fsa();
    black_box(fsa.clone());
    black_box(fsa.clone());
    sweep::run_cell_on(cell, &inst)
}

/// Best-of-`reps` wall time of `f`, in nanoseconds, plus its last output.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_nanos());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// Measures one grid both ways and returns its JSON record.
fn measure(name: &str, spec: &SweepSpec, reps: usize) -> serde_json::Value {
    let grid = sweep::cells(spec);
    let cells = grid.len();

    let (before_ns, before_rows) =
        time_best(reps, || grid.iter().filter_map(run_cell_legacy).collect::<Vec<_>>());
    let (after_ns, after_report) = time_best(reps, || sweep::run(spec));

    // The optimization must not change a single byte of output.
    let before_json = serde_json::to_string(&before_rows).expect("serialize");
    let after_json = serde_json::to_string(&after_report.rows).expect("serialize");
    assert_eq!(before_json, after_json, "{name}: cached executor diverged from the legacy path");

    let speedup = before_ns as f64 / after_ns as f64;
    let grid_meta = serde_json::json!({
        "families": spec.families.iter().map(|f| f.name()).collect::<Vec<_>>(),
        "sizes": spec.sizes,
        "delays": spec.delays.iter().map(|d| format!("{d:?}")).collect::<Vec<_>>(),
        "variants": spec.variants.iter().map(|v| v.name()).collect::<Vec<_>>(),
        "pairs_per_cell": spec.pairs_per_cell,
        "seed": spec.seed
    });
    let before = serde_json::json!({
        "executor": "per-cell instance rebuild + per-runner table clone (pre-PR)",
        "total_ns": before_ns as u64,
        "ns_per_cell": (before_ns / cells as u128) as u64
    });
    let after = serde_json::json!({
        "executor": "shared Arc<SweepInstance> per (family, n)",
        "total_ns": after_ns as u64,
        "ns_per_cell": (after_ns / cells as u128) as u64
    });
    println!(
        "{name}: {cells} cells, before {:.2} ms, after {:.2} ms, speedup {speedup:.2}x",
        before_ns as f64 / 1e6,
        after_ns as f64 / 1e6
    );
    serde_json::json!({
        "benchmark": name,
        "grid": grid_meta,
        "cells": cells,
        "reps": reps,
        "before": before,
        "after": after,
        "speedup": (speedup * 100.0).round() / 100.0
    })
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sweep.json".into());
    let reps = 5;
    let primary = measure("sweep_cells", &sweep::perf_grid_fsa_scan(), reps);
    let secondary = measure("sweep_cells_variants", &sweep::perf_grid_variants(), reps);
    let payload = serde_json::json!({
        "schema": "rvz-bench-sweep/v1",
        "n": 200,
        "sweep_cells": primary,
        "sweep_cells_variants": secondary
    });
    let body = serde_json::to_string_pretty(&payload).expect("serialize");
    std::fs::write(&out_path, format!("{body}\n")).expect("write BENCH_sweep.json");
    println!("  (written to {out_path})");
}
