//! **E7 — Figure 2 machinery**: measured validation of the Stage-2 claims.
//!
//! * Claim 4.2: after `Synchro`, the inter-agent delay equals `|L − L'|`
//!   exactly (L = basic-walk length from the start to `v̂`).
//! * Lemma 4.2: the delay at every `prime(i)` start is at most
//!   `|t − t'| + 16nℓ`.
//! * Claim 4.3 (reversal): the standalone counter-basic-walk tour is the
//!   exact edge-reversal of the basic-walk tour.

use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::model::{Action, Step, SubAgent};
use rvz_explore::{BwCounted, CbwCounted, ExploBis, Synchro};
use rvz_sim::Cursor;
use rvz_trees::generators::{random_relabel, random_tree};
use rvz_trees::{NodeId, Tree};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E7Row {
    pub check: String,
    pub instances: usize,
    pub passed: usize,
    pub worst_slack: i64,
}

/// Runs Explo-bis + Synchro from `start`; returns (rounds, leaf-seek L).
fn explo_synchro_rounds(t: &Tree, start: NodeId) -> (u64, u64) {
    let mut cur = Cursor::new(start);
    let mut rounds = 0u64;
    let mut explo = ExploBis::new();
    let (nu, leaf_len) = loop {
        match explo.step(cur.obs(t)) {
            Step::Done => {
                let r = explo.result().unwrap();
                break (r.nu, r.leaf_seek_len);
            }
            Step::Move(p) => {
                cur.apply(t, Action::Move(p));
                rounds += 1;
            }
            Step::Stay => {
                rounds += 1;
            }
        }
    };
    let mut sync = Synchro::new(nu);
    loop {
        match sync.step(cur.obs(t)) {
            Step::Done => break,
            Step::Move(p) => {
                cur.apply(t, Action::Move(p));
                rounds += 1;
            }
            Step::Stay => {
                rounds += 1;
            }
        }
    }
    (rounds, leaf_len)
}

pub fn run(trials: usize, seed: u64) -> (Vec<E7Row>, Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();

    // Claim 4.2.
    {
        let mut passed = 0;
        let mut checked = 0;
        for _ in 0..trials {
            let t = random_relabel(&random_tree(16, &mut rng), &mut rng);
            let n = t.num_nodes() as NodeId;
            for (u, v) in [(0, n - 1), (1, n / 2)] {
                if u == v {
                    continue;
                }
                checked += 1;
                let (r_u, l_u) = explo_synchro_rounds(&t, u);
                let (r_v, l_v) = explo_synchro_rounds(&t, v);
                if r_u.abs_diff(r_v) == l_u.abs_diff(l_v) {
                    passed += 1;
                }
            }
        }
        rows.push(E7Row {
            check: "Claim 4.2: post-Synchro delay == |L − L'|".into(),
            instances: checked,
            passed,
            worst_slack: 0,
        });
    }

    // Claim 4.3 reversal: cbw tour == reverse(bw tour), physically.
    {
        let mut passed = 0;
        let mut checked = 0;
        for _ in 0..trials {
            let t = random_relabel(&random_tree(12, &mut rng), &mut rng);
            let contraction = rvz_trees::contract(&t);
            let nu = contraction.num_nodes() as u64;
            let start = (0..t.num_nodes() as NodeId).find(|&v| t.degree(v) != 2).unwrap();
            checked += 1;
            let fwd = walk_nodes(&t, start, &mut BwCounted::new(2 * (nu - 1)));
            let rev = walk_nodes(&t, start, &mut CbwCounted::standalone(2 * (nu - 1)));
            let mut expect = fwd.clone();
            expect.reverse();
            if rev == expect {
                passed += 1;
            }
        }
        rows.push(E7Row {
            check: "Claim 4.3: cbw tour is the exact reversal of the bw tour".into(),
            instances: checked,
            passed,
            worst_slack: 0,
        });
    }

    // Lemma 4.2 bound: |t − t'| ≤ 4n, so the prime(i) start delay is
    // within |t − t'| + 16nℓ. We check the post-Synchro-to-far-extremity
    // arrival gap against 4n (the |t − t'| part that Stage 2.2 inherits).
    {
        let mut passed = 0;
        let mut checked = 0;
        let mut worst = 0i64;
        for _ in 0..trials {
            let t = random_relabel(&random_tree(14, &mut rng), &mut rng);
            let n = t.num_nodes() as u64;
            let a = 0;
            let b = (t.num_nodes() - 1) as NodeId;
            checked += 1;
            let (ra, _) = explo_synchro_rounds(&t, a);
            let (rb, _) = explo_synchro_rounds(&t, b);
            let gap = ra.abs_diff(rb) as i64;
            let bound = 4 * n as i64;
            worst = worst.max(gap - bound);
            if gap <= bound {
                passed += 1;
            }
        }
        rows.push(E7Row {
            check: "Lemma 4.2 ingredient: |t − t'| ≤ 4n".into(),
            instances: checked,
            passed,
            worst_slack: worst,
        });
    }

    let table = to_table(&rows);
    (rows, table)
}

fn walk_nodes(t: &Tree, start: NodeId, sub: &mut dyn SubAgent) -> Vec<NodeId> {
    let mut cur = Cursor::new(start);
    let mut nodes = vec![start];
    loop {
        match sub.step(cur.obs(t)) {
            Step::Done => return nodes,
            Step::Move(p) => {
                cur.apply(t, Action::Move(p));
                nodes.push(cur.node);
            }
            Step::Stay => {}
        }
    }
}

fn to_table(rows: &[E7Row]) -> Table {
    let mut t = Table::new(
        "E7",
        "Figure 2 machinery: Claims 4.2/4.3 and the Lemma 4.2 delay ingredient, measured",
        &["check", "instances", "passed", "worst slack"],
    );
    for r in rows {
        t.row(vec![
            r.check.clone(),
            r.instances.to_string(),
            r.passed.to_string(),
            r.worst_slack.to_string(),
        ]);
    }
    t.note(
        "all checks must pass on every instance; 'worst slack' ≤ 0 means the bound held with room",
    );
    t
}
