//! **E5 — Theorem 4.3**: the side-tree pigeonhole on max-degree-3 trees.
//!
//! For automata of `K` states, find two side trees with colliding behavior
//! functions and build the two-sided instance they fail on. The shape: the
//! spine parameter `i` (hence `ℓ = 2i`) needed for a collision grows with
//! `K`, matching `k = Ω(log ℓ)` necessity; the same-side instance `T1–T1`
//! is verifiably symmetric (the infeasible twin).

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::fsa::Fsa;
use rvz_lowerbounds::side_trees::{side_tree_attack, two_sided, SideTreeError};
use rvz_trees::symmetry::symmetric_wrt_labeling;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E5Row {
    pub agent: String,
    pub states: usize,
    pub bits: u64,
    pub samples: usize,
    pub defeated: usize,
    pub no_collision: usize,
    pub i_mean: f64,
    pub i_max: usize,
    pub leaves_max: usize,
}

pub fn run(state_range: &[usize], samples: usize, max_i: usize, seed: u64) -> (Vec<E5Row>, Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    // Structured victims first: the basic-walk automaton and our own
    // capped prime protocol (compiled on lines, extended to degree 3).
    {
        let fsa = Fsa::basic_walk(3);
        let attack = side_tree_attack(&fsa, max_i, 4).expect("basic walk defeated");
        rows.push(E5Row {
            agent: "basic-walk".into(),
            states: fsa.num_states(),
            bits: fsa.memory_bits(),
            samples: 1,
            defeated: 1,
            no_collision: 0,
            i_mean: attack.i as f64,
            i_max: attack.i,
            leaves_max: attack.leaves,
        });
    }
    {
        use rvz_agent::compile::compile_line_agent;
        use rvz_core::prime_path::PrimePathAgent;
        let line_fsa =
            compile_line_agent(|| PrimePathAgent::cycling(1), 100_000).expect("finite-state");
        let fsa = Fsa::from_line_extended(&line_fsa, 3);
        match side_tree_attack(&fsa, max_i, 4) {
            Ok(attack) => rows.push(E5Row {
                agent: "prime-cycle(1) ext".into(),
                states: fsa.num_states(),
                bits: fsa.memory_bits(),
                samples: 1,
                defeated: 1,
                no_collision: 0,
                i_mean: attack.i as f64,
                i_max: attack.i,
                leaves_max: attack.leaves,
            }),
            Err(SideTreeError::NoCollision { .. }) => rows.push(E5Row {
                agent: "prime-cycle(1) ext [no collision]".into(),
                states: fsa.num_states(),
                bits: fsa.memory_bits(),
                samples: 1,
                defeated: 0,
                no_collision: 1,
                i_mean: 0.0,
                i_max: 0,
                leaves_max: 0,
            }),
            Err(e) => panic!("compiled prime: {e:?} disproves Theorem 4.3?!"),
        }
    }
    for &k in state_range {
        let mut defeated = 0;
        let mut none = 0;
        let mut is = Vec::new();
        let mut leaves_max = 0;
        for _ in 0..samples {
            let fsa = Fsa::random(k, 3, 0.2, &mut rng);
            match side_tree_attack(&fsa, max_i, 4) {
                Ok(attack) => {
                    defeated += 1;
                    is.push(attack.i);
                    leaves_max = leaves_max.max(attack.leaves);
                }
                Err(SideTreeError::NoCollision { .. }) => none += 1,
                Err(e) => panic!("K={k}: {e:?} disproves Theorem 4.3?!"),
            }
        }
        rows.push(E5Row {
            agent: format!("random-{k}state"),
            states: k,
            bits: rvz_agent::bits_for_variants(k as u64),
            samples,
            defeated,
            no_collision: none,
            i_mean: if is.is_empty() {
                0.0
            } else {
                is.iter().sum::<usize>() as f64 / is.len() as f64
            },
            i_max: is.iter().copied().max().unwrap_or(0),
            leaves_max,
        });
    }
    let table = to_table(&rows);
    (rows, table)
}

/// The sanity half of the theorem: the `T1–T1` twin instance is symmetric
/// w.r.t. its labeling (hence infeasible by Fact 1.1). Returns the number
/// of `i` values checked.
pub fn verify_symmetric_twins(max_i: usize) -> usize {
    let mut checked = 0;
    for i in 3..=max_i {
        let bits: Vec<bool> = (0..i - 1).map(|b| b % 2 == 1).collect();
        let st = rvz_lowerbounds::side_trees::side_tree(&bits);
        let (tree, u, v) = two_sided(&st, &st, 4);
        assert!(symmetric_wrt_labeling(&tree, u, v), "i={i}: twin must be symmetric");
        checked += 1;
    }
    checked
}

fn to_table(rows: &[E5Row]) -> Table {
    let mut t = Table::new(
        "E5",
        "Thm 4.3: side-tree pigeonhole — leaves needed to defeat K-state agents (max degree 3)",
        &["agent", "states K", "bits", "defeated", "spine i mean", "i max", "ℓ max"],
    );
    for r in rows {
        t.row(vec![
            r.agent.clone(),
            r.states.to_string(),
            r.bits.to_string(),
            format!("{}/{} ({} none)", r.defeated, r.samples, r.no_collision),
            f(r.i_mean),
            r.i_max.to_string(),
            r.leaves_max.to_string(),
        ]);
    }
    t.note("paper: k ≤ (log ℓ)/3 bits ⇒ two of the 2^{ℓ/2−1} side trees collide ⇒ defeat; ℓ = 2i");
    t.note("shape check: the collision spine i (and ℓ) grows with K — more memory survives longer");
    t
}
