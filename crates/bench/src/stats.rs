//! Tiny statistics helpers for the experiment tables: ordinary least
//! squares on transformed axes, used to report fitted growth exponents /
//! slopes next to the paper's asymptotic claims.

/// Least-squares fit `y = a + b·x`; returns `(a, b, r²)`.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let r2 = if ss_tot.abs() < 1e-12 { 1.0 } else { 1.0 - ss_res / ss_tot };
    (a, b, r2)
}

/// Slope of `y` against `log2 x` — "bits added per doubling".
pub fn bits_per_doubling(points: &[(f64, f64)]) -> f64 {
    let transformed: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.log2(), y)).collect();
    linear_fit(&transformed).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b, r2) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn doubling_slope_of_logarithmic_growth() {
        // y = 4·log2(x): 4 bits per doubling.
        let pts: Vec<(f64, f64)> = (4..=12).map(|e| ((1u64 << e) as f64, 4.0 * e as f64)).collect();
        let slope = bits_per_doubling(&pts);
        assert!((slope - 4.0).abs() < 1e-9, "{slope}");
    }

    #[test]
    fn flat_series_has_zero_slope() {
        let pts: Vec<(f64, f64)> = (4..=10).map(|e| ((1u64 << e) as f64, 45.0)).collect();
        assert!(bits_per_doubling(&pts).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let (a, b, _) = linear_fit(&[(1.0, 5.0), (1.0, 7.0)]);
        assert_eq!(b, 0.0);
        assert!((a - 6.0).abs() < 1e-9);
    }
}
