//! Shared crash-safety plumbing: CRC-32 checksums, length-prefixed record
//! framing, and atomic file replacement.
//!
//! Both persistence layers — the checkpoint journal ([`crate::checkpoint`])
//! and the on-disk trajectory/lasso stores ([`crate::stores`], fed by
//! the private `trace_cache`/`solo_cache`) — frame their records the
//! same way: a
//! little-endian length, a CRC-32 over the body, then the body. A reader
//! accepts the longest *clean prefix* of a file: the first record whose
//! frame is truncated, whose length is implausible, or whose checksum
//! disagrees ends the parse, and everything before it is kept. That is the
//! whole crash model — a killed writer loses at most its last in-flight
//! record, and detected corruption degrades to recomputation, never to a
//! wrong value ("degrade, never lie"; see docs/persistence.md).
//!
//! [`atomic_write`] is the other half: report files (`--json`,
//! `--certificates`, `BENCH_sweep.json`) and store snapshots are written to
//! a temporary sibling, fsynced, and renamed into place, so a kill during
//! a write can never leave a half-written file under the real name.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
/// checksum gzip/zip use, implemented locally because the offline build
/// bakes in no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Largest record body either persistence layer will frame or accept.
/// Generous (a worst-case `MAX_RECORD_ROUNDS` trajectory is ~128 MiB of
/// runs) but finite, so a corrupted length prefix cannot drive a reader
/// into a multi-gigabyte allocation.
pub const MAX_RECORD_BYTES: usize = 1 << 28;

/// Appends one framed record — `len: u32 | crc32: u32 | body` — to `out`.
pub fn frame_record(out: &mut Vec<u8>, body: &[u8]) {
    assert!(body.len() <= MAX_RECORD_BYTES, "record body over the frame cap");
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Reads the framed records of `bytes` as a clean prefix: every record up
/// to (not including) the first truncated, oversized, or checksum-failing
/// frame. Returns the record bodies plus `true` when the whole input was
/// consumed cleanly (`false` ⇒ the tail was dropped).
pub fn read_records(bytes: &[u8]) -> (Vec<&[u8]>, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            return (records, false);
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return (records, false);
        }
        let Some(body) = bytes.get(pos + 8..pos + 8 + len) else {
            return (records, false);
        };
        if crc32(body) != want {
            return (records, false);
        }
        records.push(body);
        pos += 8 + len;
    }
    (records, true)
}

/// Writes `bytes` to `path` atomically: temp sibling → flush → fsync →
/// rename (then a best-effort directory fsync, so the rename itself is
/// durable). A kill at any point leaves either the old file or the new
/// one under `path`, never a torn mix; at worst a stale `.tmp` sibling
/// survives, which the next write truncates.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = dir.join(tmp_name);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.flush()?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Writes a single framed record as the whole content of `path`,
/// atomically — the supervisor/worker control files (shard plan, lease
/// heartbeats) are all single-record files replaced wholesale, so a
/// reader never observes a torn one.
pub fn write_framed(path: &Path, body: &[u8]) -> io::Result<()> {
    let mut framed = Vec::with_capacity(body.len() + 8);
    frame_record(&mut framed, body);
    atomic_write(path, &framed)
}

/// Reads a file written by [`write_framed`]: exactly one clean record, or
/// `None` (missing file, torn frame, checksum failure, or trailing
/// garbage — a control file that is not perfectly intact is ignored).
pub fn read_framed(path: &Path) -> Option<Vec<u8>> {
    let bytes = std::fs::read(path).ok()?;
    match read_records(&bytes) {
        (records, true) if records.len() == 1 => Some(records[0].to_vec()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn framed_records_round_trip() {
        let mut buf = Vec::new();
        frame_record(&mut buf, b"alpha");
        frame_record(&mut buf, b"");
        frame_record(&mut buf, &[0xFFu8; 100]);
        let (records, clean) = read_records(&buf);
        assert!(clean);
        assert_eq!(records, vec![b"alpha".as_slice(), b"", &[0xFFu8; 100]]);
    }

    #[test]
    fn clean_prefix_survives_truncation_and_flips() {
        let mut buf = Vec::new();
        frame_record(&mut buf, b"first");
        frame_record(&mut buf, b"second");
        let full = read_records(&buf).0.len();
        assert_eq!(full, 2);
        for cut in 0..buf.len() {
            let (records, clean) = read_records(&buf[..cut]);
            assert!(records.len() <= 2);
            assert!(clean || records.len() < 2 || cut >= buf.len());
            for r in &records {
                assert!(*r == b"first" || *r == b"second");
            }
        }
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                // Never a panic, never a record that was not written.
                let (records, _) = read_records(&bad);
                for r in records {
                    assert!(r == b"first" || r == b"second", "forged record {r:?}");
                }
            }
        }
    }

    #[test]
    fn framed_file_round_trips_and_rejects_damage() {
        let dir = std::env::temp_dir().join(format!("rvz-wire-framed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("control.bin");
        assert_eq!(read_framed(&path), None, "missing file reads as None");
        write_framed(&path, b"payload").unwrap();
        assert_eq!(read_framed(&path).as_deref(), Some(b"payload".as_slice()));
        // A flipped byte or trailing garbage invalidates the whole file.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_framed(&path), None);
        write_framed(&path, b"payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xFF);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_framed(&path), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("rvz-wire-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
