//! **E8 — ablation study** (docs/design-notes.md §D7): which Stage-2 pieces are
//! load-bearing?
//!
//! On double-spiders with equal leg sums but different compositions the two
//! hub agents have identical phase durations; only the `bw(j)/cbw(j)`
//! probes break the tie (Lemma 4.3's mechanism). `Synchro` is redundant
//! *for our implementation* because the reconstruction-based `Explo-bis`
//! already runs in exactly `L + 2(n−1)` rounds (an implementation note, not
//! a refutation of the paper — a general Fact 2.1 box needs it).

use crate::table::Table;
use rvz_core::ablation::compare_variants;
use rvz_trees::generators::double_spider;
use rvz_trees::perfectly_symmetrizable;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E8Row {
    pub instance: String,
    pub variant: String,
    pub met: bool,
    pub round: Option<u64>,
}

pub fn run(budget: u64) -> (Vec<E8Row>, Table) {
    let instances = [
        ("double-spider {1,4}|{2,3} C=3", double_spider(&[1, 4], &[2, 3], 3)),
        ("double-spider {2,5}|{3,4} C=5", double_spider(&[2, 5], &[3, 4], 5)),
        ("double-spider {1,2,6}|{3,3,3} C=3", double_spider(&[1, 2, 6], &[3, 3, 3], 3)),
    ];
    let mut rows = Vec::new();
    for (name, tree) in instances {
        assert!(!perfectly_symmetrizable(&tree, 0, 1), "{name} must be feasible");
        for r in compare_variants(&tree, 0, 1, budget) {
            rows.push(E8Row {
                instance: name.to_string(),
                variant: r.variant.to_string(),
                met: r.met,
                round: r.round,
            });
        }
    }
    let table = to_table(&rows);
    (rows, table)
}

fn to_table(rows: &[E8Row]) -> Table {
    let mut t = Table::new(
        "E8",
        "Ablation: Figure-2 machinery on equal-phase-duration double-spiders (hub starts)",
        &["instance", "variant", "met", "round"],
    );
    for r in rows {
        t.row(vec![
            r.instance.clone(),
            r.variant.clone(),
            if r.met { "y" } else { "NO" }.to_string(),
            r.round.map_or("—".into(), |x| x.to_string()),
        ]);
    }
    t.note("'full' and 'no-synchro' must meet; 'no-probes' and 'minimal' stay mirrored forever");
    t.note("⇒ the bw(j)/cbw(j) probes are the load-bearing piece (Lemma 4.3); Synchro is redundant only because our Explo substitute is exactly synchronous");
    t
}
