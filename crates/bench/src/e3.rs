//! **E3 — Lemma 4.1**: the `prime` protocol on paths.
//!
//! Sweeps path sizes `m`; on each, samples feasible blind-agent start pairs
//! and runs the protocol to rendezvous. Reports: success, meeting round,
//! the largest prime index used vs the analysis bound
//! `primorial_index_bound(m²)`, and the measured memory vs `log log m`.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rvz_agent::model::Agent;
use rvz_core::prime_path::PrimePathAgent;
use rvz_core::primes::primorial_index_bound;
use rvz_sim::{run_pair, PairConfig};
use rvz_trees::generators::line;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E3Row {
    pub m: usize,
    pub pairs: usize,
    pub met: usize,
    pub rounds_mean: f64,
    pub rounds_max: u64,
    pub bits_max: u64,
    pub loglog_m: f64,
    pub analysis_prime_bound: u32,
}

/// Is rendezvous feasible for blind agents at 1-based positions a < b?
fn feasible(m: usize, a: usize, b: usize) -> bool {
    m % 2 == 1 || (a - 1) != (m - b)
}

// Round budget: `crate::sweep::prime_budget_for` (shared with the sweep
// engine so the two stay in lockstep).

pub fn run(sizes: &[usize], pairs_per_size: usize, seed: u64) -> (Vec<E3Row>, Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for &m in sizes {
        let t = line(m);
        let mut met = 0;
        let mut rounds = Vec::new();
        let mut bits_max = 0u64;
        let mut pairs = 0;
        while pairs < pairs_per_size {
            let a = rng.gen_range(1..m);
            let b = rng.gen_range(a + 1..=m);
            if !feasible(m, a, b) {
                continue;
            }
            pairs += 1;
            let mut x = PrimePathAgent::unbounded();
            let mut y = PrimePathAgent::unbounded();
            let run = run_pair(
                &t,
                (a - 1) as u32,
                (b - 1) as u32,
                &mut x,
                &mut y,
                PairConfig::simultaneous(crate::sweep::prime_budget_for(m)),
            );
            if let Some(r) = run.outcome.round() {
                met += 1;
                rounds.push(r);
            }
            bits_max = bits_max.max(x.memory_bits()).max(y.memory_bits());
        }
        rows.push(E3Row {
            m,
            pairs,
            met,
            rounds_mean: if rounds.is_empty() {
                0.0
            } else {
                rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
            },
            rounds_max: rounds.iter().copied().max().unwrap_or(0),
            bits_max,
            loglog_m: (m as f64).log2().log2(),
            analysis_prime_bound: primorial_index_bound((m * m) as u64),
        });
    }
    let table = to_table(&rows);
    (rows, table)
}

fn to_table(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3",
        "Lemma 4.1: blind `prime` protocol on m-node paths",
        &["m", "met", "rounds mean", "rounds max", "bits max", "log log m", "prime-idx bound"],
    );
    for r in rows {
        t.row(vec![
            r.m.to_string(),
            format!("{}/{}", r.met, r.pairs),
            f(r.rounds_mean),
            r.rounds_max.to_string(),
            r.bits_max.to_string(),
            f(r.loglog_m),
            r.analysis_prime_bound.to_string(),
        ]);
    }
    t.note("paper: meets whenever feasible, by loop iteration j with primorial(j) > m²");
    t.note("shape check: bits grow like log log m (double-log column), not log m");
    t
}
