//! The experiment driver.
//!
//! Two modes (see README.md for the full flag reference):
//!
//! **Sweep mode** — the parallel batch engine over an experiment's grid:
//!
//! ```text
//! experiments --experiment e6 [--json out.json] [--threads N]
//!             [--sizes 16,32,64] [--pairs K] [--seed S]
//!             [--executor replay|stepping|decide|auto]
//!             [--certificates certs.json] [--workers N] [--agents K]
//! ```
//!
//! Emits the rendered table plus, with `--json FILE.json`, the raw
//! [`crate::sweep::SweepRow`] records, and with `--certificates`, the
//! exact decider's lasso certificates. Output is byte-identical for every
//! `--threads` value (deterministic per-cell seeding). `e9` (the
//! exhaustive certification sweep) defaults to `--executor decide` and
//! prints the per-size summary table instead of its thousands of rows.
//!
//! **Classic mode** — regenerates the per-experiment paper tables (kept
//! for continuity with the seed repo):
//!
//! ```text
//! experiments [e1 e2 ... e8 | all] [--full] [--json DIR]
//! ```

use crate::{
    checkpoint, e1, e10, e11, e2, e3, e4, e5, e6, e7, e8, e9, stores, supervisor, sweep, Table,
};
use std::process::exit;

struct Cfg {
    full: bool,
    json: Option<String>,
}

/// Entry point for the `experiments` binary: parses `std::env::args`.
pub fn run_from_env() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_with_args(&args);
}

/// Testable entry point.
pub fn run_with_args(args: &[String]) {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }

    // Hidden worker entry point (`--worker DIR`, exact match — distinct
    // from the public `--workers N`): this process is a supervised worker
    // subprocess; see docs/distributed.md.
    if let Some(dir) = flag_value(args, "--worker") {
        run_worker_mode(args, &dir);
        return;
    }

    let json = flag_value(args, "--json");
    let experiments = flag_value(args, "--experiment");

    if let Some(ids) = experiments {
        run_sweep_mode(args, &ids, json);
    } else {
        run_classic_mode(args, json);
    }
}

/// `--flag value` lookup. A present flag whose next token is missing or is
/// itself a flag is an error, not a silent misparse.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => {
            eprintln!("error: {flag} needs a value");
            exit(2);
        }
    }
}

/// Bare-flag lookup (`--resume` takes no value).
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses a numeric flag that must be ≥ 1 when given at all: an explicit
/// `0` (or garbage) is an error, not a silent fallback — `--threads 0`
/// used to be accepted as "all cores", indistinguishable from a typo'd
/// thread count.
fn positive_flag(args: &[String], flag: &str, zero_hint: &str) -> Option<u64> {
    let raw = flag_value(args, flag)?;
    match raw.parse::<u64>() {
        Ok(0) | Err(_) => {
            eprintln!("error: bad {flag} `{raw}` (must be a positive integer; {zero_hint})");
            exit(2);
        }
        Ok(v) => Some(v),
    }
}

/// Parses a numeric flag where `0` is a meaningful value (`--workers 0`
/// means "in-process, no subprocesses" — the documented off switch, not
/// an error). Garbage and negative values are still rejected.
fn nonnegative_flag(args: &[String], flag: &str, zero_hint: &str) -> Option<u64> {
    let raw = flag_value(args, flag)?;
    match raw.parse::<u64>() {
        Err(_) => {
            eprintln!("error: bad {flag} `{raw}` (must be a nonnegative integer; {zero_hint})");
            exit(2);
        }
        Ok(v) => Some(v),
    }
}

/// `args` minus one `--flag value` pair — how the supervisor builds the
/// worker command line (its own arguments, minus `--workers N`, plus
/// `--worker DIR`).
fn args_without_flag(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == flag {
            skip_next = true;
            continue;
        }
        out.push(a.clone());
    }
    out
}

/// Parses `--sizes`: comma-separated positive integers, sorted and
/// deduplicated (a duplicated size used to duplicate every cell — and
/// every JSON row — of that size; now it is collapsed with a warning,
/// returned in `Ok((sizes, duplicates_dropped))`). Size 0 is rejected
/// outright instead of building a degenerate instance.
fn parse_sizes(s: &str) -> Result<(Vec<usize>, usize), String> {
    let mut sizes: Vec<usize> = Vec::new();
    for t in s.split(',').filter(|t| !t.is_empty()) {
        let n: usize = t.trim().parse().map_err(|_| format!("bad size `{t}` in --sizes"))?;
        if n == 0 {
            return Err("size 0 in --sizes (trees need at least one node)".into());
        }
        sizes.push(n);
    }
    if sizes.is_empty() {
        return Err("--sizes needs at least one size (e.g. --sizes 16,32)".into());
    }
    let given = sizes.len();
    sizes.sort_unstable();
    sizes.dedup();
    let dropped = given - sizes.len();
    Ok((sizes, dropped))
}

/// Pass 1 of sweep mode: resolve every requested spec up front, so the
/// checkpoint journal's fingerprint can cover the whole invocation
/// (resuming under a different grid must be a hard error, not a silent
/// row splice). Shared with worker mode ([`run_worker_mode`]), which must
/// re-resolve the *identical* specs from the forwarded arguments — the
/// shard plan's per-spec fingerprint turns any drift into a hard error.
fn resolve_sweep(args: &[String], ids: &str) -> (u64, Vec<(String, Vec<usize>, sweep::SweepSpec)>) {
    let explicit_sizes = flag_value(args, "--sizes").map(|s| {
        let (sizes, dropped) = parse_sizes(&s).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(2);
        });
        if dropped > 0 {
            eprintln!(
                "warning: --sizes listed {dropped} duplicate size(s); \
                 deduplicated to {sizes:?} (duplicates would duplicate every row)"
            );
        }
        sizes
    });
    let threads: usize =
        positive_flag(args, "--threads", "omit the flag to use all cores").unwrap_or(0) as usize;
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: bad --seed `{s}`");
                exit(2);
            })
        })
        .unwrap_or(0x5EED_2010);
    let pairs: usize = positive_flag(args, "--pairs", "omit the flag for the preset's default")
        .unwrap_or(0) as usize;
    // `--agents 1` parses but is rejected with its own message: a solo
    // walker has nobody to gather with, and silently running a 1-lane
    // "ensemble" would emit rows no schema describes.
    let agents: Option<usize> =
        match positive_flag(args, "--agents", "omit the flag for the pair default") {
            Some(1) => {
                eprintln!(
                    "error: bad --agents `1` (an ensemble has at least two agents; omit the \
                     flag for the pair default)"
                );
                exit(2);
            }
            other => other.map(|k| k as usize),
        };
    let executor = match flag_value(args, "--executor").as_deref() {
        None => None,
        Some("replay") => Some(sweep::Executor::TraceReplay),
        Some("stepping") => Some(sweep::Executor::DynStepping),
        Some("decide") => Some(sweep::Executor::ExactDecide),
        Some("auto") => Some(sweep::Executor::Auto),
        Some(other) => {
            eprintln!(
                "error: bad --executor `{other}` (expected `replay`, `stepping`, `decide` or \
                 `auto`)"
            );
            exit(2);
        }
    };
    let mut planned: Vec<(String, Vec<usize>, sweep::SweepSpec)> = Vec::new();
    for id in ids.split(',').filter(|t| !t.is_empty()) {
        let id = id.trim().to_lowercase();
        // e9/e10/e11 enumerate *all* free trees per size: their own
        // default axes, and a hard cap where the tree count explodes.
        let enumerated = id == "e9" || id == "e10" || id == "e11";
        let sizes = explicit_sizes.clone().unwrap_or_else(|| match id.as_str() {
            "e9" => sweep::E9_DEFAULT_SIZES.to_vec(),
            "e10" => sweep::E10_DEFAULT_SIZES.to_vec(),
            "e11" => sweep::E11_DEFAULT_SIZES.to_vec(),
            _ => sweep::DEFAULT_SIZES.to_vec(),
        });
        if enumerated {
            if let Some(&n) = sizes.iter().find(|&&n| n > sweep::MAX_ENUM_SIZE) {
                eprintln!(
                    "error: {id} enumerates every free tree per size; n = {n} exceeds the \
                     cap of {} (A000055 grows exponentially)",
                    sweep::MAX_ENUM_SIZE
                );
                exit(2);
            }
        }
        let Some(mut spec) = sweep::preset(&id, &sizes, threads, seed) else {
            eprintln!("error: unknown experiment `{id}` (expected e1..e11)");
            exit(2);
        };
        if pairs > 0 {
            spec.pairs_per_cell = pairs;
        }
        // An explicit `--agents` overrides the preset's width everywhere;
        // absent, each preset keeps its own default (2 for e1–e10, 3 for
        // e11) — so `--experiment e11` alone already runs triples.
        if let Some(k) = agents {
            spec.agents = k;
        }
        // The certification workloads default to the exact decider; the
        // sampled grids default to trace replay.
        spec.executor = executor.unwrap_or(if enumerated {
            sweep::Executor::ExactDecide
        } else {
            sweep::Executor::TraceReplay
        });
        planned.push((id, sizes, spec));
    }
    (seed, planned)
}

/// Executes a supervised worker subprocess: re-resolves the sweep specs
/// from the forwarded arguments, picks the one the workdir's shard plan
/// covers, and hands off to [`supervisor::worker_main`]. Any protocol
/// violation is a nonzero exit — the supervisor treats it like a worker
/// death and reassigns the shards.
fn run_worker_mode(args: &[String], dir: &str) {
    let workdir = std::path::Path::new(dir);
    let Some(ids) = flag_value(args, "--experiment") else {
        eprintln!("error: --worker needs --experiment (the supervisor forwards its arguments)");
        exit(2);
    };
    let (_, planned) = resolve_sweep(args, &ids);
    let Some(experiment) = supervisor::planned_experiment(workdir) else {
        eprintln!("error: --worker: no readable shard plan in {dir}");
        exit(1);
    };
    let Some((_, _, spec)) = planned.iter().find(|(id, _, _)| *id == experiment) else {
        eprintln!(
            "error: --worker: the shard plan in {dir} is for `{experiment}`, which is not \
             among this worker's experiments ({ids})"
        );
        exit(1);
    };
    if let Err(e) = supervisor::worker_main(workdir, spec) {
        eprintln!("error: --worker: {e}");
        exit(1);
    }
}

fn run_sweep_mode(args: &[String], ids: &str, json: Option<String>) {
    let (seed, planned) = resolve_sweep(args, ids);
    let certificates_path = flag_value(args, "--certificates");
    let checkpoint_path = flag_value(args, "--checkpoint");
    let resume = has_flag(args, "--resume");
    if resume && checkpoint_path.is_none() {
        eprintln!("error: --resume needs --checkpoint FILE (the journal to resume from)");
        exit(2);
    }
    let strict_checkpoint = has_flag(args, "--strict-checkpoint");
    if strict_checkpoint && checkpoint_path.is_none() {
        eprintln!("error: --strict-checkpoint needs --checkpoint FILE (the journal it hardens)");
        exit(2);
    }
    let store_dir = flag_value(args, "--store");
    let cell_timeout =
        positive_flag(args, "--cell-timeout", "a 0ms budget would quarantine every cell")
            .map(std::time::Duration::from_millis);
    let workers = nonnegative_flag(args, "--workers", "0 means in-process, no subprocesses")
        .unwrap_or(0) as usize;

    let journal = checkpoint_path.map(|path| {
        let specs: Vec<&sweep::SweepSpec> = planned.iter().map(|(_, _, s)| s).collect();
        let fingerprint = checkpoint::spec_fingerprint(&specs);
        let journal = checkpoint::Journal::open(std::path::Path::new(&path), resume, fingerprint)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(2);
            });
        if resume {
            eprintln!(
                "resume: {} cell(s) recovered from {path}; they will be skipped",
                journal.recovered_cells()
            );
        }
        journal
    });
    if strict_checkpoint {
        if let Some(j) = &journal {
            j.set_strict(true);
        }
    }
    if let Some(dir) = &store_dir {
        let (trace, solo) = stores::load_all(std::path::Path::new(dir));
        if trace.loaded + solo.loaded > 0 {
            eprintln!(
                "store: {} trajectories and {} lassos loaded from {dir}",
                trace.loaded, solo.loaded
            );
        }
    }

    // Worker subprocesses get the supervisor's own arguments (minus
    // `--workers N`, plus `--worker DIR`), so they re-resolve the same
    // specs; the shard plan's fingerprint check catches any drift.
    let worker_args = args_without_flag(args, "--workers");
    let mut reports: Vec<(String, Vec<usize>, sweep::SweepReport)> = Vec::new();
    for (id, sizes, spec) in planned {
        let opts = sweep::RunOptions { journal: journal.as_ref(), cell_timeout };
        let report = if workers > 0 {
            let mut cfg = supervisor::SupervisorConfig::new(workers);
            cfg.resume = resume;
            let mut spawn = |workdir: &std::path::Path| {
                let exe = std::env::current_exe()
                    .unwrap_or_else(|_| std::path::PathBuf::from("experiments"));
                let mut cmd = std::process::Command::new(exe);
                cmd.args(&worker_args).arg("--worker").arg(workdir);
                cmd
            };
            supervisor::run_supervised(&spec, &opts, &cfg, &mut spawn)
        } else {
            sweep::run_with_options(&spec, &opts)
        };
        if id == "e9" {
            // Thousands of exhaustive rows: print the per-size certified
            // summary instead of the raw row table (the rows still go to
            // --json, the certificates to --certificates).
            let (_, table) = e9::summarize(&report);
            println!("{}", table.render());
        } else if id == "e10" {
            let (_, table) = e10::summarize(&report);
            println!("{}", table.render());
        } else if id == "e11" {
            let (_, table) = e11::summarize(&report);
            println!("{}", table.render());
        } else {
            println!("{}", sweep::to_table(&id, &report).render());
        }
        if report.dropped_cells > 0 {
            eprintln!(
                "warning: {id}: {} of {} planned cells dropped (fewer feasible start pairs \
                 than --pairs on some instances)",
                report.dropped_cells, report.planned_cells
            );
        }
        let timed_out = report.rows.iter().filter(|r| r.timed_out == Some(true)).count();
        if timed_out > 0 {
            eprintln!(
                "warning: {id}: {timed_out} cell(s) quarantined by --cell-timeout \
                 (explicit timed_out rows; no run recorded for them)"
            );
        }
        let poisoned = report.rows.iter().filter(|r| r.poisoned == Some(true)).count();
        if poisoned > 0 {
            eprintln!(
                "warning: {id}: {poisoned} cell(s) quarantined as poisoned (their shard \
                 exceeded the worker attempt cap; explicit poisoned rows, no run recorded)"
            );
        }
        if report.append_failures > 0 {
            eprintln!(
                "warning: {id}: {} checkpoint journal append(s) failed — the journal on \
                 disk is incomplete (use --strict-checkpoint to make this fatal)",
                report.append_failures
            );
        }
        reports.push((id, sizes, report));
    }

    if let Some(dir) = &store_dir {
        match stores::save_all(std::path::Path::new(dir)) {
            Ok((trace, solo)) => {
                eprintln!("store: {trace} trajectories and {solo} lassos flushed to {dir}")
            }
            // A failed flush only loses cache warm-up, never results.
            Err(e) => eprintln!("warning: could not flush stores to {dir}: {e}"),
        }
    }

    if let Some(path) = json {
        if path.ends_with(".json") {
            // Single file: all requested experiments' rows, flattened.
            // Deliberately excludes --threads so outputs are comparable
            // byte-for-byte across thread counts.
            let all_rows: Vec<&sweep::SweepRow> =
                reports.iter().flat_map(|(_, _, report)| &report.rows).collect();
            let mut all_sizes: Vec<usize> =
                reports.iter().flat_map(|(_, sizes, _)| sizes.iter().copied()).collect();
            all_sizes.sort_unstable();
            all_sizes.dedup();
            let payload = serde_json::json!({
                "schema": sweep_schema(all_rows.iter().copied()),
                "experiments": reports.iter().map(|(id, _, _)| id.clone()).collect::<Vec<_>>(),
                "seed": seed,
                "sizes": all_sizes,
                "rows": all_rows
            });
            write_json(&path, &payload);
            println!("  (raw rows written to {path})");
        } else {
            // Directory: one file per experiment, like classic mode.
            std::fs::create_dir_all(&path).expect("create json dir");
            for (id, sizes, report) in &reports {
                let file = format!("{path}/{id}.json");
                let payload = serde_json::json!({
                    "schema": sweep_schema(report.rows.iter()),
                    "experiments": vec![id.clone()],
                    "seed": seed,
                    "sizes": sizes.clone(),
                    "rows": report.rows
                });
                write_json(&file, &payload);
                println!("  (raw rows written to {file})");
            }
        }
    }

    if let Some(path) = certificates_path {
        // The exact decider's machine-checkable evidence: lasso
        // certificates for every never-meets verdict plus the universal
        // (∀-delay) verdicts, and the exhaustive summaries for e9/e10.
        let all_certs: Vec<&sweep::Certificate> =
            reports.iter().flat_map(|(_, _, report)| &report.certificates).collect();
        let summaries: Vec<serde_json::Value> = reports
            .iter()
            .filter_map(|(id, _, report)| match id.as_str() {
                "e9" => {
                    Some(serde_json::json!({"experiment": id, "sizes": e9::summarize(report).0}))
                }
                "e10" => Some(
                    serde_json::json!({"experiment": id, "schedules": e10::summarize(report).0}),
                ),
                "e11" => Some(
                    serde_json::json!({"experiment": id, "schedules": e11::summarize(report).0}),
                ),
                _ => None,
            })
            .collect();
        // Same gating as the row schema: v3 = v2 plus the optional
        // per-certificate `agents`/`start_rest` fields (ensemble
        // never-gathers lassos — checked first), v2 = v1 plus the
        // optional `schedule` field, each tagged only when present.
        let schema = if all_certs.iter().any(|c| c.agents.is_some()) {
            "rvz-certificates/v3"
        } else if all_certs.iter().any(|c| c.schedule.is_some()) {
            "rvz-certificates/v2"
        } else {
            "rvz-certificates/v1"
        };
        let payload = serde_json::json!({
            "schema": schema,
            "experiments": reports.iter().map(|(id, _, _)| id.clone()).collect::<Vec<_>>(),
            "seed": seed,
            "summary": summaries,
            "certificates": all_certs
        });
        write_json(&path, &payload);
        println!("  (certificates written to {path})");
    }
}

/// Schema tag of a sweep payload, gated on what the rows actually carry
/// so legacy payloads stay byte-identical (see docs/schemas.md):
/// `rvz-sweep/v7` once any row has the optional `agents` field (an
/// ensemble sweep ran with `--agents` k > 2 — checked first, so an
/// ensemble payload is v7 whatever executor produced it),
/// `rvz-sweep/v6` once any row has the optional `planned` field (the
/// `--executor auto` planner ran), `rvz-sweep/v5` once any row has the
/// optional `poisoned` field (a `--workers` shard hit the attempt cap),
/// `rvz-sweep/v4` once any row has the optional `timed_out` field (the
/// `--cell-timeout` watchdog fired), `rvz-sweep/v3` once any row has the
/// optional `schedule` field, the legacy `rvz-sweep/v2` otherwise.
fn sweep_schema<'a, I: IntoIterator<Item = &'a sweep::SweepRow>>(rows: I) -> &'static str {
    let mut has_planned = false;
    let mut has_poisoned = false;
    let mut has_timed_out = false;
    let mut has_schedule = false;
    for r in rows {
        if r.agents.is_some() {
            return "rvz-sweep/v7";
        }
        has_planned |= r.planned.is_some();
        has_poisoned |= r.poisoned.is_some();
        has_timed_out |= r.timed_out.is_some();
        has_schedule |= r.schedule.is_some();
    }
    if has_planned {
        "rvz-sweep/v6"
    } else if has_poisoned {
        "rvz-sweep/v5"
    } else if has_timed_out {
        "rvz-sweep/v4"
    } else if has_schedule {
        "rvz-sweep/v3"
    } else {
        "rvz-sweep/v2"
    }
}

/// Writes a report file atomically ([`crate::wire::atomic_write`]: temp
/// sibling → fsync → rename), so a kill mid-write can never leave a torn
/// half-payload under the real name. Byte-compatible with the old
/// `writeln!` path: pretty-printed JSON plus a trailing newline.
fn write_json<T: serde::Serialize>(path: &str, payload: &T) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("error: cannot create `{}`: {e}", parent.display());
                exit(2);
            });
        }
    }
    let mut text = serde_json::to_string_pretty(payload).expect("serialize");
    text.push('\n');
    crate::wire::atomic_write(std::path::Path::new(path), text.as_bytes()).unwrap_or_else(|e| {
        eprintln!("error: cannot write `{path}`: {e}");
        exit(2);
    });
}

const CLASSIC_IDS: [&str; 8] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"];

fn run_classic_mode(args: &[String], json_dir: Option<String>) {
    let full = args.iter().any(|a| a == "--full");
    let cfg = Cfg { full, json: json_dir };
    let wanted: Vec<String> = args
        .iter()
        .map(|a| a.to_lowercase())
        .filter(|a| a.starts_with('e') && a.len() == 2)
        .collect();
    for id in &wanted {
        if !CLASSIC_IDS.contains(&id.as_str()) {
            eprintln!("error: unknown experiment `{id}` (expected e1..e8 or `all`)");
            exit(2);
        }
    }
    let all = wanted.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || wanted.iter().any(|w| w == id);

    let seed = 0x5EED_2010;

    if want("e1") {
        let samples = if cfg.full { 40 } else { 12 };
        let bits = if cfg.full { 8 } else { 6 };
        let (rows, table) = e1::run(bits, samples, seed);
        emit(&cfg, "e1", &table, &rows);
    }
    if want("e2") {
        let scale = if cfg.full { 256 } else { 48 };
        let (rows, table) = e2::run(scale, if cfg.full { 6 } else { 3 }, seed);
        emit(&cfg, "e2", &table, &rows);
    }
    if want("e3") {
        let sizes: &[usize] = if cfg.full {
            &[8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        } else {
            &[8, 16, 32, 64, 128, 256]
        };
        let (rows, table) = e3::run(sizes, if cfg.full { 10 } else { 5 }, seed);
        emit(&cfg, "e3", &table, &rows);
    }
    if want("e4") {
        let samples = if cfg.full { 30 } else { 10 };
        let bits = if cfg.full { 5 } else { 4 };
        let (rows, table) = e4::run(bits, samples, 1 << 16, seed);
        emit(&cfg, "e4", &table, &rows);
    }
    if want("e5") {
        let states: &[usize] = if cfg.full { &[2, 3, 4, 5] } else { &[2, 3] };
        let (rows, table) = e5::run(states, if cfg.full { 10 } else { 5 }, 14, seed);
        let twins = e5::verify_symmetric_twins(10);
        println!(
            "E5 twin check: {twins} symmetric T1–T1 instances verified infeasible-by-symmetry"
        );
        emit(&cfg, "e5", &table, &rows);
    }
    if want("e6") {
        let sizes: &[usize] =
            if cfg.full { &[16, 32, 64, 128, 256, 512, 1024] } else { &[16, 32, 64, 128, 256] };
        let (rows, table) = e6::run(sizes, seed);
        emit(&cfg, "e6", &table, &rows);
    }
    if want("e7") {
        let (rows, table) = e7::run(if cfg.full { 60 } else { 20 }, seed);
        emit(&cfg, "e7", &table, &rows);
    }
    if want("e8") {
        let (rows, table) = e8::run(if cfg.full { 120_000_000 } else { 40_000_000 });
        emit(&cfg, "e8", &table, &rows);
    }
}

fn emit<R: serde::Serialize>(cfg: &Cfg, id: &str, table: &Table, rows: &R) {
    println!("{}", table.render());
    if let Some(dir) = &cfg.json {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{id}.json");
        let payload = serde_json::json!({
            "table": table,
            "rows": rows
        });
        write_json(&path, &payload);
        println!("  (raw rows written to {path})\n");
    }
}

fn print_help() {
    println!(
        "experiments — rendezvous experiment driver

Sweep mode (parallel batch engine):
  experiments --experiment ID[,ID...]  grid-sweep the experiment(s) (e1..e11)
    --json PATH     write raw rows; FILE.json = one file, else directory
    --certificates F.json  write the exact decider's lasso certificates
    --threads N     worker threads (default: all cores; explicit 0 is
                    rejected; output is identical for every N —
                    deterministic per-cell seeding)
    --sizes A,B,C   size axis, deduplicated (default {:?};
                    e9 defaults to {:?}, e10 to {:?}, e11 to {:?},
                    capped at {} — they enumerate EVERY free tree per size)
    --pairs K       start pairs per cell (default from preset; ignored by
                    e9/e10/e11, whose start axes are exhaustive)
    --agents K      ensemble width: K identical copies that must all
                    gather (default 2 — the pair sweep, byte-identical
                    rows; K > 2 bumps the row schema to rvz-sweep/v7
                    with `agents`/`start_rest` fields; e11 defaults to 3)
    --seed S        base seed (default 0x5EED2010)
    --executor X    replay (trace-record/replay, default), stepping
                    (dyn run_pair per cell), decide (exact decider,
                    budget-free, certifies never-meets; default for
                    e9/e10), or auto (per-cell cost-model planner +
                    batched SoA kernel; rows gain a `planned` field) —
                    rows are byte-identical across executors except for
                    decide's `certified` flag and auto's `planned`
    --checkpoint F  append-only crash-safe journal of completed cells
                    (length-prefixed, per-record checksummed)
    --resume        skip cells already journaled in --checkpoint F; the
                    final output is byte-identical to an uninterrupted run
    --store DIR     persistent trajectory/lasso caches: loaded (and
                    re-verified record by record) before the sweep,
                    flushed atomically after it
    --cell-timeout MS  per-cell wall budget: a cell exceeding it retries on
                    the next-cheaper executor, then is quarantined as an
                    explicit timed_out row (machine-dependent — breaks
                    cross-run byte-identity, so off by default)
    --workers N     fork N worker subprocesses that claim grid shards via
                    on-disk leases; crashed/hung workers are detected by
                    heartbeat, their shards reassigned with backoff, and a
                    shard over the attempt cap quarantined as explicit
                    poisoned rows. 0 (the default) = in-process. Merged
                    output is byte-identical to the single-process run —
                    see docs/distributed.md
    --strict-checkpoint  make a failed --checkpoint journal append a hard
                    error instead of a warning-and-degrade

e10 sweeps activation schedules (per-round delay faults): simultaneous,
θ=1, intermittent duty cycles, a mid-run crash — see
docs/executors.md \"Activation schedules\".

e11 sweeps 3-agent gathering over every free tree (n ≤ 7) and every
ordered feasible start triple, certifying that e10's crash rescue does
NOT survive gathering — see docs/gathering.md.

Classic mode (paper tables):
  experiments [e1 e2 ... e8 | all] [--full] [--json DIR]",
        sweep::DEFAULT_SIZES,
        sweep::E9_DEFAULT_SIZES,
        sweep::E10_DEFAULT_SIZES,
        sweep::E11_DEFAULT_SIZES,
        sweep::MAX_ENUM_SIZE
    );
}

#[cfg(test)]
mod tests {
    use super::parse_sizes;

    #[test]
    fn parse_sizes_sorts_and_deduplicates() {
        assert_eq!(parse_sizes("16,32"), Ok((vec![16, 32], 0)));
        assert_eq!(parse_sizes("32,16"), Ok((vec![16, 32], 0)));
        // ISSUE 5 satellite: `--sizes 16,16` used to duplicate every cell
        // and row; now the duplicate is dropped (and counted, so the
        // caller warns).
        assert_eq!(parse_sizes("16,16"), Ok((vec![16], 1)));
        assert_eq!(parse_sizes("8,16,8,8,16"), Ok((vec![8, 16], 3)));
        assert_eq!(parse_sizes(" 8 , 16 "), Ok((vec![8, 16], 0)));
    }

    #[test]
    fn parse_sizes_rejects_zero_and_garbage() {
        assert!(parse_sizes("0").is_err(), "size 0 is a degenerate instance");
        assert!(parse_sizes("16,0,32").is_err());
        assert!(parse_sizes("sixteen").is_err());
        assert!(parse_sizes("").is_err());
        assert!(parse_sizes(",,").is_err());
    }
}
