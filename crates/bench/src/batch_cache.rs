//! The process-wide lane-outcome store behind the planner's batched
//! SoA kernel route.
//!
//! A batch group's lane vector is a pure function of the group key —
//! the key mixes the instance identity (family, n, tree seed, pairs
//! seed, pair count) with the group's own fingerprint (its θ list, or
//! the scheduled delay code), so every cell that reconstructs the same
//! group reconstructs the same key and the kernel runs **once per
//! process** per `(instance, group)`. Sweep repetitions (benchmark
//! reps, overlapping experiments) then read recorded lanes the way the
//! replay executor reads the process-wide trajectory store
//! ([`crate::trace_cache`]) — without this the kernel re-simulated its
//! groups on every run and `--executor auto` lost its warm-state
//! benchmarks to replay.
//!
//! Purity makes the store invisible in the output: a hit returns
//! exactly the lanes a fresh kernel call would compute (the kernel is
//! pinned lane-by-lane against `run_pair_fsa`), so rows stay
//! byte-identical across threads, workers, resume, and store state.

use rvz_sim::LaneOutcome;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default store capacity in lane groups. A full store computes uncached
/// instead of evicting: outcomes are pure, so the only cost is losing
/// amortization on workloads with more than `MAX_KEYS` live groups.
/// Overridable via `RVZ_CACHE_CAP_BATCH` ([`crate::cache_cap`]).
const MAX_KEYS: usize = 4096;

/// The effective store capacity, read from the environment once.
fn store_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| crate::cache_cap::cache_cap("RVZ_CACHE_CAP_BATCH", MAX_KEYS))
}

static STORE: OnceLock<Mutex<HashMap<u64, Arc<OnceLock<Vec<LaneOutcome>>>>>> = OnceLock::new();

/// The memoized lane outcomes of a batch group; `compute` runs at most
/// once per key per process — concurrent member cells (and later
/// sweeps) block on the `OnceLock` instead of re-running the kernel.
pub(crate) fn outcomes(
    key: u64,
    compute: impl FnOnce() -> Vec<LaneOutcome>,
) -> Arc<OnceLock<Vec<LaneOutcome>>> {
    let slot = {
        let mut map = STORE.get_or_init(Mutex::default).lock().expect("batch store lock");
        if map.len() >= store_cap() && !map.contains_key(&key) {
            // Degrade to compute-per-call rather than evict a group
            // another cell may be mid-join on; purity keeps the rows
            // identical either way.
            drop(map);
            let slot = Arc::new(OnceLock::new());
            slot.get_or_init(compute);
            return slot;
        }
        map.entry(key).or_default().clone()
    };
    slot.get_or_init(compute);
    slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn compute_runs_once_per_key() {
        let calls = AtomicUsize::new(0);
        let lane = LaneOutcome { met: true, round: Some(3), crossings: 1 };
        for _ in 0..4 {
            let slot = outcomes(0xB47C_CAFE_0000_0001, || {
                calls.fetch_add(1, Ordering::SeqCst);
                vec![lane]
            });
            assert_eq!(slot.get().expect("computed").as_slice(), &[lane]);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "kernel must run once per key");
    }

    #[test]
    fn distinct_keys_get_distinct_slots() {
        let a = outcomes(0xB47C_CAFE_0000_0002, || {
            vec![LaneOutcome { met: false, round: None, crossings: 0 }]
        });
        let b = outcomes(0xB47C_CAFE_0000_0003, || {
            vec![LaneOutcome { met: true, round: Some(1), crossings: 2 }]
        });
        assert_ne!(a.get().expect("a").as_slice(), b.get().expect("b").as_slice());
    }
}
