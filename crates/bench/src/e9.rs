//! E9 — exhaustive certification of the delay gap on *every* small tree.
//!
//! Where E1–E8 sample tree families, E9 quantifies: for each size `n` it
//! takes **all** free trees ([`rvz_trees::enumerate`],
//! [`crate::sweep::Family::EnumFree`]),
//! **all** ordered feasible start pairs, and decides the §2.2 basic-walk
//! automaton *exactly* — delay 0 as a fixed-delay decision, and the
//! universal "every finite delay" question through the quantifier layer
//! ([`rvz_lowerbounds::decide::worst_case_delay`]). No cell can time out:
//! the exact decider has no budget, so every `met == false` is a certified
//! never-meets with a lasso in [`SweepReport::certificates`].
//!
//! The interesting read-out is the split this certifies on every single
//! instance: pairs the memoryless walk handles at simultaneous start
//! versus pairs some start delay defeats — the paper's reason delay-robust
//! rendezvous needs more memory, here as a theorem about all trees `≤ n`
//! rather than an observation about sampled ones.

use crate::sweep::SweepReport;
use crate::table::Table;
use serde::Serialize;

/// Per-size aggregate of an E9 report (one row of the exhaustive table).
#[derive(Debug, Clone, Serialize)]
pub struct SizeSummary {
    /// Instance size `n`.
    pub n: usize,
    /// Free trees enumerated at this size (A000055).
    pub trees: u64,
    /// Trees with at least one feasible (non-symmetrizable) ordered pair.
    pub feasible_trees: u64,
    /// Ordered feasible pairs — the cells certified per delay mode.
    pub pairs: u64,
    /// Pairs meeting at simultaneous start (delay 0).
    pub zero_meets: u64,
    /// Pairs certified never-meets at delay 0.
    pub zero_never: u64,
    /// Pairs meeting under *every* finite delay.
    pub forall_meet: u64,
    /// Pairs some delay defeats (each carries a verified lasso).
    pub forall_defeated: u64,
    /// Worst meeting round over all all-delays-meet pairs.
    pub worst_round: u64,
    /// Largest "smallest defeating delay" over the defeated pairs.
    pub max_defeat_delay: u64,
}

/// Aggregates an E9 sweep report into its per-size exhaustive table.
/// Defined for reports over the enumerated family with the e9 delay axes
/// (a report from another grid is summarized best-effort: its rows are
/// counted as fixed-delay cells and its universal columns stay zero).
/// Sizes whose every tree lacked a feasible pair (`n = 2`) contribute no
/// rows and are omitted.
pub fn summarize(report: &SweepReport) -> (Vec<SizeSummary>, Table) {
    // BTreeSet iteration is already size-ascending.
    let sizes: Vec<usize> = report
        .rows
        .iter()
        .map(|r| r.size)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut out = Vec::new();
    for &n in &sizes {
        let rows: Vec<_> = report.rows.iter().filter(|r| r.size == n).collect();
        let certs: Vec<_> = report.certificates.iter().filter(|c| c.size == n).collect();
        let trees = rvz_trees::enumerate::free_tree_count(n);
        let feasible_trees =
            rows.iter().map(|r| r.tree_seed).collect::<std::collections::BTreeSet<_>>().len()
                as u64;
        let forall_meet = certs.iter().filter(|c| c.verdict == "all-delays-meet").count() as u64;
        let forall_defeated = certs.iter().filter(|c| c.verdict == "delay-defeats").count() as u64;
        let universal = forall_meet + forall_defeated;
        // The fixed-delay axis is counted from the *rows*: universal cells
        // carry a certificate under every executor (run() routes them
        // through the certified path), so the remaining rows are the
        // fixed-delay cells, and among the non-meeting rows exactly
        // `forall_defeated` are universal verdicts. This stays correct for
        // bounded executors (whose θ=0 cells are unverified but exact —
        // the bw budget is a decision horizon) and for single-axis specs.
        let zero_cells = rows.len() as u64 - universal;
        let met_false = rows.iter().filter(|r| !r.met).count() as u64;
        let zero_never = met_false - forall_defeated;
        let zero_meets = zero_cells - zero_never;
        let pairs = if universal > 0 { universal } else { zero_cells };
        let worst_round = certs
            .iter()
            .filter(|c| c.verdict == "all-delays-meet")
            .filter_map(|c| c.round)
            .max()
            .unwrap_or(0);
        let max_defeat_delay = certs
            .iter()
            .filter(|c| c.verdict == "delay-defeats")
            .map(|c| c.delay)
            .max()
            .unwrap_or(0);
        out.push(SizeSummary {
            n,
            trees,
            feasible_trees,
            pairs,
            zero_meets,
            zero_never,
            forall_meet,
            forall_defeated,
            worst_round,
            max_defeat_delay,
        });
    }
    let mut t = Table::new(
        "E9",
        "exhaustive certification: all free trees, all ordered feasible pairs, basic walk",
        &[
            "n",
            "trees",
            "feasible",
            "pairs",
            "met@0",
            "never@0",
            "∀-meet",
            "∀-defeated",
            "worst-round",
            "max-θ*",
        ],
    );
    for s in &out {
        t.row(vec![
            s.n.to_string(),
            s.trees.to_string(),
            s.feasible_trees.to_string(),
            s.pairs.to_string(),
            s.zero_meets.to_string(),
            s.zero_never.to_string(),
            s.forall_meet.to_string(),
            s.forall_defeated.to_string(),
            s.worst_round.to_string(),
            s.max_defeat_delay.to_string(),
        ]);
    }
    let verified = report.certificates.iter().filter(|c| c.lasso_stem.is_some()).count();
    let bogus = report.certificates.iter().filter(|c| c.verified == Some(false)).count();
    t.note(&format!(
        "{} certificates ({verified} lassos, every one re-verified by independent stepping{})",
        report.certificates.len(),
        if bogus > 0 { " — VERIFICATION FAILURES PRESENT" } else { "" }
    ));
    let uncertified = report.rows.iter().filter(|r| !r.certified).count();
    if uncertified > 0 {
        t.note(&format!(
            "{uncertified} cells answered by bounded simulation, not certified — \
             run with --executor decide for certified verdicts"
        ));
    }
    (out, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{self, Executor};

    #[test]
    fn e9_summary_accounts_for_every_pair() {
        let mut spec = sweep::preset("e9", &[4, 5, 6, 7], 1, 77).expect("e9 preset");
        spec.executor = Executor::ExactDecide;
        let report = sweep::run(&spec);
        let (summary, table) = summarize(&report);
        assert_eq!(summary.len(), 4);
        for s in &summary {
            assert_eq!(s.zero_meets + s.zero_never, s.pairs, "n = {}", s.n);
            assert_eq!(s.forall_meet + s.forall_defeated, s.pairs, "n = {}", s.n);
            // Certified monotonicity: a pair defeated at delay 0 is also
            // defeated under the universal quantifier.
            assert!(s.forall_defeated >= s.zero_never, "n = {}", s.n);
            assert_eq!(s.trees, rvz_trees::enumerate::free_tree_count(s.n));
        }
        // Every lasso certificate must have passed re-verification.
        assert!(report.certificates.iter().all(|c| c.verified != Some(false)));
        // Regression: the bounded executors must yield the *same* summary
        // counts — universal cells route through the certified path under
        // every executor, and the bw fixed-delay budgets are decision
        // horizons, so only the `certified` flags (and the uncertified
        // note) may differ.
        let mut replay_spec = spec.clone();
        replay_spec.executor = Executor::TraceReplay;
        let replay_report = sweep::run(&replay_spec);
        let (replay_summary, replay_table) = summarize(&replay_report);
        assert_eq!(
            serde_json::to_string(&replay_summary).unwrap(),
            serde_json::to_string(&summary).unwrap(),
            "summary counts must not depend on the executor"
        );
        assert!(replay_table.render().contains("not certified"), "bounded cells must be flagged");
        assert!(
            !replay_report.certificates.is_empty(),
            "universal verdicts keep their certificates under bounded executors"
        );

        // Regression: a report swept with only the fixed-delay axis (no
        // universal cells, hence no universal certificates) must still
        // summarize instead of underflowing on `pairs - zero_never`.
        let mut zero_only = spec.clone();
        zero_only.delays = vec![sweep::Delay::Zero];
        let (zero_summary, _) = summarize(&sweep::run(&zero_only));
        for s in &zero_summary {
            assert_eq!(s.zero_meets + s.zero_never, s.pairs, "n = {}", s.n);
            assert_eq!(s.forall_meet + s.forall_defeated, 0, "n = {}", s.n);
            assert!(s.pairs > 0, "n = {}", s.n);
        }
        // The gap shows up exhaustively: some pair is defeated by delay.
        assert!(summary.iter().any(|s| s.forall_defeated > 0));
        // And the memoryless walk does meet somewhere at delay 0.
        assert!(summary.iter().any(|s| s.zero_meets > 0));
        assert!(table.render().contains("exhaustive certification"));
    }
}
