//! **E4 — Theorem 4.2**: the simultaneous-start adversary on lines.
//!
//! For automata of `k` bits the adversary builds a line of length
//! `O(|S|^{|S|})` with adjacent starts, verified non-meeting at delay zero.
//! The shape to regenerate: defeating length grows super-linearly with `K`
//! (doubly exponential in the bits), hence `Ω(log log n)` bits on `n`-node
//! lines; crossings — the Parity-Lemma signature — replace meetings.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rvz_agent::compile::compile_line_agent;
use rvz_agent::line_fsa::LineFsa;
use rvz_core::prime_path::PrimePathAgent;
use rvz_lowerbounds::sync_attack::{sync_attack, SyncAttackError};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct E4Row {
    pub agent: String,
    pub bits: u64,
    pub states: usize,
    pub samples: usize,
    pub defeated: usize,
    pub skipped_gamma: usize,
    pub len_mean: f64,
    pub len_max: u64,
    pub gamma_max: u64,
    pub crossings_seen: u64,
}

pub fn run(max_bits: u32, samples: usize, max_gamma: u64, seed: u64) -> (Vec<E4Row>, Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for k in 1..=max_bits {
        let states = 1usize << k;
        let mut lens = Vec::new();
        let mut defeated = 0;
        let mut skipped = 0;
        let mut gamma_max = 0;
        let mut crossings = 0;
        for _ in 0..samples {
            let fsa = LineFsa::random(states, 0.25, &mut rng);
            match sync_attack(&fsa, max_gamma) {
                Ok(attack) => {
                    defeated += 1;
                    lens.push(attack.line_edges() as u64);
                    gamma_max = gamma_max.max(attack.gamma);
                    crossings += attack.crossings;
                }
                Err(SyncAttackError::TooLarge { .. }) => skipped += 1,
                Err(e) => panic!("k={k}: {e:?} disproves Theorem 4.2?!"),
            }
        }
        rows.push(E4Row {
            agent: format!("random-{k}bit"),
            bits: k as u64,
            states,
            samples,
            defeated,
            skipped_gamma: skipped,
            len_mean: if lens.is_empty() {
                0.0
            } else {
                lens.iter().sum::<u64>() as f64 / lens.len() as f64
            },
            len_max: lens.iter().copied().max().unwrap_or(0),
            gamma_max,
            crossings_seen: crossings,
        });
    }
    // Our own capped protocol, compiled and defeated with delay ZERO.
    for cap in 1..=2u32 {
        let compiled = compile_line_agent(|| PrimePathAgent::cycling(cap), 100_000)
            .expect("cycling prime agent is finite-state");
        match sync_attack(&compiled, max_gamma.max(1 << 22)) {
            Ok(attack) => rows.push(E4Row {
                agent: format!("prime-cycle({cap})"),
                bits: compiled.memory_bits(),
                states: compiled.num_states(),
                samples: 1,
                defeated: 1,
                skipped_gamma: 0,
                len_mean: attack.line_edges() as f64,
                len_max: attack.line_edges() as u64,
                gamma_max: attack.gamma,
                crossings_seen: attack.crossings,
            }),
            Err(SyncAttackError::TooLarge { gamma }) => rows.push(E4Row {
                agent: format!("prime-cycle({cap}) [γ={gamma} over budget]"),
                bits: compiled.memory_bits(),
                states: compiled.num_states(),
                samples: 1,
                defeated: 0,
                skipped_gamma: 1,
                len_mean: 0.0,
                len_max: 0,
                gamma_max: gamma,
                crossings_seen: 0,
            }),
            Err(e) => panic!("compiled prime: {e:?} disproves Theorem 4.2?!"),
        }
    }
    let table = to_table(&rows);
    (rows, table)
}

fn to_table(rows: &[E4Row]) -> Table {
    let mut t = Table::new(
        "E4",
        "Thm 4.2: simultaneous-start adversary — defeating line length vs memory",
        &["agent", "bits k", "states K", "defeated", "len mean", "len max", "γ max", "crossings"],
    );
    for r in rows {
        t.row(vec![
            r.agent.clone(),
            r.bits.to_string(),
            r.states.to_string(),
            format!("{}/{} ({} γ-skip)", r.defeated, r.samples, r.skipped_gamma),
            f(r.len_mean),
            r.len_max.to_string(),
            r.gamma_max.to_string(),
            r.crossings_seen.to_string(),
        ]);
    }
    t.note("paper: the line has length O(|S|^|S|) ⇒ Ω(log log n) bits; growth with K is the shape to see");
    t.note("crossings > 0: the copies pass through edges instead of meeting (Parity Lemma 4.4)");
    t
}
