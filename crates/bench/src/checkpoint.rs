//! The sweep checkpoint journal: an append-only, per-record-checksummed
//! log of completed cells, so a killed sweep resumes instead of restarting.
//!
//! **Model.** Every grid cell's result is a pure function of the spec
//! (deterministic per-cell seeding, see [`crate::sweep`]), and every cell
//! owns a unique [`crate::sweep::Cell::cell_seed`]. The journal maps that
//! seed to the cell's outcome — its [`SweepRow`] plus optional
//! [`Certificate`], or an explicit "dropped" marker for cells whose
//! instance had too few feasible start pairs. A resumed sweep
//! ([`crate::sweep::run_with_options`]) skips journaled cells and recomputes
//! the rest; because rows are collected in grid order either way, the final
//! report — and its JSON serialization — is byte-identical to an
//! uninterrupted run, for any `--threads` value. That identity is asserted
//! by `crates/bench/tests/crash_resume.rs` and the CI `crash-resume` job.
//!
//! **Framing.** Records use the shared [`crate::wire`] frame
//! (`len | crc32 | body`); bodies are compact JSON. The first record is a
//! header carrying a fingerprint of everything that determines the rows
//! (experiments, sizes, delays, variants, pairs, seed, executor — not
//! `--threads`); resuming against a journal written for a different spec
//! is a hard error, because equal cell seeds under a different spec would
//! splice wrong rows into the output. Loading accepts the longest clean
//! prefix: a torn tail (kill mid-append) or a corrupted record loses that
//! record and everything after it — those cells simply recompute. On
//! resume the journal is compacted (rewritten atomically from the
//! recovered records) so fresh appends never land after garbage.
//!
//! See docs/persistence.md for the crash model and format reference.

use crate::sweep::{Certificate, SweepRow};
use crate::{faults, wire};
use serde_json::Value;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Journal format version (the header record's `version` field).
pub const JOURNAL_VERSION: u64 = 1;

/// One journaled cell outcome. `row: None` is the explicit "dropped cell"
/// marker (the instance had fewer feasible pairs than the cell's index).
#[derive(Debug, Clone)]
pub struct CellRecord {
    pub cell_seed: u64,
    pub row: Option<SweepRow>,
    pub certificate: Option<Certificate>,
}

/// FNV-1a, the journal's fingerprint hash.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of everything that determines a batch of sweeps' rows —
/// the experiment grids minus `threads` (thread count never changes rows).
/// The CLI opens one journal per invocation covering all `--experiment`
/// ids, so the fingerprint spans all their specs.
pub fn spec_fingerprint(specs: &[&crate::sweep::SweepSpec]) -> u64 {
    let desc: Vec<String> = specs
        .iter()
        .map(|s| {
            let mut d = format!(
                "{}|{:?}|{:?}|{:?}|{:?}|pairs={}|seed={}|{:?}",
                s.experiment,
                s.families,
                s.sizes,
                s.delays,
                s.variants,
                s.pairs_per_cell,
                s.seed,
                s.executor
            );
            // The ensemble axis joins the fingerprint only when it widens
            // the grid, so journals written before the axis existed keep
            // matching their (pair) specs.
            if s.agents != 2 {
                d.push_str(&format!("|agents={}", s.agents));
            }
            d
        })
        .collect();
    fnv64(&desc.join("\n"))
}

// ---------------------------------------------------------------------------
// JSON (de)serialization of records. The serde shim is serialize-only, so
// rows and certificates are reconstructed from parsed `Value` trees by
// hand; the structs are then re-serialized through the same derive path as
// fresh rows, which is what makes resumed output byte-identical.

fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

fn req_u64(fields: &[(String, Value)], key: &str) -> Option<u64> {
    get(fields, key).and_then(as_u64)
}

fn req_str(fields: &[(String, Value)], key: &str) -> Option<String> {
    match get(fields, key)? {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn req_bool(fields: &[(String, Value)], key: &str) -> Option<bool> {
    match get(fields, key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// `null` or absent → `None`; present number → `Some` — matching how the
/// derive serializes `Option<u64>` fields without `skip_serializing_if`.
fn opt_u64(fields: &[(String, Value)], key: &str) -> Option<Option<u64>> {
    match get(fields, key) {
        None | Some(Value::Null) => Some(None),
        Some(v) => as_u64(v).map(Some),
    }
}

fn opt_str(fields: &[(String, Value)], key: &str) -> Option<Option<String>> {
    match get(fields, key) {
        None | Some(Value::Null) => Some(None),
        Some(Value::Str(s)) => Some(Some(s.clone())),
        Some(_) => None,
    }
}

fn opt_bool(fields: &[(String, Value)], key: &str) -> Option<Option<bool>> {
    match get(fields, key) {
        None | Some(Value::Null) => Some(None),
        Some(Value::Bool(b)) => Some(Some(*b)),
        Some(_) => None,
    }
}

/// Optional ensemble width (`--agents k > 2` rows/certificates): absent
/// or `null` → `None`, a number → `Some`.
fn opt_usize(fields: &[(String, Value)], key: &str) -> Option<Option<usize>> {
    Some(opt_u64(fields, key)?.map(|v| v as usize))
}

/// Optional node-id list (the ensemble `start_rest` field): absent or
/// `null` → `None`, an array of numbers → `Some`, anything else → parse
/// failure.
fn opt_nodes(fields: &[(String, Value)], key: &str) -> Option<Option<Vec<u32>>> {
    match get(fields, key) {
        None | Some(Value::Null) => Some(None),
        Some(Value::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(u32::try_from(as_u64(item)?).ok()?);
            }
            Some(Some(out))
        }
        Some(_) => None,
    }
}

/// The optional `planned` annotation ([`crate::sweep::Planned`]): absent
/// or `null` → `None` (fixed-executor rows), a well-formed object →
/// `Some`, anything else → parse failure.
fn opt_planned(fields: &[(String, Value)], key: &str) -> Option<Option<crate::sweep::Planned>> {
    match get(fields, key) {
        None | Some(Value::Null) => Some(None),
        Some(Value::Object(f)) => Some(Some(crate::sweep::Planned {
            choice: req_str(f, "choice")?,
            predicted: req_u64(f, "predicted")?,
            actual: req_u64(f, "actual")?,
        })),
        Some(_) => None,
    }
}

/// Rebuilds a [`SweepRow`] from its serialized JSON object; `None` on any
/// missing or mistyped field (the caller drops the record).
pub fn row_from_value(v: &Value) -> Option<SweepRow> {
    let Value::Object(f) = v else { return None };
    Some(SweepRow {
        experiment: Arc::from(req_str(f, "experiment")?.as_str()),
        family: req_str(f, "family")?,
        size: req_u64(f, "size")? as usize,
        n: req_u64(f, "n")? as usize,
        leaves: req_u64(f, "leaves")? as usize,
        variant: req_str(f, "variant")?,
        delay: req_u64(f, "delay")?,
        schedule: opt_str(f, "schedule")?,
        start_a: u32::try_from(req_u64(f, "start_a")?).ok()?,
        start_b: u32::try_from(req_u64(f, "start_b")?).ok()?,
        met: req_bool(f, "met")?,
        rounds: opt_u64(f, "rounds")?,
        crossings: req_u64(f, "crossings")?,
        budget: req_u64(f, "budget")?,
        provisioned_bits: req_u64(f, "provisioned_bits")?,
        measured_bits: req_u64(f, "measured_bits")?,
        tree_seed: req_u64(f, "tree_seed")?,
        pairs_seed: req_u64(f, "pairs_seed")?,
        cell_seed: req_u64(f, "cell_seed")?,
        certified: req_bool(f, "certified")?,
        timed_out: opt_bool(f, "timed_out")?,
        poisoned: opt_bool(f, "poisoned")?,
        planned: opt_planned(f, "planned")?,
        agents: opt_usize(f, "agents")?,
        start_rest: opt_nodes(f, "start_rest")?,
    })
}

/// Rebuilds a [`Certificate`] from its serialized JSON object.
pub fn certificate_from_value(v: &Value) -> Option<Certificate> {
    let Value::Object(f) = v else { return None };
    Some(Certificate {
        experiment: Arc::from(req_str(f, "experiment")?.as_str()),
        family: req_str(f, "family")?,
        size: req_u64(f, "size")? as usize,
        n: req_u64(f, "n")? as usize,
        tree_seed: req_u64(f, "tree_seed")?,
        variant: req_str(f, "variant")?,
        start_a: u32::try_from(req_u64(f, "start_a")?).ok()?,
        start_b: u32::try_from(req_u64(f, "start_b")?).ok()?,
        verdict: req_str(f, "verdict")?,
        schedule: opt_str(f, "schedule")?,
        delay: req_u64(f, "delay")?,
        round: opt_u64(f, "round")?,
        delays_checked: opt_u64(f, "delays_checked")?,
        lasso_stem: opt_u64(f, "lasso_stem")?,
        lasso_period: opt_u64(f, "lasso_period")?,
        verified: opt_bool(f, "verified")?,
        agents: opt_usize(f, "agents")?,
        start_rest: opt_nodes(f, "start_rest")?,
    })
}

/// The JSON body of one cell record.
fn record_body(rec: &CellRecord) -> Vec<u8> {
    let mut fields: Vec<(String, Value)> = vec![("cell".into(), Value::UInt(rec.cell_seed))];
    if let Some(row) = &rec.row {
        fields.push(("row".into(), serde_json::to_value(row)));
    }
    if let Some(cert) = &rec.certificate {
        fields.push(("certificate".into(), serde_json::to_value(cert)));
    }
    serde_json::to_string(&Value::Object(fields)).expect("serialize record").into_bytes()
}

fn header_body(fingerprint: u64) -> Vec<u8> {
    let header = Value::Object(vec![
        ("kind".into(), Value::Str("rvz-journal".into())),
        ("version".into(), Value::UInt(JOURNAL_VERSION)),
        ("fingerprint".into(), Value::UInt(fingerprint)),
    ]);
    serde_json::to_string(&header).expect("serialize header").into_bytes()
}

/// Serializes a whole journal (header + records) — the compaction writer,
/// also handy for tests that build journals without touching disk.
pub fn encode_journal(fingerprint: u64, records: &[CellRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    wire::frame_record(&mut out, &header_body(fingerprint));
    for rec in records {
        wire::frame_record(&mut out, &record_body(rec));
    }
    out
}

/// What a journal parse recovered: the clean-prefix records (last write
/// per cell seed wins, though duplicates only arise from pre-compaction
/// crash overlap), plus damage counters for reporting.
#[derive(Debug, Default)]
pub struct JournalSnapshot {
    /// Fingerprint from the header record, when one parsed.
    pub fingerprint: Option<u64>,
    /// Recovered outcomes keyed by cell seed.
    pub cells: HashMap<u64, CellRecord>,
    /// Frame-valid records whose JSON failed to parse or validate.
    pub bad_records: usize,
    /// `true` when the byte stream ended mid-frame or failed a checksum —
    /// the torn tail was dropped.
    pub torn_tail: bool,
}

/// Parses journal bytes into the recovered clean prefix. Never panics:
/// any truncation or corruption at any byte offset degrades to fewer
/// recovered cells (the journal-recovery proptests pin this).
pub fn parse_journal(bytes: &[u8]) -> JournalSnapshot {
    let (records, clean) = wire::read_records(bytes);
    let mut snap = JournalSnapshot { torn_tail: !clean, ..Default::default() };
    for (index, body) in records.iter().enumerate() {
        let parsed = std::str::from_utf8(body).ok().and_then(|s| serde_json::from_str(s).ok());
        let Some(Value::Object(fields)) = parsed else {
            snap.bad_records += 1;
            continue;
        };
        if index == 0 {
            if req_str(&fields, "kind").as_deref() == Some("rvz-journal")
                && req_u64(&fields, "version") == Some(JOURNAL_VERSION)
            {
                snap.fingerprint = req_u64(&fields, "fingerprint");
                continue;
            }
            snap.bad_records += 1;
            continue;
        }
        let Some(cell_seed) = req_u64(&fields, "cell") else {
            snap.bad_records += 1;
            continue;
        };
        let row = match get(&fields, "row") {
            None => None,
            Some(v) => match row_from_value(v) {
                Some(row) => Some(row),
                None => {
                    snap.bad_records += 1;
                    continue;
                }
            },
        };
        let certificate = match get(&fields, "certificate") {
            None => None,
            Some(v) => match certificate_from_value(v) {
                Some(cert) => Some(cert),
                None => {
                    snap.bad_records += 1;
                    continue;
                }
            },
        };
        snap.cells.insert(cell_seed, CellRecord { cell_seed, row, certificate });
    }
    snap
}

/// How often appended records are fsynced (every N appends plus once at
/// [`Journal::sync`]). Between fsyncs a record survives a process kill
/// (the OS holds it) but not a power loss — in which case it is a torn
/// tail, recovered from by recomputing that cell.
const SYNC_EVERY: u64 = 64;

/// An open checkpoint journal: the recovered cells of a `--resume`, plus
/// an append handle for cells computed this run. Appends are serialized
/// by a mutex (cells finish on many threads); a failed append (e.g.
/// injected ENOSPC) disables further checkpointing with a warning rather
/// than failing the sweep — the journal degrades, the results do not.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    /// Outcomes recovered from the resumed file, keyed by cell seed.
    recovered: HashMap<u64, CellRecord>,
    appended: AtomicU64,
    dead: AtomicBool,
    /// Appends that failed or were skipped because the journal was already
    /// dead — surfaced as [`crate::sweep::SweepReport::append_failures`].
    lost: AtomicU64,
    /// `--strict-checkpoint`: the first append failure exits the process
    /// instead of degrading to a dead journal.
    strict: AtomicBool,
}

impl Journal {
    /// Opens (or resumes) the journal at `path`. Fresh open truncates and
    /// writes the header; resume parses the existing file, verifies the
    /// fingerprint, compacts the clean prefix back to disk atomically, and
    /// reopens for append. A `--resume` against a missing file starts
    /// fresh (nothing to skip) with a warning.
    pub fn open(path: &Path, resume: bool, fingerprint: u64) -> Result<Journal, String> {
        let mut recovered = HashMap::new();
        if resume {
            match std::fs::read(path) {
                Ok(bytes) => {
                    let snap = parse_journal(&bytes);
                    match snap.fingerprint {
                        Some(fp) if fp == fingerprint => {}
                        Some(fp) => {
                            return Err(format!(
                                "{} was written for a different sweep configuration \
                                 (fingerprint {fp:#018x}, this run is {fingerprint:#018x}); \
                                 resuming would splice wrong rows — use a fresh --checkpoint \
                                 path or drop --resume",
                                path.display()
                            ));
                        }
                        None => {
                            return Err(format!(
                                "{} has no readable journal header; use a fresh --checkpoint \
                                 path or drop --resume",
                                path.display()
                            ));
                        }
                    }
                    if snap.bad_records > 0 || snap.torn_tail {
                        eprintln!(
                            "warning: {}: recovered {} cell(s); dropped {} bad record(s){} — \
                             dropped cells will be recomputed",
                            path.display(),
                            snap.cells.len(),
                            snap.bad_records,
                            if snap.torn_tail { " and a torn tail" } else { "" },
                        );
                    }
                    recovered = snap.cells;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    eprintln!(
                        "warning: --resume: {} does not exist yet; starting a fresh journal",
                        path.display()
                    );
                }
                Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
            }
        }
        // Compact (or initialize): header + recovered records, written
        // atomically so appends never land after a torn tail.
        let mut records: Vec<&CellRecord> = recovered.values().collect();
        records.sort_by_key(|r| r.cell_seed);
        let mut bytes = Vec::new();
        wire::frame_record(&mut bytes, &header_body(fingerprint));
        for rec in records {
            wire::frame_record(&mut bytes, &record_body(rec));
        }
        wire::atomic_write(path, &bytes)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
        Ok(Journal {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            recovered,
            appended: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            lost: AtomicU64::new(0),
            strict: AtomicBool::new(false),
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `--strict-checkpoint`: make any append failure fatal (exit code 1)
    /// instead of degrading to a dead journal with a warning.
    pub fn set_strict(&self, strict: bool) {
        self.strict.store(strict, Ordering::Relaxed);
    }

    /// Appends that failed or were silently skipped (dead journal) so far.
    pub fn appends_lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }

    /// The recovered outcome for a cell seed, if the journal has one.
    pub fn lookup(&self, cell_seed: u64) -> Option<&CellRecord> {
        self.recovered.get(&cell_seed)
    }

    /// Number of cells the resume recovered.
    pub fn recovered_cells(&self) -> usize {
        self.recovered.len()
    }

    /// Appends one completed cell. Errors degrade: the first failure
    /// disables the journal with a warning (the sweep's results are
    /// unaffected; only crash coverage is lost from that point).
    pub fn record(&self, rec: &CellRecord) {
        if self.dead.load(Ordering::Relaxed) {
            self.lost.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut framed = Vec::new();
        wire::frame_record(&mut framed, &record_body(rec));
        let result = (|| -> std::io::Result<()> {
            let fate = faults::mangle_write(faults::Site::JournalAppend, &mut framed)?;
            let mut file = self.file.lock().expect("journal lock");
            match fate {
                faults::WriteFate::Full => file.write_all(&framed)?,
                faults::WriteFate::Short(k) => {
                    file.write_all(&framed[..k])?;
                    file.flush()?;
                    let _ = file.sync_all();
                    faults::finish_short_write();
                }
            }
            file.flush()?;
            if self.appended.fetch_add(1, Ordering::Relaxed) % SYNC_EVERY == SYNC_EVERY - 1 {
                file.sync_all()?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            self.lost.fetch_add(1, Ordering::Relaxed);
            if self.strict.load(Ordering::Relaxed) {
                eprintln!(
                    "error: --strict-checkpoint: journal {} append failed: {e}",
                    self.path.display()
                );
                std::process::exit(1);
            }
            self.dead.store(true, Ordering::Relaxed);
            eprintln!(
                "warning: checkpoint journal {} disabled after append error: {e} \
                 (the sweep continues without crash coverage)",
                self.path.display()
            );
        }
    }

    /// Final fsync (end of sweep).
    pub fn sync(&self) {
        if let Ok(file) = self.file.lock() {
            let _ = file.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{cells, run_cell, SweepSpec};

    fn sample_records() -> Vec<CellRecord> {
        let spec = SweepSpec {
            experiment: "journal-test".into(),
            families: vec![crate::sweep::Family::Line],
            sizes: vec![6],
            delays: vec![crate::sweep::Delay::Zero, crate::sweep::Delay::Fixed(2)],
            variants: vec![crate::sweep::Variant::BasicWalkFsa],
            pairs_per_cell: 2,
            seed: 0x1A,
            threads: 1,
            executor: crate::sweep::Executor::TraceReplay,
            agents: 2,
        };
        cells(&spec)
            .iter()
            .map(|c| CellRecord { cell_seed: c.cell_seed(), row: run_cell(c), certificate: None })
            .collect()
    }

    #[test]
    fn journal_round_trips_rows_byte_identically() {
        let records = sample_records();
        assert!(records.iter().any(|r| r.row.is_some()));
        let bytes = encode_journal(7, &records);
        let snap = parse_journal(&bytes);
        assert_eq!(snap.fingerprint, Some(7));
        assert_eq!(snap.cells.len(), records.len());
        assert!(!snap.torn_tail);
        assert_eq!(snap.bad_records, 0);
        for rec in &records {
            let back = &snap.cells[&rec.cell_seed];
            assert_eq!(
                serde_json::to_string(&back.row).unwrap(),
                serde_json::to_string(&rec.row).unwrap(),
                "recovered row must re-serialize byte-identically"
            );
        }
    }

    #[test]
    fn journal_survives_truncation_anywhere() {
        let records = sample_records();
        let bytes = encode_journal(3, &records);
        for cut in 0..bytes.len() {
            let snap = parse_journal(&bytes[..cut]);
            assert!(snap.cells.len() <= records.len());
            // Every recovered cell must be one we wrote, with the row intact.
            for (seed, rec) in &snap.cells {
                let original = records.iter().find(|r| r.cell_seed == *seed).expect("known cell");
                assert_eq!(
                    serde_json::to_string(&rec.row).unwrap(),
                    serde_json::to_string(&original.row).unwrap()
                );
            }
        }
    }

    #[test]
    fn journal_open_resume_compacts_and_verifies_fingerprint() {
        let dir = std::env::temp_dir().join(format!("rvz-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.ckpt");
        let records = sample_records();
        let fp = 0xABCD;
        // Simulate a crashed run: full journal plus a torn trailing frame.
        let mut bytes = encode_journal(fp, &records[..2]);
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]);
        std::fs::write(&path, &bytes).unwrap();
        let journal = Journal::open(&path, true, fp).expect("resume");
        assert_eq!(journal.recovered_cells(), 2);
        journal.record(&records[2]);
        journal.sync();
        drop(journal);
        // The compacted file now parses cleanly with all three records.
        let snap = parse_journal(&std::fs::read(&path).unwrap());
        assert!(!snap.torn_tail);
        assert_eq!(snap.cells.len(), 3);
        // A different fingerprint is a hard error.
        assert!(Journal::open(&path, true, fp ^ 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
