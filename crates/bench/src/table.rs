//! Plain-text table rendering + JSON record output for the experiment
//! harness. Every experiment produces one or more [`Table`]s; the
//! `experiments` binary prints them and optionally writes the raw rows as
//! JSON (schema documented in docs/schemas.md).

use serde::Serialize;

/// A rendered experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id, e.g. `"E1"`.
    pub id: String,
    /// The paper artifact it regenerates.
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Reading notes: what shape the paper predicts and what to look for.
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: &str) {
        self.notes.push(s.to_string());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.note("shape holds");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("shape holds"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("E0", "demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
