//! Multi-process sweep execution: a supervisor that shards the grid
//! across worker subprocesses and keeps the report byte-identical while
//! those workers die under it (`experiments --workers N`).
//!
//! **Model.** Every cell's row is a pure function of its coordinates
//! ([`crate::sweep`]), so *where* a cell is computed cannot change its
//! bytes — only *whether* it gets computed. The supervisor therefore
//! plans the grid into contiguous shards, lets workers claim them through
//! an on-disk lease protocol, collects per-shard segment journals, and
//! assembles the final report **in grid order** from whatever process
//! happened to compute each cell. The result is byte-identical to a
//! single-process run for every `--workers` count and after any worker
//! death (pinned by `tests/worker_supervision.rs` and the
//! `scripts/crash_test.sh` worker legs).
//!
//! **Files** (all in a per-run workdir, all [`crate::wire`]-framed and
//! CRC'd, all replaced atomically):
//!
//! | file | written by | meaning |
//! |---|---|---|
//! | `plan` | supervisor | shard table + spec fingerprint |
//! | `ready-<s>` | supervisor | shard `s` is claimable |
//! | `lease-<s>` | worker | shard `s` is owned; body `{pid, beat}` is the heartbeat |
//! | `seg-<s>.ckpt` | worker | per-shard checkpoint journal of completed cells |
//! | `done-<s>` | worker | shard `s` finished; `seg-<s>.ckpt` is complete |
//!
//! A claim is `rename(ready-<s>, lease-<s>)` — atomic, so exactly one
//! worker wins a shard. The worker then rewrites the lease every
//! heartbeat interval; the supervisor watches the beat counter and
//! expires a lease whose beat has not advanced within the timeout
//! (wedged worker), whose process has exited (crash, `kill -9`), or
//! whose file has vanished (lease steal). An expired shard's segment is
//! partially harvested — completed cells are real results and are kept —
//! and the shard is reassigned with exponential backoff. A shard that
//! exceeds the attempt cap is quarantined: its cells become explicit
//! `poisoned` rows ([`crate::sweep::SweepRow::poisoned`]), never
//! fabricated measurements, mirroring the `timed_out` discipline. If
//! workers cannot spawn at all the supervisor degrades to in-process
//! execution with a warning.
//!
//! Workers never touch the shared `--checkpoint` journal — each appends
//! to its own segment (one writer per file, so the wire framing's
//! clean-prefix crash model holds) and the supervisor is the sole
//! appender to the main journal. With `--resume`, segment journals and
//! `done` markers from an interrupted supervised run are themselves
//! resumed: a reassigned or restarted shard skips the cells its segment
//! already holds. See docs/distributed.md for the full protocol and
//! failure matrix.

use crate::checkpoint::{self, CellRecord, Journal};
use crate::planner::{self, Planner};
use crate::sweep::{
    self, cells, poisoned_row, run_cell_watchdogged, run_cell_with_executor, Cell, Executor,
    Family, RunOptions, SweepInstance, SweepReport, SweepSpec,
};
use crate::{faults, wire};
use serde_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard-plan format version (the `plan` file's `version` field).
pub const PLAN_VERSION: u64 = 1;

/// One-cell dispatch, the same four-way split as
/// [`sweep::run_with_options`]: the [`Executor::Auto`] planner (a pure
/// function of the spec, so supervisor and workers price cells
/// identically) or the spec's fixed executor, optionally under the
/// per-cell watchdog.
fn dispatch_cell(
    cell: &Cell,
    inst: &Arc<SweepInstance>,
    spec: &SweepSpec,
    auto: Option<&Planner>,
    timeout: Option<Duration>,
) -> (Option<sweep::SweepRow>, Option<sweep::Certificate>) {
    match (auto, timeout) {
        (Some(p), Some(t)) => planner::run_cell_auto_watchdogged(cell, inst, p, t),
        (Some(p), None) => planner::run_cell_auto(cell, inst, p),
        (None, Some(t)) => run_cell_watchdogged(cell, inst, spec.executor, t),
        (None, None) => run_cell_with_executor(cell, inst, spec.executor),
    }
}

/// The Auto planner for a spec, `None` under the fixed executors.
fn auto_planner(spec: &SweepSpec) -> Option<Planner> {
    (spec.executor == Executor::Auto).then(|| Planner::from_spec(spec))
}

/// Shards per requested worker: small enough that claims are rare events,
/// large enough that a crashed worker forfeits only a fraction of its
/// work and stragglers rebalance onto idle workers.
const SHARDS_PER_WORKER: usize = 4;

/// Supervisor poll cadence (lease scans, child reaping).
const POLL: Duration = Duration::from_millis(25);

/// Tuning knobs for [`run_supervised`]. `new` reads the documented
/// defaults, each overridable through an environment variable so the CI
/// fault legs can compress minutes of backoff into milliseconds:
/// `RVZ_HEARTBEAT_INTERVAL_MS`, `RVZ_HEARTBEAT_TIMEOUT_MS`,
/// `RVZ_WORKER_BACKOFF_MS`, `RVZ_SHARD_ATTEMPTS`.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker subprocess count (≥ 1; `--workers 0` never reaches here).
    pub workers: usize,
    /// How often a worker rewrites its lease heartbeat.
    pub heartbeat_interval: Duration,
    /// Lease expiry: a beat that has not advanced for this long means the
    /// worker is wedged and its shard is reassigned.
    pub heartbeat_timeout: Duration,
    /// First reassignment delay; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Attempts before a shard is quarantined as poisoned.
    pub max_shard_attempts: u32,
    /// `--resume`: keep matching segment journals and done markers from a
    /// previous supervised run instead of starting the shards over.
    pub resume: bool,
    /// Explicit workdir (tests); defaults next to the journal, or to a
    /// temp dir without one.
    pub workdir: Option<PathBuf>,
}

fn env_ms(key: &str, default: Duration) -> Duration {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(default, Duration::from_millis)
}

impl SupervisorConfig {
    pub fn new(workers: usize) -> SupervisorConfig {
        SupervisorConfig {
            workers: workers.max(1),
            heartbeat_interval: env_ms("RVZ_HEARTBEAT_INTERVAL_MS", Duration::from_millis(100)),
            heartbeat_timeout: env_ms("RVZ_HEARTBEAT_TIMEOUT_MS", Duration::from_secs(2)),
            backoff_base: env_ms("RVZ_WORKER_BACKOFF_MS", Duration::from_millis(250)),
            max_shard_attempts: std::env::var("RVZ_SHARD_ATTEMPTS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(3),
            resume: false,
            workdir: None,
        }
    }
}

/// One contiguous half-open range `[lo, hi)` of grid-order cell indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    pub lo: usize,
    pub hi: usize,
}

/// Plans `total` grid cells into contiguous shards: `workers ×`
/// `SHARDS_PER_WORKER` ranges (capped at one cell per shard minimum),
/// sized within one cell of each other, covering the grid exactly.
pub fn plan_shards(total: usize, workers: usize) -> Vec<ShardRange> {
    if total == 0 {
        return Vec::new();
    }
    let count = (workers.max(1) * SHARDS_PER_WORKER).clamp(1, total);
    (0..count).map(|s| ShardRange { lo: s * total / count, hi: (s + 1) * total / count }).collect()
}

// ---------------------------------------------------------------------------
// Control-file bodies (compact JSON inside a single wire frame).

fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(fields: &[(String, Value)], key: &str) -> Option<u64> {
    match get(fields, key)? {
        Value::Int(i) => u64::try_from(*i).ok(),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

fn get_str(fields: &[(String, Value)], key: &str) -> Option<String> {
    match get(fields, key)? {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

/// The shard plan as both processes see it — everything a worker needs to
/// name its cells, plus the per-spec fingerprint that proves the worker
/// resolved the *same* spec the supervisor planned (worker processes
/// re-derive the spec from the original CLI arguments; the fingerprint
/// check turns any drift into a hard error instead of wrong rows).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    pub fingerprint: u64,
    pub experiment: String,
    pub total_cells: usize,
    pub shards: Vec<ShardRange>,
    /// The shared `--checkpoint` journal, when one is in use: workers skip
    /// cells it already holds (supervisor splices them from the journal).
    pub main_journal: Option<PathBuf>,
    /// `--cell-timeout`, forwarded so workers watchdog cells the same way.
    pub cell_timeout_ms: Option<u64>,
    /// Worker heartbeat rewrite interval.
    pub heartbeat_ms: u64,
}

impl ShardPlan {
    fn to_bytes(&self) -> Vec<u8> {
        let shards: Vec<Value> = self
            .shards
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("lo".into(), Value::UInt(r.lo as u64)),
                    ("hi".into(), Value::UInt(r.hi as u64)),
                ])
            })
            .collect();
        let body = Value::Object(vec![
            ("kind".into(), Value::Str("rvz-shard-plan".into())),
            ("version".into(), Value::UInt(PLAN_VERSION)),
            ("fingerprint".into(), Value::UInt(self.fingerprint)),
            ("experiment".into(), Value::Str(self.experiment.clone())),
            ("total_cells".into(), Value::UInt(self.total_cells as u64)),
            ("shards".into(), Value::Array(shards)),
            (
                "main_journal".into(),
                match &self.main_journal {
                    Some(p) => Value::Str(p.display().to_string()),
                    None => Value::Null,
                },
            ),
            (
                "cell_timeout_ms".into(),
                match self.cell_timeout_ms {
                    Some(ms) => Value::UInt(ms),
                    None => Value::Null,
                },
            ),
            ("heartbeat_ms".into(), Value::UInt(self.heartbeat_ms)),
        ]);
        serde_json::to_string(&body).expect("serialize shard plan").into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Option<ShardPlan> {
        let Value::Object(f) = serde_json::from_str(std::str::from_utf8(bytes).ok()?).ok()? else {
            return None;
        };
        if get_str(&f, "kind").as_deref() != Some("rvz-shard-plan")
            || get_u64(&f, "version") != Some(PLAN_VERSION)
        {
            return None;
        }
        let Some(Value::Array(raw)) = get(&f, "shards") else { return None };
        let mut shards = Vec::with_capacity(raw.len());
        for v in raw {
            let Value::Object(rf) = v else { return None };
            shards.push(ShardRange {
                lo: get_u64(rf, "lo")? as usize,
                hi: get_u64(rf, "hi")? as usize,
            });
        }
        Some(ShardPlan {
            fingerprint: get_u64(&f, "fingerprint")?,
            experiment: get_str(&f, "experiment")?,
            total_cells: get_u64(&f, "total_cells")? as usize,
            shards,
            main_journal: match get(&f, "main_journal") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(PathBuf::from(s)),
                Some(_) => return None,
            },
            cell_timeout_ms: match get(&f, "cell_timeout_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(match v {
                    Value::Int(i) => u64::try_from(*i).ok()?,
                    Value::UInt(u) => *u,
                    _ => return None,
                }),
            },
            heartbeat_ms: get_u64(&f, "heartbeat_ms")?,
        })
    }
}

fn heartbeat_body(pid: u32, beat: u64) -> Vec<u8> {
    let body = Value::Object(vec![
        ("pid".into(), Value::UInt(pid as u64)),
        ("beat".into(), Value::UInt(beat)),
    ]);
    serde_json::to_string(&body).expect("serialize heartbeat").into_bytes()
}

fn parse_heartbeat(bytes: &[u8]) -> Option<(u32, u64)> {
    let Value::Object(f) = serde_json::from_str(std::str::from_utf8(bytes).ok()?).ok()? else {
        return None;
    };
    Some((u32::try_from(get_u64(&f, "pid")?).ok()?, get_u64(&f, "beat")?))
}

fn plan_path(workdir: &Path) -> PathBuf {
    workdir.join("plan")
}

/// Which experiment a workdir's shard plan covers — how a freshly spawned
/// worker (handed only the workdir and the supervisor's original CLI
/// arguments) knows which of the invocation's specs it is serving.
pub fn planned_experiment(workdir: &Path) -> Option<String> {
    wire::read_framed(&plan_path(workdir))
        .as_deref()
        .and_then(ShardPlan::from_bytes)
        .map(|p| p.experiment)
}
fn ready_path(workdir: &Path, s: usize) -> PathBuf {
    workdir.join(format!("ready-{s}"))
}
fn lease_path(workdir: &Path, s: usize) -> PathBuf {
    workdir.join(format!("lease-{s}"))
}
fn seg_path(workdir: &Path, s: usize) -> PathBuf {
    workdir.join(format!("seg-{s}.ckpt"))
}
fn done_path(workdir: &Path, s: usize) -> PathBuf {
    workdir.join(format!("done-{s}"))
}

// ---------------------------------------------------------------------------
// Supervisor side.

#[derive(Debug, Clone, Copy)]
enum ShardState {
    /// Claimable (`ready-<s>` exists, or will momentarily).
    Ready,
    /// A worker owns it; `last` is the latest observed `(pid, beat)` and
    /// `since` when it last advanced.
    Leased {
        last: Option<(u32, u64)>,
        since: Instant,
    },
    /// Waiting out the reassignment backoff.
    Backoff {
        until: Instant,
    },
    Done,
    Poisoned,
}

struct Shard {
    range: ShardRange,
    state: ShardState,
    attempts: u32,
}

/// Lazily built instance cache for the supervisor's own (fallback /
/// poisoned-row) cell work — same keying as `run_with_options`.
struct InstanceCache {
    map: HashMap<(Family, usize, Option<u64>), Arc<SweepInstance>>,
}

impl InstanceCache {
    fn new() -> InstanceCache {
        InstanceCache { map: HashMap::new() }
    }
    fn get(&mut self, cell: &Cell) -> Arc<SweepInstance> {
        self.map
            .entry((cell.family, cell.n, cell.tree_index))
            .or_insert_with(|| Arc::new(SweepInstance::for_cell(cell)))
            .clone()
    }
}

/// Runs `spec` through `cfg.workers` subprocesses and returns the merged
/// report. `spawn_worker` builds the worker command for a given workdir
/// (the CLI re-invokes itself with `--worker <dir>`; tests re-invoke the
/// test binary); the supervisor owns stdio, spawning, killing and
/// reaping. Falls back to in-process execution (with a warning) when no
/// worker can be spawned.
pub fn run_supervised(
    spec: &SweepSpec,
    opts: &RunOptions<'_>,
    cfg: &SupervisorConfig,
    spawn_worker: &mut dyn FnMut(&Path) -> Command,
) -> SweepReport {
    let grid = cells(spec);
    let fingerprint = checkpoint::spec_fingerprint(&[spec]);
    let plan = ShardPlan {
        fingerprint,
        experiment: spec.experiment.clone(),
        total_cells: grid.len(),
        shards: plan_shards(grid.len(), cfg.workers),
        main_journal: opts.journal.map(|j| j.path().to_path_buf()),
        cell_timeout_ms: opts.cell_timeout.map(|t| t.as_millis() as u64),
        heartbeat_ms: cfg.heartbeat_interval.as_millis() as u64,
    };

    // Workdir: explicit (tests) > journal-derived (stable across --resume,
    // which is what makes shard resumption possible) > temp (one-shot).
    let workdir = cfg.workdir.clone().unwrap_or_else(|| match opts.journal {
        Some(j) => {
            let mut name = j.path().file_name().unwrap_or_default().to_os_string();
            name.push(".work");
            j.path().with_file_name(name).join(&spec.experiment)
        }
        None => std::env::temp_dir().join(format!(
            "rvz-workers-{}-{}",
            std::process::id(),
            spec.experiment
        )),
    });
    if let Err(e) = prepare_workdir(&workdir, &plan, cfg.resume) {
        eprintln!(
            "warning: --workers: cannot prepare workdir {}: {e}; running in-process",
            workdir.display()
        );
        return sweep::run_with_options(spec, opts);
    }

    let mut shards: Vec<Shard> = plan
        .shards
        .iter()
        .map(|&range| Shard { range, state: ShardState::Ready, attempts: 0 })
        .collect();
    // Shards already completed by a previous (resumed) supervised run.
    for (s, shard) in shards.iter_mut().enumerate() {
        if done_path(&workdir, s).exists() {
            shard.state = ShardState::Done;
        } else if let Err(e) = wire::write_framed(&ready_path(&workdir, s), &heartbeat_body(0, 0)) {
            eprintln!(
                "warning: --workers: cannot write {}: {e}",
                ready_path(&workdir, s).display()
            );
        }
    }

    // Results harvested from worker segments, keyed by cell seed.
    let mut merged: HashMap<u64, CellRecord> = HashMap::new();
    let harvest = |merged: &mut HashMap<u64, CellRecord>, s: usize| {
        let Ok(bytes) = std::fs::read(seg_path(&workdir, s)) else { return };
        let snap = checkpoint::parse_journal(&bytes);
        if snap.fingerprint == Some(fingerprint) {
            for (seed, rec) in snap.cells {
                // Append newly harvested cells to the main journal (the
                // supervisor is its only writer in supervised mode).
                merged.entry(seed).or_insert_with(|| {
                    if let Some(journal) = opts.journal {
                        if journal.lookup(seed).is_none() {
                            journal.record(&rec);
                        }
                    }
                    rec
                });
            }
        }
    };
    for (s, shard) in shards.iter().enumerate() {
        if matches!(shard.state, ShardState::Done) {
            harvest(&mut merged, s);
        }
    }

    let mut children: Vec<Child> = Vec::new();
    let mut spawn_broken = false;
    let mut spawn_one = |children: &mut Vec<Child>, spawn_broken: &mut bool| {
        if *spawn_broken {
            return;
        }
        let mut cmd = spawn_worker(&workdir);
        cmd.stdin(std::process::Stdio::null()).stdout(std::process::Stdio::null());
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                *spawn_broken = true;
                eprintln!(
                    "warning: --workers: cannot spawn worker process ({e}); \
                     degrading to in-process execution"
                );
            }
        }
    };

    let live_shards = |shards: &[Shard]| {
        shards.iter().any(|s| !matches!(s.state, ShardState::Done | ShardState::Poisoned))
    };
    let claimable = |shards: &[Shard]| shards.iter().any(|s| matches!(s.state, ShardState::Ready));

    let want =
        cfg.workers.min(shards.iter().filter(|s| !matches!(s.state, ShardState::Done)).count());
    for _ in 0..want {
        spawn_one(&mut children, &mut spawn_broken);
    }

    // Monitor loop. Every state is bounded — heartbeat timeout bounds
    // Leased, the backoff clock bounds Backoff, the attempt cap bounds
    // retries — so this loop terminates even if every worker dies on
    // every cell.
    while live_shards(&shards) {
        // Reap exited workers; their leases expire immediately below.
        let mut dead_pids: Vec<u32> = Vec::new();
        children.retain_mut(|c| match c.try_wait() {
            Ok(Some(_)) => {
                dead_pids.push(c.id());
                false
            }
            _ => true,
        });

        let now = Instant::now();
        for s in 0..shards.len() {
            let expire = |shards: &mut Vec<Shard>,
                          merged: &mut HashMap<u64, CellRecord>,
                          children: &mut Vec<Child>,
                          s: usize,
                          why: &str| {
                // A wedged worker (heartbeat gone silent, process alive)
                // must die before its shard is handed to someone else —
                // two writers on one segment would tear it.
                if let Some(body) = wire::read_framed(&lease_path(&workdir, s)) {
                    if let Some((pid, _)) = parse_heartbeat(&body) {
                        for child in children.iter_mut() {
                            if child.id() == pid {
                                let _ = child.kill();
                                let _ = child.wait();
                            }
                        }
                        children.retain_mut(|c| !matches!(c.try_wait(), Ok(Some(_))));
                    }
                }
                let _ = std::fs::remove_file(lease_path(&workdir, s));
                // Keep what the dead worker finished: its segment's clean
                // prefix is real, completed cells.
                harvest(merged, s);
                let shard = &mut shards[s];
                shard.attempts += 1;
                if shard.attempts >= cfg.max_shard_attempts {
                    eprintln!(
                        "warning: --workers: shard {s} (cells {}..{}) {why} on attempt \
                         {}/{} — quarantining its remaining cells as poisoned rows",
                        shard.range.lo, shard.range.hi, shard.attempts, cfg.max_shard_attempts
                    );
                    shard.state = ShardState::Poisoned;
                } else {
                    let backoff = cfg.backoff_base * 2u32.saturating_pow(shard.attempts - 1);
                    eprintln!(
                        "warning: --workers: shard {s} (cells {}..{}) {why} on attempt \
                         {}/{} — reassigning after {backoff:?}",
                        shard.range.lo, shard.range.hi, shard.attempts, cfg.max_shard_attempts
                    );
                    shard.state = ShardState::Backoff { until: Instant::now() + backoff };
                }
            };

            match shards[s].state {
                ShardState::Done | ShardState::Poisoned => continue,
                ShardState::Backoff { until } => {
                    if now >= until {
                        match wire::write_framed(&ready_path(&workdir, s), &heartbeat_body(0, 0)) {
                            Ok(()) => shards[s].state = ShardState::Ready,
                            Err(e) => {
                                eprintln!("warning: --workers: cannot re-issue shard {s}: {e}")
                            }
                        }
                    }
                }
                ShardState::Ready | ShardState::Leased { .. } => {
                    if wire::read_framed(&done_path(&workdir, s)).is_some() {
                        harvest(&mut merged, s);
                        let _ = std::fs::remove_file(lease_path(&workdir, s));
                        let _ = std::fs::remove_file(ready_path(&workdir, s));
                        shards[s].state = ShardState::Done;
                        continue;
                    }
                    let beat = wire::read_framed(&lease_path(&workdir, s))
                        .as_deref()
                        .and_then(parse_heartbeat);
                    match beat {
                        Some((pid, beat)) => {
                            if pid != 0 && dead_pids.contains(&pid) {
                                expire(
                                    &mut shards,
                                    &mut merged,
                                    &mut children,
                                    s,
                                    "lost its worker",
                                );
                                continue;
                            }
                            let (last, since) = match shards[s].state {
                                ShardState::Leased { last, since } => (last, since),
                                _ => (None, now),
                            };
                            let (last, since) = if last == Some((pid, beat)) {
                                (last, since)
                            } else {
                                (Some((pid, beat)), now)
                            };
                            if now.duration_since(since) > cfg.heartbeat_timeout {
                                expire(
                                    &mut shards,
                                    &mut merged,
                                    &mut children,
                                    s,
                                    "stopped heartbeating",
                                );
                            } else {
                                shards[s].state = ShardState::Leased { last, since };
                            }
                        }
                        None => {
                            if ready_path(&workdir, s).exists() {
                                shards[s].state = ShardState::Ready;
                            } else if matches!(shards[s].state, ShardState::Leased { .. }) {
                                // Neither ready nor a readable lease while
                                // leased: the lease was stolen or torn.
                                expire(
                                    &mut shards,
                                    &mut merged,
                                    &mut children,
                                    s,
                                    "lost its lease",
                                );
                            } else {
                                // Ready but no marker on disk (an earlier
                                // write failed — claims are atomic renames,
                                // so there is no in-flight window): re-issue.
                                let _ = wire::write_framed(
                                    &ready_path(&workdir, s),
                                    &heartbeat_body(0, 0),
                                );
                            }
                        }
                    }
                }
            }
        }

        // Pool maintenance: workers exit when nothing is claimable, so a
        // shard coming off backoff may find no one alive — spawn a
        // replacement (only while claimable work exists, to avoid churn).
        if claimable(&shards) && children.len() < cfg.workers {
            spawn_one(&mut children, &mut spawn_broken);
        }
        if spawn_broken
            && children.is_empty()
            && !shards.iter().any(|s| matches!(s.state, ShardState::Leased { .. }))
        {
            break; // remaining shards are computed in-process below
        }
        if live_shards(&shards) {
            std::thread::sleep(POLL);
        }
    }
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }

    // Final assembly, in grid order — this is where byte-identity to the
    // single-process run is decided. Poisoned shards yield explicit
    // poisoned rows; any other hole (shouldn't happen: every shard ends
    // Done or Poisoned) is computed in-process as a safety net.
    let mut instances = InstanceCache::new();
    let auto = auto_planner(spec);
    let mut rows = Vec::with_capacity(grid.len());
    let mut certificates = Vec::new();
    let shard_of = |idx: usize| shards.iter().find(|sh| sh.range.lo <= idx && idx < sh.range.hi);
    for (idx, cell) in grid.iter().enumerate() {
        let seed = cell.cell_seed();
        let (row, cert) = if let Some(rec) = opts.journal.and_then(|j| j.lookup(seed)) {
            (rec.row.clone(), rec.certificate.clone())
        } else if let Some(rec) = merged.get(&seed) {
            (rec.row.clone(), rec.certificate.clone())
        } else if shard_of(idx).is_some_and(|sh| matches!(sh.state, ShardState::Poisoned)) {
            let inst = instances.get(cell);
            let out = (poisoned_row(cell, &inst), None);
            if let Some(journal) = opts.journal {
                journal.record(&CellRecord {
                    cell_seed: seed,
                    row: out.0.clone(),
                    certificate: None,
                });
            }
            out
        } else {
            if !spawn_broken {
                eprintln!(
                    "warning: --workers: cell {seed:#018x} missing from every worker segment; \
                     computing it in-process"
                );
            }
            let inst = instances.get(cell);
            let out = dispatch_cell(cell, &inst, spec, auto.as_ref(), opts.cell_timeout);
            if let Some(journal) = opts.journal {
                journal.record(&CellRecord {
                    cell_seed: seed,
                    row: out.0.clone(),
                    certificate: out.1.clone(),
                });
            }
            out
        };
        rows.extend(row);
        certificates.extend(cert);
    }
    if let Some(journal) = opts.journal {
        journal.sync();
    }

    // The workdir is scratch: remove it once fully harvested. Poisoned
    // shards keep it (their segments and the plan are the evidence).
    if shards.iter().all(|s| matches!(s.state, ShardState::Done)) {
        let _ = std::fs::remove_dir_all(&workdir);
        if let Some(parent) = workdir.parent() {
            // The journal-derived parent (`<journal>.work/`) holds one
            // workdir per experiment; reap it once the last one is gone.
            let _ = std::fs::remove_dir(parent);
        }
    }

    let planned_cells = grid.len();
    SweepReport {
        dropped_cells: planned_cells - rows.len(),
        planned_cells,
        rows,
        certificates,
        append_failures: opts.journal.map_or(0, |j| j.appends_lost()),
    }
}

/// Creates/cleans the workdir and writes the plan. On `resume`, a
/// matching existing plan keeps its segment journals and done markers
/// (shard-lease resumption); anything else — mismatched plan, fresh run —
/// starts clean. Stale leases and ready markers never survive a restart:
/// the processes that owned them are gone.
fn prepare_workdir(workdir: &Path, plan: &ShardPlan, resume: bool) -> std::io::Result<()> {
    std::fs::create_dir_all(workdir)?;
    let keep_segments = resume
        && wire::read_framed(&plan_path(workdir))
            .as_deref()
            .and_then(ShardPlan::from_bytes)
            .is_some_and(|old| old == *plan);
    for entry in std::fs::read_dir(workdir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let stale = name.starts_with("lease-")
            || name.starts_with("ready-")
            || (!keep_segments && (name.starts_with("seg-") || name.starts_with("done-")))
            || name == "plan";
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    wire::write_framed(&plan_path(workdir), &plan.to_bytes())
}

// ---------------------------------------------------------------------------
// Worker side.

/// Claims and executes shards until none are claimable. The caller
/// supplies the spec it resolved from its own arguments; the plan's
/// fingerprint must match the spec's, which proves both processes will
/// enumerate the identical grid. Returns `Err` on protocol violations
/// (missing/corrupt plan, fingerprint drift) — the supervisor treats the
/// resulting nonzero exit like any other worker death.
pub fn worker_main(workdir: &Path, spec: &SweepSpec) -> Result<(), String> {
    let plan = wire::read_framed(&plan_path(workdir))
        .as_deref()
        .and_then(ShardPlan::from_bytes)
        .ok_or_else(|| format!("no readable shard plan in {}", workdir.display()))?;
    let fingerprint = checkpoint::spec_fingerprint(&[spec]);
    if plan.fingerprint != fingerprint {
        return Err(format!(
            "shard plan fingerprint {:#018x} does not match this worker's spec {fingerprint:#018x} \
             (worker arguments drifted from the supervisor's)",
            plan.fingerprint
        ));
    }
    let grid = cells(spec);
    if grid.len() != plan.total_cells {
        return Err(format!(
            "shard plan covers {} cells but this worker enumerates {}",
            plan.total_cells,
            grid.len()
        ));
    }
    // Cells the shared journal already holds are the supervisor's to
    // splice; skip them (fingerprint already validated by the supervisor
    // that opened the journal — it spans *all* experiments of the
    // invocation, so it differs from this worker's per-spec one).
    let journaled: std::collections::HashSet<u64> = match &plan.main_journal {
        Some(path) => std::fs::read(path)
            .map(|bytes| checkpoint::parse_journal(&bytes).cells.into_keys().collect())
            .unwrap_or_default(),
        None => Default::default(),
    };

    let mut instances = InstanceCache::new();
    loop {
        let mut claimed_any = false;
        let mut all_done = true;
        for (s, range) in plan.shards.iter().enumerate() {
            if done_path(workdir, s).exists() {
                continue;
            }
            all_done = false;
            // The claim: exactly one renamer wins the ready marker.
            if std::fs::rename(ready_path(workdir, s), lease_path(workdir, s)).is_err() {
                continue;
            }
            claimed_any = true;
            run_shard(workdir, &plan, spec, &grid, &journaled, &mut instances, s, *range)?;
        }
        if all_done || !claimed_any {
            return Ok(());
        }
    }
}

/// Executes one claimed shard: heartbeat thread + segment journal + the
/// cells of `range` (skipping whatever the segment or the main journal
/// already holds), then the `done` marker.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    workdir: &Path,
    plan: &ShardPlan,
    spec: &SweepSpec,
    grid: &[Cell],
    journaled: &std::collections::HashSet<u64>,
    instances: &mut InstanceCache,
    s: usize,
    range: ShardRange,
) -> Result<(), String> {
    let lease = lease_path(workdir, s);
    let pid = std::process::id();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let beat_thread = {
        let lease = lease.clone();
        let stop = Arc::clone(&stop);
        let interval = Duration::from_millis(plan.heartbeat_ms.max(1));
        std::thread::spawn(move || {
            let mut beat = 1u64;
            loop {
                if faults::check(faults::Site::HeartbeatDrop).is_some() {
                    // The wedged-worker simulation: stop beating, keep the
                    // process (and its cell loop) running.
                    return;
                }
                if wire::write_framed(&lease, &heartbeat_body(pid, beat)).is_err() {
                    return;
                }
                beat += 1;
                let tick = Instant::now();
                while tick.elapsed() < interval {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        })
    };
    let finish_beat = |stop: &std::sync::atomic::AtomicBool| {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    };

    let seg = seg_path(workdir, s);
    let resume = seg.exists();
    let seg = match Journal::open(&seg, resume, plan.fingerprint) {
        Ok(seg) => seg,
        Err(_) => {
            // A stale or torn segment from an unrelated run: start over.
            let _ = std::fs::remove_file(&seg);
            Journal::open(&seg, false, plan.fingerprint).map_err(|e| {
                finish_beat(&stop);
                format!("cannot open segment journal: {e}")
            })?
        }
    };

    let timeout = plan.cell_timeout_ms.map(Duration::from_millis);
    let auto = auto_planner(spec);
    for cell in &grid[range.lo..range.hi] {
        let seed = cell.cell_seed();
        if journaled.contains(&seed) || seg.lookup(seed).is_some() {
            continue;
        }
        if faults::check(faults::Site::WorkerKill).is_some() {
            // The kill -9 simulation: die hard, mid-shard, no cleanup.
            std::process::abort();
        }
        if faults::check(faults::Site::LeaseSteal).is_some() {
            // The stolen-lease simulation: our lease vanishes under us.
            finish_beat(&stop);
            let _ = beat_thread.join();
            let _ = std::fs::remove_file(&lease);
            return Err(format!("lease for shard {s} was stolen (injected)"));
        }
        let inst = instances.get(cell);
        let out = dispatch_cell(cell, &inst, spec, auto.as_ref(), timeout);
        seg.record(&CellRecord { cell_seed: seed, row: out.0, certificate: out.1 });
    }
    seg.sync();
    wire::write_framed(&done_path(workdir, s), &heartbeat_body(pid, 0))
        .map_err(|e| format!("cannot write done marker for shard {s}: {e}"))?;
    finish_beat(&stop);
    let _ = beat_thread.join();
    let _ = std::fs::remove_file(&lease);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_the_grid_contiguously() {
        for total in [0usize, 1, 2, 3, 7, 16, 100, 1000] {
            for workers in [1usize, 2, 4, 8] {
                let shards = plan_shards(total, workers);
                if total == 0 {
                    assert!(shards.is_empty());
                    continue;
                }
                assert!(!shards.is_empty());
                assert!(shards.len() <= total, "never more shards than cells");
                assert_eq!(shards.first().unwrap().lo, 0);
                assert_eq!(shards.last().unwrap().hi, total);
                for w in shards.windows(2) {
                    assert_eq!(w[0].hi, w[1].lo, "contiguous, no gaps or overlap");
                }
                for sh in &shards {
                    assert!(sh.lo < sh.hi, "no empty shard");
                }
            }
        }
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let shards = plan_shards(103, 4);
        let sizes: Vec<usize> = shards.iter().map(|s| s.hi - s.lo).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "shard sizes within one cell: {sizes:?}");
    }

    #[test]
    fn plan_file_round_trips() {
        let plan = ShardPlan {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            experiment: "e8".into(),
            total_cells: 42,
            shards: plan_shards(42, 2),
            main_journal: Some(PathBuf::from("/tmp/sweep.ckpt")),
            cell_timeout_ms: Some(1500),
            heartbeat_ms: 100,
        };
        assert_eq!(ShardPlan::from_bytes(&plan.to_bytes()), Some(plan.clone()));
        let bare = ShardPlan { main_journal: None, cell_timeout_ms: None, ..plan };
        assert_eq!(ShardPlan::from_bytes(&bare.to_bytes()), Some(bare));
        assert_eq!(ShardPlan::from_bytes(b"not json"), None);
        assert_eq!(ShardPlan::from_bytes(b"{\"kind\":\"other\"}"), None);
    }

    #[test]
    fn heartbeats_round_trip() {
        let body = heartbeat_body(4321, 17);
        assert_eq!(parse_heartbeat(&body), Some((4321, 17)));
        assert_eq!(parse_heartbeat(b"garbage"), None);
    }

    #[test]
    fn workdir_preparation_respects_resume() {
        let dir = std::env::temp_dir().join(format!("rvz-supervisor-prep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = ShardPlan {
            fingerprint: 7,
            experiment: "t".into(),
            total_cells: 8,
            shards: plan_shards(8, 1),
            main_journal: None,
            cell_timeout_ms: None,
            heartbeat_ms: 100,
        };
        prepare_workdir(&dir, &plan, false).unwrap();
        std::fs::write(seg_path(&dir, 0), b"segment").unwrap();
        std::fs::write(done_path(&dir, 0), b"done").unwrap();
        std::fs::write(lease_path(&dir, 1), b"lease").unwrap();
        // Resume with the same plan: segments/done survive, leases never do.
        prepare_workdir(&dir, &plan, true).unwrap();
        assert!(seg_path(&dir, 0).exists());
        assert!(done_path(&dir, 0).exists());
        assert!(!lease_path(&dir, 1).exists());
        // A changed plan (different fingerprint) clears everything.
        let other = ShardPlan { fingerprint: 8, ..plan };
        prepare_workdir(&dir, &other, true).unwrap();
        assert!(!seg_path(&dir, 0).exists());
        assert!(!done_path(&dir, 0).exists());
        // A fresh (non-resume) run clears even a matching plan's segments.
        std::fs::write(seg_path(&dir, 0), b"segment").unwrap();
        prepare_workdir(&dir, &other, false).unwrap();
        assert!(!seg_path(&dir, 0).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
