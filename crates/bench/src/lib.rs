//! # rvz-bench
//!
//! The experiment harness: one module per paper artifact (see README.md
//! for the run guide), each producing typed rows plus a rendered table.
//! The `experiments` binary drives them; the criterion benches under
//! `benches/` time the heavy kernels.
//!
//! | module | regenerates |
//! |---|---|
//! | [`e1`] | Theorem 3.1 / Fig. 1 — arbitrary-delay adversary |
//! | [`e2`] | Theorem 4.1 — simultaneous-start upper bound |
//! | [`e3`] | Lemma 4.1 — `prime` on paths |
//! | [`e4`] | Theorem 4.2 — simultaneous-start adversary |
//! | [`e5`] | Theorem 4.3 — side-tree pigeonhole |
//! | [`e6`] | §1.1 title claim — the exponential gap series |
//! | [`e7`] | Figure 2 machinery — Claims 4.2/4.3, Lemma 4.2 |
//! | [`e8`] | ablation study — which Stage-2 pieces are load-bearing |
//! | [`e9`] | exhaustive certification — all free trees ≤ n, exact decider |
//! | [`e10`] | activation schedules — per-round delay faults, certified |
//! | [`e11`] | 3-agent gathering — the crash rescue inverted, certified |
//!
//! [`sweep`] is the parallel batch engine: it grids any of E1–E11 over
//! family × size × delay/schedule × variant and fans the cells across
//! threads with deterministic per-cell seeding
//! (`experiments --experiment <id>`, `--agents k` for k-agent
//! gathering). Three executors share the grid:
//! trace replay (default), dyn stepping, and the exact decider
//! (`--executor decide`, budget-free verdicts with lasso certificates).
//! See `docs/executors.md` for the executor guide and `docs/schemas.md`
//! for the JSON row/certificate schemas.
//!
//! ```
//! use rvz_bench::sweep::{preset, run, Executor};
//!
//! // A tiny e9 slice: every free tree on ≤ 5 nodes, every ordered
//! // feasible pair, exactly decided — zero budget-timeout cells by
//! // construction, every verdict carried by a re-verified certificate.
//! let mut spec = preset("e9", &[3, 4, 5], 1, 9).expect("e9 preset");
//! spec.executor = Executor::ExactDecide;
//! let report = run(&spec);
//! assert!(!report.rows.is_empty());
//! assert!(report.rows.iter().all(|row| row.certified));
//! ```

mod batch_cache;
mod cache_cap;
pub mod checkpoint;
pub mod cli;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod faults;
pub mod instances;
pub mod planner;
mod solo_cache;
pub mod stats;
pub mod stores;
pub mod supervisor;
pub mod sweep;
pub mod table;
mod trace_cache;
pub mod wire;

pub use sweep::{Executor, SweepRow, SweepSpec};
pub use table::Table;
