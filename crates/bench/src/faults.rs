//! Feature-gated fail points for the crash-safety layer.
//!
//! With the `rvz-faults` cargo feature enabled, the environment variable
//! `RVZ_FAULTS` selects faults to inject at named sites inside the
//! persistence code paths:
//!
//! ```text
//! RVZ_FAULTS=site=action@N[,site=action@N...]
//! ```
//!
//! `site` is one of the [`Site`] names (`journal-append`, `store-flush`,
//! `cache-load`, `worker-kill`, `heartbeat-drop`, `lease-steal`),
//! `action` is `abort`, `short-write`, `enospc` or
//! `bit-flip`, and `N` means "trigger on the N-th hit of that site"
//! (1-based; every hit counts down one). Example — kill the process while
//! appending the 40th journal record:
//!
//! ```text
//! RVZ_FAULTS=journal-append=abort@40
//! ```
//!
//! Without the feature, [`check`] compiles to a constant `None` and the
//! whole module costs nothing — production binaries cannot be
//! fault-injected. The kill-resume integration test
//! (`crates/bench/tests/crash_resume.rs`) and the CI `crash-resume` job
//! drive sweeps through these sites and assert the resumed output is
//! byte-identical to an uninterrupted run.

/// Named injection sites in the persistence layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// One checkpoint-journal record append ([`crate::checkpoint`]).
    JournalAppend,
    /// One persistent-store snapshot flush (trace or solo store).
    StoreFlush,
    /// One persistent-store file load.
    CacheLoad,
    /// One worker-process cell execution ([`crate::supervisor`]): the
    /// worker dies hard (`abort`) before running the cell — the kill -9
    /// simulation of the supervision tests.
    WorkerKill,
    /// One worker heartbeat tick: the worker's heartbeat thread goes
    /// silent (stops rewriting its lease) while the worker itself keeps
    /// running — the "wedged worker" the heartbeat timeout must catch.
    HeartbeatDrop,
    /// One worker shard claim: the worker deletes its own lease file
    /// mid-shard and exits, simulating an external lease steal /
    /// clobbered workdir.
    LeaseSteal,
}

impl Site {
    pub fn name(self) -> &'static str {
        match self {
            Site::JournalAppend => "journal-append",
            Site::StoreFlush => "store-flush",
            Site::CacheLoad => "cache-load",
            Site::WorkerKill => "worker-kill",
            Site::HeartbeatDrop => "heartbeat-drop",
            Site::LeaseSteal => "lease-steal",
        }
    }
}

/// What to do when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `std::process::abort()` before the write — a hard kill.
    Abort,
    /// Write only a prefix of the pending bytes, then abort — a torn write.
    ShortWrite,
    /// Fail the operation with an `ENOSPC`-style I/O error and continue.
    Enospc,
    /// Flip one bit in the pending buffer and continue — silent media
    /// corruption, to be caught by the checksums on the next load.
    BitFlip,
}

/// The fault scheduled for this hit of `site`, if any. Hits count down the
/// configured trigger; the fault fires exactly once. Always `None` when the
/// `rvz-faults` feature is off.
pub fn check(site: Site) -> Option<Action> {
    #[cfg(feature = "rvz-faults")]
    {
        imp::check(site)
    }
    #[cfg(not(feature = "rvz-faults"))]
    {
        let _ = site;
        None
    }
}

#[cfg(feature = "rvz-faults")]
mod imp {
    use super::{Action, Site};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    struct Plan {
        site: Site,
        action: Action,
        /// Remaining hits before the fault fires (fires when this reaches 0).
        countdown: AtomicU64,
    }

    static PLANS: OnceLock<Vec<Plan>> = OnceLock::new();

    fn parse(env: &str) -> Vec<Plan> {
        let mut plans = Vec::new();
        for part in env.split(',').filter(|p| !p.trim().is_empty()) {
            let Some((site, rest)) = part.trim().split_once('=') else {
                panic!("RVZ_FAULTS: `{part}` is not site=action@N");
            };
            let (action, count) = match rest.split_once('@') {
                Some((a, n)) => {
                    let n: u64 = n
                        .parse()
                        .unwrap_or_else(|_| panic!("RVZ_FAULTS: bad hit count `{n}` in `{part}`"));
                    assert!(n >= 1, "RVZ_FAULTS: hit counts are 1-based (`{part}`)");
                    (a, n)
                }
                None => (rest, 1),
            };
            let site = match site {
                "journal-append" => Site::JournalAppend,
                "store-flush" => Site::StoreFlush,
                "cache-load" => Site::CacheLoad,
                "worker-kill" => Site::WorkerKill,
                "heartbeat-drop" => Site::HeartbeatDrop,
                "lease-steal" => Site::LeaseSteal,
                other => panic!("RVZ_FAULTS: unknown site `{other}`"),
            };
            let action = match action {
                "abort" => Action::Abort,
                "short-write" => Action::ShortWrite,
                "enospc" => Action::Enospc,
                "bit-flip" => Action::BitFlip,
                other => panic!("RVZ_FAULTS: unknown action `{other}`"),
            };
            plans.push(Plan { site, action, countdown: AtomicU64::new(count) });
        }
        plans
    }

    pub(super) fn check(site: Site) -> Option<Action> {
        let plans = PLANS.get_or_init(|| match std::env::var("RVZ_FAULTS") {
            Ok(env) => parse(&env),
            Err(_) => Vec::new(),
        });
        for plan in plans.iter().filter(|p| p.site == site) {
            // Count down atomically; exactly one hit observes 1 → 0.
            let prev = plan
                .countdown
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| c.checked_sub(1))
                .unwrap_or(0);
            if prev == 1 {
                eprintln!("rvz-faults: injecting {:?} at {}", plan.action, site.name());
                return Some(plan.action);
            }
        }
        None
    }
}

/// Applies a scheduled write-path fault to `bytes` before they are handed
/// to the file layer. Returns how many of the bytes should actually be
/// written, or an injected I/O error; aborts the process for the kill
/// flavors ([`Action::Abort`] immediately, [`Action::ShortWrite`] after
/// instructing the caller to write half the buffer — the caller aborts
/// via [`finish_short_write`] once the torn prefix is on disk).
pub fn mangle_write(site: Site, bytes: &mut [u8]) -> std::io::Result<WriteFate> {
    match check(site) {
        None => Ok(WriteFate::Full),
        Some(Action::Abort) => std::process::abort(),
        Some(Action::ShortWrite) => Ok(WriteFate::Short(bytes.len() / 2)),
        Some(Action::Enospc) => Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "injected ENOSPC (rvz-faults)",
        )),
        Some(Action::BitFlip) => {
            if let Some(b) = bytes.last_mut() {
                *b ^= 0x01;
            }
            Ok(WriteFate::Full)
        }
    }
}

/// Outcome of [`mangle_write`]: write everything, or write a torn prefix
/// and then die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFate {
    Full,
    /// Write only this many bytes, flush, then call [`finish_short_write`].
    Short(usize),
}

/// Second half of a [`WriteFate::Short`]: the torn prefix is on disk, so
/// the "crash" happens now.
pub fn finish_short_write() -> ! {
    std::process::abort()
}

#[cfg(all(test, feature = "rvz-faults"))]
mod tests {
    use super::*;

    #[test]
    fn check_is_quiet_without_env() {
        // The test binary is built with the feature but no RVZ_FAULTS env:
        // every site must be a no-op.
        assert_eq!(check(Site::JournalAppend), None);
        assert_eq!(check(Site::StoreFlush), None);
        assert_eq!(check(Site::CacheLoad), None);
    }
}
