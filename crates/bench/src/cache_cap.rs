//! Env-tunable capacities for the in-process caches, mirroring the
//! supervisor's `RVZ_*` knob idiom: each cache reads its cap once per
//! process from an environment variable and falls back to the documented
//! default when the variable is unset or garbage. Knobs:
//!
//! * `RVZ_CACHE_CAP_TRACE` — [`crate::trace_cache`] store keys (default 1024)
//! * `RVZ_CACHE_CAP_SOLO` — [`crate::solo_cache`] store keys (default 2048)
//! * `RVZ_CACHE_CAP_BATCH` — [`crate::batch_cache`] group keys (default 4096)
//!
//! The caps bound *memory*, never results: every cache degrades to
//! recomputation when full, so shrinking a knob can only slow a run down.
//! Zero is rejected along with garbage (an empty cache would turn the
//! degraded paths into the common case silently; ask for a small cap
//! explicitly if that is what you want).

/// Parses `var` as a cache capacity: a positive integer, else `default`.
pub(crate) fn cache_cap(var: &str, default: usize) -> usize {
    parse_cap(std::env::var(var).ok().as_deref(), default)
}

/// The pure parser behind [`cache_cap`], testable without touching the
/// process environment.
pub(crate) fn parse_cap(value: Option<&str>, default: usize) -> usize {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_caps_override_the_default() {
        assert_eq!(parse_cap(Some("17"), 1024), 17);
        assert_eq!(parse_cap(Some(" 64 "), 1024), 64);
    }

    #[test]
    fn garbage_zero_and_unset_fall_back_to_the_default() {
        assert_eq!(parse_cap(None, 1024), 1024);
        assert_eq!(parse_cap(Some(""), 1024), 1024);
        assert_eq!(parse_cap(Some("lots"), 1024), 1024);
        assert_eq!(parse_cap(Some("-5"), 1024), 1024);
        assert_eq!(parse_cap(Some("1.5"), 1024), 1024);
        assert_eq!(parse_cap(Some("0"), 1024), 1024, "an empty cache must be asked for in code");
    }

    #[test]
    fn the_env_reader_honors_a_set_variable() {
        // A var name no other test touches, to stay parallel-safe.
        std::env::set_var("RVZ_CACHE_CAP_TEST_ONLY", "33");
        assert_eq!(cache_cap("RVZ_CACHE_CAP_TEST_ONLY", 7), 33);
        std::env::remove_var("RVZ_CACHE_CAP_TEST_ONLY");
        assert_eq!(cache_cap("RVZ_CACHE_CAP_TEST_ONLY", 7), 7);
    }
}
