//! The process-wide trajectory store behind the sweep's trace-replay
//! executor.
//!
//! The paper's agents are deterministic and oblivious, so an agent's solo
//! trajectory is a pure function of `(family, n, tree_seed, start,
//! variant)` — that tuple is the store key (the ISSUE-level cache key
//! `(family, n, start, variant)`, plus the tree seed so differently-seeded
//! grids can never collide). Every `(delay, pair)` cell of a sweep then
//! replays recorded timelines (`rvz_sim::trace`) instead of stepping
//! agents: the delay column of a pair shares two recordings, reruns of the
//! same grid (benchmark repetitions, overlapping experiments) share all of
//! them, and recordings grow on demand — `replay_pair` reports how many
//! rounds it actually needed and [`VariantRecorder::record_to`] extends
//! the prefix in place, never re-stepping it.
//!
//! Bounds: a recording is never grown past [`MAX_RECORD_ROUNDS`] (cells
//! that stay undecided there fall back to the dyn-stepping path — in
//! practice only adversarial timeout cells with multi-billion-round
//! budgets and no fixed-point tail), and the store holds at most
//! [`MAX_STORE_KEYS`] trajectories (tunable via `RVZ_CACHE_CAP_TRACE`,
//! see [`crate::cache_cap`]). A full store evicts *per key*, and
//! only keys no worker currently holds (slot `Arc` strong count 1): the
//! old wholesale `clear()` could drop a slot another thread was
//! mid-extend on, so the extension work was lost and a second recorder
//! for the same key could be created and stepped concurrently — pure
//! waste (replay results are pure either way, so eviction can never
//! change a row, but it used to throw recordings away mid-use).

use crate::sweep::{Family, SweepInstance, Variant};
use rvz_agent::model::Agent;
use rvz_agent::OwnedFsaRunner;
use rvz_core::prime_path::PrimePathAgent;
use rvz_core::{DelayRobustAgent, TreeRendezvousAgent};
use rvz_sim::{TraceRecorder, Trajectory};
use rvz_trees::{NodeId, Tree};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Hard per-trajectory recording cap (rounds). At 16 bytes per RLE run
/// this bounds a worst-case (move-every-round) recording at ~128 MiB;
/// every workload in the perf grids decides orders of magnitude earlier
/// (stay-heavy schedules compress to a handful of runs per period).
pub(crate) const MAX_RECORD_ROUNDS: u64 = 1 << 23;

/// Default store capacity in trajectories; a full store evicts idle keys
/// only. Overridable via `RVZ_CACHE_CAP_TRACE` ([`crate::cache_cap`]).
const MAX_STORE_KEYS: usize = 1024;

/// The effective store capacity, read from the environment once.
fn store_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| crate::cache_cap::cache_cap("RVZ_CACHE_CAP_TRACE", MAX_STORE_KEYS))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StoreKey {
    family: Family,
    /// Requested grid size (with `tree_seed`, determines the exact tree).
    n: usize,
    tree_seed: u64,
    start: NodeId,
    variant: Variant,
}

/// A [`TraceRecorder`] over whichever concrete agent the variant runs,
/// recording the same memory meter the stepping executor reports
/// (measured bits for the procedural Theorem-4.1 / delay-robust agents,
/// trait-level bits for `prime` and the basic-walk automaton).
pub(crate) enum VariantRecorder {
    // Boxed: the procedural agents' recorders are hundreds of bytes; the
    // slot map should pay pointer-sized variants.
    TreeRvz(Box<TraceRecorder<TreeRendezvousAgent>>),
    DelayRobust(Box<TraceRecorder<DelayRobustAgent>>),
    PrimePath(Box<TraceRecorder<PrimePathAgent>>),
    BwFsa(Box<TraceRecorder<OwnedFsaRunner>>),
    /// A trajectory restored from the persistent store
    /// ([`crate::stores`]): the recorded prefix without its recorder (the
    /// agent's live state is not persisted). Replays within the restored
    /// horizon never step an agent; the first extension rebuilds the
    /// concrete recorder and re-steps from scratch — determinism makes
    /// the re-recorded prefix identical, and the restored prefix is never
    /// spliced with fresh stepping.
    Restored {
        variant: Variant,
        start: NodeId,
        traj: Trajectory,
    },
}

impl VariantRecorder {
    fn new(variant: Variant, start: NodeId, inst: &SweepInstance) -> Self {
        if variant == Variant::BasicWalkFsa {
            // Reuse the instance's cached automaton table.
            return VariantRecorder::BwFsa(Box::new(TraceRecorder::new(
                start,
                inst.basic_walk_fsa().runner_owned(),
                |a| a.memory_bits(),
            )));
        }
        VariantRecorder::rebuild(variant, start, &inst.tree)
    }

    /// A fresh, parked recorder built from the tree alone — the restored
    /// path's constructor (no [`SweepInstance`] in scope at load time).
    /// Matches [`VariantRecorder::new`] exactly: the basic-walk automaton
    /// is a pure function of the tree's maximum degree.
    pub(crate) fn rebuild(variant: Variant, start: NodeId, t: &Tree) -> Self {
        match variant {
            Variant::TreeRvz => VariantRecorder::TreeRvz(Box::new(TraceRecorder::new(
                start,
                TreeRendezvousAgent::new(),
                TreeRendezvousAgent::memory_bits_measured,
            ))),
            Variant::DelayRobust => VariantRecorder::DelayRobust(Box::new(TraceRecorder::new(
                start,
                DelayRobustAgent::new(),
                DelayRobustAgent::memory_bits_measured,
            ))),
            Variant::PrimePath => VariantRecorder::PrimePath(Box::new(TraceRecorder::new(
                start,
                PrimePathAgent::unbounded(),
                |a| a.memory_bits(),
            ))),
            Variant::BasicWalkFsa => VariantRecorder::BwFsa(Box::new(TraceRecorder::new(
                start,
                rvz_agent::Fsa::basic_walk(t.max_degree().max(1)).runner_owned(),
                |a| a.memory_bits(),
            ))),
        }
    }

    pub(crate) fn trajectory(&self) -> &Trajectory {
        match self {
            VariantRecorder::TreeRvz(r) => r.trajectory(),
            VariantRecorder::DelayRobust(r) => r.trajectory(),
            VariantRecorder::PrimePath(r) => r.trajectory(),
            VariantRecorder::BwFsa(r) => r.trajectory(),
            VariantRecorder::Restored { traj, .. } => traj,
        }
    }

    pub(crate) fn record_to(&mut self, t: &Tree, rounds: u64) {
        match self {
            VariantRecorder::TreeRvz(r) => r.record_to(t, rounds),
            VariantRecorder::DelayRobust(r) => r.record_to(t, rounds),
            VariantRecorder::PrimePath(r) => r.record_to(t, rounds),
            VariantRecorder::BwFsa(r) => r.record_to(t, rounds),
            VariantRecorder::Restored { variant, start, traj } => {
                // No live recorder to extend: re-step from scratch to at
                // least the restored horizon, then swap wholesale.
                let target = rounds.max(traj.rounds());
                let mut fresh = VariantRecorder::rebuild(*variant, *start, t);
                fresh.record_to(t, target);
                *self = fresh;
            }
        }
    }
}

/// A shared, lockable recorder slot.
pub(crate) type Slot = Arc<Mutex<VariantRecorder>>;

static STORE: OnceLock<Mutex<HashMap<StoreKey, Slot>>> = OnceLock::new();

/// The store slot for `(family, n, tree_seed, start, variant)`, creating a
/// fresh recorder (parked, nothing stepped) on first use.
pub(crate) fn slot(
    inst: &SweepInstance,
    family: Family,
    n: usize,
    variant: Variant,
    start: NodeId,
) -> Slot {
    let key = StoreKey { family, n, tree_seed: inst.tree_seed, start, variant };
    let mut map = STORE.get_or_init(Mutex::default).lock().expect("trace store lock");
    let cap = store_cap();
    if map.len() >= cap && !map.contains_key(&key) {
        // Per-key eviction: drop only idle recordings (strong count 1 ⇒
        // the map holds the sole reference, no worker is extending it),
        // oldest-irrelevant — just enough to admit the new key. In-use
        // slots are never dropped, so a held `Arc` keeps naming the
        // stored recording and extensions are never silently orphaned.
        let need = map.len() + 1 - cap;
        let idle: Vec<StoreKey> = map
            .iter()
            .filter(|(_, slot)| Arc::strong_count(slot) == 1)
            .map(|(k, _)| *k)
            .take(need)
            .collect();
        for k in idle {
            map.remove(&k);
        }
        // If every slot is in use the store briefly exceeds the cap;
        // admitting the key is strictly better than duplicating work.
    }
    map.entry(key)
        .or_insert_with(|| Arc::new(Mutex::new(VariantRecorder::new(variant, start, inst))))
        .clone()
}

/// Snapshots the store for persistence: every nonempty recording as
/// `(family, n, tree_seed, start, variant, trajectory bytes)`, in
/// canonical key order (so a save produces byte-identical files across
/// runs with equal contents). Slots currently locked by a worker are
/// skipped — a snapshot never blocks the sweep.
pub(crate) fn export() -> Vec<(Family, usize, u64, NodeId, Variant, Vec<u8>)> {
    let map = STORE.get_or_init(Mutex::default).lock().expect("trace store lock");
    let mut out: Vec<_> = map
        .iter()
        .filter_map(|(k, slot)| {
            // A slot poisoned by a cancelled (unwound) attempt still holds
            // a consistent recording prefix — checkpoints sit at round
            // boundaries — so it is exported like any other.
            let guard = match slot.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => return None,
            };
            let traj = guard.trajectory();
            if traj.rounds() == 0 {
                return None;
            }
            Some((k.family, k.n, k.tree_seed, k.start, k.variant, traj.to_bytes()))
        })
        .collect();
    out.sort_by(|a, b| {
        (a.0.name(), a.1, a.2, a.3, a.4.name()).cmp(&(b.0.name(), b.1, b.2, b.3, b.4.name()))
    });
    out
}

/// Installs a restored recording under its key. `false` (not installed)
/// when the key is already live — a fresh recorder always outranks a
/// restored prefix — or the store is at capacity.
pub(crate) fn install_restored(
    family: Family,
    n: usize,
    tree_seed: u64,
    start: NodeId,
    variant: Variant,
    traj: Trajectory,
) -> bool {
    let key = StoreKey { family, n, tree_seed, start, variant };
    let mut map = STORE.get_or_init(Mutex::default).lock().expect("trace store lock");
    if map.len() >= store_cap() || map.contains_key(&key) {
        return false;
    }
    map.insert(key, Arc::new(Mutex::new(VariantRecorder::Restored { variant, start, traj })));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Cell, Delay};
    use std::sync::Arc;

    fn enum_cell(n: usize, index: u64) -> Cell {
        Cell {
            experiment: Arc::from("cache-test"),
            family: Family::EnumFree,
            n,
            delay: Delay::Zero,
            variant: Variant::BasicWalkFsa,
            pair_index: 0,
            pairs_total: 1,
            base_seed: 0xE7,
            tree_index: Some(index),
            agents: 2,
        }
    }

    #[test]
    fn eviction_is_per_key_and_never_drops_held_slots() {
        // Hold one slot's Arc, then insert enough fresh keys to overflow
        // the store (n = 10 and n = 9 enumerated trees × all starts is
        // ~1500 distinct keys > MAX_STORE_KEYS). The held key must keep
        // resolving to the *same* recorder (pointer-identical), and the
        // extension made through the held Arc must be visible on re-lookup
        // — the regression the wholesale `clear()` used to cause.
        let held_inst = SweepInstance::for_cell(&enum_cell(6, 0));
        let held = slot(&held_inst, Family::EnumFree, 6, Variant::BasicWalkFsa, 0);
        held.lock().unwrap().record_to(&held_inst.tree, 32);
        assert!(held.lock().unwrap().trajectory().rounds() >= 32);

        for n in [10usize, 9] {
            for index in 0..rvz_trees::enumerate::free_tree_count(n) {
                let inst = SweepInstance::for_cell(&enum_cell(n, index));
                for start in 0..inst.tree.num_nodes() as NodeId {
                    let _ = slot(&inst, Family::EnumFree, n, Variant::BasicWalkFsa, start);
                }
            }
        }

        let again = slot(&held_inst, Family::EnumFree, 6, Variant::BasicWalkFsa, 0);
        assert!(Arc::ptr_eq(&held, &again), "held slot must survive eviction pressure");
        assert!(again.lock().unwrap().trajectory().rounds() >= 32, "extension must be kept");
    }
}
