//! The Theorem 3.1 adversary: for *any* `K`-state automaton, a
//! 2-edge-colored line of length `O(K)` = `O(2^k)` (plus a start delay θ)
//! on which two copies never meet, from non-perfectly-symmetrizable
//! starts. Hence rendezvous with arbitrary delay needs `Ω(log n)` bits on
//! the line of length `n` — the lower half of the paper's exponential gap.
//!
//! Construction (Fig. 1): run the automaton on the infinite colored line.
//! *Bounded* automata are defeated by disjoint activity ranges on a line
//! with a central node. *Drifting* automata repeat a state `s` at two
//! same-parity positions `x1 ≠ x2` (rounds `t1 < t2`): place one copy at
//! `u` in the left half of a mirror-labeled line, the other at
//! `v = mirror(x1) + (x2 − x1) + (x1 − u)` in the right half, and delay the
//! `u`-copy by `θ = t2 − t1`. At global round `t2` the two copies stand at
//! mirror positions in the same state, and mirror dynamics keep them apart
//! forever; before `t2` they never left their halves.

use crate::infinite_line::{classify, envelope, Activation, LineBehavior};
use rvz_agent::line_fsa::LineFsa;
use rvz_sim::{run_pair, Outcome, PairConfig};
use rvz_trees::generators::colored_line;
use rvz_trees::{NodeId, Tree};

/// A verified adversarial instance.
#[derive(Debug, Clone)]
pub struct Attack {
    /// The 2-edge-colored line.
    pub line: Tree,
    /// Start of the first (undelayed) copy.
    pub start_a: NodeId,
    /// Start of the second copy, delayed by `theta`.
    pub start_b: NodeId,
    /// The adversary's delay θ.
    pub theta: u64,
    /// Which branch of the construction produced the instance.
    pub kind: AttackKind,
    /// The horizon over which non-meeting was verified by simulation.
    pub verified_rounds: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Disjoint activity ranges (automaton bounded within distance `d`).
    BoundedRange { d: i64 },
    /// The mirror construction of Fig. 1.
    Mirror { x1: i64, x2: i64, t1: u64, t2: u64 },
}

/// Errors (none expected for valid automata; simulation verification is
/// asserted inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The automaton met anyway — would disprove Theorem 3.1; kept as an
    /// error (rather than a panic) so property tests can surface it.
    MeetingHappened { round: u64 },
}

/// The disjoint-ranges instance for an automaton whose infinite-line
/// trajectory stays within distance `d` of its start: a line with `4d + 4`
/// edges (central NODE — nothing is perfectly symmetrizable), copies at
/// distance `2d + 1`, delay 0.
fn bounded_attack(d: i64) -> (Tree, NodeId, NodeId, u64) {
    let edges = (4 * d + 4) as usize;
    let line = colored_line(edges + 1, 0);
    let u = (d + 1) as NodeId;
    let v = (3 * d + 2) as NodeId;
    (line, u, v, 0)
}

/// The mirror instance from a drift witness, given the trajectory envelope
/// `(lo, hi)` over rounds `[0, t2]`.
fn mirror_attack(
    first: &Activation,
    second: &Activation,
    env: (i64, i64),
) -> (Tree, NodeId, NodeId, u64) {
    let (o1, o2) = (first.pos, second.pos);
    let (t1, t2) = (first.round, second.round);
    let (lo, hi) = env;
    debug_assert_eq!(first.state, second.state);
    debug_assert_eq!(o1.rem_euclid(2), o2.rem_euclid(2), "witness positions share parity");
    debug_assert!(o1 != o2);
    // Half-length c and agent position u subject to (DESIGN/Thm 3.1):
    //   u + lo ≥ 1,  u + hi ≤ c                     (left copy stays left)
    //   v − hi ≥ c+1, v − lo ≤ 2c                   (right copy stays right)
    // with v = (2c + 1) − u − o1 + o2, plus the parity alignment
    // (u + c) ≡ 0 (mod 2) so the left copy sees start parity 0.
    for extra in 0.. {
        let c = hi - lo + (o1 - o2).abs() + 6 + extra;
        let u_min = (1 - lo) + 0.max(-(o1 - o2));
        let u_max = (c - hi) - 0.max(o1 - o2);
        for u in u_min..=u_max {
            if (u + c).rem_euclid(2) != 0 {
                continue;
            }
            let l = 2 * c + 1;
            let v = l - u - o1 + o2;
            if u < 1 || u + lo < 1 || u + hi > c || v - hi < c + 1 || v - lo > l - 1 {
                continue;
            }
            let line = colored_line((l + 1) as usize, (c % 2) as usize);
            return (line, u as NodeId, v as NodeId, t2 - t1);
        }
    }
    unreachable!("layout search terminates: the constraint box is nonempty for large c")
}

/// Builds and *verifies* the Theorem 3.1 instance for `fsa`. The returned
/// attack has been simulated for a horizon covering the transient plus many
/// mirror periods without a meeting.
pub fn delay_attack(fsa: &LineFsa) -> Result<Attack, AttackError> {
    let k = fsa.num_states() as u64;
    let (line, a, b, theta, kind) = match classify(fsa, 0) {
        LineBehavior::Bounded { min_pos, max_pos } => {
            let d = max_pos.abs().max(min_pos.abs());
            let (line, u, v, theta) = bounded_attack(d);
            (line, u, v, theta, AttackKind::BoundedRange { d })
        }
        LineBehavior::Drifts { first, second } => {
            let env = envelope(fsa, 0, second.round);
            let (line, u, v, theta) = mirror_attack(&first, &second, env);
            (
                line,
                v, // undelayed copy = the right-half agent
                u, // delayed copy = the left-half agent
                theta,
                AttackKind::Mirror {
                    x1: first.pos,
                    x2: second.pos,
                    t1: first.round,
                    t2: second.round,
                },
            )
        }
    };
    // Positions must be a *feasible* rendezvous instance (otherwise failing
    // is no feat): never perfectly symmetrizable by construction.
    assert!(!rvz_trees::perfectly_symmetrizable(&line, a, b), "attack instance must be feasible");
    let n = line.num_nodes() as u64;
    let horizon = theta + 8 * k * n + 50_000;
    let mut agent_a = fsa.runner();
    let mut agent_b = fsa.runner();
    let run =
        run_pair(&line, a, b, &mut agent_a, &mut agent_b, PairConfig::delayed(theta, horizon));
    match run.outcome {
        Outcome::Met { round, .. } => Err(AttackError::MeetingHappened { round }),
        Outcome::Timeout { rounds } => {
            Ok(Attack { line, start_a: a, start_b: b, theta, kind, verified_rounds: rounds })
        }
    }
}

/// Convenience: the length (in edges) of the attack line — the `n` for
/// which the automaton's `k` bits are shown insufficient.
impl Attack {
    pub fn line_edges(&self) -> usize {
        self.line.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defeats_the_shuttle() {
        let fsa = LineFsa::shuttle();
        let attack = delay_attack(&fsa).expect("shuttle must be defeated");
        assert!(matches!(attack.kind, AttackKind::Mirror { .. }));
        // The shuttle drifts one edge per round: tiny witnesses, short line.
        assert!(attack.line_edges() <= 8 * (2 + 1) + 1 + 16);
    }

    #[test]
    fn defeats_sitters_and_oscillators() {
        let sitter = LineFsa::from_rows(vec![[0, 0]], vec![-1], 0);
        let attack = delay_attack(&sitter).unwrap();
        assert!(matches!(attack.kind, AttackKind::BoundedRange { d: 0 }));
        assert_eq!(attack.line_edges(), 4);

        let osc = LineFsa::from_rows(vec![[0, 0]], vec![0], 0);
        let attack = delay_attack(&osc).unwrap();
        assert!(matches!(attack.kind, AttackKind::BoundedRange { .. }));
    }

    #[test]
    fn defeats_random_automata() {
        let mut rng = StdRng::seed_from_u64(31337);
        let mut mirrors = 0;
        for k in 1..=6usize {
            for _ in 0..40 {
                let fsa = LineFsa::random(k, 0.25, &mut rng);
                let attack = delay_attack(&fsa)
                    .unwrap_or_else(|e| panic!("K={k}: {e:?} disproves Thm 3.1?!"));
                if matches!(attack.kind, AttackKind::Mirror { .. }) {
                    mirrors += 1;
                }
            }
        }
        assert!(mirrors > 0, "some random automata must drift");
    }

    #[test]
    fn line_length_is_linear_in_states() {
        // Theorem 3.1's quantitative content: the defeating line has
        // O(K) = O(2^k) edges.
        let mut rng = StdRng::seed_from_u64(99);
        for k in [2usize, 4, 8, 16] {
            for _ in 0..20 {
                let fsa = LineFsa::random(k, 0.2, &mut rng);
                let attack = delay_attack(&fsa).unwrap();
                assert!(
                    attack.line_edges() as u64 <= 40 * (k as u64 + 2),
                    "K={k}: line has {} edges",
                    attack.line_edges()
                );
            }
        }
    }

    #[test]
    fn mirror_attack_places_same_state_same_parity() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let fsa = LineFsa::random(5, 0.3, &mut rng);
            if let Ok(attack) = delay_attack(&fsa) {
                if let AttackKind::Mirror { x1, x2, t1, t2 } = attack.kind {
                    assert_ne!(x1, x2);
                    assert!(t1 < t2);
                    assert_eq!(x1.rem_euclid(2), x2.rem_euclid(2));
                    assert_eq!(attack.theta, t2 - t1);
                }
            }
        }
    }
}
