//! Exhaustive completeness sweeps: the theorems quantify over **all**
//! automata, so for small state counts we enumerate the entire automaton
//! space and verify that the adversaries defeat every single one.
//!
//! For `K` states the `LineFsa` space has `K^(2K) · 3^K · K` members
//! (transitions × outputs over `{-1, 0, 1}` × initial state): 6 automata
//! for `K = 1`, 4608 for `K = 2` — both fully enumerable in tests.

use rvz_agent::line_fsa::{LineFsa, StateId};

/// Iterator over every `K`-state line automaton with outputs in `{-1,0,1}`.
/// (Outputs beyond 1 are redundant on lines: ports are taken mod `d ≤ 2`.)
pub fn all_line_fsas(k: usize) -> impl Iterator<Item = LineFsa> {
    assert!((1..=3).contains(&k), "exhaustive enumeration is for tiny K");
    let delta_combos = (k as u64).pow(2 * k as u32);
    let lambda_combos = 3u64.pow(k as u32);
    let total = delta_combos * lambda_combos * k as u64;
    (0..total).map(move |mut code| {
        let s0 = (code % k as u64) as StateId;
        code /= k as u64;
        let mut lambda = Vec::with_capacity(k);
        for _ in 0..k {
            lambda.push((code % 3) as i64 - 1); // {-1, 0, 1}
            code /= 3;
        }
        let mut delta = Vec::with_capacity(k);
        for _ in 0..k {
            let a = (code % k as u64) as StateId;
            code /= k as u64;
            let b = (code % k as u64) as StateId;
            code /= k as u64;
            delta.push([a, b]);
        }
        LineFsa::from_rows(delta, lambda, s0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay_attack::delay_attack;
    use crate::sync_attack::{sync_attack, SyncAttackError};

    #[test]
    fn enumeration_counts() {
        assert_eq!(all_line_fsas(1).count(), 3); // 1 delta · 3 lambda · 1 s0
        assert_eq!(all_line_fsas(2).count(), 16 * 9 * 2);
        for fsa in all_line_fsas(2) {
            assert!(fsa.validate());
        }
    }

    #[test]
    fn theorem_3_1_defeats_every_1_and_2_state_automaton() {
        let mut total = 0;
        for k in 1..=2usize {
            for fsa in all_line_fsas(k) {
                delay_attack(&fsa)
                    .unwrap_or_else(|e| panic!("K={k} automaton {fsa:?} beat Thm 3.1: {e:?}"));
                total += 1;
            }
        }
        assert_eq!(total, 3 + 288);
    }

    #[test]
    fn theorem_4_2_defeats_every_1_and_2_state_automaton() {
        // γ ≤ 2 for K ≤ 2, so no size skips are possible.
        for k in 1..=2usize {
            for fsa in all_line_fsas(k) {
                match sync_attack(&fsa, 64) {
                    Ok(_) => {}
                    Err(SyncAttackError::TooLarge { gamma }) => {
                        panic!("K={k}: γ={gamma} cannot exceed 2")
                    }
                    Err(e) => panic!("K={k} automaton {fsa:?} beat Thm 4.2: {e:?}"),
                }
            }
        }
    }

    #[test]
    fn sampled_3_state_sweep() {
        // The 3-state space has 3^6·27·3 = 59049 members; verify a strided
        // sample exhaustively-ish (every 97th automaton).
        let mut checked = 0;
        for (i, fsa) in all_line_fsas(3).enumerate() {
            if i % 97 != 0 {
                continue;
            }
            delay_attack(&fsa).unwrap_or_else(|e| panic!("{fsa:?} beat Thm 3.1: {e:?}"));
            match sync_attack(&fsa, 1 << 12) {
                Ok(_) | Err(SyncAttackError::TooLarge { .. }) => {}
                Err(e) => panic!("{fsa:?} beat Thm 4.2: {e:?}"),
            }
            checked += 1;
        }
        assert!(checked >= 600, "checked only {checked}");
    }
}
