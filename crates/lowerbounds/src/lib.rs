//! # rvz-lowerbounds
//!
//! Constructive lower-bound adversaries for Fraigniaud & Pelc (SPAA 2010).
//! Each theorem's proof is, operationally, an algorithm mapping an arbitrary
//! automaton to an instance it fails on; this crate implements those
//! algorithms and *verifies the failure by simulation* (plus verifies that
//! the instance is feasible, i.e. not perfectly symmetrizable — so the
//! failure is the automaton's fault, not the instance's):
//!
//! * [`mod@delay_attack`] — Theorem 3.1 / Fig. 1: an arbitrary-delay adversary
//!   defeating any `K`-state agent on a line of length `O(K)`
//!   ⇒ `Ω(log n)` bits with arbitrary delay;
//! * [`mod@sync_attack`] — Theorem 4.2: a *simultaneous-start* adversary on
//!   lines of length `O(K^K)` ⇒ `Ω(log log n)` bits with delay zero;
//! * [`side_trees`] — Theorem 4.3: the behavior-function pigeonhole on
//!   two-sided trees with `ℓ = 2i` leaves ⇒ `Ω(log ℓ)` bits, max degree 3;
//! * [`infinite_line`] — the shared infinite-colored-line analysis
//!   (boundedness vs drift classification, trajectory envelopes);
//! * [`mod@decide`] — the exact rendezvous decider over the joint
//!   configuration graph: budget-free `Meets`/`NeverMeets` verdicts with
//!   lasso certificates, the ∀-delay quantifier
//!   [`decide::worst_case_delay`], and the activation-schedule extension
//!   ([`decide::decide_pair_scheduled`] — the product configuration grows
//!   the schedule's cycle position; [`decide::worst_case_schedule`]
//!   quantifies over a schedule class).
//!
//! Combined with [`rvz_agent::compile`], the Theorem 3.1 adversary can be
//! pointed at *our own* (capped) upper-bound agents — the end-to-end
//! demonstration of the title's exponential gap.
//!
//! ```
//! use rvz_agent::Fsa;
//! use rvz_lowerbounds::{decide_pair, verify_lasso};
//! use rvz_trees::generators::line;
//!
//! // The 0-bit basic walk meets the leaf pair of an odd line at delay 0,
//! // but a single round of delay flips the distance parity for good — and
//! // the decider *proves* it with a checkable lasso, no round budget.
//! let t = line(5);
//! let fsa = Fsa::basic_walk(2);
//! assert!(decide_pair(&t, &fsa, 0, 4, 0).met());
//! let defeated = decide_pair(&t, &fsa, 0, 4, 1);
//! let lasso = defeated.lasso().expect("certified never-meets");
//! assert!(verify_lasso(&t, &fsa, 0, 4, 1, lasso));
//! ```

pub mod decide;
pub mod delay_attack;
pub mod exhaustive;
pub mod infinite_line;
pub mod side_trees;
pub mod sync_attack;

pub use decide::{
    decide_cost_bound, decide_ensemble, decide_ensemble_from_lassos, decide_pair,
    decide_pair_scheduled, ensemble_decide_cost_bound, verify_ensemble_lasso, verify_lasso,
    verify_schedule_lasso, worst_case_delay, worst_case_schedule, Decision, EnsembleDecision,
    EnsembleLasso, EnsembleVerdict, Lasso, ScheduleDecision, ScheduleLasso, ScheduleVerdict,
    ScheduleWorstCase, Verdict, WorstCase,
};
pub use delay_attack::{delay_attack, Attack, AttackError, AttackKind};
pub use side_trees::{side_tree_attack, SideTreeAttack, SideTreeError};
pub use sync_attack::{analyze_pi_prime, sync_attack, SyncAttack, SyncAttackError};
