//! The Theorem 4.3 adversary: for infinitely many `ℓ`, arbitrarily large
//! max-degree-3 trees with `ℓ` leaves on which any automaton with
//! `k ≤ (log ℓ)/3` bits fails *with simultaneous start* — hence
//! `Ω(log ℓ)` bits are necessary.
//!
//! Construction (§4.3): a **side tree** is an `(i+1)`-node spine with a
//! distinguished root endpoint; each of the `i−1` internal spine nodes
//! carries either a pendant leaf or a pendant 2-chain — `2^{i−1}`
//! non-isomorphic side trees. A **two-sided tree** joins two side-tree
//! roots by a path with `m` (even) internal degree-2 nodes, mirror-symmetric
//! port labeling. The agents start at `u`/`v`, the path nodes adjacent to
//! the roots.
//!
//! The *behavior function* of a side tree maps each state `s` (in which an
//! agent enters the side tree) to the state in which it re-emerges and the
//! tour's duration. With `K` states and tours shorter than `D < K·3i`,
//! there are at most `(KD)^K` behavior functions — fewer than `2^{i−1}`
//! side trees once `k ≤ (1/3)·log ℓ` (`ℓ = 2i` leaves; the paper's `ℓ = 2^i`
//! is a typo, its own counting uses `2^{ℓ/2−1}` side trees). Two side trees
//! `T1 ≠ T2` with equal behavior functions defeat the agents: on the
//! `T1–T2` instance the agents enter and leave their side trees always at
//! the same times in the same states, so the odd-length symmetric joining
//! path keeps them apart exactly as on the infeasible `T1–T1` instance.

use rvz_agent::fsa::{Fsa, FsaRunner};
use rvz_agent::line_fsa::StateId;
use rvz_agent::model::{Action, Agent, Obs};
use rvz_sim::{run_pair, Outcome, PairConfig};
use rvz_trees::tree::{Edge, NodeId, Port, Tree};

/// A side tree: the tree itself plus its distinguished nodes.
#[derive(Debug, Clone)]
pub struct SideTree {
    pub tree: Tree,
    /// The root (spine endpoint that will attach to the joining path).
    pub root: NodeId,
    /// The root's port reserved for the joining path (always the last
    /// port, by convention).
    pub attach_port: Port,
    /// The decoration bits that produced it.
    pub bits: Vec<bool>,
}

/// Builds the side tree for a bit vector (`bits.len() = i − 1` decorations
/// of the internal spine nodes; `false` = pendant leaf, `true` = pendant
/// 2-chain). Node 0 is the root; the spine is `0 − 1 − … − i`.
///
/// Port convention (fixed, identical for every side tree): spine node `j`
/// uses port 0 towards the root side, port 1 away; decorated nodes use
/// port 2 for their pendant. The root uses port 0 towards the spine and
/// port 1 for the future joining edge.
pub fn side_tree(bits: &[bool]) -> SideTree {
    let i = bits.len() + 1;
    assert!(i >= 2, "spine needs at least one internal node");
    let spine = i + 1; // nodes 0..=i
    let mut edges = Vec::new();
    for j in 0..i {
        edges.push(Edge {
            u: j as NodeId,
            port_u: if j == 0 { 0 } else { 1 },
            v: (j + 1) as NodeId,
            port_v: 0,
        });
    }
    let mut next = spine as NodeId;
    for (idx, &long) in bits.iter().enumerate() {
        let host = (idx + 1) as NodeId; // internal spine node
        edges.push(Edge { u: host, port_u: 2, v: next, port_v: 0 });
        if long {
            edges.push(Edge { u: next, port_u: 1, v: next + 1, port_v: 0 });
            next += 2;
        } else {
            next += 1;
        }
    }
    let tree = Tree::from_edges(next as usize, &edges).expect("side tree is valid");
    SideTree { tree, root: 0, attach_port: 1, bits: bits.to_vec() }
}

/// All `2^(i-1)` side trees with `i − 1` decoration bits.
pub fn all_side_trees(i: usize) -> impl Iterator<Item = SideTree> {
    assert!((2..=32).contains(&i));
    (0u64..(1 << (i - 1))).map(move |mask| {
        let bits: Vec<bool> = (0..i - 1).map(|b| mask >> b & 1 == 1).collect();
        side_tree(&bits)
    })
}

/// The outcome of one tour of a side tree, entered from `u` in state `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TourOutcome {
    /// The agent re-entered `u` in state `state` after `rounds` rounds.
    Returns { state: StateId, rounds: u64 },
    /// The agent loops inside the side tree forever.
    Diverges,
}

/// The behavior function `q : S → (S × duration) ∪ {⊥}` of a side tree for
/// a given automaton (§4.3).
pub fn behavior_function(fsa: &Fsa, side: &SideTree) -> Vec<TourOutcome> {
    // Probe harness: the side tree plus the attachment node u (degree 2 in
    // the real two-sided tree). We graft u as node `n` with port 0 toward
    // the root and port 1 toward a stub leaf (degree 2, like the real u).
    let n = side.tree.num_nodes() as NodeId;
    let mut edges = side.tree.edges();
    edges.push(Edge { u: side.root, port_u: side.attach_port, v: n, port_v: 0 });
    edges.push(Edge { u: n, port_u: 1, v: n + 1, port_v: 0 });
    let harness = Tree::from_edges(n as usize + 2, &edges).expect("harness is valid");

    let k = fsa.num_states();
    let cap = (k as u64) * 3 * (side.tree.num_nodes() as u64 + 2) + 10;
    (0..k as StateId)
        .map(|s| {
            // The agent is traversing the edge u → root in state s; it
            // enters the root through the attach port.
            let mut runner = primed_runner(fsa, s);
            let mut cur = rvz_sim::Cursor { node: side.root, entry: Some(side.attach_port) };
            let mut rounds = 0u64;
            loop {
                rounds += 1;
                let obs = cur.obs(&harness);
                let action = runner.act(obs);
                match action.port(obs.degree) {
                    None => {
                        cur.apply(&harness, Action::Stay);
                    }
                    Some(p) => {
                        let from = cur.node;
                        cur.apply(&harness, Action::Move(p));
                        if from == side.root && cur.node == n {
                            // Re-emerging onto u: the tour is over; the
                            // state "in which the agent finishes" is the
                            // state during this move.
                            return TourOutcome::Returns { state: runner.state(), rounds };
                        }
                    }
                }
                if rounds > cap {
                    return TourOutcome::Diverges;
                }
            }
        })
        .collect()
}

/// A runner forced into state `s` mid-run (the tour starts with the agent
/// already walking, not at `s0`). Borrows `fsa` — no transition-table copy.
fn primed_runner(fsa: &Fsa, s: StateId) -> FsaRunner<'_> {
    let mut r = fsa.runner_from(s);
    // Consume the "first activation" so subsequent `act`s transition
    // normally; the first activation's action is λ(s), already accounted
    // for as the u → root move.
    let _ = r.act(Obs::start(2));
    r
}

/// Two side trees with equal behavior functions under `fsa`, found by
/// enumerating spine size `i` (the paper's pigeonhole guarantees success
/// once `2^{i−1} > (KD)^K`; in practice collisions appear much earlier).
pub fn find_collision(fsa: &Fsa, max_i: usize) -> Option<(SideTree, SideTree, usize)> {
    for i in 2..=max_i {
        let mut seen: std::collections::HashMap<Vec<TourOutcome>, SideTree> =
            std::collections::HashMap::new();
        for side in all_side_trees(i) {
            let behavior = behavior_function(fsa, &side);
            if let Some(other) = seen.get(&behavior) {
                return Some((other.clone(), side, i));
            }
            seen.insert(behavior, side);
        }
    }
    None
}

/// A two-sided tree: `left` and `right` side trees joined by a path with
/// `m` internal degree-2 nodes (`m` even), mirror-symmetric labeling.
/// Returns the tree and the start positions `u`, `v` (path nodes adjacent
/// to the two roots).
pub fn two_sided(left: &SideTree, right: &SideTree, m: usize) -> (Tree, NodeId, NodeId) {
    assert!(m >= 2 && m.is_multiple_of(2), "m must be even and ≥ 2 (u ≠ v)");
    let ln = left.tree.num_nodes() as NodeId;
    let rn = right.tree.num_nodes() as NodeId;
    let mut edges = left.tree.edges();
    for e in right.tree.edges() {
        edges.push(Edge { u: e.u + ln, port_u: e.port_u, v: e.v + ln, port_v: e.port_v });
    }
    // Path nodes w_1 … w_m are ln + rn … ln + rn + m − 1.
    let w = |j: usize| ln + rn + j as NodeId - 1;
    // Path edges: {root_l, w1}, {w1, w2}, …, {w_m, root_r}: m + 1 edges,
    // 2-edge-colored with the central edge (index m/2) colored 0; the
    // mirror image of edge j is edge m − j, and (j + g) ≡ (m − j + g)
    // (mod 2) for even m: the coloring is mirror-symmetric.
    let g = (m / 2) % 2; // color(j) = (j + g) % 2; color(m/2) = 0
    let color = |j: usize| ((j + g) % 2) as Port;
    // Edge 0: root_l — w1. At the root use the attach port; at w1 the color.
    edges.push(Edge { u: left.root, port_u: left.attach_port, v: w(1), port_v: color(0) });
    for j in 1..m {
        edges.push(Edge { u: w(j), port_u: color(j), v: w(j + 1), port_v: color(j) });
    }
    edges.push(Edge { u: w(m), port_u: color(m), v: right.root + ln, port_v: right.attach_port });
    let total = (ln + rn) as usize + m;
    let tree = Tree::from_edges(total, &edges).expect("two-sided tree is valid");
    (tree, w(1), w(m))
}

/// A verified Theorem 4.3 instance.
#[derive(Debug, Clone)]
pub struct SideTreeAttack {
    pub tree: Tree,
    pub start_a: NodeId,
    pub start_b: NodeId,
    /// Spine parameter `i`: the tree has `ℓ = 2i` leaves.
    pub i: usize,
    pub leaves: usize,
    pub verified_rounds: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SideTreeError {
    /// No behavior collision up to `max_i` (automaton too large for the
    /// budget — consistent with it having ≥ log(ℓ)/3 bits).
    NoCollision {
        max_i: usize,
    },
    MeetingHappened {
        round: u64,
    },
}

/// Builds and verifies the Theorem 4.3 instance for `fsa` (max degree 3).
pub fn side_tree_attack(
    fsa: &Fsa,
    max_i: usize,
    m: usize,
) -> Result<SideTreeAttack, SideTreeError> {
    assert_eq!(fsa.max_degree, 3, "Theorem 4.3 concerns max-degree-3 trees");
    let (t1, t2, i) = find_collision(fsa, max_i).ok_or(SideTreeError::NoCollision { max_i })?;
    let (tree, u, v) = two_sided(&t1, &t2, m);
    assert!(
        !rvz_trees::perfectly_symmetrizable(&tree, u, v),
        "distinct side trees ⇒ feasible instance"
    );
    let n = tree.num_nodes() as u64;
    let k = fsa.num_states() as u64;
    let horizon = (n * n * k * 8 + 100_000).min(20_000_000);
    let mut a = fsa.runner();
    let mut b = fsa.runner();
    let run = run_pair(&tree, u, v, &mut a, &mut b, PairConfig::simultaneous(horizon));
    match run.outcome {
        Outcome::Met { round, .. } => Err(SideTreeError::MeetingHappened { round }),
        Outcome::Timeout { rounds } => Ok(SideTreeAttack {
            leaves: tree.num_leaves(),
            tree,
            start_a: u,
            start_b: v,
            i,
            verified_rounds: rounds,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_trees::symmetry::symmetric_wrt_labeling;

    #[test]
    fn side_trees_are_distinct_and_bounded_degree() {
        let trees: Vec<SideTree> = all_side_trees(4).collect();
        assert_eq!(trees.len(), 8);
        for st in &trees {
            assert!(st.tree.max_degree() <= 3);
            // Spine leaves: the far endpoint; pendant leaves per bit.
            assert_eq!(
                st.tree.num_leaves(),
                1 + st.bits.len() + 1, // far end + pendants + root (degree 1 pre-attachment)
            );
        }
        // Pairwise structurally distinct (rooted).
        use rvz_trees::canon::canon_structural;
        let canons: std::collections::HashSet<_> =
            trees.iter().map(|st| canon_structural(&st.tree, st.root, None, None)).collect();
        assert_eq!(canons.len(), 8);
    }

    #[test]
    fn two_sided_tree_is_mirror_symmetric_on_equal_sides() {
        let st = side_tree(&[true, false, true]);
        let (tree, u, v) = two_sided(&st, &st, 4);
        assert!(
            symmetric_wrt_labeling(&tree, u, v),
            "T1–T1 with mirror labeling must be symmetric: the infeasible twin"
        );
        assert!(rvz_trees::perfectly_symmetrizable(&tree, u, v));
    }

    #[test]
    fn two_sided_tree_leaf_count() {
        // ℓ = 2i: each side contributes i leaves (i−1 pendants + far end).
        for i in [3usize, 5] {
            let bits_a: Vec<bool> = (0..i - 1).map(|b| b % 2 == 0).collect();
            let bits_b: Vec<bool> = (0..i - 1).map(|b| b % 3 == 0).collect();
            let (tree, _, _) = two_sided(&side_tree(&bits_a), &side_tree(&bits_b), 4);
            assert_eq!(tree.num_leaves(), 2 * i);
            assert!(tree.max_degree() <= 3);
        }
    }

    #[test]
    fn behavior_function_collision_exists_for_small_automata() {
        // The basic-walk automaton has 3 states: collisions must appear at
        // modest i (pigeonhole bound (K·D)^K is loose; empirically tiny).
        let fsa = Fsa::basic_walk(3);
        let (t1, t2, i) = find_collision(&fsa, 12).expect("collision");
        assert_ne!(t1.bits, t2.bits);
        assert_eq!(behavior_function(&fsa, &t1), behavior_function(&fsa, &t2));
        assert!(i <= 12);
    }

    #[test]
    fn defeats_the_basic_walk_automaton() {
        let fsa = Fsa::basic_walk(3);
        let attack = side_tree_attack(&fsa, 12, 4).expect("attack");
        assert_eq!(attack.leaves, 2 * attack.i);
        assert!(attack.tree.max_degree() <= 3);
    }

    #[test]
    fn defeats_random_small_automata() {
        let mut rng = StdRng::seed_from_u64(606);
        let mut defeated = 0;
        for _ in 0..12 {
            let fsa = Fsa::random(3, 3, 0.2, &mut rng);
            match side_tree_attack(&fsa, 10, 4) {
                Ok(_) => defeated += 1,
                Err(SideTreeError::NoCollision { .. }) => {}
                Err(e) => panic!("{e:?} disproves Thm 4.3?!"),
            }
        }
        assert!(defeated >= 6, "only {defeated}/12 defeated");
    }

    #[test]
    fn tour_outcomes_are_deterministic() {
        let fsa = Fsa::basic_walk(3);
        let st = side_tree(&[false, true]);
        assert_eq!(behavior_function(&fsa, &st), behavior_function(&fsa, &st));
    }
}
