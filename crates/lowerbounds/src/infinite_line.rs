//! Simulation of a [`LineFsa`] on the *infinite* properly 2-edge-colored
//! line — the analysis substrate shared by the Theorem 3.1 and Theorem 4.2
//! adversaries.
//!
//! Coordinates: the agent starts at position 0; the edge between positions
//! `i` and `i+1` carries color `(i + parity) mod 2` at both endpoints.
//! Every node has degree 2, so the automaton's state sequence is simply the
//! `π'` orbit `s0, π'(s0), π'²(s0), …` — only the *positions* depend on the
//! start parity.

use rvz_agent::line_fsa::{LineFsa, StateId};

/// One activation of the agent on the infinite line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// Local round (1-based: the first activation is round 1).
    pub round: u64,
    /// State after the round's transition (for round 1: `s0`).
    pub state: StateId,
    /// Position *before* the action.
    pub pos: i64,
    /// Signed move: -1, 0 (stay), +1.
    pub step: i64,
}

/// Stream of activations of `fsa` on the infinite line with the given start
/// `parity` (color of the edge to the right of the start).
pub struct InfiniteRun<'a> {
    fsa: &'a LineFsa,
    parity: i64,
    state: StateId,
    pos: i64,
    round: u64,
    started: bool,
}

impl<'a> InfiniteRun<'a> {
    pub fn new(fsa: &'a LineFsa, parity: u8) -> Self {
        InfiniteRun { fsa, parity: parity as i64, state: fsa.s0, pos: 0, round: 0, started: false }
    }

    /// Direction of a move along the edge of color `color` from `pos`:
    /// `+1` if the right edge has that color, else `-1`.
    fn direction(&self, color: i64) -> i64 {
        if (self.pos + self.parity).rem_euclid(2) == color {
            1
        } else {
            -1
        }
    }
}

impl Iterator for InfiniteRun<'_> {
    type Item = Activation;

    fn next(&mut self) -> Option<Activation> {
        self.round += 1;
        if self.started {
            // Every node of the infinite line has degree 2.
            self.state = self.fsa.pi_prime(self.state);
        } else {
            self.started = true;
        }
        let lambda = self.fsa.lambda[self.state as usize];
        let step = if lambda < 0 { 0 } else { self.direction(lambda.rem_euclid(2)) };
        let act = Activation { round: self.round, state: self.state, pos: self.pos, step };
        self.pos += step;
        Some(act)
    }
}

/// What the bounded-horizon analysis of an automaton on the infinite line
/// concludes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineBehavior {
    /// The configuration `(state, position)` repeated: the trajectory is
    /// periodic and confined to `[min_pos, max_pos]` forever.
    Bounded { min_pos: i64, max_pos: i64 },
    /// Two *move* activations shared a state and a position parity but had
    /// distinct positions: the agent drifts to infinity. The two witness
    /// activations are the Theorem 3.1 `x1` / `x2` pair.
    Drifts { first: Activation, second: Activation },
}

/// Classifies the behavior of `fsa` on the infinite line with the given
/// start parity. Exhaustive: a `(state, position)` configuration repeat
/// proves boundedness; a `(state, parity)` repeat at distinct positions
/// proves drift. One of the two happens within `4K² + 4K` move activations
/// (or the agent stops moving: `K` consecutive stays loop a stay-only
/// circuit).
pub fn classify(fsa: &LineFsa, parity: u8) -> LineBehavior {
    let k = fsa.num_states();
    let mut min_pos = 0i64;
    let mut max_pos = 0i64;
    // (state, pos) pairs seen at move activations (boundedness witness).
    let mut seen_configs = std::collections::HashSet::new();
    // First move activation per (state, pos parity) (drift witness).
    let mut first_by_class: std::collections::HashMap<(StateId, i64), Activation> =
        std::collections::HashMap::new();
    let mut stays_in_a_row = 0usize;
    for act in InfiniteRun::new(fsa, parity) {
        min_pos = min_pos.min(act.pos);
        max_pos = max_pos.max(act.pos);
        if act.step == 0 {
            stays_in_a_row += 1;
            if stays_in_a_row > k {
                // The state sequence cycled through stay-only states: the
                // agent never moves again.
                return LineBehavior::Bounded { min_pos, max_pos };
            }
            continue;
        }
        stays_in_a_row = 0;
        if !seen_configs.insert((act.state, act.pos)) {
            // Exact configuration repeat ⇒ periodic ⇒ bounded.
            return LineBehavior::Bounded { min_pos, max_pos };
        }
        let class = (act.state, act.pos.rem_euclid(2));
        match first_by_class.get(&class) {
            Some(first) if first.pos != act.pos => {
                return LineBehavior::Drifts { first: *first, second: act };
            }
            Some(_) => {
                // Same state, same position parity, same position — but
                // then (state, pos) would have repeated above.
                unreachable!("config repeat is caught first");
            }
            None => {
                first_by_class.insert(class, act);
            }
        }
    }
    unreachable!("InfiniteRun is infinite and one witness must occur");
}

/// The trajectory envelope `[min, max]` of signed displacement over the
/// first `rounds` activations.
pub fn envelope(fsa: &LineFsa, parity: u8, rounds: u64) -> (i64, i64) {
    let mut lo = 0i64;
    let mut hi = 0i64;
    for act in InfiniteRun::new(fsa, parity).take(rounds as usize) {
        let end = act.pos + act.step;
        lo = lo.min(end.min(act.pos));
        hi = hi.max(end.max(act.pos));
    }
    (lo, hi)
}

/// Maximum distance from the start ever reached, over both parities, for a
/// bounded automaton (`None` if it drifts for either parity).
pub fn bounded_range(fsa: &LineFsa) -> Option<i64> {
    let mut d = 0i64;
    for parity in [0u8, 1] {
        match classify(fsa, parity) {
            LineBehavior::Bounded { min_pos, max_pos } => {
                d = d.max(max_pos.abs()).max(min_pos.abs());
            }
            LineBehavior::Drifts { .. } => return None,
        }
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuttle_drifts() {
        let fsa = LineFsa::shuttle();
        for parity in [0, 1] {
            match classify(&fsa, parity) {
                LineBehavior::Drifts { first, second } => {
                    assert_eq!(first.state, second.state);
                    assert_ne!(first.pos, second.pos);
                    assert_eq!(
                        first.pos.rem_euclid(2),
                        second.pos.rem_euclid(2),
                        "witness pair must share parity"
                    );
                }
                other => panic!("shuttle must drift, got {other:?}"),
            }
        }
    }

    #[test]
    fn sitter_is_bounded() {
        let fsa = LineFsa::from_rows(vec![[0, 0]], vec![-1], 0);
        assert_eq!(bounded_range(&fsa), Some(0));
    }

    #[test]
    fn oscillator_is_bounded() {
        // Always exit by color 0: from any node this alternates direction
        // every step ⇒ oscillates between two nodes.
        let fsa = LineFsa::from_rows(vec![[0, 0]], vec![0], 0);
        let d = bounded_range(&fsa).expect("oscillator is bounded");
        assert!(d <= 1, "range {d}");
    }

    #[test]
    fn state_sequence_is_pi_prime_orbit() {
        let fsa = LineFsa::from_rows(vec![[1, 1], [0, 0]], vec![0, 1], 0);
        let states: Vec<StateId> = InfiniteRun::new(&fsa, 0).take(6).map(|a| a.state).collect();
        assert_eq!(states, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn random_fsas_classify_without_panicking() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for k in 1..=8 {
            for _ in 0..50 {
                let fsa = LineFsa::random(k, 0.3, &mut rng);
                let _ = classify(&fsa, 0);
                let _ = classify(&fsa, 1);
            }
        }
    }
}
