//! The exact rendezvous decider: reachability + cycle detection over the
//! **joint configuration graph** instead of bounded simulation.
//!
//! A pair of identical [`Fsa`] agents on a tree is a *finite* deterministic
//! system: each agent's situation is a configuration `(state, node,
//! entry port)` (the [`Fsa::config_index`] export), and a two-agent round
//! maps a joint configuration to exactly one successor. "The agents never
//! meet" is therefore not a timeout — it is the statement that the joint
//! trajectory enters a cycle containing no co-location, which
//! [`decide_pair`] certifies with a [`Lasso`] (stem + period + the repeated
//! configuration) after exploring at most one lasso worth of rounds, with
//! **no round budget at all**. This is the product-construction idea used
//! to separate memory classes in the delay-fault rendezvous literature
//! (Chalopin et al., *Rendezvous in Networks in Spite of Delay Faults*;
//! Pelc–Yadav, *Using Time to Break Symmetry*), applied to the
//! Fraigniaud–Pelc adversary: it turns the sweep engine's empirical
//! timeout cells into machine-checkable `NeverMeets` certificates.
//!
//! The adversary's start delay θ splits a run into two regions:
//!
//! * **not-yet-started** (rounds `1..=θ`): only agent A moves; agent B is
//!   parked at its start and can be met there. A alone is eventually
//!   periodic — [`SoloLasso`] tabulates its configuration lasso once — so
//!   arbitrarily large θ are answered by residue arithmetic, and the
//!   universal question over *all* delays ([`worst_case_delay`]) reduces
//!   to one fixed-point computation over the finitely many distinct
//!   activation configurations instead of a scan over delays `0..D`:
//!   every θ beyond the solo lasso behaves like its residue
//!   representative, and if A ever steps on B's home solo, every larger
//!   delay meets right there.
//! * **both-active** (rounds `> θ`): the joint configuration walk, where
//!   cycle detection decides.
//!
//! Everything the sweep's replay executor reports is reproduced exactly —
//! meeting round, and crossing counts at any budget via
//! [`Decision::crossings_within`] (crossing patterns are periodic along
//! the certified cycle, so the count at a huge budget is closed-form).
//! Certificates are checkable by independent re-simulation
//! ([`verify_lasso`]).

use rvz_agent::fsa::Fsa;
use rvz_agent::line_fsa::StateId;
use rvz_agent::model::{Action, Obs};
use rvz_sim::Schedule;
use rvz_trees::{NodeId, Port, Tree};
use std::collections::HashMap;

/// One agent's situation between rounds: the automaton state that emitted
/// the last action, the occupied node, and the port of entry (`None` after
/// a stay — exactly the [`rvz_sim::Cursor`] + runner-state pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentCfg {
    pub state: StateId,
    pub node: NodeId,
    pub entry: Option<Port>,
}

/// Applies state `s`'s action from `node`: the shared tail of the first
/// and subsequent activation steps.
#[inline]
fn apply(t: &Tree, fsa: &Fsa, s: StateId, node: NodeId) -> AgentCfg {
    match fsa.action(s) {
        Action::Stay => AgentCfg { state: s, node, entry: None },
        Action::Move(raw) => {
            let p = raw % t.degree(node);
            AgentCfg { state: s, node: t.neighbor(node, p), entry: Some(t.entry_port(node, p)) }
        }
    }
}

/// First activation: emit `λ(s0)` without a transition (the
/// `FsaRunner` contract).
#[inline]
fn step_first(t: &Tree, fsa: &Fsa, start: NodeId) -> AgentCfg {
    apply(t, fsa, fsa.s0, start)
}

/// Any later round: transition on the observation, then act.
#[inline]
fn step(t: &Tree, fsa: &Fsa, cfg: AgentCfg) -> AgentCfg {
    let s = fsa.next(cfg.state, Obs { entry: cfg.entry, degree: t.degree(cfg.node) });
    apply(t, fsa, s, cfg.node)
}

/// The tabulated solo lasso of one agent: configurations after rounds
/// `1..stem + period` are pairwise distinct, and the configuration after
/// round `stem + period` equals the one after round `stem`
/// (with `stem ≥ 1`; round 0 — parked, unstarted — never recurs). Built by
/// [`SoloLasso::tabulate`] with a dense visited array over
/// [`Fsa::num_configs`].
#[derive(Debug, Clone)]
pub struct SoloLasso {
    start: NodeId,
    /// `cfgs[r - 1]` = configuration after round `r`, `r = 1..=stem+period`.
    cfgs: Vec<AgentCfg>,
    pub stem: u64,
    pub period: u64,
}

impl SoloLasso {
    /// Runs the agent solo until its configuration repeats. Terminates
    /// within [`Fsa::num_configs`]`(n) + 1` rounds.
    pub fn tabulate(t: &Tree, fsa: &Fsa, start: NodeId) -> Self {
        assert!(fsa.max_degree >= t.max_degree().max(1), "automaton must cover the tree's degrees");
        let n = t.num_nodes();
        // Dense first-seen-round table over the exported config indexing.
        let mut first_seen = vec![0u64; fsa.num_configs(n)];
        let mut cfgs = Vec::new();
        let mut cur = step_first(t, fsa, start);
        let mut round = 1u64;
        loop {
            let idx = fsa.config_index(cur.state, cur.node, cur.entry, n);
            if first_seen[idx] != 0 {
                let entry_round = first_seen[idx];
                return SoloLasso {
                    start,
                    cfgs,
                    stem: entry_round - 1,
                    period: round - entry_round,
                };
            }
            first_seen[idx] = round;
            cfgs.push(cur);
            cur = step(t, fsa, cur);
            round += 1;
        }
    }

    /// Configuration after round `r ≥ 1`, for arbitrarily large `r` (the
    /// lasso answers every round by residue).
    pub fn config_at(&self, r: u64) -> AgentCfg {
        debug_assert!(r >= 1);
        let len = self.cfgs.len() as u64;
        let idx = if r <= len { r - 1 } else { self.stem + (r - 1 - self.stem) % self.period };
        self.cfgs[idx as usize]
    }

    /// Node occupied after round `r` (round 0 = the start).
    pub fn position(&self, r: u64) -> NodeId {
        if r == 0 {
            self.start
        } else {
            self.config_at(r).node
        }
    }

    /// First round `≥ 1` at which the agent stands on `node`, if it ever
    /// does (the whole reachable set lies within the tabulated lasso).
    pub fn first_visit(&self, node: NodeId) -> Option<u64> {
        self.cfgs.iter().position(|c| c.node == node).map(|i| i as u64 + 1)
    }

    /// Number of *distinct* delays that can produce distinct behavior:
    /// delay 0 (unstarted activation config) plus one per tabulated solo
    /// configuration — every larger delay repeats a residue.
    pub fn distinct_delays(&self) -> u64 {
        self.cfgs.len() as u64 + 1
    }
}

/// A machine-checkable "never meets" certificate: the joint configuration
/// [`Lasso::at_cycle`] is reached after round [`Lasso::stem`], recurs
/// exactly [`Lasso::period`] rounds later, and no round in
/// `0..=stem + period` co-locates the agents — hence no round ever does.
/// [`verify_lasso`] re-checks all three claims by independent stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lasso {
    /// Global round after which the certified cycle is entered.
    pub stem: u64,
    /// Cycle length in rounds.
    pub period: u64,
    /// The recurring joint configuration (A, B) after round `stem`.
    pub at_cycle: (AgentCfg, AgentCfg),
}

/// The decider's verdict for one `(pair, delay)` instance. No timeout arm
/// exists: the configuration graph is finite, so one of these always
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// First co-location happens at the end of `round` (0 = same start).
    Meets { round: u64 },
    /// Certified: no round ever co-locates the agents.
    NeverMeets { lasso: Lasso },
}

/// A decided instance: the verdict plus enough crossing bookkeeping to
/// reproduce the bounded simulator's row at any budget.
#[derive(Debug, Clone)]
pub struct Decision {
    pub verdict: Verdict,
    /// Global rounds with an edge crossing, over the explored horizon
    /// (through the meeting round, or through `stem + period`).
    crossing_rounds: Vec<u64>,
}

impl Decision {
    pub fn met(&self) -> bool {
        matches!(self.verdict, Verdict::Meets { .. })
    }

    /// Meeting round, `None` for certified never-meets.
    pub fn round(&self) -> Option<u64> {
        match self.verdict {
            Verdict::Meets { round } => Some(round),
            Verdict::NeverMeets { .. } => None,
        }
    }

    pub fn lasso(&self) -> Option<&Lasso> {
        match &self.verdict {
            Verdict::Meets { .. } => None,
            Verdict::NeverMeets { lasso } => Some(lasso),
        }
    }

    /// Crossings in rounds `1..=budget` — exactly what
    /// [`rvz_sim::run_pair`] counts with that round budget (for budgets
    /// that do not truncate a meeting). Along a certified cycle the
    /// crossing pattern is periodic, so arbitrary budgets are answered in
    /// closed form, never by walking rounds.
    pub fn crossings_within(&self, budget: u64) -> u64 {
        match self.verdict {
            Verdict::Meets { .. } => crossings_upto(&self.crossing_rounds, budget),
            Verdict::NeverMeets { lasso } => {
                crossings_closed_form(&self.crossing_rounds, lasso.stem, lasso.period, budget)
            }
        }
    }
}

/// Crossings recorded at rounds `≤ limit` (the explored prefix).
fn crossings_upto(crossing_rounds: &[u64], limit: u64) -> u64 {
    crossing_rounds.partition_point(|&r| r <= limit) as u64
}

/// Crossing count at an arbitrary budget from the explored
/// `stem + period` horizon of a certified lasso: the pattern is periodic
/// along the cycle, so huge budgets are answered in closed form. Shared by
/// the fixed-delay and scheduled deciders.
fn crossings_closed_form(crossing_rounds: &[u64], stem: u64, period: u64, budget: u64) -> u64 {
    let upto = |limit: u64| crossings_upto(crossing_rounds, limit);
    let explored = stem + period;
    if budget <= explored {
        return upto(budget);
    }
    let in_stem = upto(stem);
    let per_cycle = upto(explored) - in_stem;
    let past = budget - stem;
    let full_cycles = past / period;
    let partial = past % period;
    let in_partial = upto(stem + partial) - in_stem;
    in_stem + full_cycles * per_cycle + in_partial
}

/// Decides one `(tree, pair, automaton, delay)` instance exactly — see the
/// module docs. Works for *any* start delay, however large: the
/// not-yet-started region is answered from A's solo lasso.
pub fn decide_pair(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64) -> Decision {
    let solo = SoloLasso::tabulate(t, fsa, a);
    decide_from(t, fsa, &solo, b, delay)
}

/// [`decide_pair`] with A's solo lasso precomputed (the quantifier layer
/// shares one tabulation across every delay it checks).
pub fn decide_from(t: &Tree, fsa: &Fsa, solo: &SoloLasso, b: NodeId, delay: u64) -> Decision {
    let a = solo.start;
    if a == b {
        return Decision { verdict: Verdict::Meets { round: 0 }, crossing_rounds: Vec::new() };
    }
    // Not-yet-started region: B is parked at home; A meets it there iff A's
    // solo walk reaches `b` within the delay. No crossings are possible
    // while only one agent moves.
    if let Some(tv) = solo.first_visit(b) {
        if tv <= delay {
            return Decision { verdict: Verdict::Meets { round: tv }, crossing_rounds: Vec::new() };
        }
    }
    // Both-active region, from round `delay + 1`. The visited map is keyed
    // by the joint configuration; a repeat certifies the lasso.
    let mut prev_a = solo.position(delay);
    let mut prev_b = b;
    let mut cfg_a: Option<AgentCfg> = (delay >= 1).then(|| solo.config_at(delay));
    let mut cfg_b: Option<AgentCfg> = None;
    let mut crossing_rounds = Vec::new();
    let mut seen: HashMap<(AgentCfg, AgentCfg), u64> = HashMap::new();
    let mut round = delay;
    loop {
        round += 1;
        let na = match cfg_a {
            None => step_first(t, fsa, a),
            Some(c) => step(t, fsa, c),
        };
        let nb = match cfg_b {
            None => step_first(t, fsa, b),
            Some(c) => step(t, fsa, c),
        };
        if na.node == prev_b && nb.node == prev_a && na.node != nb.node {
            crossing_rounds.push(round);
        }
        if na.node == nb.node {
            return Decision { verdict: Verdict::Meets { round }, crossing_rounds };
        }
        if let Some(&entry_round) = seen.get(&(na, nb)) {
            let lasso =
                Lasso { stem: entry_round, period: round - entry_round, at_cycle: (na, nb) };
            // Trim bookkeeping to the explored horizon the lasso covers.
            crossing_rounds.retain(|&r| r <= lasso.stem + lasso.period);
            return Decision { verdict: Verdict::NeverMeets { lasso }, crossing_rounds };
        }
        seen.insert((na, nb), round);
        prev_a = na.node;
        prev_b = nb.node;
        cfg_a = Some(na);
        cfg_b = Some(nb);
    }
}

/// The universal (∀-delay) verdict for a pair.
#[derive(Debug, Clone)]
pub enum WorstCase {
    /// Rendezvous under *every* finite start delay. `worst_round` is the
    /// latest meeting round over the **distinct delay classes**, evaluated
    /// at each class's smallest representative `worst_delay` (whose full
    /// [`Decision`] is carried for crossing bookkeeping). This is the
    /// finite shift-invariant of the problem: when A's solo walk reaches
    /// B's home, every larger delay meets at that same absolute round,
    /// and when it never does, a delay `θ` in the class of representative
    /// `θ'` meets exactly `θ − θ'` rounds later — so the supremum over
    /// *all* delays is then unbounded and the class-wise value is the
    /// meaningful worst case. `delays_checked` counts the distinct delay
    /// classes decided (all larger delays collapse onto them).
    AllMeet { worst_delay: u64, worst_round: u64, delays_checked: u64, decision: Decision },
    /// Some delay defeats the pair; `decision` carries the certificate
    /// for the smallest such delay.
    Defeated { delay: u64, decision: Decision, delays_checked: u64 },
}

impl WorstCase {
    pub fn all_meet(&self) -> bool {
        matches!(self, WorstCase::AllMeet { .. })
    }
}

/// Decides ∀-delay rendezvous for `(tree, pair, automaton)` in one
/// fixed-point computation over the not-yet-started region: A's solo lasso
/// has finitely many configurations, so only `delay ∈ 0..distinct_delays`
/// can behave distinctly — and if A's solo walk ever reaches B's home (at
/// round `t`), every delay `≥ t` meets there, shrinking the quantified set
/// further. Each surviving delay class is decided budget-free by
/// [`decide_from`].
pub fn worst_case_delay(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId) -> WorstCase {
    if a == b {
        let meets_now =
            Decision { verdict: Verdict::Meets { round: 0 }, crossing_rounds: Vec::new() };
        return WorstCase::AllMeet {
            worst_delay: 0,
            worst_round: 0,
            delays_checked: 1,
            decision: meets_now,
        };
    }
    worst_case_from(t, fsa, &SoloLasso::tabulate(t, fsa, a), b)
}

/// [`worst_case_delay`] with A's solo lasso precomputed — the sweep's
/// decide executor shares one tabulation per `(instance, start)` across
/// the whole delay × pair sub-grid. `solo.start` must differ from `b`.
pub fn worst_case_from(t: &Tree, fsa: &Fsa, solo: &SoloLasso, b: NodeId) -> WorstCase {
    debug_assert_ne!(solo.start, b, "same-start pairs are answered by worst_case_delay");
    let first_home = solo.first_visit(b);
    // Delays needing an individual decision; the tail class (≥ horizon) is
    // collapsed: it either meets at `first_home` or repeats a residue.
    let horizon = first_home.unwrap_or_else(|| solo.distinct_delays());
    let mut worst: Option<(u64, u64, Decision)> = None; // (round, delay, decision)
    let mut checked = 0u64;
    for delay in 0..horizon {
        checked += 1;
        let decision = decide_from(t, fsa, solo, b, delay);
        match decision.verdict {
            Verdict::Meets { round } => {
                if worst.as_ref().is_none_or(|(r, _, _)| round > *r) {
                    worst = Some((round, delay, decision));
                }
            }
            Verdict::NeverMeets { .. } => {
                return WorstCase::Defeated { delay, decision, delays_checked: checked };
            }
        }
    }
    if let Some(tv) = first_home {
        // The collapsed tail class: every delay ≥ tv meets at round tv —
        // A steps onto the still-parked B, so no crossing precedes it.
        checked += 1;
        if worst.as_ref().is_none_or(|(r, _, _)| tv > *r) {
            let decision =
                Decision { verdict: Verdict::Meets { round: tv }, crossing_rounds: Vec::new() };
            worst = Some((tv, tv, decision));
        }
    }
    let (worst_round, worst_delay, decision) = worst.expect("at least one delay class");
    WorstCase::AllMeet { worst_delay, worst_round, delays_checked: checked, decision }
}

/// A machine-checkable "never meets under this schedule" certificate —
/// the scheduled sibling of [`Lasso`]. The recurring joint state is the
/// pair of per-agent configurations (`None` = not yet activated; an agent
/// the schedule never wakes recurs as `None` forever) *at equal cycle
/// positions*: the product construction extends the configuration with
/// the schedule's cycle index, so configs are effectively
/// `(state_a, state_b, nodes, entries, cycle_idx)` and a repeat implies
/// the whole future repeats with period [`ScheduleLasso::period`] (a
/// multiple of the cycle length, which [`verify_schedule_lasso`] checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleLasso {
    /// Global round after which the certified cycle is entered (always
    /// past the schedule's prefix — prefix positions cannot recur).
    pub stem: u64,
    /// Cycle length in rounds; a multiple of the schedule's cycle length.
    pub period: u64,
    /// The recurring joint configuration (A, B) after round `stem`.
    pub at_cycle: (Option<AgentCfg>, Option<AgentCfg>),
}

/// The scheduled decider's verdict — no timeout arm, as with [`Verdict`]:
/// the product of two finite configuration spaces (plus the "unstarted"
/// state each) and the finitely many cycle positions is finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleVerdict {
    /// First co-location at the end of `round` (0 = same start).
    Meets { round: u64 },
    /// Certified: no round ever co-locates the agents under the schedule.
    NeverMeets { lasso: ScheduleLasso },
}

/// A decided `(pair, schedule)` instance, with the crossing bookkeeping
/// needed to reproduce the bounded simulator's row at any budget —
/// the scheduled sibling of [`Decision`].
#[derive(Debug, Clone)]
pub struct ScheduleDecision {
    pub verdict: ScheduleVerdict,
    /// Global rounds with an edge crossing over the explored horizon.
    crossing_rounds: Vec<u64>,
}

impl ScheduleDecision {
    pub fn met(&self) -> bool {
        matches!(self.verdict, ScheduleVerdict::Meets { .. })
    }

    /// Meeting round, `None` for certified never-meets.
    pub fn round(&self) -> Option<u64> {
        match self.verdict {
            ScheduleVerdict::Meets { round } => Some(round),
            ScheduleVerdict::NeverMeets { .. } => None,
        }
    }

    pub fn lasso(&self) -> Option<&ScheduleLasso> {
        match &self.verdict {
            ScheduleVerdict::Meets { .. } => None,
            ScheduleVerdict::NeverMeets { lasso } => Some(lasso),
        }
    }

    /// Crossings in rounds `1..=budget` — what
    /// [`rvz_sim::run_pair_scheduled`] counts with that budget (for
    /// budgets that do not truncate a meeting); closed-form along a
    /// certified cycle exactly as [`Decision::crossings_within`].
    pub fn crossings_within(&self, budget: u64) -> u64 {
        match self.verdict {
            ScheduleVerdict::Meets { .. } => crossings_upto(&self.crossing_rounds, budget),
            ScheduleVerdict::NeverMeets { lasso } => {
                crossings_closed_form(&self.crossing_rounds, lasso.stem, lasso.period, budget)
            }
        }
    }
}

/// One scheduled activation step of one agent: `None` configurations are
/// agents that have not acted yet (first activation runs `step_first`).
#[inline]
fn step_opt(t: &Tree, fsa: &Fsa, start: NodeId, cfg: Option<AgentCfg>) -> AgentCfg {
    match cfg {
        None => step_first(t, fsa, start),
        Some(c) => step(t, fsa, c),
    }
}

/// Decides one `(tree, pair, automaton, schedule)` instance exactly, with
/// **no round budget**: walks the joint trajectory under the schedule's
/// activation flags and detects a repeat of the product configuration
/// `(cfg_a, cfg_b, cycle position)` once past the prefix. Terminates
/// within `prefix + (num_configs + 1)² · cycle` rounds; in practice the
/// joint walk closes orders of magnitude earlier (for the basic walk,
/// within two Euler periods per cycle slot).
pub fn decide_pair_scheduled(
    t: &Tree,
    fsa: &Fsa,
    a: NodeId,
    b: NodeId,
    sched: &Schedule,
) -> ScheduleDecision {
    if a == b {
        return ScheduleDecision {
            verdict: ScheduleVerdict::Meets { round: 0 },
            crossing_rounds: Vec::new(),
        };
    }
    let p = sched.prefix_len();
    let c = sched.cycle_len();
    let mut cfg_a: Option<AgentCfg> = None;
    let mut cfg_b: Option<AgentCfg> = None;
    let (mut pos_a, mut pos_b) = (a, b);
    let mut crossing_rounds = Vec::new();
    type JointKey = (Option<AgentCfg>, Option<AgentCfg>, u64);
    let mut seen: HashMap<JointKey, u64> = HashMap::new();
    let mut round = 0u64;
    loop {
        round += 1;
        let (on_a, on_b) = sched.active(round);
        let (prev_a, prev_b) = (pos_a, pos_b);
        if on_a {
            let next = step_opt(t, fsa, a, cfg_a);
            cfg_a = Some(next);
            pos_a = next.node;
        }
        if on_b {
            let next = step_opt(t, fsa, b, cfg_b);
            cfg_b = Some(next);
            pos_b = next.node;
        }
        if pos_a == prev_b && pos_b == prev_a && pos_a != pos_b {
            crossing_rounds.push(round);
        }
        if pos_a == pos_b {
            return ScheduleDecision { verdict: ScheduleVerdict::Meets { round }, crossing_rounds };
        }
        if round > p {
            let cycle_idx = (round - 1 - p) % c;
            if let Some(&entry_round) = seen.get(&(cfg_a, cfg_b, cycle_idx)) {
                let lasso = ScheduleLasso {
                    stem: entry_round,
                    period: round - entry_round,
                    at_cycle: (cfg_a, cfg_b),
                };
                crossing_rounds.retain(|&r| r <= lasso.stem + lasso.period);
                return ScheduleDecision {
                    verdict: ScheduleVerdict::NeverMeets { lasso },
                    crossing_rounds,
                };
            }
            seen.insert((cfg_a, cfg_b, cycle_idx), round);
        }
    }
}

/// The universal verdict over a finite *class* of schedules — the
/// schedule-axis sibling of [`worst_case_delay`]: where that quantifier
/// folds the infinitely many delays onto finitely many residue classes,
/// this one takes the class extensionally (schedules are already the
/// general object; callers pick the family to quantify over, e.g. every
/// `intermittent(p, φ)` with `p ≤ P`).
#[derive(Debug, Clone)]
pub enum ScheduleWorstCase {
    /// Rendezvous under every schedule in the class; `worst_index` /
    /// `worst_round` locate the slowest one (its full decision carried
    /// for crossing bookkeeping).
    AllMeet { worst_index: usize, worst_round: u64, decision: ScheduleDecision },
    /// `class[index]` defeats the pair; `decision` carries the
    /// certificate for the first defeating schedule.
    Defeated { index: usize, decision: ScheduleDecision },
}

impl ScheduleWorstCase {
    pub fn all_meet(&self) -> bool {
        matches!(self, ScheduleWorstCase::AllMeet { .. })
    }
}

/// Decides every schedule in `class` for `(tree, pair, automaton)`; the
/// first `NeverMeets` short-circuits as a defeat. The class must be
/// non-empty.
pub fn worst_case_schedule(
    t: &Tree,
    fsa: &Fsa,
    a: NodeId,
    b: NodeId,
    class: &[Schedule],
) -> ScheduleWorstCase {
    assert!(!class.is_empty(), "schedule class must be non-empty");
    let mut worst: Option<(u64, usize, ScheduleDecision)> = None;
    for (index, sched) in class.iter().enumerate() {
        let decision = decide_pair_scheduled(t, fsa, a, b, sched);
        match decision.verdict {
            ScheduleVerdict::Meets { round } => {
                if worst.as_ref().is_none_or(|(r, _, _)| round > *r) {
                    worst = Some((round, index, decision));
                }
            }
            ScheduleVerdict::NeverMeets { .. } => {
                return ScheduleWorstCase::Defeated { index, decision };
            }
        }
    }
    let (worst_round, worst_index, decision) = worst.expect("non-empty class");
    ScheduleWorstCase::AllMeet { worst_index, worst_round, decision }
}

/// Independently re-checks a [`ScheduleLasso`] certificate by naive
/// scheduled stepping: simulates `stem + period` rounds under the
/// schedule, asserting (1) the structural claims — the stem lies past the
/// prefix and the period is a multiple of the cycle length, without which
/// a recurrence would prove nothing; (2) no co-location at any round
/// `0..=stem + period`; (3) the joint configuration after round `stem`
/// equals `at_cycle` and recurs after round `stem + period`.
pub fn verify_schedule_lasso(
    t: &Tree,
    fsa: &Fsa,
    a: NodeId,
    b: NodeId,
    sched: &Schedule,
    lasso: &ScheduleLasso,
) -> bool {
    if a == b || lasso.period == 0 {
        return false;
    }
    if lasso.stem <= sched.prefix_len() || !lasso.period.is_multiple_of(sched.cycle_len()) {
        return false;
    }
    let mut cfg_a: Option<AgentCfg> = None;
    let mut cfg_b: Option<AgentCfg> = None;
    let (mut pos_a, mut pos_b) = (a, b);
    let mut at_stem: Option<(Option<AgentCfg>, Option<AgentCfg>)> = None;
    for round in 1..=lasso.stem + lasso.period {
        let (on_a, on_b) = sched.active(round);
        if on_a {
            let next = step_opt(t, fsa, a, cfg_a);
            cfg_a = Some(next);
            pos_a = next.node;
        }
        if on_b {
            let next = step_opt(t, fsa, b, cfg_b);
            cfg_b = Some(next);
            pos_b = next.node;
        }
        if pos_a == pos_b {
            return false; // they meet — the certificate is bogus
        }
        if round == lasso.stem {
            at_stem = Some((cfg_a, cfg_b));
        }
    }
    at_stem == Some(lasso.at_cycle) && (cfg_a, cfg_b) == lasso.at_cycle
}

/// Independently re-checks a [`Lasso`] certificate by naive stepping:
/// simulates `stem + period` rounds under start delay `delay`, asserting
/// (1) no co-location at any round `0..=stem + period`, (2) the joint
/// configuration after round `stem` equals `at_cycle`, and (3) it recurs
/// after round `stem + period`. Linear in `stem + period` — meant for
/// certificates over the moderate absolute rounds the grids produce.
pub fn verify_lasso(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64, lasso: &Lasso) -> bool {
    if a == b {
        return false;
    }
    let mut cfg_a: Option<AgentCfg> = None;
    let mut cfg_b: Option<AgentCfg> = None;
    let mut pos_b = b;
    let mut at_stem: Option<(AgentCfg, AgentCfg)> = None;
    for round in 1..=lasso.stem + lasso.period {
        let stepped = match cfg_a {
            None => step_first(t, fsa, a),
            Some(c) => step(t, fsa, c),
        };
        cfg_a = Some(stepped);
        let pos_a = stepped.node;
        if round > delay {
            cfg_b = Some(match cfg_b {
                None => step_first(t, fsa, b),
                Some(c) => step(t, fsa, c),
            });
            pos_b = cfg_b.expect("just set").node;
        }
        if pos_a == pos_b {
            return false; // they meet — the certificate is bogus
        }
        if round == lasso.stem {
            match (cfg_a, cfg_b) {
                (Some(ca), Some(cb)) => at_stem = Some((ca, cb)),
                _ => return false, // cycle cannot start before both act
            }
        }
    }
    let end = match (cfg_a, cfg_b) {
        (Some(ca), Some(cb)) => (ca, cb),
        _ => return false,
    };
    at_stem == Some(lasso.at_cycle) && end == lasso.at_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_sim::{run_pair, Outcome, PairConfig, Schedule};
    use rvz_trees::generators::{colored_line, line, random_tree, spider, star};

    fn bw(t: &Tree) -> Fsa {
        Fsa::basic_walk(t.max_degree().max(1))
    }

    /// The decider against the bounded simulator, on a horizon that the
    /// instance is known to decide within.
    fn assert_matches_sim(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64, budget: u64) {
        let decision = decide_pair(t, fsa, a, b, delay);
        let mut x = fsa.runner();
        let mut y = fsa.runner();
        let run = run_pair(t, a, b, &mut x, &mut y, PairConfig::delayed(delay, budget));
        match run.outcome {
            Outcome::Met { round, .. } => {
                assert_eq!(decision.round(), Some(round), "a={a} b={b} θ={delay}");
            }
            Outcome::Timeout { .. } => {
                assert!(!decision.met(), "sim timed out but decider met: a={a} b={b} θ={delay}");
            }
        }
        assert_eq!(
            decision.crossings_within(decision.round().unwrap_or(budget)),
            run.crossings,
            "crossing count diverged: a={a} b={b} θ={delay}"
        );
    }

    #[test]
    fn single_edge_pair_is_certified_never_meets() {
        // Two basic walkers on one edge shuttle and cross forever.
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 1, 0);
        let lasso = *d.lasso().expect("never meets");
        assert!(lasso.period >= 1);
        assert!(verify_lasso(&t, &fsa, 0, 1, 0, &lasso));
        // Crossings at any budget: they cross every round.
        assert_eq!(d.crossings_within(10), 10);
        assert_eq!(d.crossings_within(1_000_000_007), 1_000_000_007);
    }

    #[test]
    fn tampered_lassos_are_rejected() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 1, 0);
        let good = *d.lasso().unwrap();
        let mut bad = good;
        bad.period += 1;
        assert!(!verify_lasso(&t, &fsa, 0, 1, 0, &bad));
        let mut swapped = good;
        swapped.at_cycle = (good.at_cycle.1, good.at_cycle.0);
        // On this symmetric instance the swapped configuration differs.
        assert_ne!(swapped.at_cycle, good.at_cycle);
        assert!(!verify_lasso(&t, &fsa, 0, 1, 0, &swapped));
    }

    #[test]
    fn meets_agree_with_simulation_across_delays() {
        for t in [line(9), spider(3, 3), star(5)] {
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            for delay in [0u64, 1, 2, 5, 40] {
                for a in 0..n.min(4) {
                    for b in 0..n {
                        if a != b {
                            // θ + two joint Euler periods decides a basic
                            // walk; pad generously, it is still tiny.
                            let budget = delay + 8 * t.num_nodes() as u64 + 4;
                            assert_matches_sim(&t, &fsa, a, b, delay, budget);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn random_automata_agree_with_simulation() {
        // The decider is for arbitrary FSAs, stays included.
        let mut rng = StdRng::seed_from_u64(20100613);
        for trial in 0..30 {
            let t = random_tree(3 + (trial % 9), &mut rng);
            let fsa = Fsa::random(1 + trial % 5, t.max_degree().max(1), 0.3, &mut rng);
            let n = t.num_nodes() as NodeId;
            for delay in [0u64, 3] {
                for (a, b) in [(0, n - 1), (n - 1, 0), (0, n / 2)] {
                    if a != b {
                        assert_matches_sim(&t, &fsa, a, b, delay, 100_000);
                    }
                }
            }
        }
    }

    #[test]
    fn huge_delay_meets_at_home_without_walking_rounds() {
        // A's basic walk reaches B's home at a small round; a cosmic delay
        // must be answered instantly from the solo lasso.
        let t = line(9);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 6, u64::MAX / 2);
        assert_eq!(d.round(), Some(6));
    }

    #[test]
    fn worst_case_matches_brute_force_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let t = random_tree(7, &mut rng);
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let wc = worst_case_delay(&t, &fsa, a, b);
                    // Brute force: every delay up to a horizon comfortably
                    // past the solo lasso.
                    let solo = SoloLasso::tabulate(&t, &fsa, a);
                    let horizon = solo.distinct_delays() + 2 * solo.period.max(1);
                    let mut brute_all_meet = true;
                    let mut brute_worst = 0u64;
                    for delay in 0..horizon {
                        match decide_from(&t, &fsa, &solo, b, delay).verdict {
                            Verdict::Meets { round } => brute_worst = brute_worst.max(round),
                            Verdict::NeverMeets { .. } => {
                                brute_all_meet = false;
                                break;
                            }
                        }
                    }
                    match wc {
                        WorstCase::AllMeet { worst_round, .. } => {
                            assert!(brute_all_meet, "quantifier said all-meet, scan disagrees");
                            assert_eq!(worst_round, brute_worst);
                        }
                        WorstCase::Defeated { delay, ref decision, .. } => {
                            assert!(!brute_all_meet || delay >= horizon);
                            let lasso = decision.lasso().expect("defeat carries a lasso");
                            assert!(verify_lasso(&t, &fsa, a, b, delay, lasso));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn worst_case_defeat_on_the_symmetric_edge() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        match worst_case_delay(&t, &fsa, 0, 1) {
            WorstCase::Defeated { delay, decision, .. } => {
                assert_eq!(delay, 0, "already defeated with no delay");
                assert!(verify_lasso(&t, &fsa, 0, 1, delay, decision.lasso().unwrap()));
            }
            WorstCase::AllMeet { .. } => panic!("the single edge defeats the basic walk"),
        }
    }

    #[test]
    fn scheduled_decider_agrees_with_scheduled_simulation() {
        use rvz_sim::run_pair_scheduled;
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(2),
            Schedule::intermittent(2, 0),
            Schedule::intermittent(3, 1),
            Schedule::crash_after(3),
            Schedule::adversarial(0xD0_0D, 5, 4),
        ];
        let mut rng = StdRng::seed_from_u64(1013);
        for trial in 0..12 {
            let t = random_tree(3 + (trial % 6), &mut rng);
            let n = t.num_nodes() as NodeId;
            for fsa in [bw(&t), Fsa::random(1 + trial % 4, t.max_degree().max(1), 0.3, &mut rng)] {
                for sched in &schedules {
                    for (a, b) in [(0, n - 1), (n - 1, 0), (0, n / 2)] {
                        if a == b {
                            continue;
                        }
                        let decision = decide_pair_scheduled(&t, &fsa, a, b, sched);
                        if let Some(lasso) = decision.lasso() {
                            assert!(
                                verify_schedule_lasso(&t, &fsa, a, b, sched, lasso),
                                "lasso failed re-verification: {sched:?} ({a},{b})"
                            );
                        }
                        let budget = 50_000u64;
                        let mut x = fsa.runner();
                        let mut y = fsa.runner();
                        let run =
                            run_pair_scheduled(&t, a, b, &mut x, &mut y, sched, budget, false);
                        match run.outcome {
                            Outcome::Met { round, .. } => {
                                assert_eq!(decision.round(), Some(round), "{sched:?} ({a},{b})");
                                assert_eq!(decision.crossings_within(round), run.crossings);
                            }
                            Outcome::Timeout { .. } => {
                                assert!(
                                    decision.round().is_none_or(|r| r > budget),
                                    "sim timed out before a decided meeting: {sched:?} ({a},{b})"
                                );
                                if !decision.met() {
                                    assert_eq!(
                                        decision.crossings_within(budget),
                                        run.crossings,
                                        "closed-form crossings diverged: {sched:?} ({a},{b})"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn start_delay_schedules_match_the_fixed_delay_decider() {
        let t = spider(3, 3);
        let fsa = bw(&t);
        let n = t.num_nodes() as NodeId;
        for delay in [0u64, 1, 4, 11] {
            for b in 1..n {
                let fixed = decide_pair(&t, &fsa, 0, b, delay);
                let sched = Schedule::start_delay(delay);
                let scheduled = decide_pair_scheduled(&t, &fsa, 0, b, &sched);
                assert_eq!(fixed.round(), scheduled.round(), "θ={delay} b={b}");
                for budget in [10u64, 100, 1_000_000_007] {
                    if !fixed.met() {
                        assert_eq!(
                            fixed.crossings_within(budget),
                            scheduled.crossings_within(budget),
                            "θ={delay} b={b} budget={budget}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn intermittence_breaks_the_shuttle_parity() {
        // The single-edge shuttle never meets simultaneously (parity), but
        // slowing one agent to half speed breaks the parity invariant: a
        // round in which only A moves lands it on the frozen B.
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let sim = decide_pair_scheduled(&t, &fsa, 0, 1, &Schedule::simultaneous());
        assert!(!sim.met(), "the simultaneous shuttle crosses forever");
        let half = decide_pair_scheduled(&t, &fsa, 0, 1, &Schedule::intermittent(2, 0));
        assert_eq!(half.round(), Some(2), "A's solo round lands on the frozen B");
    }

    #[test]
    fn tampered_schedule_lassos_are_rejected() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        // The real shuttle: a moving never-meets certificate.
        let sim = Schedule::simultaneous();
        let d = decide_pair_scheduled(&t, &fsa, 0, 1, &sim);
        let good = *d.lasso().expect("two walkers on one edge never meet");
        assert!(verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &good));
        let mut bad = good;
        bad.period += 1; // recurrence no longer holds at the claimed round
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &bad));
        let mut shifted = good;
        shifted.stem = 0; // structurally invalid: inside the (empty) prefix
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &shifted));
        let mut wrong_cfg = good;
        wrong_cfg.at_cycle = (None, good.at_cycle.1); // claims A never started
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &wrong_cfg));
        // A frozen 2-cycle: the certified period must stay a multiple of
        // the cycle length, or the cycle-position recurrence proves
        // nothing — the verifier rejects an odd period structurally.
        let frozen = Schedule::new(Vec::new(), vec![(false, false), (false, false)]);
        let d2 = decide_pair_scheduled(&t, &fsa, 0, 1, &frozen);
        let good2 = *d2.lasso().expect("frozen agents at distinct starts never meet");
        assert!(good2.period.is_multiple_of(2));
        assert!(verify_schedule_lasso(&t, &fsa, 0, 1, &frozen, &good2));
        let mut odd = good2;
        odd.period += 1;
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &frozen, &odd));
    }

    #[test]
    fn worst_case_schedule_quantifies_over_the_class() {
        let t = line(9);
        let fsa = bw(&t);
        // θ = 1 defeats the basic walk on every feasible pair (the e9
        // certified result), so a class containing it is always defeated…
        let class = [Schedule::simultaneous(), Schedule::start_delay(1)];
        match worst_case_schedule(&t, &fsa, 0, 5, &class) {
            ScheduleWorstCase::Defeated { index, decision } => {
                assert!(index <= 1);
                let lasso = decision.lasso().expect("defeat carries a lasso");
                assert!(verify_schedule_lasso(&t, &fsa, 0, 5, &class[index], lasso));
            }
            ScheduleWorstCase::AllMeet { .. } => panic!("θ=1 must defeat the basic walk"),
        }
        // …while a class of meeting scenarios reports the slowest one:
        // with B crashed at its start, A's endpoint walk needs exactly 5
        // rounds to step onto node 5.
        let class = [Schedule::crash_after(0)];
        match worst_case_schedule(&t, &fsa, 0, 5, &class) {
            ScheduleWorstCase::AllMeet { worst_index, worst_round, ref decision } => {
                assert_eq!(worst_index, 0);
                assert_eq!(worst_round, 5);
                assert_eq!(decision.round(), Some(5));
            }
            ScheduleWorstCase::Defeated { .. } => panic!("a parked agent is met at home"),
        }
    }

    #[test]
    fn solo_lasso_is_the_euler_tour_for_basic_walks() {
        let t = line(6);
        let fsa = bw(&t);
        let solo = SoloLasso::tabulate(&t, &fsa, 0);
        // §2.2: period 2(n−1), entered immediately.
        assert_eq!(solo.period, 10);
        assert_eq!(solo.stem, 0);
        for r in 1..=40u64 {
            assert_eq!(solo.position(r), solo.position(r + 10));
        }
        assert_eq!(solo.first_visit(5), Some(5));
    }
}
