//! The exact rendezvous decider: reachability + cycle detection over the
//! **joint configuration graph** instead of bounded simulation.
//!
//! A pair of identical [`Fsa`] agents on a tree is a *finite* deterministic
//! system: each agent's situation is a configuration `(state, node,
//! entry port)` (the [`Fsa::config_index`] export), and a two-agent round
//! maps a joint configuration to exactly one successor. "The agents never
//! meet" is therefore not a timeout — it is the statement that the joint
//! trajectory enters a cycle containing no co-location, which
//! [`decide_pair`] certifies with a [`Lasso`] (stem + period + the repeated
//! configuration) after exploring at most one lasso worth of rounds, with
//! **no round budget at all**. This is the product-construction idea used
//! to separate memory classes in the delay-fault rendezvous literature
//! (Chalopin et al., *Rendezvous in Networks in Spite of Delay Faults*;
//! Pelc–Yadav, *Using Time to Break Symmetry*), applied to the
//! Fraigniaud–Pelc adversary: it turns the sweep engine's empirical
//! timeout cells into machine-checkable `NeverMeets` certificates.
//!
//! # The product-lasso closed form
//!
//! Under a start delay the two agents never interact, so the joint
//! trajectory is the *product of two independent solo trajectories*:
//! `z_r = (A_r, B_{r−θ})`. Each solo trajectory is a tabulated
//! [`SoloLasso`] with pre-period σ and minimal period π, and because the
//! configurations of one deterministic lasso are pairwise distinct, the
//! joint sequence's shape follows in closed form — its first repeat is at
//!
//! ```text
//! stem   = max(σ_A + 1, σ_B + θ + 1)      period = lcm(π_A, π_B)
//! ```
//!
//! so [`decide_from_lassos`] never materializes a joint visited set at
//! all: it scans one joint lasso's worth of *positions* (two flat arrays,
//! struct-of-arrays layout) for the first co-location and otherwise emits
//! the certificate directly. The verdicts, certificates, and crossing
//! bookkeeping are byte-identical to the historical hash-map walk (pinned
//! by the `product_lasso_matches_naive_walk` differential test), but a
//! cell costs two solo tabulations — shareable across every cell of a
//! tree via the caller's memo — plus one allocation-free scan.
//!
//! Activation *schedules* (the general adversary) do interleave agent
//! wake-ups, so [`decide_pair_scheduled`] still walks the product graph;
//! its visited set is a compact open-addressed table of packed `u128`
//! configuration keys rather than a `HashMap` of tuples.
//!
//! The adversary's start delay θ splits a run into two regions:
//!
//! * **not-yet-started** (rounds `1..=θ`): only agent A moves; agent B is
//!   parked at its start and can be met there. A alone is eventually
//!   periodic — [`SoloLasso`] tabulates its configuration lasso once — so
//!   arbitrarily large θ are answered by residue arithmetic, and the
//!   universal question over *all* delays ([`worst_case_delay`]) reduces
//!   to one fixed-point computation over the finitely many distinct
//!   activation configurations instead of a scan over delays `0..D`:
//!   every θ beyond the solo lasso behaves like its residue
//!   representative, and if A ever steps on B's home solo, every larger
//!   delay meets right there.
//! * **both-active** (rounds `> θ`): the joint configuration walk, where
//!   cycle detection decides.
//!
//! Everything the sweep's replay executor reports is reproduced exactly —
//! meeting round, and crossing counts at any budget via
//! [`Decision::crossings_within`] (crossing patterns are periodic along
//! the certified cycle, so the count at a huge budget is closed-form).
//! Certificates are checkable by independent re-simulation
//! ([`verify_lasso`]).

use rvz_agent::fsa::Fsa;
use rvz_agent::line_fsa::StateId;
use rvz_agent::model::{Action, Obs};
use rvz_sim::{pair_index, EnsembleSchedule, Schedule};
use rvz_trees::{NodeId, Port, Tree};

/// One agent's situation between rounds: the automaton state that emitted
/// the last action, the occupied node, and the port of entry (`None` after
/// a stay — exactly the [`rvz_sim::Cursor`] + runner-state pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentCfg {
    pub state: StateId,
    pub node: NodeId,
    pub entry: Option<Port>,
}

impl AgentCfg {
    /// The image of this configuration under a **port-preserving** tree
    /// automorphism (`map[u]` = image of node `u`). Only the node moves:
    /// the automaton state is spatial-label-free and the entry port is
    /// preserved by definition of port-preserving.
    fn relabel(self, map: &[NodeId]) -> AgentCfg {
        AgentCfg { node: map[self.node as usize], ..self }
    }
}

/// Applies an orbit action to a joint configuration pair: map both nodes
/// through the flip (if any), then exchange the lanes (if `swap`).
fn relabel_pair<T: Copy>(
    (a, b): (T, T),
    map: Option<&[NodeId]>,
    swap: bool,
    f: impl Fn(T, &[NodeId]) -> T,
) -> (T, T) {
    let (a, b) = match map {
        Some(m) => (f(a, m), f(b, m)),
        None => (a, b),
    };
    if swap {
        (b, a)
    } else {
        (a, b)
    }
}

/// Applies state `s`'s action from `node`: the shared tail of the first
/// and subsequent activation steps.
#[inline]
fn apply(t: &Tree, fsa: &Fsa, s: StateId, node: NodeId) -> AgentCfg {
    match fsa.action(s) {
        Action::Stay => AgentCfg { state: s, node, entry: None },
        Action::Move(raw) => {
            let p = raw % t.degree(node);
            AgentCfg { state: s, node: t.neighbor(node, p), entry: Some(t.entry_port(node, p)) }
        }
    }
}

/// First activation: emit `λ(s0)` without a transition (the
/// `FsaRunner` contract).
#[inline]
fn step_first(t: &Tree, fsa: &Fsa, start: NodeId) -> AgentCfg {
    apply(t, fsa, fsa.s0, start)
}

/// Any later round: transition on the observation, then act.
#[inline]
fn step(t: &Tree, fsa: &Fsa, cfg: AgentCfg) -> AgentCfg {
    let s = fsa.next(cfg.state, Obs { entry: cfg.entry, degree: t.degree(cfg.node) });
    apply(t, fsa, s, cfg.node)
}

/// The tabulated solo lasso of one agent: configurations after rounds
/// `1..stem + period` are pairwise distinct, and the configuration after
/// round `stem + period` equals the one after round `stem`
/// (with `stem ≥ 1`; round 0 — parked, unstarted — never recurs). Built by
/// [`SoloLasso::tabulate`] with a dense visited array over
/// [`Fsa::num_configs`].
#[derive(Debug, Clone)]
pub struct SoloLasso {
    start: NodeId,
    /// `cfgs[r - 1]` = configuration after round `r`, `r = 1..=stem+period`.
    cfgs: Vec<AgentCfg>,
    /// Struct-of-arrays twin of `cfgs`: just the occupied nodes, so the
    /// product scan in [`decide_from_lassos`] touches one flat `u32` array
    /// per agent instead of striding through 12-byte configurations.
    nodes: Vec<NodeId>,
    pub stem: u64,
    pub period: u64,
}

impl SoloLasso {
    /// Runs the agent solo until its configuration repeats. Terminates
    /// within [`Fsa::num_configs`]`(n) + 1` rounds.
    pub fn tabulate(t: &Tree, fsa: &Fsa, start: NodeId) -> Self {
        assert!(fsa.max_degree >= t.max_degree().max(1), "automaton must cover the tree's degrees");
        let n = t.num_nodes();
        // Dense first-seen-round table over the exported config indexing.
        let mut first_seen = vec![0u64; fsa.num_configs(n)];
        let mut cfgs = Vec::new();
        let mut nodes = Vec::new();
        let mut cur = step_first(t, fsa, start);
        let mut round = 1u64;
        loop {
            if round & 0xFFF == 0 {
                rvz_sim::cancel::checkpoint();
            }
            let idx = fsa.config_index(cur.state, cur.node, cur.entry, n);
            if first_seen[idx] != 0 {
                let entry_round = first_seen[idx];
                return SoloLasso {
                    start,
                    cfgs,
                    nodes,
                    stem: entry_round - 1,
                    period: round - entry_round,
                };
            }
            first_seen[idx] = round;
            cfgs.push(cur);
            nodes.push(cur.node);
            cur = step(t, fsa, cur);
            round += 1;
        }
    }

    /// Configuration after round `r ≥ 1`, for arbitrarily large `r` (the
    /// lasso answers every round by residue).
    pub fn config_at(&self, r: u64) -> AgentCfg {
        debug_assert!(r >= 1);
        let len = self.cfgs.len() as u64;
        let idx = if r <= len { r - 1 } else { self.stem + (r - 1 - self.stem) % self.period };
        self.cfgs[idx as usize]
    }

    /// Index into `nodes`/`cfgs` for round `r ≥ 1` (residue past the end).
    #[inline]
    fn lasso_index(&self, r: u64) -> usize {
        let len = self.cfgs.len() as u64;
        let idx = if r <= len { r - 1 } else { self.stem + (r - 1 - self.stem) % self.period };
        idx as usize
    }

    /// Node occupied after round `r` (round 0 = the start).
    pub fn position(&self, r: u64) -> NodeId {
        if r == 0 {
            self.start
        } else {
            self.config_at(r).node
        }
    }

    /// First round `≥ 1` at which the agent stands on `node`, if it ever
    /// does (the whole reachable set lies within the tabulated lasso).
    pub fn first_visit(&self, node: NodeId) -> Option<u64> {
        self.cfgs.iter().position(|c| c.node == node).map(|i| i as u64 + 1)
    }

    /// Number of *distinct* delays that can produce distinct behavior:
    /// delay 0 (unstarted activation config) plus one per tabulated solo
    /// configuration — every larger delay repeats a residue.
    pub fn distinct_delays(&self) -> u64 {
        self.cfgs.len() as u64 + 1
    }

    /// Independently re-checks this lasso against `(t, fsa)` by naive
    /// stepping: every tabulated configuration must match the solo run,
    /// and the configuration after round `stem + period + 1` must wrap
    /// back to the stem entry. `O(stem + period)` — a fresh tabulation
    /// minus its visited table — so the persistent solo store can afford
    /// to run it on *every* restored lasso before trusting one
    /// (docs/persistence.md: "degrade, never lie"). Never panics on a
    /// hostile lasso: out-of-range starts/nodes just fail the check.
    pub fn verify_solo(&self, t: &Tree, fsa: &Fsa) -> bool {
        let n = t.num_nodes();
        if fsa.max_degree < t.max_degree().max(1)
            || self.period == 0
            || (self.start as usize) >= n
            || self.cfgs.len() as u64 != self.stem + self.period
        {
            return false;
        }
        let mut cur = step_first(t, fsa, self.start);
        for cfg in &self.cfgs {
            if *cfg != cur {
                return false;
            }
            cur = step(t, fsa, cur);
        }
        cur == self.config_at(self.stem + 1)
    }

    /// Wire-format version tag of [`SoloLasso::to_bytes`].
    pub const WIRE_VERSION: u32 = 1;

    /// Serializes the lasso into the versioned little-endian form
    /// [`SoloLasso::from_bytes`] reads back (self-delimiting; integrity
    /// checking is the caller's job).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.cfgs.len() * 13);
        out.extend_from_slice(&Self::WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.stem.to_le_bytes());
        out.extend_from_slice(&self.period.to_le_bytes());
        out.extend_from_slice(&(self.cfgs.len() as u32).to_le_bytes());
        for cfg in &self.cfgs {
            out.extend_from_slice(&cfg.state.to_le_bytes());
            out.extend_from_slice(&cfg.node.to_le_bytes());
            match cfg.entry {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserializes [`SoloLasso::to_bytes`] output, validating the lasso
    /// shape (`period ≥ 1`, exactly `stem + period` configurations, no
    /// trailing bytes) so a corrupted body that slipped past the caller's
    /// checksum cannot produce an ill-formed lasso. The node array twin is
    /// rebuilt, not trusted from the wire.
    pub fn from_bytes(bytes: &[u8]) -> Result<SoloLasso, String> {
        struct Cursor<'a> {
            bytes: &'a [u8],
            pos: usize,
        }
        impl Cursor<'_> {
            fn take(&mut self, len: usize) -> Result<&[u8], String> {
                let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
                let end = end.ok_or_else(|| "truncated lasso".to_string())?;
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
        }
        let mut r = Cursor { bytes, pos: 0 };
        let version = r.u32()?;
        if version != Self::WIRE_VERSION {
            return Err(format!("unsupported lasso wire version {version}"));
        }
        let start = r.u32()?;
        let stem = r.u64()?;
        let period = r.u64()?;
        let len = r.u32()? as u64;
        if period == 0 {
            return Err("lasso period must be at least 1".into());
        }
        if stem.checked_add(period) != Some(len) {
            return Err("lasso length must equal stem + period".into());
        }
        let mut cfgs = Vec::with_capacity((len as usize).min(1 << 16));
        for _ in 0..len {
            let state = r.u32()?;
            let node = r.u32()?;
            let entry = match r.take(1)?[0] {
                0 => None,
                1 => Some(r.u32()?),
                other => return Err(format!("bad entry flag {other}")),
            };
            cfgs.push(AgentCfg { state, node, entry });
        }
        if r.pos != bytes.len() {
            return Err("trailing bytes after lasso".into());
        }
        let nodes = cfgs.iter().map(|c| c.node).collect();
        Ok(SoloLasso { start, cfgs, nodes, stem, period })
    }
}

/// A machine-checkable "never meets" certificate: the joint configuration
/// [`Lasso::at_cycle`] is reached after round [`Lasso::stem`], recurs
/// exactly [`Lasso::period`] rounds later, and no round in
/// `0..=stem + period` co-locates the agents — hence no round ever does.
/// [`verify_lasso`] re-checks all three claims by independent stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lasso {
    /// Global round after which the certified cycle is entered.
    pub stem: u64,
    /// Cycle length in rounds.
    pub period: u64,
    /// The recurring joint configuration (A, B) after round `stem`.
    pub at_cycle: (AgentCfg, AgentCfg),
}

/// The decider's verdict for one `(pair, delay)` instance. No timeout arm
/// exists: the configuration graph is finite, so one of these always
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// First co-location happens at the end of `round` (0 = same start).
    Meets { round: u64 },
    /// Certified: no round ever co-locates the agents.
    NeverMeets { lasso: Lasso },
}

/// A decided instance: the verdict plus enough crossing bookkeeping to
/// reproduce the bounded simulator's row at any budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    pub verdict: Verdict,
    /// Global rounds with an edge crossing, over the explored horizon
    /// (through the meeting round, or through `stem + period`).
    crossing_rounds: Vec<u64>,
}

impl Decision {
    pub fn met(&self) -> bool {
        matches!(self.verdict, Verdict::Meets { .. })
    }

    /// Meeting round, `None` for certified never-meets.
    pub fn round(&self) -> Option<u64> {
        match self.verdict {
            Verdict::Meets { round } => Some(round),
            Verdict::NeverMeets { .. } => None,
        }
    }

    pub fn lasso(&self) -> Option<&Lasso> {
        match &self.verdict {
            Verdict::Meets { .. } => None,
            Verdict::NeverMeets { lasso } => Some(lasso),
        }
    }

    /// Crossings in rounds `1..=budget` — exactly what
    /// [`rvz_sim::run_pair`] counts with that round budget (for budgets
    /// that do not truncate a meeting). Along a certified cycle the
    /// crossing pattern is periodic, so arbitrary budgets are answered in
    /// closed form, never by walking rounds.
    pub fn crossings_within(&self, budget: u64) -> u64 {
        match self.verdict {
            Verdict::Meets { .. } => crossings_upto(&self.crossing_rounds, budget),
            Verdict::NeverMeets { lasso } => {
                crossings_closed_form(&self.crossing_rounds, lasso.stem, lasso.period, budget)
            }
        }
    }

    /// The decision for the *image* pair under a port-preserving tree
    /// automorphism (`map`, as from
    /// [`rvz_trees::symmetry::port_preserving_flip`]) and/or an agent
    /// exchange (`swap`): if this is `decide_pair(t, fsa, a, b, δ)`, the
    /// result equals `decide_pair(t, fsa, map[a], map[b], δ)` (resp. the
    /// swapped pair) — exactly, certificate included. The automorphism
    /// commutes with the dynamics (it preserves degrees and ports, the
    /// only spatial data the automaton reads), so rounds and crossing
    /// times are invariant and only the certified configurations move.
    /// The swap is sound only when both lanes see the same activation
    /// pattern (here: `δ = 0`); the caller guarantees it.
    pub fn relabel(&self, map: Option<&[NodeId]>, swap: bool) -> Decision {
        let verdict = match self.verdict {
            Verdict::Meets { round } => Verdict::Meets { round },
            Verdict::NeverMeets { lasso } => {
                let at_cycle = relabel_pair(lasso.at_cycle, map, swap, AgentCfg::relabel);
                Verdict::NeverMeets { lasso: Lasso { at_cycle, ..lasso } }
            }
        };
        Decision { verdict, crossing_rounds: self.crossing_rounds.clone() }
    }
}

/// Crossings recorded at rounds `≤ limit` (the explored prefix).
fn crossings_upto(crossing_rounds: &[u64], limit: u64) -> u64 {
    crossing_rounds.partition_point(|&r| r <= limit) as u64
}

/// Crossing count at an arbitrary budget from the explored
/// `stem + period` horizon of a certified lasso: the pattern is periodic
/// along the cycle, so huge budgets are answered in closed form. Shared by
/// the fixed-delay and scheduled deciders.
fn crossings_closed_form(crossing_rounds: &[u64], stem: u64, period: u64, budget: u64) -> u64 {
    let upto = |limit: u64| crossings_upto(crossing_rounds, limit);
    let explored = stem + period;
    if budget <= explored {
        return upto(budget);
    }
    let in_stem = upto(stem);
    let per_cycle = upto(explored) - in_stem;
    let past = budget - stem;
    let full_cycles = past / period;
    let partial = past % period;
    let in_partial = upto(stem + partial) - in_stem;
    in_stem + full_cycles * per_cycle + in_partial
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Decides one `(tree, pair, automaton, delay)` instance exactly — see the
/// module docs. Works for *any* start delay, however large: the
/// not-yet-started region is answered from A's solo lasso.
pub fn decide_pair(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64) -> Decision {
    decide_from_lassos(&SoloLasso::tabulate(t, fsa, a), &SoloLasso::tabulate(t, fsa, b), delay)
}

/// [`decide_pair`] with A's solo lasso precomputed (the quantifier layer
/// shares one tabulation across every delay it checks). B's lasso is
/// tabulated here; callers deciding many cells per tree should tabulate
/// both once and use [`decide_from_lassos`] directly.
pub fn decide_from(t: &Tree, fsa: &Fsa, solo: &SoloLasso, b: NodeId, delay: u64) -> Decision {
    decide_from_lassos(solo, &SoloLasso::tabulate(t, fsa, b), delay)
}

/// Work-unit bound on the cost of *deciding* one pair on an `n`-node tree
/// — the config-graph size formula the sweep planner uses as its
/// decide-cost feature (`crates/bench/src/planner.rs`).
///
/// Fixed-delay decisions scan the joint product lasso, whose length is
/// bounded by the solo configuration space `|C| = `[`Fsa::num_configs`]
/// `(n)` per agent plus one round of slack; scheduled decisions walk
/// `(cfg_a, cfg_b, cycle position)` tuples and terminate within
/// `cycle · (|C| + 1)` rounds past the prefix ([`decide_pair_scheduled`]).
/// Pass `cycle_len = 1` for the delay axis. The bound is a *deterministic
/// pure function* of `(automaton, n, cycle_len)` — no clocks, no cache
/// state — which is what lets the planner record it in reproducible
/// output. Saturating: the formula is a routing weight, not an allocation
/// size.
pub fn decide_cost_bound(fsa: &Fsa, n: usize, cycle_len: u64) -> u64 {
    let configs = fsa.num_configs(n) as u64;
    cycle_len.max(1).saturating_mul(configs.saturating_add(1))
}

/// The product-lasso core (module docs, "The product-lasso closed form"):
/// decides a `(pair, delay)` instance from the two solo lassos alone.
/// Both lassos must come from the same tree and automaton; `solo_a` is the
/// immediately-started agent, `solo_b` the delayed one.
///
/// Byte-identical to walking the joint configuration graph with a visited
/// map — same verdicts, same `Lasso` fields, same crossing bookkeeping —
/// but the only allocation is the crossing list, and the scan length
/// `max(σ_A + 1, σ_B + θ + 1) + lcm(π_A, π_B) − θ` is the joint lasso
/// itself, which no exact method can avoid exploring.
pub fn decide_from_lassos(solo_a: &SoloLasso, solo_b: &SoloLasso, delay: u64) -> Decision {
    let (a, b) = (solo_a.start, solo_b.start);
    if a == b {
        return Decision { verdict: Verdict::Meets { round: 0 }, crossing_rounds: Vec::new() };
    }
    // Not-yet-started region: B is parked at home; A meets it there iff A's
    // solo walk reaches `b` within the delay. No crossings are possible
    // while only one agent moves.
    if let Some(tv) = solo_a.first_visit(b) {
        if tv <= delay {
            return Decision { verdict: Verdict::Meets { round: tv }, crossing_rounds: Vec::new() };
        }
    }
    // First repeat of the joint sequence z_r = (A_r, B_{r−θ}), in closed
    // form. Minimality: within one solo lasso all configurations are
    // distinct, so a joint repeat needs both components on their cycles
    // (stem) and both periods to divide the shift (period).
    let stem = (solo_a.stem + 1).max(solo_b.stem + delay + 1);
    let period = lcm(solo_a.period, solo_b.period);
    let horizon = stem + period;
    // Scan the joint lasso for the first co-location, tracking crossings.
    // Cursor indices walk the two flat node arrays directly, wrapping onto
    // each cycle, so the hot loop is two reads and three compares.
    let (a_nodes, b_nodes) = (&solo_a.nodes, &solo_b.nodes);
    let (a_wrap, b_wrap) = (a_nodes.len(), b_nodes.len());
    let mut ia = solo_a.lasso_index(delay + 1);
    let mut ib = 0usize; // round 1 for B
    let mut prev_a = solo_a.position(delay);
    let mut prev_b = b;
    let mut crossing_rounds = Vec::new();
    for r in delay + 1..=horizon {
        if r & 0xFFF == 0 {
            rvz_sim::cancel::checkpoint();
        }
        let na = a_nodes[ia];
        let nb = b_nodes[ib];
        if na == prev_b && nb == prev_a && na != nb {
            crossing_rounds.push(r);
        }
        if na == nb {
            return Decision { verdict: Verdict::Meets { round: r }, crossing_rounds };
        }
        prev_a = na;
        prev_b = nb;
        ia += 1;
        if ia == a_wrap {
            ia = solo_a.stem as usize;
        }
        ib += 1;
        if ib == b_wrap {
            ib = solo_b.stem as usize;
        }
    }
    let lasso =
        Lasso { stem, period, at_cycle: (solo_a.config_at(stem), solo_b.config_at(stem - delay)) };
    Decision { verdict: Verdict::NeverMeets { lasso }, crossing_rounds }
}

/// The universal (∀-delay) verdict for a pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorstCase {
    /// Rendezvous under *every* finite start delay. `worst_round` is the
    /// latest meeting round over the **distinct delay classes**, evaluated
    /// at each class's smallest representative `worst_delay` (whose full
    /// [`Decision`] is carried for crossing bookkeeping). This is the
    /// finite shift-invariant of the problem: when A's solo walk reaches
    /// B's home, every larger delay meets at that same absolute round,
    /// and when it never does, a delay `θ` in the class of representative
    /// `θ'` meets exactly `θ − θ'` rounds later — so the supremum over
    /// *all* delays is then unbounded and the class-wise value is the
    /// meaningful worst case. `delays_checked` counts the distinct delay
    /// classes decided (all larger delays collapse onto them).
    AllMeet { worst_delay: u64, worst_round: u64, delays_checked: u64, decision: Decision },
    /// Some delay defeats the pair; `decision` carries the certificate
    /// for the smallest such delay.
    Defeated { delay: u64, decision: Decision, delays_checked: u64 },
}

impl WorstCase {
    pub fn all_meet(&self) -> bool {
        matches!(self, WorstCase::AllMeet { .. })
    }

    /// The universal verdict for the image pair under a port-preserving
    /// automorphism — see [`Decision::relabel`]. No swap parameter: the
    /// start delay is lane-asymmetric, so the ∀-delay quantifier never
    /// admits the agent exchange.
    pub fn relabel(&self, map: Option<&[NodeId]>) -> WorstCase {
        match self {
            WorstCase::AllMeet { worst_delay, worst_round, delays_checked, decision } => {
                WorstCase::AllMeet {
                    worst_delay: *worst_delay,
                    worst_round: *worst_round,
                    delays_checked: *delays_checked,
                    decision: decision.relabel(map, false),
                }
            }
            WorstCase::Defeated { delay, decision, delays_checked } => WorstCase::Defeated {
                delay: *delay,
                decision: decision.relabel(map, false),
                delays_checked: *delays_checked,
            },
        }
    }
}

/// Decides ∀-delay rendezvous for `(tree, pair, automaton)` in one
/// fixed-point computation over the not-yet-started region: A's solo lasso
/// has finitely many configurations, so only `delay ∈ 0..distinct_delays`
/// can behave distinctly — and if A's solo walk ever reaches B's home (at
/// round `t`), every delay `≥ t` meets there, shrinking the quantified set
/// further. Each surviving delay class is decided budget-free by
/// [`decide_from`].
pub fn worst_case_delay(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId) -> WorstCase {
    if a == b {
        let meets_now =
            Decision { verdict: Verdict::Meets { round: 0 }, crossing_rounds: Vec::new() };
        return WorstCase::AllMeet {
            worst_delay: 0,
            worst_round: 0,
            delays_checked: 1,
            decision: meets_now,
        };
    }
    worst_case_from(t, fsa, &SoloLasso::tabulate(t, fsa, a), b)
}

/// [`worst_case_delay`] with A's solo lasso precomputed — the sweep's
/// decide executor shares one tabulation per `(instance, start)` across
/// the whole delay × pair sub-grid. `solo.start` must differ from `b`.
pub fn worst_case_from(t: &Tree, fsa: &Fsa, solo: &SoloLasso, b: NodeId) -> WorstCase {
    worst_case_from_lassos(solo, &SoloLasso::tabulate(t, fsa, b))
}

/// Past this many distinct delay classes the quantifier fans the classes
/// out over rayon in fixed-size chunks; below it the sequential
/// short-circuit scan wins. Small grids (the exhaustive e9/e10 trees)
/// stay sequential; the n≈200 perf scans parallelize.
const WORST_CASE_PAR_THRESHOLD: u64 = 32;
const WORST_CASE_PAR_CHUNK: u64 = 64;

/// [`worst_case_from`] from both solo lassos (same contract as
/// [`decide_from_lassos`]); the starts must differ.
///
/// The delay classes are decided in parallel (chunked, when there are
/// enough of them) but folded strictly in delay order, so the result —
/// defeat at the *smallest* defeating delay, worst round with ties broken
/// toward the smallest delay, `delays_checked` counts — is identical to
/// the sequential scan's, independent of thread count.
pub fn worst_case_from_lassos(solo_a: &SoloLasso, solo_b: &SoloLasso) -> WorstCase {
    debug_assert_ne!(
        solo_a.start, solo_b.start,
        "same-start pairs are answered by worst_case_delay"
    );
    let first_home = solo_a.first_visit(solo_b.start);
    // Delays needing an individual decision; the tail class (≥ horizon) is
    // collapsed: it either meets at `first_home` or repeats a residue.
    let horizon = first_home.unwrap_or_else(|| solo_a.distinct_delays());
    let mut worst: Option<(u64, u64, Decision)> = None; // (round, delay, decision)
    let mut checked = 0u64;
    let fold = |delay: u64,
                decision: Decision,
                worst: &mut Option<(u64, u64, Decision)>,
                checked: &mut u64|
     -> Option<WorstCase> {
        *checked += 1;
        match decision.verdict {
            Verdict::Meets { round } => {
                if worst.as_ref().is_none_or(|(r, _, _)| round > *r) {
                    *worst = Some((round, delay, decision));
                }
                None
            }
            Verdict::NeverMeets { .. } => {
                Some(WorstCase::Defeated { delay, decision, delays_checked: *checked })
            }
        }
    };
    if horizon <= WORST_CASE_PAR_THRESHOLD {
        for delay in 0..horizon {
            let decision = decide_from_lassos(solo_a, solo_b, delay);
            if let Some(defeated) = fold(delay, decision, &mut worst, &mut checked) {
                return defeated;
            }
        }
    } else {
        use rayon::prelude::*;
        let mut chunk_start = 0u64;
        while chunk_start < horizon {
            let chunk_end = (chunk_start + WORST_CASE_PAR_CHUNK).min(horizon);
            let delays: Vec<u64> = (chunk_start..chunk_end).collect();
            let decisions: Vec<Decision> =
                delays.par_iter().map(|&d| decide_from_lassos(solo_a, solo_b, d)).collect();
            for (delay, decision) in delays.into_iter().zip(decisions) {
                if let Some(defeated) = fold(delay, decision, &mut worst, &mut checked) {
                    return defeated;
                }
            }
            chunk_start = chunk_end;
        }
    }
    if let Some(tv) = first_home {
        // The collapsed tail class: every delay ≥ tv meets at round tv —
        // A steps onto the still-parked B, so no crossing precedes it.
        checked += 1;
        if worst.as_ref().is_none_or(|(r, _, _)| tv > *r) {
            let decision =
                Decision { verdict: Verdict::Meets { round: tv }, crossing_rounds: Vec::new() };
            worst = Some((tv, tv, decision));
        }
    }
    let (worst_round, worst_delay, decision) = worst.expect("at least one delay class");
    WorstCase::AllMeet { worst_delay, worst_round, delays_checked: checked, decision }
}

/// A machine-checkable "never meets under this schedule" certificate —
/// the scheduled sibling of [`Lasso`]. The recurring joint state is the
/// pair of per-agent configurations (`None` = not yet activated; an agent
/// the schedule never wakes recurs as `None` forever) *at equal cycle
/// positions*: the product construction extends the configuration with
/// the schedule's cycle index, so configs are effectively
/// `(state_a, state_b, nodes, entries, cycle_idx)` and a repeat implies
/// the whole future repeats with period [`ScheduleLasso::period`] (a
/// multiple of the cycle length, which [`verify_schedule_lasso`] checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleLasso {
    /// Global round after which the certified cycle is entered (always
    /// past the schedule's prefix — prefix positions cannot recur).
    pub stem: u64,
    /// Cycle length in rounds; a multiple of the schedule's cycle length.
    pub period: u64,
    /// The recurring joint configuration (A, B) after round `stem`.
    pub at_cycle: (Option<AgentCfg>, Option<AgentCfg>),
}

/// The scheduled decider's verdict — no timeout arm, as with [`Verdict`]:
/// the product of two finite configuration spaces (plus the "unstarted"
/// state each) and the finitely many cycle positions is finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleVerdict {
    /// First co-location at the end of `round` (0 = same start).
    Meets { round: u64 },
    /// Certified: no round ever co-locates the agents under the schedule.
    NeverMeets { lasso: ScheduleLasso },
}

/// A decided `(pair, schedule)` instance, with the crossing bookkeeping
/// needed to reproduce the bounded simulator's row at any budget —
/// the scheduled sibling of [`Decision`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleDecision {
    pub verdict: ScheduleVerdict,
    /// Global rounds with an edge crossing over the explored horizon.
    crossing_rounds: Vec<u64>,
}

impl ScheduleDecision {
    pub fn met(&self) -> bool {
        matches!(self.verdict, ScheduleVerdict::Meets { .. })
    }

    /// Meeting round, `None` for certified never-meets.
    pub fn round(&self) -> Option<u64> {
        match self.verdict {
            ScheduleVerdict::Meets { round } => Some(round),
            ScheduleVerdict::NeverMeets { .. } => None,
        }
    }

    pub fn lasso(&self) -> Option<&ScheduleLasso> {
        match &self.verdict {
            ScheduleVerdict::Meets { .. } => None,
            ScheduleVerdict::NeverMeets { lasso } => Some(lasso),
        }
    }

    /// Crossings in rounds `1..=budget` — what
    /// [`rvz_sim::run_pair_scheduled`] counts with that budget (for
    /// budgets that do not truncate a meeting); closed-form along a
    /// certified cycle exactly as [`Decision::crossings_within`].
    pub fn crossings_within(&self, budget: u64) -> u64 {
        match self.verdict {
            ScheduleVerdict::Meets { .. } => crossings_upto(&self.crossing_rounds, budget),
            ScheduleVerdict::NeverMeets { lasso } => {
                crossings_closed_form(&self.crossing_rounds, lasso.stem, lasso.period, budget)
            }
        }
    }

    /// The scheduled decision for the image pair — the scheduled sibling
    /// of [`Decision::relabel`]. `swap` is sound only for
    /// [`rvz_sim::Schedule::lane_symmetric`] schedules; the caller
    /// guarantees it.
    pub fn relabel(&self, map: Option<&[NodeId]>, swap: bool) -> ScheduleDecision {
        let verdict = match self.verdict {
            ScheduleVerdict::Meets { round } => ScheduleVerdict::Meets { round },
            ScheduleVerdict::NeverMeets { lasso } => {
                let at_cycle =
                    relabel_pair(lasso.at_cycle, map, swap, |cfg, m| cfg.map(|c| c.relabel(m)));
                ScheduleVerdict::NeverMeets { lasso: ScheduleLasso { at_cycle, ..lasso } }
            }
        };
        ScheduleDecision { verdict, crossing_rounds: self.crossing_rounds.clone() }
    }
}

/// One scheduled activation step of one agent: `None` configurations are
/// agents that have not acted yet (first activation runs `step_first`).
#[inline]
fn step_opt(t: &Tree, fsa: &Fsa, start: NodeId, cfg: Option<AgentCfg>) -> AgentCfg {
    match cfg {
        None => step_first(t, fsa, start),
        Some(c) => step(t, fsa, c),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Open-addressed `key → first-seen round` map with linear probing: the
/// scheduled decider's visited set. Keys are packed product-configuration
/// indices (bounded by `(num_configs + 1)² · cycle_len`, so `u128` always
/// holds them); compared to a `HashMap` of configuration tuples this is
/// one flat probe into two dense arrays per round.
struct ProbeTable {
    keys: Vec<u128>,
    rounds: Vec<u64>,
    len: usize,
}

impl ProbeTable {
    const EMPTY: u128 = u128::MAX;

    fn new() -> Self {
        ProbeTable { keys: vec![Self::EMPTY; 64], rounds: vec![0; 64], len: 0 }
    }

    fn slot_of(&self, key: u128) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = splitmix64((key as u64) ^ splitmix64((key >> 64) as u64)) as usize & mask;
        while self.keys[i] != Self::EMPTY && self.keys[i] != key {
            i = (i + 1) & mask;
        }
        i
    }

    /// Returns the prior round for `key`, or records `round` as its first.
    fn get_or_insert(&mut self, key: u128, round: u64) -> Option<u64> {
        debug_assert_ne!(key, Self::EMPTY);
        let i = self.slot_of(key);
        if self.keys[i] != Self::EMPTY {
            return Some(self.rounds[i]);
        }
        self.keys[i] = key;
        self.rounds[i] = round;
        self.len += 1;
        if self.len * 4 > self.keys.len() * 3 {
            self.grow();
        }
        None
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; new_cap]);
        let old_rounds = std::mem::replace(&mut self.rounds, vec![0; new_cap]);
        for (k, r) in old_keys.into_iter().zip(old_rounds) {
            if k != Self::EMPTY {
                let i = self.slot_of(k);
                self.keys[i] = k;
                self.rounds[i] = r;
            }
        }
    }
}

/// Decides one `(tree, pair, automaton, schedule)` instance exactly, with
/// **no round budget**: walks the joint trajectory under the schedule's
/// activation flags and detects a repeat of the product configuration
/// `(cfg_a, cfg_b, cycle position)` once past the prefix. Terminates
/// within `prefix + (num_configs + 1)² · cycle` rounds; in practice the
/// joint walk closes orders of magnitude earlier (for the basic walk,
/// within two Euler periods per cycle slot).
pub fn decide_pair_scheduled(
    t: &Tree,
    fsa: &Fsa,
    a: NodeId,
    b: NodeId,
    sched: &Schedule,
) -> ScheduleDecision {
    if a == b {
        return ScheduleDecision {
            verdict: ScheduleVerdict::Meets { round: 0 },
            crossing_rounds: Vec::new(),
        };
    }
    let p = sched.prefix_len();
    let c = sched.cycle_len();
    // Packed product-configuration key: `None` (not yet activated) is 0,
    // any real configuration is `1 + config_index`.
    let n = t.num_nodes();
    let stride = fsa.num_configs(n) as u128 + 1;
    let opt_index = |cfg: Option<AgentCfg>| -> u128 {
        match cfg {
            None => 0,
            Some(cfg) => 1 + fsa.config_index(cfg.state, cfg.node, cfg.entry, n) as u128,
        }
    };
    let mut cfg_a: Option<AgentCfg> = None;
    let mut cfg_b: Option<AgentCfg> = None;
    let (mut pos_a, mut pos_b) = (a, b);
    let mut crossing_rounds = Vec::new();
    let mut seen = ProbeTable::new();
    let mut round = 0u64;
    loop {
        round += 1;
        if round & 0xFFF == 0 {
            rvz_sim::cancel::checkpoint();
        }
        let (on_a, on_b) = sched.active(round);
        let (prev_a, prev_b) = (pos_a, pos_b);
        if on_a {
            let next = step_opt(t, fsa, a, cfg_a);
            cfg_a = Some(next);
            pos_a = next.node;
        }
        if on_b {
            let next = step_opt(t, fsa, b, cfg_b);
            cfg_b = Some(next);
            pos_b = next.node;
        }
        if pos_a == prev_b && pos_b == prev_a && pos_a != pos_b {
            crossing_rounds.push(round);
        }
        if pos_a == pos_b {
            return ScheduleDecision { verdict: ScheduleVerdict::Meets { round }, crossing_rounds };
        }
        if round > p {
            let cycle_idx = (round - 1 - p) % c;
            let key =
                (opt_index(cfg_a) * stride + opt_index(cfg_b)) * c as u128 + cycle_idx as u128;
            if let Some(entry_round) = seen.get_or_insert(key, round) {
                let lasso = ScheduleLasso {
                    stem: entry_round,
                    period: round - entry_round,
                    at_cycle: (cfg_a, cfg_b),
                };
                crossing_rounds.retain(|&r| r <= lasso.stem + lasso.period);
                return ScheduleDecision {
                    verdict: ScheduleVerdict::NeverMeets { lasso },
                    crossing_rounds,
                };
            }
        }
    }
}

/// The universal verdict over a finite *class* of schedules — the
/// schedule-axis sibling of [`worst_case_delay`]: where that quantifier
/// folds the infinitely many delays onto finitely many residue classes,
/// this one takes the class extensionally (schedules are already the
/// general object; callers pick the family to quantify over, e.g. every
/// `intermittent(p, φ)` with `p ≤ P`).
#[derive(Debug, Clone)]
pub enum ScheduleWorstCase {
    /// Rendezvous under every schedule in the class; `worst_index` /
    /// `worst_round` locate the slowest one (its full decision carried
    /// for crossing bookkeeping).
    AllMeet { worst_index: usize, worst_round: u64, decision: ScheduleDecision },
    /// `class[index]` defeats the pair; `decision` carries the
    /// certificate for the first defeating schedule.
    Defeated { index: usize, decision: ScheduleDecision },
}

impl ScheduleWorstCase {
    pub fn all_meet(&self) -> bool {
        matches!(self, ScheduleWorstCase::AllMeet { .. })
    }
}

/// Decides every schedule in `class` for `(tree, pair, automaton)`; the
/// first `NeverMeets` short-circuits as a defeat. The class must be
/// non-empty.
pub fn worst_case_schedule(
    t: &Tree,
    fsa: &Fsa,
    a: NodeId,
    b: NodeId,
    class: &[Schedule],
) -> ScheduleWorstCase {
    assert!(!class.is_empty(), "schedule class must be non-empty");
    let mut worst: Option<(u64, usize, ScheduleDecision)> = None;
    for (index, sched) in class.iter().enumerate() {
        let decision = decide_pair_scheduled(t, fsa, a, b, sched);
        match decision.verdict {
            ScheduleVerdict::Meets { round } => {
                if worst.as_ref().is_none_or(|(r, _, _)| round > *r) {
                    worst = Some((round, index, decision));
                }
            }
            ScheduleVerdict::NeverMeets { .. } => {
                return ScheduleWorstCase::Defeated { index, decision };
            }
        }
    }
    let (worst_round, worst_index, decision) = worst.expect("non-empty class");
    ScheduleWorstCase::AllMeet { worst_index, worst_round, decision }
}

/// Independently re-checks a [`ScheduleLasso`] certificate by naive
/// scheduled stepping: simulates `stem + period` rounds under the
/// schedule, asserting (1) the structural claims — the stem lies past the
/// prefix and the period is a multiple of the cycle length, without which
/// a recurrence would prove nothing; (2) no co-location at any round
/// `0..=stem + period`; (3) the joint configuration after round `stem`
/// equals `at_cycle` and recurs after round `stem + period`.
pub fn verify_schedule_lasso(
    t: &Tree,
    fsa: &Fsa,
    a: NodeId,
    b: NodeId,
    sched: &Schedule,
    lasso: &ScheduleLasso,
) -> bool {
    if a == b || lasso.period == 0 {
        return false;
    }
    if lasso.stem <= sched.prefix_len() || !lasso.period.is_multiple_of(sched.cycle_len()) {
        return false;
    }
    let mut cfg_a: Option<AgentCfg> = None;
    let mut cfg_b: Option<AgentCfg> = None;
    let (mut pos_a, mut pos_b) = (a, b);
    let mut at_stem: Option<(Option<AgentCfg>, Option<AgentCfg>)> = None;
    for round in 1..=lasso.stem + lasso.period {
        let (on_a, on_b) = sched.active(round);
        if on_a {
            let next = step_opt(t, fsa, a, cfg_a);
            cfg_a = Some(next);
            pos_a = next.node;
        }
        if on_b {
            let next = step_opt(t, fsa, b, cfg_b);
            cfg_b = Some(next);
            pos_b = next.node;
        }
        if pos_a == pos_b {
            return false; // they meet — the certificate is bogus
        }
        if round == lasso.stem {
            at_stem = Some((cfg_a, cfg_b));
        }
    }
    at_stem == Some(lasso.at_cycle) && (cfg_a, cfg_b) == lasso.at_cycle
}

/// Independently re-checks a [`Lasso`] certificate by naive stepping:
/// simulates `stem + period` rounds under start delay `delay`, asserting
/// (1) no co-location at any round `0..=stem + period`, (2) the joint
/// configuration after round `stem` equals `at_cycle`, and (3) it recurs
/// after round `stem + period`. Linear in `stem + period` — meant for
/// certificates over the moderate absolute rounds the grids produce.
pub fn verify_lasso(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64, lasso: &Lasso) -> bool {
    if a == b {
        return false;
    }
    let mut cfg_a: Option<AgentCfg> = None;
    let mut cfg_b: Option<AgentCfg> = None;
    let mut pos_b = b;
    let mut at_stem: Option<(AgentCfg, AgentCfg)> = None;
    for round in 1..=lasso.stem + lasso.period {
        let stepped = match cfg_a {
            None => step_first(t, fsa, a),
            Some(c) => step(t, fsa, c),
        };
        cfg_a = Some(stepped);
        let pos_a = stepped.node;
        if round > delay {
            cfg_b = Some(match cfg_b {
                None => step_first(t, fsa, b),
                Some(c) => step(t, fsa, c),
            });
            pos_b = cfg_b.expect("just set").node;
        }
        if pos_a == pos_b {
            return false; // they meet — the certificate is bogus
        }
        if round == lasso.stem {
            match (cfg_a, cfg_b) {
                (Some(ca), Some(cb)) => at_stem = Some((ca, cb)),
                _ => return false, // cycle cannot start before both act
            }
        }
    }
    let end = match (cfg_a, cfg_b) {
        (Some(ca), Some(cb)) => (ca, cb),
        _ => return false,
    };
    at_stem == Some(lasso.at_cycle) && end == lasso.at_cycle
}

/// A machine-checkable "never gathers" certificate — the k-lane
/// generalization of [`ScheduleLasso`]. The recurring joint state is the
/// vector of per-lane configurations (`None` = not yet activated) at equal
/// cycle positions of the [`EnsembleSchedule`]; a repeat implies the whole
/// future repeats, so if no round through `stem + period` co-locates *all*
/// `k` agents, none ever does. [`verify_ensemble_lasso`] re-checks every
/// claim by independent k-lane stepping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleLasso {
    /// Global round after which the certified cycle is entered (always
    /// past the schedule's prefix).
    pub stem: u64,
    /// Cycle length in rounds; a multiple of the schedule's cycle length.
    pub period: u64,
    /// The recurring joint configuration, one entry per lane, after round
    /// `stem`.
    pub at_cycle: Vec<Option<AgentCfg>>,
}

/// The ensemble decider's verdict. `Meets` is **gathering**: all `k`
/// agents on one node at a round boundary — rendezvous is its `k = 2`
/// case. No timeout arm, as with [`Verdict`]: the product of `k` finite
/// configuration spaces and the cycle positions is finite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnsembleVerdict {
    /// First gathering at the end of `round` (0 = all starts coincide).
    Meets { round: u64 },
    /// Certified: no round ever co-locates all `k` agents.
    NeverMeets { lasso: EnsembleLasso },
}

/// A decided `(starts, ensemble schedule)` instance — the k-lane sibling
/// of [`ScheduleDecision`], with the crossing and pairwise-meeting
/// bookkeeping needed to reproduce [`rvz_sim::run_ensemble`]'s row at any
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleDecision {
    pub verdict: EnsembleVerdict,
    /// Global rounds with an edge crossing over the explored horizon, one
    /// entry per crossing *pair* (a k-lane round can hold several).
    crossing_rounds: Vec<u64>,
    /// First co-location round per unordered lane pair, in
    /// [`rvz_sim::pair_index`] layout, over the explored horizon. For a
    /// `NeverMeets` verdict this is complete: positions repeat along the
    /// certified cycle, so a pair that has not met by `stem + period`
    /// never meets.
    pair_meetings: Vec<Option<u64>>,
}

impl EnsembleDecision {
    pub fn met(&self) -> bool {
        matches!(self.verdict, EnsembleVerdict::Meets { .. })
    }

    /// Gathering round, `None` for certified never-gathers.
    pub fn round(&self) -> Option<u64> {
        match self.verdict {
            EnsembleVerdict::Meets { round } => Some(round),
            EnsembleVerdict::NeverMeets { .. } => None,
        }
    }

    pub fn lasso(&self) -> Option<&EnsembleLasso> {
        match &self.verdict {
            EnsembleVerdict::Meets { .. } => None,
            EnsembleVerdict::NeverMeets { lasso } => Some(lasso),
        }
    }

    /// First co-location round per unordered lane pair
    /// ([`rvz_sim::pair_index`] layout) over the explored horizon.
    pub fn pair_meetings(&self) -> &[Option<u64>] {
        &self.pair_meetings
    }

    /// Crossings in rounds `1..=budget` — what [`rvz_sim::run_ensemble`]
    /// counts with that budget (for budgets that do not truncate a
    /// gathering); closed-form along a certified cycle exactly as
    /// [`Decision::crossings_within`].
    pub fn crossings_within(&self, budget: u64) -> u64 {
        match &self.verdict {
            EnsembleVerdict::Meets { .. } => crossings_upto(&self.crossing_rounds, budget),
            EnsembleVerdict::NeverMeets { lasso } => {
                crossings_closed_form(&self.crossing_rounds, lasso.stem, lasso.period, budget)
            }
        }
    }

    /// The decision for the image tuple under a port-preserving tree
    /// automorphism and/or a lane permutation (`perm[i]` = lane that
    /// receives old lane `i`'s start) — the k-lane sibling of
    /// [`ScheduleDecision::relabel`]. The permutation is sound only for
    /// [`EnsembleSchedule::lane_symmetric`] schedules; the caller
    /// guarantees it. Rounds and crossing times are invariant; the
    /// certified configurations and the pairwise-meeting slots move.
    pub fn relabel(&self, map: Option<&[NodeId]>, perm: Option<&[usize]>) -> EnsembleDecision {
        let move_cfg = |cfg: Option<AgentCfg>| match map {
            Some(m) => cfg.map(|c| c.relabel(m)),
            None => cfg,
        };
        let k = lanes_of(self.pair_meetings.len());
        let mut pair_meetings = self.pair_meetings.clone();
        if let Some(perm) = perm {
            for i in 0..k {
                for j in i + 1..k {
                    let (pi, pj) = (perm[i].min(perm[j]), perm[i].max(perm[j]));
                    pair_meetings[pair_index(k, pi, pj)] = self.pair_meetings[pair_index(k, i, j)];
                }
            }
        }
        let verdict = match &self.verdict {
            EnsembleVerdict::Meets { round } => EnsembleVerdict::Meets { round: *round },
            EnsembleVerdict::NeverMeets { lasso } => {
                let mut at_cycle = vec![None; lasso.at_cycle.len()];
                for (i, &cfg) in lasso.at_cycle.iter().enumerate() {
                    let slot = perm.map_or(i, |p| p[i]);
                    at_cycle[slot] = move_cfg(cfg);
                }
                EnsembleVerdict::NeverMeets {
                    lasso: EnsembleLasso { stem: lasso.stem, period: lasso.period, at_cycle },
                }
            }
        };
        EnsembleDecision { verdict, crossing_rounds: self.crossing_rounds.clone(), pair_meetings }
    }
}

/// Inverse of `k (k − 1) / 2`: the lane count whose unordered-pair table
/// has `pairs` slots.
fn lanes_of(pairs: usize) -> usize {
    let mut k = 2;
    while k * (k - 1) / 2 < pairs {
        k += 1;
    }
    k
}

/// Records round-`round` co-locations of `nodes` into the unordered-pair
/// first-meeting table and reports whether *all* lanes coincide — the
/// decider's twin of the runner's gathering predicate.
fn note_meetings(nodes: &[NodeId], round: u64, pair_meetings: &mut [Option<u64>]) -> bool {
    let k = nodes.len();
    let mut gathered = true;
    for i in 0..k {
        for j in i + 1..k {
            if nodes[i] == nodes[j] {
                pair_meetings[pair_index(k, i, j)].get_or_insert(round);
            } else {
                gathered = false;
            }
        }
    }
    gathered
}

/// Pushes one crossing-round entry per lane pair that swapped nodes this
/// round (crossing inside an edge — not a meeting).
fn note_crossings(nodes: &[NodeId], prev: &[NodeId], round: u64, crossing_rounds: &mut Vec<u64>) {
    let k = nodes.len();
    for i in 0..k {
        for j in i + 1..k {
            if nodes[i] == prev[j] && nodes[j] == prev[i] && nodes[i] != nodes[j] {
                crossing_rounds.push(round);
            }
        }
    }
}

/// Decides one `(tree, starts, automaton, ensemble schedule)` instance
/// exactly, with **no round budget** — the k-lane generalization of
/// [`decide_pair_scheduled`]. Start-delay schedules
/// ([`EnsembleSchedule::as_start_delays`]) are routed to the solo-lasso
/// closed form ([`decide_ensemble_from_lassos`]); every other shape walks
/// the product configuration graph `([Option<AgentCfg>; k], cycle_idx)`
/// with packed `u128` keys, terminating within
/// `prefix + cycle · (|C| + 1)^k` rounds (in practice orders of magnitude
/// earlier). Callers deciding many tuples per tree should tabulate solo
/// lassos once and use [`decide_ensemble_from_lassos`] directly for the
/// delay shapes.
pub fn decide_ensemble(
    t: &Tree,
    fsa: &Fsa,
    starts: &[NodeId],
    sched: &EnsembleSchedule,
) -> EnsembleDecision {
    assert_eq!(starts.len(), sched.lanes(), "one start per schedule lane");
    if let Some(delays) = sched.as_start_delays() {
        let lassos: Vec<SoloLasso> =
            starts.iter().map(|&s| SoloLasso::tabulate(t, fsa, s)).collect();
        let refs: Vec<&SoloLasso> = lassos.iter().collect();
        return decide_ensemble_from_lassos(&refs, &delays);
    }
    decide_ensemble_walk(t, fsa, starts, sched)
}

/// The k-lane product-lasso closed form: decides a `(starts, delays)`
/// ensemble instance from the per-lane solo lassos alone — the k-lane
/// sibling of [`decide_from_lassos`], and the entry point through which
/// the sweep's persistent solo cache is reused lane by lane. All lassos
/// must come from the same tree and automaton; `delays[i]` is lane `i`'s
/// start delay.
///
/// Under pure start delays the agents never perceive each other, so the
/// joint trajectory is the product of `k` independent solo trajectories
/// `z_r = (L0_r, L1_{r−θ_1}, …)`; its first repeat is at
/// `stem = max_i(σ_i + θ_i + 1)`, `period = lcm_i(π_i)` by the
/// distinctness argument of the pair closed form, applied per lane. The
/// scan walks rounds `1..=stem + period` checking gathering and pairwise
/// crossings; at `k = 2` the verdicts, certificates, and crossing lists
/// are identical to [`decide_from_lassos`]'s.
pub fn decide_ensemble_from_lassos(lassos: &[&SoloLasso], delays: &[u64]) -> EnsembleDecision {
    let k = lassos.len();
    assert!(k >= 2, "an ensemble has at least two lanes");
    assert_eq!(delays.len(), k, "one delay per lane");
    let starts: Vec<NodeId> = lassos.iter().map(|l| l.start).collect();
    let mut pair_meetings = vec![None; k * (k - 1) / 2];
    let mut crossing_rounds = Vec::new();
    if note_meetings(&starts, 0, &mut pair_meetings) {
        return EnsembleDecision {
            verdict: EnsembleVerdict::Meets { round: 0 },
            crossing_rounds,
            pair_meetings,
        };
    }
    let stem = (0..k).map(|i| lassos[i].stem + delays[i] + 1).max().expect("k >= 2");
    let period = lassos.iter().map(|l| l.period).fold(1, lcm);
    let horizon = stem + period;
    let mut prev = starts.clone();
    let mut nodes = starts;
    for r in 1..=horizon {
        if r & 0xFFF == 0 {
            rvz_sim::cancel::checkpoint();
        }
        for i in 0..k {
            nodes[i] = lassos[i].position(r.saturating_sub(delays[i]));
        }
        note_crossings(&nodes, &prev, r, &mut crossing_rounds);
        if note_meetings(&nodes, r, &mut pair_meetings) {
            return EnsembleDecision {
                verdict: EnsembleVerdict::Meets { round: r },
                crossing_rounds,
                pair_meetings,
            };
        }
        prev.copy_from_slice(&nodes);
    }
    let at_cycle = (0..k).map(|i| Some(lassos[i].config_at(stem - delays[i]))).collect();
    EnsembleDecision {
        verdict: EnsembleVerdict::NeverMeets { lasso: EnsembleLasso { stem, period, at_cycle } },
        crossing_rounds,
        pair_meetings,
    }
}

/// The general-schedule product walk behind [`decide_ensemble`]: joint
/// configurations `([Option<AgentCfg>; k], cycle_idx)` with a packed
/// `u128` visited key per round past the prefix.
fn decide_ensemble_walk(
    t: &Tree,
    fsa: &Fsa,
    starts: &[NodeId],
    sched: &EnsembleSchedule,
) -> EnsembleDecision {
    let k = starts.len();
    assert!(k >= 2, "an ensemble has at least two lanes");
    let p = sched.prefix_len();
    let c = sched.cycle_len();
    let n = t.num_nodes();
    // Packed product key: `None` (not yet activated) is 0, any real
    // configuration is `1 + config_index`; one base-`stride` digit per
    // lane, then the cycle position. The capacity check keeps the packing
    // honest for large k — the caller must shrink the instance, not get a
    // silently colliding table.
    let stride = fsa.num_configs(n) as u128 + 1;
    let mut capacity = c as u128;
    for _ in 0..k {
        capacity = capacity
            .checked_mul(stride)
            .expect("ensemble product key space exceeds u128; reduce the lane count or tree");
    }
    let opt_index = |cfg: Option<AgentCfg>| -> u128 {
        match cfg {
            None => 0,
            Some(cfg) => 1 + fsa.config_index(cfg.state, cfg.node, cfg.entry, n) as u128,
        }
    };
    let mut pair_meetings = vec![None; k * (k - 1) / 2];
    let mut crossing_rounds = Vec::new();
    let mut nodes = starts.to_vec();
    if note_meetings(&nodes, 0, &mut pair_meetings) {
        return EnsembleDecision {
            verdict: EnsembleVerdict::Meets { round: 0 },
            crossing_rounds,
            pair_meetings,
        };
    }
    let mut cfgs: Vec<Option<AgentCfg>> = vec![None; k];
    let mut prev = nodes.clone();
    let mut seen = ProbeTable::new();
    let mut round = 0u64;
    loop {
        round += 1;
        if round & 0xFFF == 0 {
            rvz_sim::cancel::checkpoint();
        }
        let flags = sched.active(round);
        prev.copy_from_slice(&nodes);
        for i in 0..k {
            if flags[i] {
                let next = step_opt(t, fsa, starts[i], cfgs[i]);
                cfgs[i] = Some(next);
                nodes[i] = next.node;
            }
        }
        note_crossings(&nodes, &prev, round, &mut crossing_rounds);
        if note_meetings(&nodes, round, &mut pair_meetings) {
            return EnsembleDecision {
                verdict: EnsembleVerdict::Meets { round },
                crossing_rounds,
                pair_meetings,
            };
        }
        if round > p {
            let cycle_idx = (round - 1 - p) % c;
            let mut key = 0u128;
            for &cfg in &cfgs {
                key = key * stride + opt_index(cfg);
            }
            key = key * c as u128 + cycle_idx as u128;
            if let Some(entry_round) = seen.get_or_insert(key, round) {
                let lasso = EnsembleLasso {
                    stem: entry_round,
                    period: round - entry_round,
                    at_cycle: cfgs,
                };
                crossing_rounds.retain(|&r| r <= lasso.stem + lasso.period);
                return EnsembleDecision {
                    verdict: EnsembleVerdict::NeverMeets { lasso },
                    crossing_rounds,
                    pair_meetings,
                };
            }
        }
    }
}

/// Independently re-checks an [`EnsembleLasso`] certificate by naive
/// k-lane scheduled stepping — the k-lane sibling of
/// [`verify_schedule_lasso`]: (1) the structural claims (stem past the
/// prefix, period a multiple of the cycle length); (2) no round in
/// `0..=stem + period` co-locates *all* `k` agents; (3) the joint
/// configuration after round `stem` equals `at_cycle` and recurs after
/// round `stem + period`. Never panics on a hostile certificate.
pub fn verify_ensemble_lasso(
    t: &Tree,
    fsa: &Fsa,
    starts: &[NodeId],
    sched: &EnsembleSchedule,
    lasso: &EnsembleLasso,
) -> bool {
    let k = sched.lanes();
    if starts.len() != k || lasso.at_cycle.len() != k || lasso.period == 0 {
        return false;
    }
    if starts.iter().all(|&s| s == starts[0]) {
        return false; // gathered at round 0 — the certificate is bogus
    }
    if lasso.stem <= sched.prefix_len() || !lasso.period.is_multiple_of(sched.cycle_len()) {
        return false;
    }
    let mut cfgs: Vec<Option<AgentCfg>> = vec![None; k];
    let mut nodes = starts.to_vec();
    let mut at_stem: Option<Vec<Option<AgentCfg>>> = None;
    for round in 1..=lasso.stem + lasso.period {
        if round & 0xFFF == 0 {
            rvz_sim::cancel::checkpoint();
        }
        let flags = sched.active(round);
        for i in 0..k {
            if flags[i] {
                let next = step_opt(t, fsa, starts[i], cfgs[i]);
                cfgs[i] = Some(next);
                nodes[i] = next.node;
            }
        }
        if nodes.iter().all(|&v| v == nodes[0]) {
            return false; // they gather — the certificate is bogus
        }
        if round == lasso.stem {
            at_stem = Some(cfgs.clone());
        }
    }
    at_stem.as_deref() == Some(&lasso.at_cycle) && cfgs == lasso.at_cycle
}

/// [`decide_cost_bound`]'s k-lane sibling — the work-unit bound the
/// planner uses to price a k-lane decide cell honestly: the product walk
/// explores at most `cycle · (|C| + 1)^(k−1)` *joint* steps per lane-0
/// configuration, i.e. the `(|C| + 1)^k` blow-up normalized so that
/// `lanes = 2` reproduces [`decide_cost_bound`] exactly (the pair
/// formula's single factor). Saturating, never panicking: it is a routing
/// weight, not an allocation size.
pub fn ensemble_decide_cost_bound(fsa: &Fsa, n: usize, lanes: usize, cycle_len: u64) -> u64 {
    let configs = (fsa.num_configs(n) as u64).saturating_add(1);
    let mut acc = cycle_len.max(1);
    for _ in 1..lanes.max(2) {
        acc = acc.saturating_mul(configs);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_sim::{run_pair, Outcome, PairConfig, Schedule};
    use rvz_trees::generators::{colored_line, line, random_tree, spider, star};

    fn bw(t: &Tree) -> Fsa {
        Fsa::basic_walk(t.max_degree().max(1))
    }

    /// The decider against the bounded simulator, on a horizon that the
    /// instance is known to decide within.
    fn assert_matches_sim(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64, budget: u64) {
        let decision = decide_pair(t, fsa, a, b, delay);
        let mut x = fsa.runner();
        let mut y = fsa.runner();
        let run = run_pair(t, a, b, &mut x, &mut y, PairConfig::delayed(delay, budget));
        match run.outcome {
            Outcome::Met { round, .. } => {
                assert_eq!(decision.round(), Some(round), "a={a} b={b} θ={delay}");
            }
            Outcome::Timeout { .. } => {
                assert!(!decision.met(), "sim timed out but decider met: a={a} b={b} θ={delay}");
            }
        }
        assert_eq!(
            decision.crossings_within(decision.round().unwrap_or(budget)),
            run.crossings,
            "crossing count diverged: a={a} b={b} θ={delay}"
        );
    }

    #[test]
    fn decide_cost_bound_is_the_config_graph_formula() {
        // The planner's decide-cost feature: |C| + 1 per cycle slot, with
        // |C| = k · n · (Δ + 1) for the basic-walk automaton.
        let t = spider(3, 4);
        let fsa = bw(&t);
        let n = t.num_nodes();
        let configs = fsa.num_configs(n) as u64;
        assert_eq!(decide_cost_bound(&fsa, n, 1), configs + 1);
        assert_eq!(decide_cost_bound(&fsa, n, 6), 6 * (configs + 1));
        // `cycle_len = 0` (a prefix-only schedule) still weighs one slot.
        assert_eq!(decide_cost_bound(&fsa, n, 0), configs + 1);
        // The bound genuinely scans the lasso the decider walks: every
        // solo lasso fits under it.
        let solo = SoloLasso::tabulate(&t, &fsa, 0);
        assert!(solo.stem + solo.period <= decide_cost_bound(&fsa, n, 1));
        // Saturates instead of overflowing on adversarially huge cycles.
        assert_eq!(decide_cost_bound(&fsa, n, u64::MAX), u64::MAX);
    }

    #[test]
    fn single_edge_pair_is_certified_never_meets() {
        // Two basic walkers on one edge shuttle and cross forever.
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 1, 0);
        let lasso = *d.lasso().expect("never meets");
        assert!(lasso.period >= 1);
        assert!(verify_lasso(&t, &fsa, 0, 1, 0, &lasso));
        // Crossings at any budget: they cross every round.
        assert_eq!(d.crossings_within(10), 10);
        assert_eq!(d.crossings_within(1_000_000_007), 1_000_000_007);
    }

    #[test]
    fn tampered_lassos_are_rejected() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 1, 0);
        let good = *d.lasso().unwrap();
        let mut bad = good;
        bad.period += 1;
        assert!(!verify_lasso(&t, &fsa, 0, 1, 0, &bad));
        let mut swapped = good;
        swapped.at_cycle = (good.at_cycle.1, good.at_cycle.0);
        // On this symmetric instance the swapped configuration differs.
        assert_ne!(swapped.at_cycle, good.at_cycle);
        assert!(!verify_lasso(&t, &fsa, 0, 1, 0, &swapped));
    }

    #[test]
    fn relabeled_decisions_equal_direct_decisions_of_the_image_pair() {
        // Soundness of the sweep's orbit quotient, pinned exactly:
        // flipping through the port-preserving automorphism and/or (under
        // a lane-symmetric schedule) swapping the agents commutes with
        // every decider entry point — certificates included, not just
        // verdicts.
        let mut saw_flip = false;
        for t in [line(7), line(8), spider(3, 2), colored_line(6, 1)] {
            let flip = rvz_trees::symmetry::port_preserving_flip(&t);
            saw_flip |= flip.is_some();
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            let lockstep = Schedule::new(Vec::new(), vec![(true, true), (false, false)]);
            let intermittent = Schedule::intermittent(2, 0);
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    for delay in [0u64, 1, 5] {
                        let d = decide_pair(&t, &fsa, a, b, delay);
                        if let Some(f) = flip.as_deref() {
                            let image = decide_pair(&t, &fsa, f[a as usize], f[b as usize], delay);
                            assert_eq!(d.relabel(Some(f), false), image, "flip a={a} b={b}");
                        }
                        if delay == 0 {
                            let swapped = decide_pair(&t, &fsa, b, a, 0);
                            assert_eq!(d.relabel(None, true), swapped, "swap a={a} b={b}");
                        }
                    }
                    if let Some(f) = flip.as_deref() {
                        let wc = worst_case_delay(&t, &fsa, a, b);
                        let image = worst_case_delay(&t, &fsa, f[a as usize], f[b as usize]);
                        assert_eq!(wc.relabel(Some(f)), image, "∀-delay flip a={a} b={b}");
                        let sd = decide_pair_scheduled(&t, &fsa, a, b, &intermittent);
                        let s_image = decide_pair_scheduled(
                            &t,
                            &fsa,
                            f[a as usize],
                            f[b as usize],
                            &intermittent,
                        );
                        assert_eq!(sd.relabel(Some(f), false), s_image, "sched flip a={a} b={b}");
                    }
                    // Lockstep is lane-symmetric, so the swap is sound on
                    // the scheduled decider too.
                    let ld = decide_pair_scheduled(&t, &fsa, a, b, &lockstep);
                    let l_swapped = decide_pair_scheduled(&t, &fsa, b, a, &lockstep);
                    assert_eq!(ld.relabel(None, true), l_swapped, "sched swap a={a} b={b}");
                }
            }
        }
        assert!(saw_flip, "at least one instance must exercise the flip");
    }

    #[test]
    fn meets_agree_with_simulation_across_delays() {
        for t in [line(9), spider(3, 3), star(5)] {
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            for delay in [0u64, 1, 2, 5, 40] {
                for a in 0..n.min(4) {
                    for b in 0..n {
                        if a != b {
                            // θ + two joint Euler periods decides a basic
                            // walk; pad generously, it is still tiny.
                            let budget = delay + 8 * t.num_nodes() as u64 + 4;
                            assert_matches_sim(&t, &fsa, a, b, delay, budget);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn random_automata_agree_with_simulation() {
        // The decider is for arbitrary FSAs, stays included.
        let mut rng = StdRng::seed_from_u64(20100613);
        for trial in 0..30 {
            let t = random_tree(3 + (trial % 9), &mut rng);
            let fsa = Fsa::random(1 + trial % 5, t.max_degree().max(1), 0.3, &mut rng);
            let n = t.num_nodes() as NodeId;
            for delay in [0u64, 3] {
                for (a, b) in [(0, n - 1), (n - 1, 0), (0, n / 2)] {
                    if a != b {
                        assert_matches_sim(&t, &fsa, a, b, delay, 100_000);
                    }
                }
            }
        }
    }

    #[test]
    fn huge_delay_meets_at_home_without_walking_rounds() {
        // A's basic walk reaches B's home at a small round; a cosmic delay
        // must be answered instantly from the solo lasso.
        let t = line(9);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 6, u64::MAX / 2);
        assert_eq!(d.round(), Some(6));
    }

    #[test]
    fn worst_case_matches_brute_force_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let t = random_tree(7, &mut rng);
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let wc = worst_case_delay(&t, &fsa, a, b);
                    // Brute force: every delay up to a horizon comfortably
                    // past the solo lasso.
                    let solo = SoloLasso::tabulate(&t, &fsa, a);
                    let horizon = solo.distinct_delays() + 2 * solo.period.max(1);
                    let mut brute_all_meet = true;
                    let mut brute_worst = 0u64;
                    for delay in 0..horizon {
                        match decide_from(&t, &fsa, &solo, b, delay).verdict {
                            Verdict::Meets { round } => brute_worst = brute_worst.max(round),
                            Verdict::NeverMeets { .. } => {
                                brute_all_meet = false;
                                break;
                            }
                        }
                    }
                    match wc {
                        WorstCase::AllMeet { worst_round, .. } => {
                            assert!(brute_all_meet, "quantifier said all-meet, scan disagrees");
                            assert_eq!(worst_round, brute_worst);
                        }
                        WorstCase::Defeated { delay, ref decision, .. } => {
                            assert!(!brute_all_meet || delay >= horizon);
                            let lasso = decision.lasso().expect("defeat carries a lasso");
                            assert!(verify_lasso(&t, &fsa, a, b, delay, lasso));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn worst_case_defeat_on_the_symmetric_edge() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        match worst_case_delay(&t, &fsa, 0, 1) {
            WorstCase::Defeated { delay, decision, .. } => {
                assert_eq!(delay, 0, "already defeated with no delay");
                assert!(verify_lasso(&t, &fsa, 0, 1, delay, decision.lasso().unwrap()));
            }
            WorstCase::AllMeet { .. } => panic!("the single edge defeats the basic walk"),
        }
    }

    #[test]
    fn scheduled_decider_agrees_with_scheduled_simulation() {
        use rvz_sim::run_pair_scheduled;
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(2),
            Schedule::intermittent(2, 0),
            Schedule::intermittent(3, 1),
            Schedule::crash_after(3),
            Schedule::adversarial(0xD0_0D, 5, 4),
        ];
        let mut rng = StdRng::seed_from_u64(1013);
        for trial in 0..12 {
            let t = random_tree(3 + (trial % 6), &mut rng);
            let n = t.num_nodes() as NodeId;
            for fsa in [bw(&t), Fsa::random(1 + trial % 4, t.max_degree().max(1), 0.3, &mut rng)] {
                for sched in &schedules {
                    for (a, b) in [(0, n - 1), (n - 1, 0), (0, n / 2)] {
                        if a == b {
                            continue;
                        }
                        let decision = decide_pair_scheduled(&t, &fsa, a, b, sched);
                        if let Some(lasso) = decision.lasso() {
                            assert!(
                                verify_schedule_lasso(&t, &fsa, a, b, sched, lasso),
                                "lasso failed re-verification: {sched:?} ({a},{b})"
                            );
                        }
                        let budget = 50_000u64;
                        let mut x = fsa.runner();
                        let mut y = fsa.runner();
                        let run =
                            run_pair_scheduled(&t, a, b, &mut x, &mut y, sched, budget, false);
                        match run.outcome {
                            Outcome::Met { round, .. } => {
                                assert_eq!(decision.round(), Some(round), "{sched:?} ({a},{b})");
                                assert_eq!(decision.crossings_within(round), run.crossings);
                            }
                            Outcome::Timeout { .. } => {
                                assert!(
                                    decision.round().is_none_or(|r| r > budget),
                                    "sim timed out before a decided meeting: {sched:?} ({a},{b})"
                                );
                                if !decision.met() {
                                    assert_eq!(
                                        decision.crossings_within(budget),
                                        run.crossings,
                                        "closed-form crossings diverged: {sched:?} ({a},{b})"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn start_delay_schedules_match_the_fixed_delay_decider() {
        let t = spider(3, 3);
        let fsa = bw(&t);
        let n = t.num_nodes() as NodeId;
        for delay in [0u64, 1, 4, 11] {
            for b in 1..n {
                let fixed = decide_pair(&t, &fsa, 0, b, delay);
                let sched = Schedule::start_delay(delay);
                let scheduled = decide_pair_scheduled(&t, &fsa, 0, b, &sched);
                assert_eq!(fixed.round(), scheduled.round(), "θ={delay} b={b}");
                for budget in [10u64, 100, 1_000_000_007] {
                    if !fixed.met() {
                        assert_eq!(
                            fixed.crossings_within(budget),
                            scheduled.crossings_within(budget),
                            "θ={delay} b={b} budget={budget}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn intermittence_breaks_the_shuttle_parity() {
        // The single-edge shuttle never meets simultaneously (parity), but
        // slowing one agent to half speed breaks the parity invariant: a
        // round in which only A moves lands it on the frozen B.
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let sim = decide_pair_scheduled(&t, &fsa, 0, 1, &Schedule::simultaneous());
        assert!(!sim.met(), "the simultaneous shuttle crosses forever");
        let half = decide_pair_scheduled(&t, &fsa, 0, 1, &Schedule::intermittent(2, 0));
        assert_eq!(half.round(), Some(2), "A's solo round lands on the frozen B");
    }

    #[test]
    fn tampered_schedule_lassos_are_rejected() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        // The real shuttle: a moving never-meets certificate.
        let sim = Schedule::simultaneous();
        let d = decide_pair_scheduled(&t, &fsa, 0, 1, &sim);
        let good = *d.lasso().expect("two walkers on one edge never meet");
        assert!(verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &good));
        let mut bad = good;
        bad.period += 1; // recurrence no longer holds at the claimed round
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &bad));
        let mut shifted = good;
        shifted.stem = 0; // structurally invalid: inside the (empty) prefix
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &shifted));
        let mut wrong_cfg = good;
        wrong_cfg.at_cycle = (None, good.at_cycle.1); // claims A never started
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &sim, &wrong_cfg));
        // A frozen 2-cycle: the certified period must stay a multiple of
        // the cycle length, or the cycle-position recurrence proves
        // nothing — the verifier rejects an odd period structurally.
        let frozen = Schedule::new(Vec::new(), vec![(false, false), (false, false)]);
        let d2 = decide_pair_scheduled(&t, &fsa, 0, 1, &frozen);
        let good2 = *d2.lasso().expect("frozen agents at distinct starts never meet");
        assert!(good2.period.is_multiple_of(2));
        assert!(verify_schedule_lasso(&t, &fsa, 0, 1, &frozen, &good2));
        let mut odd = good2;
        odd.period += 1;
        assert!(!verify_schedule_lasso(&t, &fsa, 0, 1, &frozen, &odd));
    }

    #[test]
    fn worst_case_schedule_quantifies_over_the_class() {
        let t = line(9);
        let fsa = bw(&t);
        // θ = 1 defeats the basic walk on every feasible pair (the e9
        // certified result), so a class containing it is always defeated…
        let class = [Schedule::simultaneous(), Schedule::start_delay(1)];
        match worst_case_schedule(&t, &fsa, 0, 5, &class) {
            ScheduleWorstCase::Defeated { index, decision } => {
                assert!(index <= 1);
                let lasso = decision.lasso().expect("defeat carries a lasso");
                assert!(verify_schedule_lasso(&t, &fsa, 0, 5, &class[index], lasso));
            }
            ScheduleWorstCase::AllMeet { .. } => panic!("θ=1 must defeat the basic walk"),
        }
        // …while a class of meeting scenarios reports the slowest one:
        // with B crashed at its start, A's endpoint walk needs exactly 5
        // rounds to step onto node 5.
        let class = [Schedule::crash_after(0)];
        match worst_case_schedule(&t, &fsa, 0, 5, &class) {
            ScheduleWorstCase::AllMeet { worst_index, worst_round, ref decision } => {
                assert_eq!(worst_index, 0);
                assert_eq!(worst_round, 5);
                assert_eq!(decision.round(), Some(5));
            }
            ScheduleWorstCase::Defeated { .. } => panic!("a parked agent is met at home"),
        }
    }

    /// The historical decider: the explicit joint-configuration walk with a
    /// hash-map visited set. Kept verbatim as the differential oracle for
    /// the product-lasso closed form.
    fn naive_walk(t: &Tree, fsa: &Fsa, solo: &SoloLasso, b: NodeId, delay: u64) -> Decision {
        use std::collections::HashMap;
        let a = solo.start;
        if a == b {
            return Decision { verdict: Verdict::Meets { round: 0 }, crossing_rounds: Vec::new() };
        }
        if let Some(tv) = solo.first_visit(b) {
            if tv <= delay {
                return Decision {
                    verdict: Verdict::Meets { round: tv },
                    crossing_rounds: Vec::new(),
                };
            }
        }
        let mut prev_a = solo.position(delay);
        let mut prev_b = b;
        let mut cfg_a: Option<AgentCfg> = (delay >= 1).then(|| solo.config_at(delay));
        let mut cfg_b: Option<AgentCfg> = None;
        let mut crossing_rounds = Vec::new();
        let mut seen: HashMap<(AgentCfg, AgentCfg), u64> = HashMap::new();
        let mut round = delay;
        loop {
            round += 1;
            let na = match cfg_a {
                None => step_first(t, fsa, a),
                Some(c) => step(t, fsa, c),
            };
            let nb = match cfg_b {
                None => step_first(t, fsa, b),
                Some(c) => step(t, fsa, c),
            };
            if na.node == prev_b && nb.node == prev_a && na.node != nb.node {
                crossing_rounds.push(round);
            }
            if na.node == nb.node {
                return Decision { verdict: Verdict::Meets { round }, crossing_rounds };
            }
            if let Some(&entry_round) = seen.get(&(na, nb)) {
                let lasso =
                    Lasso { stem: entry_round, period: round - entry_round, at_cycle: (na, nb) };
                crossing_rounds.retain(|&r| r <= lasso.stem + lasso.period);
                return Decision { verdict: Verdict::NeverMeets { lasso }, crossing_rounds };
            }
            seen.insert((na, nb), round);
            prev_a = na.node;
            prev_b = nb.node;
            cfg_a = Some(na);
            cfg_b = Some(nb);
        }
    }

    #[test]
    fn product_lasso_matches_naive_walk() {
        // Full Decision equality — verdict, every Lasso field, and the raw
        // crossing list — between the closed form and the historical
        // hash-map walk, across trees, automata, and delays.
        let mut rng = StdRng::seed_from_u64(0xFA16);
        for trial in 0..24 {
            let t = random_tree(3 + (trial % 10), &mut rng);
            let n = t.num_nodes() as NodeId;
            for fsa in [bw(&t), Fsa::random(1 + trial % 5, t.max_degree().max(1), 0.3, &mut rng)] {
                for a in 0..n.min(5) {
                    let solo_a = SoloLasso::tabulate(&t, &fsa, a);
                    for b in 0..n {
                        if a == b {
                            continue;
                        }
                        let solo_b = SoloLasso::tabulate(&t, &fsa, b);
                        for delay in [0u64, 1, 2, 3, 7, 19, 1_000_003] {
                            let new = decide_from_lassos(&solo_a, &solo_b, delay);
                            let old = naive_walk(&t, &fsa, &solo_a, b, delay);
                            assert_eq!(new.verdict, old.verdict, "a={a} b={b} θ={delay}");
                            assert_eq!(
                                new.crossing_rounds, old.crossing_rounds,
                                "a={a} b={b} θ={delay}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_quantifier_is_byte_identical_to_sequential() {
        // line(40) from an endpoint: first_visit(39) = 39 > the parallel
        // threshold, so the chunked rayon path runs; its result must equal
        // a hand-rolled sequential scan exactly.
        let t = line(40);
        let fsa = bw(&t);
        for (a, b) in [(0u32, 39u32), (39, 0), (1, 39)] {
            let solo_a = SoloLasso::tabulate(&t, &fsa, a);
            let solo_b = SoloLasso::tabulate(&t, &fsa, b);
            let first_home = solo_a.first_visit(b);
            let horizon = first_home.unwrap_or_else(|| solo_a.distinct_delays());
            assert!(horizon > WORST_CASE_PAR_THRESHOLD, "instance must exercise the parallel path");
            let par = worst_case_from_lassos(&solo_a, &solo_b);
            // Sequential oracle.
            let mut worst: Option<(u64, u64)> = None;
            let mut defeat: Option<(u64, u64)> = None; // (delay, checked)
            let mut checked = 0u64;
            for delay in 0..horizon {
                checked += 1;
                match decide_from_lassos(&solo_a, &solo_b, delay).verdict {
                    Verdict::Meets { round } => {
                        if worst.is_none_or(|(r, _)| round > r) {
                            worst = Some((round, delay));
                        }
                    }
                    Verdict::NeverMeets { .. } => {
                        defeat = Some((delay, checked));
                        break;
                    }
                }
            }
            match (par, defeat) {
                (WorstCase::Defeated { delay, delays_checked, .. }, Some((d, c))) => {
                    assert_eq!((delay, delays_checked), (d, c), "a={a} b={b}");
                }
                (WorstCase::AllMeet { worst_delay, worst_round, delays_checked, .. }, None) => {
                    if let Some(tv) = first_home {
                        checked += 1;
                        if worst.is_none_or(|(r, _)| tv > r) {
                            worst = Some((tv, tv));
                        }
                    }
                    let (r, d) = worst.expect("at least one class");
                    assert_eq!((worst_round, worst_delay, delays_checked), (r, d, checked));
                }
                (got, want) => panic!("verdict shape diverged: {got:?} vs {want:?} (a={a} b={b})"),
            }
        }
    }

    #[test]
    fn ensemble_decider_at_k2_matches_the_pair_deciders() {
        // Verdict rounds, crossing counts, and lasso shapes must be
        // identical to the pair engines on every two-lane instance — the
        // byte-compatibility contract of the refactor.
        let mut rng = StdRng::seed_from_u64(0xE11);
        for trial in 0..10 {
            let t = random_tree(3 + (trial % 6), &mut rng);
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            for (a, b) in [(0, n - 1), (n - 1, 0), (0, n / 2)] {
                if a == b {
                    continue;
                }
                for delay in [0u64, 1, 3, 17] {
                    let pair = decide_pair(&t, &fsa, a, b, delay);
                    let ens = decide_ensemble(
                        &t,
                        &fsa,
                        &[a, b],
                        &EnsembleSchedule::start_delays(&[0, delay]),
                    );
                    assert_eq!(ens.round(), pair.round(), "θ={delay} ({a},{b})");
                    assert_eq!(ens.crossing_rounds, pair.crossing_rounds, "θ={delay} ({a},{b})");
                    if let (Some(el), Some(pl)) = (ens.lasso(), pair.lasso()) {
                        assert_eq!(el.stem, pl.stem);
                        assert_eq!(el.period, pl.period);
                        assert_eq!(
                            el.at_cycle,
                            vec![Some(pl.at_cycle.0), Some(pl.at_cycle.1)],
                            "θ={delay} ({a},{b})"
                        );
                        for budget in [3u64, 50, 1_000_000_007] {
                            assert_eq!(ens.crossings_within(budget), pair.crossings_within(budget));
                        }
                    }
                }
                for sched in [
                    Schedule::intermittent(2, 0),
                    Schedule::crash_after(2),
                    Schedule::adversarial(0xBEEF, 4, 3),
                ] {
                    let pair = decide_pair_scheduled(&t, &fsa, a, b, &sched);
                    let ens =
                        decide_ensemble(&t, &fsa, &[a, b], &EnsembleSchedule::from_pair(&sched));
                    assert_eq!(ens.round(), pair.round(), "{sched:?} ({a},{b})");
                    assert_eq!(ens.crossing_rounds, pair.crossing_rounds, "{sched:?} ({a},{b})");
                    if let (Some(el), Some(pl)) = (ens.lasso(), pair.lasso()) {
                        assert_eq!((el.stem, el.period), (pl.stem, pl.period));
                        assert_eq!(el.at_cycle, vec![pl.at_cycle.0, pl.at_cycle.1]);
                    }
                }
            }
        }
    }

    #[test]
    fn ensemble_decider_agrees_with_ensemble_simulation() {
        use rvz_sim::run_ensemble_fsa;
        let mut rng = StdRng::seed_from_u64(0x6A7);
        for trial in 0..10 {
            let t = random_tree(3 + (trial % 5), &mut rng);
            let n = t.num_nodes() as NodeId;
            let fsa = bw(&t);
            for k in [2usize, 3] {
                let schedules = [
                    EnsembleSchedule::simultaneous(k),
                    EnsembleSchedule::start_delays(&(0..k as u64).collect::<Vec<_>>()),
                    EnsembleSchedule::crash_last_after(k, 2),
                    EnsembleSchedule::intermittent_last(k, 2, 0),
                ];
                let tuples = [
                    (0..k as NodeId).map(|i| i % n).collect::<Vec<_>>(),
                    (0..k as NodeId).map(|i| (n - 1).saturating_sub(i % n)).collect(),
                ];
                for sched in &schedules {
                    for starts in &tuples {
                        let decision = decide_ensemble(&t, &fsa, starts, sched);
                        if let Some(lasso) = decision.lasso() {
                            assert!(
                                verify_ensemble_lasso(&t, &fsa, starts, sched, lasso),
                                "lasso failed re-verification: k={k} {starts:?}"
                            );
                        }
                        let budget = 50_000u64;
                        let mut agents: Vec<_> = (0..k).map(|_| fsa.runner()).collect();
                        let run = run_ensemble_fsa(&t, starts, &mut agents, sched, budget, false);
                        match run.outcome {
                            Outcome::Met { round, .. } => {
                                assert_eq!(decision.round(), Some(round), "k={k} {starts:?}");
                                assert_eq!(decision.crossings_within(round), run.crossings);
                            }
                            Outcome::Timeout { .. } => {
                                assert!(decision.round().is_none_or(|r| r > budget));
                                if !decision.met() {
                                    assert_eq!(
                                        decision.crossings_within(budget),
                                        run.crossings,
                                        "k={k} {starts:?} {sched:?}"
                                    );
                                }
                            }
                        }
                        // Pairwise meetings agree wherever the bounded run
                        // could observe them.
                        for (slot, (dec, sim)) in
                            decision.pair_meetings().iter().zip(&run.pair_meetings).enumerate()
                        {
                            match (dec, sim) {
                                (Some(d), Some(s)) => {
                                    assert_eq!(d, s, "k={k} {starts:?} slot {slot}")
                                }
                                (Some(d), None) => assert!(*d > budget, "k={k} slot {slot}"),
                                (None, Some(s)) => {
                                    panic!("sim met pair {slot} at {s}, decider never did")
                                }
                                (None, None) => {}
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ensemble_closed_form_matches_the_product_walk() {
        // On start-delay shapes both decide_ensemble paths are reachable;
        // the dispatch must be invisible: full EnsembleDecision equality.
        let mut rng = StdRng::seed_from_u64(0xC105);
        for trial in 0..8 {
            let t = random_tree(3 + (trial % 5), &mut rng);
            let n = t.num_nodes() as NodeId;
            let fsa = bw(&t);
            for delays in [vec![0u64, 0, 0], vec![0, 1, 3], vec![2, 0, 5]] {
                let starts = vec![0, n / 2, n - 1];
                let sched = EnsembleSchedule::start_delays(&delays);
                let lassos: Vec<SoloLasso> =
                    starts.iter().map(|&s| SoloLasso::tabulate(&t, &fsa, s)).collect();
                let refs: Vec<&SoloLasso> = lassos.iter().collect();
                let closed = decide_ensemble_from_lassos(&refs, &delays);
                let walked = decide_ensemble_walk(&t, &fsa, &starts, &sched);
                assert_eq!(closed, walked, "{delays:?} on {n} nodes");
            }
        }
    }

    #[test]
    fn crashed_lane_defeats_gathering_on_the_shuttle() {
        // The e11 phenomenon in miniature: a crashed agent parks, so
        // gathering reduces to both survivors standing on it *in the same
        // round* — and on the single edge the two survivors shuttle in
        // antiphase forever, each visiting the parked copy without ever
        // co-locating with the other.
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let sched = EnsembleSchedule::crash_last_after(3, 0);
        let starts = [0u32, 1, 1];
        let d = decide_ensemble(&t, &fsa, &starts, &sched);
        let lasso = d.lasso().expect("crash defeats gathering here");
        assert!(verify_ensemble_lasso(&t, &fsa, &starts, &sched, lasso));
        let pm = d.pair_meetings();
        assert_eq!(pm[pair_index(3, 1, 2)], Some(0), "lane 1 starts on the parked lane");
        assert_eq!(pm[pair_index(3, 0, 2)], Some(1), "lane 0 steps onto the parked lane");
        assert_eq!(pm[pair_index(3, 0, 1)], None, "the survivors shuttle in antiphase");
    }

    #[test]
    fn tampered_ensemble_lassos_are_rejected() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let sched = EnsembleSchedule::crash_last_after(3, 0);
        let starts = [0u32, 1, 1];
        let good = decide_ensemble(&t, &fsa, &starts, &sched).lasso().cloned().unwrap();
        assert!(verify_ensemble_lasso(&t, &fsa, &starts, &sched, &good));
        let mut bad = good.clone();
        bad.period += 1;
        assert!(!verify_ensemble_lasso(&t, &fsa, &starts, &sched, &bad));
        let mut short = good.clone();
        short.at_cycle.pop();
        assert!(!verify_ensemble_lasso(&t, &fsa, &starts, &sched, &short));
        let mut wrong = good.clone();
        wrong.at_cycle[0] = None; // claims lane 0 never started
        assert!(!verify_ensemble_lasso(&t, &fsa, &starts, &sched, &wrong));
        let mut zero = good;
        zero.period = 0;
        assert!(!verify_ensemble_lasso(&t, &fsa, &starts, &sched, &zero));
    }

    #[test]
    fn relabeled_ensemble_decisions_equal_direct_decisions_of_the_image_tuple() {
        // The flip always commutes; lane permutations additionally need a
        // lane-symmetric schedule — exactly the sweep's orbit rules.
        let (t, flip) = [line(7), line(8), spider(3, 2), colored_line(6, 1)]
            .into_iter()
            .find_map(|t| rvz_trees::symmetry::port_preserving_flip(&t).map(|flip| (t, flip)))
            .expect("at least one candidate tree must flip");
        let fsa = bw(&t);
        let n = t.num_nodes() as NodeId;
        let sym = EnsembleSchedule::simultaneous(3);
        let asym = EnsembleSchedule::start_delays(&[0, 0, 2]);
        for starts in [[0u32, n / 2, n - 1], [1, n - 1, 2], [0, 1, 2]] {
            let image: Vec<NodeId> = starts.iter().map(|&v| flip[v as usize]).collect();
            for sched in [&sym, &asym] {
                let d = decide_ensemble(&t, &fsa, &starts, sched);
                let direct = decide_ensemble(&t, &fsa, &image, sched);
                assert_eq!(d.relabel(Some(&flip[..]), None), direct, "flip {starts:?}");
            }
            // Rotate the lanes under the symmetric schedule.
            let perm = [1usize, 2, 0];
            let rotated: Vec<NodeId> = {
                let mut v = vec![0; 3];
                for i in 0..3 {
                    v[perm[i]] = starts[i];
                }
                v
            };
            let d = decide_ensemble(&t, &fsa, &starts, &sym);
            let direct = decide_ensemble(&t, &fsa, &rotated, &sym);
            assert_eq!(d.relabel(None, Some(&perm)), direct, "perm {starts:?}");
        }
    }

    #[test]
    fn ensemble_cost_bound_extends_the_pair_formula() {
        let t = spider(3, 4);
        let fsa = bw(&t);
        let n = t.num_nodes();
        // lanes = 2 reproduces the pair feature exactly…
        for cycle in [0u64, 1, 6] {
            assert_eq!(
                ensemble_decide_cost_bound(&fsa, n, 2, cycle),
                decide_cost_bound(&fsa, n, cycle)
            );
        }
        // …and each extra lane multiplies by |C| + 1.
        let configs = fsa.num_configs(n) as u64 + 1;
        assert_eq!(
            ensemble_decide_cost_bound(&fsa, n, 3, 6),
            decide_cost_bound(&fsa, n, 6).saturating_mul(configs)
        );
        // Saturates instead of overflowing on absurd lane counts.
        assert_eq!(ensemble_decide_cost_bound(&fsa, n, 64, u64::MAX), u64::MAX);
    }

    #[test]
    fn solo_lasso_is_the_euler_tour_for_basic_walks() {
        let t = line(6);
        let fsa = bw(&t);
        let solo = SoloLasso::tabulate(&t, &fsa, 0);
        // §2.2: period 2(n−1), entered immediately.
        assert_eq!(solo.period, 10);
        assert_eq!(solo.stem, 0);
        for r in 1..=40u64 {
            assert_eq!(solo.position(r), solo.position(r + 10));
        }
        assert_eq!(solo.first_visit(5), Some(5));
    }

    #[test]
    fn solo_lasso_wire_round_trips_and_rejects_corruption() {
        let t = line(7);
        let fsa = bw(&t);
        let solo = SoloLasso::tabulate(&t, &fsa, 3);
        let bytes = solo.to_bytes();
        let back = SoloLasso::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.stem, solo.stem);
        assert_eq!(back.period, solo.period);
        for r in 0..=30u64 {
            assert_eq!(back.position(r), solo.position(r), "round {r}");
            if r >= 1 {
                assert_eq!(back.config_at(r), solo.config_at(r), "round {r}");
            }
        }
        assert_eq!(back.to_bytes(), bytes, "canonical re-encoding");
        for len in 0..bytes.len() {
            assert!(SoloLasso::from_bytes(&bytes[..len]).is_err(), "truncated at {len}");
        }
        let mut zero_period = bytes.clone();
        zero_period[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert!(SoloLasso::from_bytes(&zero_period).is_err(), "period 0 must be rejected");
    }
}
