//! The exact rendezvous decider: reachability + cycle detection over the
//! **joint configuration graph** instead of bounded simulation.
//!
//! A pair of identical [`Fsa`] agents on a tree is a *finite* deterministic
//! system: each agent's situation is a configuration `(state, node,
//! entry port)` (the [`Fsa::config_index`] export), and a two-agent round
//! maps a joint configuration to exactly one successor. "The agents never
//! meet" is therefore not a timeout — it is the statement that the joint
//! trajectory enters a cycle containing no co-location, which
//! [`decide_pair`] certifies with a [`Lasso`] (stem + period + the repeated
//! configuration) after exploring at most one lasso worth of rounds, with
//! **no round budget at all**. This is the product-construction idea used
//! to separate memory classes in the delay-fault rendezvous literature
//! (Chalopin et al., *Rendezvous in Networks in Spite of Delay Faults*;
//! Pelc–Yadav, *Using Time to Break Symmetry*), applied to the
//! Fraigniaud–Pelc adversary: it turns the sweep engine's empirical
//! timeout cells into machine-checkable `NeverMeets` certificates.
//!
//! The adversary's start delay θ splits a run into two regions:
//!
//! * **not-yet-started** (rounds `1..=θ`): only agent A moves; agent B is
//!   parked at its start and can be met there. A alone is eventually
//!   periodic — [`SoloLasso`] tabulates its configuration lasso once — so
//!   arbitrarily large θ are answered by residue arithmetic, and the
//!   universal question over *all* delays ([`worst_case_delay`]) reduces
//!   to one fixed-point computation over the finitely many distinct
//!   activation configurations instead of a scan over delays `0..D`:
//!   every θ beyond the solo lasso behaves like its residue
//!   representative, and if A ever steps on B's home solo, every larger
//!   delay meets right there.
//! * **both-active** (rounds `> θ`): the joint configuration walk, where
//!   cycle detection decides.
//!
//! Everything the sweep's replay executor reports is reproduced exactly —
//! meeting round, and crossing counts at any budget via
//! [`Decision::crossings_within`] (crossing patterns are periodic along
//! the certified cycle, so the count at a huge budget is closed-form).
//! Certificates are checkable by independent re-simulation
//! ([`verify_lasso`]).

use rvz_agent::fsa::Fsa;
use rvz_agent::line_fsa::StateId;
use rvz_agent::model::{Action, Obs};
use rvz_trees::{NodeId, Port, Tree};
use std::collections::HashMap;

/// One agent's situation between rounds: the automaton state that emitted
/// the last action, the occupied node, and the port of entry (`None` after
/// a stay — exactly the [`rvz_sim::Cursor`] + runner-state pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentCfg {
    pub state: StateId,
    pub node: NodeId,
    pub entry: Option<Port>,
}

/// Applies state `s`'s action from `node`: the shared tail of the first
/// and subsequent activation steps.
#[inline]
fn apply(t: &Tree, fsa: &Fsa, s: StateId, node: NodeId) -> AgentCfg {
    match fsa.action(s) {
        Action::Stay => AgentCfg { state: s, node, entry: None },
        Action::Move(raw) => {
            let p = raw % t.degree(node);
            AgentCfg { state: s, node: t.neighbor(node, p), entry: Some(t.entry_port(node, p)) }
        }
    }
}

/// First activation: emit `λ(s0)` without a transition (the
/// `FsaRunner` contract).
#[inline]
fn step_first(t: &Tree, fsa: &Fsa, start: NodeId) -> AgentCfg {
    apply(t, fsa, fsa.s0, start)
}

/// Any later round: transition on the observation, then act.
#[inline]
fn step(t: &Tree, fsa: &Fsa, cfg: AgentCfg) -> AgentCfg {
    let s = fsa.next(cfg.state, Obs { entry: cfg.entry, degree: t.degree(cfg.node) });
    apply(t, fsa, s, cfg.node)
}

/// The tabulated solo lasso of one agent: configurations after rounds
/// `1..stem + period` are pairwise distinct, and the configuration after
/// round `stem + period` equals the one after round `stem`
/// (with `stem ≥ 1`; round 0 — parked, unstarted — never recurs). Built by
/// [`SoloLasso::tabulate`] with a dense visited array over
/// [`Fsa::num_configs`].
#[derive(Debug, Clone)]
pub struct SoloLasso {
    start: NodeId,
    /// `cfgs[r - 1]` = configuration after round `r`, `r = 1..=stem+period`.
    cfgs: Vec<AgentCfg>,
    pub stem: u64,
    pub period: u64,
}

impl SoloLasso {
    /// Runs the agent solo until its configuration repeats. Terminates
    /// within [`Fsa::num_configs`]`(n) + 1` rounds.
    pub fn tabulate(t: &Tree, fsa: &Fsa, start: NodeId) -> Self {
        assert!(fsa.max_degree >= t.max_degree().max(1), "automaton must cover the tree's degrees");
        let n = t.num_nodes();
        // Dense first-seen-round table over the exported config indexing.
        let mut first_seen = vec![0u64; fsa.num_configs(n)];
        let mut cfgs = Vec::new();
        let mut cur = step_first(t, fsa, start);
        let mut round = 1u64;
        loop {
            let idx = fsa.config_index(cur.state, cur.node, cur.entry, n);
            if first_seen[idx] != 0 {
                let entry_round = first_seen[idx];
                return SoloLasso {
                    start,
                    cfgs,
                    stem: entry_round - 1,
                    period: round - entry_round,
                };
            }
            first_seen[idx] = round;
            cfgs.push(cur);
            cur = step(t, fsa, cur);
            round += 1;
        }
    }

    /// Configuration after round `r ≥ 1`, for arbitrarily large `r` (the
    /// lasso answers every round by residue).
    pub fn config_at(&self, r: u64) -> AgentCfg {
        debug_assert!(r >= 1);
        let len = self.cfgs.len() as u64;
        let idx = if r <= len { r - 1 } else { self.stem + (r - 1 - self.stem) % self.period };
        self.cfgs[idx as usize]
    }

    /// Node occupied after round `r` (round 0 = the start).
    pub fn position(&self, r: u64) -> NodeId {
        if r == 0 {
            self.start
        } else {
            self.config_at(r).node
        }
    }

    /// First round `≥ 1` at which the agent stands on `node`, if it ever
    /// does (the whole reachable set lies within the tabulated lasso).
    pub fn first_visit(&self, node: NodeId) -> Option<u64> {
        self.cfgs.iter().position(|c| c.node == node).map(|i| i as u64 + 1)
    }

    /// Number of *distinct* delays that can produce distinct behavior:
    /// delay 0 (unstarted activation config) plus one per tabulated solo
    /// configuration — every larger delay repeats a residue.
    pub fn distinct_delays(&self) -> u64 {
        self.cfgs.len() as u64 + 1
    }
}

/// A machine-checkable "never meets" certificate: the joint configuration
/// [`Lasso::at_cycle`] is reached after round [`Lasso::stem`], recurs
/// exactly [`Lasso::period`] rounds later, and no round in
/// `0..=stem + period` co-locates the agents — hence no round ever does.
/// [`verify_lasso`] re-checks all three claims by independent stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lasso {
    /// Global round after which the certified cycle is entered.
    pub stem: u64,
    /// Cycle length in rounds.
    pub period: u64,
    /// The recurring joint configuration (A, B) after round `stem`.
    pub at_cycle: (AgentCfg, AgentCfg),
}

/// The decider's verdict for one `(pair, delay)` instance. No timeout arm
/// exists: the configuration graph is finite, so one of these always
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// First co-location happens at the end of `round` (0 = same start).
    Meets { round: u64 },
    /// Certified: no round ever co-locates the agents.
    NeverMeets { lasso: Lasso },
}

/// A decided instance: the verdict plus enough crossing bookkeeping to
/// reproduce the bounded simulator's row at any budget.
#[derive(Debug, Clone)]
pub struct Decision {
    pub verdict: Verdict,
    /// Global rounds with an edge crossing, over the explored horizon
    /// (through the meeting round, or through `stem + period`).
    crossing_rounds: Vec<u64>,
}

impl Decision {
    pub fn met(&self) -> bool {
        matches!(self.verdict, Verdict::Meets { .. })
    }

    /// Meeting round, `None` for certified never-meets.
    pub fn round(&self) -> Option<u64> {
        match self.verdict {
            Verdict::Meets { round } => Some(round),
            Verdict::NeverMeets { .. } => None,
        }
    }

    pub fn lasso(&self) -> Option<&Lasso> {
        match &self.verdict {
            Verdict::Meets { .. } => None,
            Verdict::NeverMeets { lasso } => Some(lasso),
        }
    }

    /// Crossings in rounds `1..=budget` — exactly what
    /// [`rvz_sim::run_pair`] counts with that round budget (for budgets
    /// that do not truncate a meeting). Along a certified cycle the
    /// crossing pattern is periodic, so arbitrary budgets are answered in
    /// closed form, never by walking rounds.
    pub fn crossings_within(&self, budget: u64) -> u64 {
        let upto = |limit: u64| self.crossing_rounds.partition_point(|&r| r <= limit) as u64;
        match self.verdict {
            Verdict::Meets { .. } => upto(budget),
            Verdict::NeverMeets { lasso } => {
                let explored = lasso.stem + lasso.period;
                if budget <= explored {
                    return upto(budget);
                }
                let in_stem = upto(lasso.stem);
                let per_cycle = upto(explored) - in_stem;
                let past = budget - lasso.stem;
                let full_cycles = past / lasso.period;
                let partial = past % lasso.period;
                let in_partial = upto(lasso.stem + partial) - in_stem;
                in_stem + full_cycles * per_cycle + in_partial
            }
        }
    }
}

/// Decides one `(tree, pair, automaton, delay)` instance exactly — see the
/// module docs. Works for *any* start delay, however large: the
/// not-yet-started region is answered from A's solo lasso.
pub fn decide_pair(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64) -> Decision {
    let solo = SoloLasso::tabulate(t, fsa, a);
    decide_from(t, fsa, &solo, b, delay)
}

/// [`decide_pair`] with A's solo lasso precomputed (the quantifier layer
/// shares one tabulation across every delay it checks).
pub fn decide_from(t: &Tree, fsa: &Fsa, solo: &SoloLasso, b: NodeId, delay: u64) -> Decision {
    let a = solo.start;
    if a == b {
        return Decision { verdict: Verdict::Meets { round: 0 }, crossing_rounds: Vec::new() };
    }
    // Not-yet-started region: B is parked at home; A meets it there iff A's
    // solo walk reaches `b` within the delay. No crossings are possible
    // while only one agent moves.
    if let Some(tv) = solo.first_visit(b) {
        if tv <= delay {
            return Decision { verdict: Verdict::Meets { round: tv }, crossing_rounds: Vec::new() };
        }
    }
    // Both-active region, from round `delay + 1`. The visited map is keyed
    // by the joint configuration; a repeat certifies the lasso.
    let mut prev_a = solo.position(delay);
    let mut prev_b = b;
    let mut cfg_a: Option<AgentCfg> = (delay >= 1).then(|| solo.config_at(delay));
    let mut cfg_b: Option<AgentCfg> = None;
    let mut crossing_rounds = Vec::new();
    let mut seen: HashMap<(AgentCfg, AgentCfg), u64> = HashMap::new();
    let mut round = delay;
    loop {
        round += 1;
        let na = match cfg_a {
            None => step_first(t, fsa, a),
            Some(c) => step(t, fsa, c),
        };
        let nb = match cfg_b {
            None => step_first(t, fsa, b),
            Some(c) => step(t, fsa, c),
        };
        if na.node == prev_b && nb.node == prev_a && na.node != nb.node {
            crossing_rounds.push(round);
        }
        if na.node == nb.node {
            return Decision { verdict: Verdict::Meets { round }, crossing_rounds };
        }
        if let Some(&entry_round) = seen.get(&(na, nb)) {
            let lasso =
                Lasso { stem: entry_round, period: round - entry_round, at_cycle: (na, nb) };
            // Trim bookkeeping to the explored horizon the lasso covers.
            crossing_rounds.retain(|&r| r <= lasso.stem + lasso.period);
            return Decision { verdict: Verdict::NeverMeets { lasso }, crossing_rounds };
        }
        seen.insert((na, nb), round);
        prev_a = na.node;
        prev_b = nb.node;
        cfg_a = Some(na);
        cfg_b = Some(nb);
    }
}

/// The universal (∀-delay) verdict for a pair.
#[derive(Debug, Clone)]
pub enum WorstCase {
    /// Rendezvous under *every* finite start delay. `worst_round` is the
    /// latest meeting round over the **distinct delay classes**, evaluated
    /// at each class's smallest representative `worst_delay` (whose full
    /// [`Decision`] is carried for crossing bookkeeping). This is the
    /// finite shift-invariant of the problem: when A's solo walk reaches
    /// B's home, every larger delay meets at that same absolute round,
    /// and when it never does, a delay `θ` in the class of representative
    /// `θ'` meets exactly `θ − θ'` rounds later — so the supremum over
    /// *all* delays is then unbounded and the class-wise value is the
    /// meaningful worst case. `delays_checked` counts the distinct delay
    /// classes decided (all larger delays collapse onto them).
    AllMeet { worst_delay: u64, worst_round: u64, delays_checked: u64, decision: Decision },
    /// Some delay defeats the pair; `decision` carries the certificate
    /// for the smallest such delay.
    Defeated { delay: u64, decision: Decision, delays_checked: u64 },
}

impl WorstCase {
    pub fn all_meet(&self) -> bool {
        matches!(self, WorstCase::AllMeet { .. })
    }
}

/// Decides ∀-delay rendezvous for `(tree, pair, automaton)` in one
/// fixed-point computation over the not-yet-started region: A's solo lasso
/// has finitely many configurations, so only `delay ∈ 0..distinct_delays`
/// can behave distinctly — and if A's solo walk ever reaches B's home (at
/// round `t`), every delay `≥ t` meets there, shrinking the quantified set
/// further. Each surviving delay class is decided budget-free by
/// [`decide_from`].
pub fn worst_case_delay(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId) -> WorstCase {
    if a == b {
        let meets_now =
            Decision { verdict: Verdict::Meets { round: 0 }, crossing_rounds: Vec::new() };
        return WorstCase::AllMeet {
            worst_delay: 0,
            worst_round: 0,
            delays_checked: 1,
            decision: meets_now,
        };
    }
    worst_case_from(t, fsa, &SoloLasso::tabulate(t, fsa, a), b)
}

/// [`worst_case_delay`] with A's solo lasso precomputed — the sweep's
/// decide executor shares one tabulation per `(instance, start)` across
/// the whole delay × pair sub-grid. `solo.start` must differ from `b`.
pub fn worst_case_from(t: &Tree, fsa: &Fsa, solo: &SoloLasso, b: NodeId) -> WorstCase {
    debug_assert_ne!(solo.start, b, "same-start pairs are answered by worst_case_delay");
    let first_home = solo.first_visit(b);
    // Delays needing an individual decision; the tail class (≥ horizon) is
    // collapsed: it either meets at `first_home` or repeats a residue.
    let horizon = first_home.unwrap_or_else(|| solo.distinct_delays());
    let mut worst: Option<(u64, u64, Decision)> = None; // (round, delay, decision)
    let mut checked = 0u64;
    for delay in 0..horizon {
        checked += 1;
        let decision = decide_from(t, fsa, solo, b, delay);
        match decision.verdict {
            Verdict::Meets { round } => {
                if worst.as_ref().is_none_or(|(r, _, _)| round > *r) {
                    worst = Some((round, delay, decision));
                }
            }
            Verdict::NeverMeets { .. } => {
                return WorstCase::Defeated { delay, decision, delays_checked: checked };
            }
        }
    }
    if let Some(tv) = first_home {
        // The collapsed tail class: every delay ≥ tv meets at round tv —
        // A steps onto the still-parked B, so no crossing precedes it.
        checked += 1;
        if worst.as_ref().is_none_or(|(r, _, _)| tv > *r) {
            let decision =
                Decision { verdict: Verdict::Meets { round: tv }, crossing_rounds: Vec::new() };
            worst = Some((tv, tv, decision));
        }
    }
    let (worst_round, worst_delay, decision) = worst.expect("at least one delay class");
    WorstCase::AllMeet { worst_delay, worst_round, delays_checked: checked, decision }
}

/// Independently re-checks a [`Lasso`] certificate by naive stepping:
/// simulates `stem + period` rounds under start delay `delay`, asserting
/// (1) no co-location at any round `0..=stem + period`, (2) the joint
/// configuration after round `stem` equals `at_cycle`, and (3) it recurs
/// after round `stem + period`. Linear in `stem + period` — meant for
/// certificates over the moderate absolute rounds the grids produce.
pub fn verify_lasso(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64, lasso: &Lasso) -> bool {
    if a == b {
        return false;
    }
    let mut cfg_a: Option<AgentCfg> = None;
    let mut cfg_b: Option<AgentCfg> = None;
    let mut pos_b = b;
    let mut at_stem: Option<(AgentCfg, AgentCfg)> = None;
    for round in 1..=lasso.stem + lasso.period {
        let stepped = match cfg_a {
            None => step_first(t, fsa, a),
            Some(c) => step(t, fsa, c),
        };
        cfg_a = Some(stepped);
        let pos_a = stepped.node;
        if round > delay {
            cfg_b = Some(match cfg_b {
                None => step_first(t, fsa, b),
                Some(c) => step(t, fsa, c),
            });
            pos_b = cfg_b.expect("just set").node;
        }
        if pos_a == pos_b {
            return false; // they meet — the certificate is bogus
        }
        if round == lasso.stem {
            match (cfg_a, cfg_b) {
                (Some(ca), Some(cb)) => at_stem = Some((ca, cb)),
                _ => return false, // cycle cannot start before both act
            }
        }
    }
    let end = match (cfg_a, cfg_b) {
        (Some(ca), Some(cb)) => (ca, cb),
        _ => return false,
    };
    at_stem == Some(lasso.at_cycle) && end == lasso.at_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rvz_sim::{run_pair, Outcome, PairConfig};
    use rvz_trees::generators::{colored_line, line, random_tree, spider, star};

    fn bw(t: &Tree) -> Fsa {
        Fsa::basic_walk(t.max_degree().max(1))
    }

    /// The decider against the bounded simulator, on a horizon that the
    /// instance is known to decide within.
    fn assert_matches_sim(t: &Tree, fsa: &Fsa, a: NodeId, b: NodeId, delay: u64, budget: u64) {
        let decision = decide_pair(t, fsa, a, b, delay);
        let mut x = fsa.runner();
        let mut y = fsa.runner();
        let run = run_pair(t, a, b, &mut x, &mut y, PairConfig::delayed(delay, budget));
        match run.outcome {
            Outcome::Met { round, .. } => {
                assert_eq!(decision.round(), Some(round), "a={a} b={b} θ={delay}");
            }
            Outcome::Timeout { .. } => {
                assert!(!decision.met(), "sim timed out but decider met: a={a} b={b} θ={delay}");
            }
        }
        assert_eq!(
            decision.crossings_within(decision.round().unwrap_or(budget)),
            run.crossings,
            "crossing count diverged: a={a} b={b} θ={delay}"
        );
    }

    #[test]
    fn single_edge_pair_is_certified_never_meets() {
        // Two basic walkers on one edge shuttle and cross forever.
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 1, 0);
        let lasso = *d.lasso().expect("never meets");
        assert!(lasso.period >= 1);
        assert!(verify_lasso(&t, &fsa, 0, 1, 0, &lasso));
        // Crossings at any budget: they cross every round.
        assert_eq!(d.crossings_within(10), 10);
        assert_eq!(d.crossings_within(1_000_000_007), 1_000_000_007);
    }

    #[test]
    fn tampered_lassos_are_rejected() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 1, 0);
        let good = *d.lasso().unwrap();
        let mut bad = good;
        bad.period += 1;
        assert!(!verify_lasso(&t, &fsa, 0, 1, 0, &bad));
        let mut swapped = good;
        swapped.at_cycle = (good.at_cycle.1, good.at_cycle.0);
        // On this symmetric instance the swapped configuration differs.
        assert_ne!(swapped.at_cycle, good.at_cycle);
        assert!(!verify_lasso(&t, &fsa, 0, 1, 0, &swapped));
    }

    #[test]
    fn meets_agree_with_simulation_across_delays() {
        for t in [line(9), spider(3, 3), star(5)] {
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            for delay in [0u64, 1, 2, 5, 40] {
                for a in 0..n.min(4) {
                    for b in 0..n {
                        if a != b {
                            // θ + two joint Euler periods decides a basic
                            // walk; pad generously, it is still tiny.
                            let budget = delay + 8 * t.num_nodes() as u64 + 4;
                            assert_matches_sim(&t, &fsa, a, b, delay, budget);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn random_automata_agree_with_simulation() {
        // The decider is for arbitrary FSAs, stays included.
        let mut rng = StdRng::seed_from_u64(20100613);
        for trial in 0..30 {
            let t = random_tree(3 + (trial % 9), &mut rng);
            let fsa = Fsa::random(1 + trial % 5, t.max_degree().max(1), 0.3, &mut rng);
            let n = t.num_nodes() as NodeId;
            for delay in [0u64, 3] {
                for (a, b) in [(0, n - 1), (n - 1, 0), (0, n / 2)] {
                    if a != b {
                        assert_matches_sim(&t, &fsa, a, b, delay, 100_000);
                    }
                }
            }
        }
    }

    #[test]
    fn huge_delay_meets_at_home_without_walking_rounds() {
        // A's basic walk reaches B's home at a small round; a cosmic delay
        // must be answered instantly from the solo lasso.
        let t = line(9);
        let fsa = bw(&t);
        let d = decide_pair(&t, &fsa, 0, 6, u64::MAX / 2);
        assert_eq!(d.round(), Some(6));
    }

    #[test]
    fn worst_case_matches_brute_force_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let t = random_tree(7, &mut rng);
            let fsa = bw(&t);
            let n = t.num_nodes() as NodeId;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let wc = worst_case_delay(&t, &fsa, a, b);
                    // Brute force: every delay up to a horizon comfortably
                    // past the solo lasso.
                    let solo = SoloLasso::tabulate(&t, &fsa, a);
                    let horizon = solo.distinct_delays() + 2 * solo.period.max(1);
                    let mut brute_all_meet = true;
                    let mut brute_worst = 0u64;
                    for delay in 0..horizon {
                        match decide_from(&t, &fsa, &solo, b, delay).verdict {
                            Verdict::Meets { round } => brute_worst = brute_worst.max(round),
                            Verdict::NeverMeets { .. } => {
                                brute_all_meet = false;
                                break;
                            }
                        }
                    }
                    match wc {
                        WorstCase::AllMeet { worst_round, .. } => {
                            assert!(brute_all_meet, "quantifier said all-meet, scan disagrees");
                            assert_eq!(worst_round, brute_worst);
                        }
                        WorstCase::Defeated { delay, ref decision, .. } => {
                            assert!(!brute_all_meet || delay >= horizon);
                            let lasso = decision.lasso().expect("defeat carries a lasso");
                            assert!(verify_lasso(&t, &fsa, a, b, delay, lasso));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn worst_case_defeat_on_the_symmetric_edge() {
        let t = colored_line(2, 0);
        let fsa = bw(&t);
        match worst_case_delay(&t, &fsa, 0, 1) {
            WorstCase::Defeated { delay, decision, .. } => {
                assert_eq!(delay, 0, "already defeated with no delay");
                assert!(verify_lasso(&t, &fsa, 0, 1, delay, decision.lasso().unwrap()));
            }
            WorstCase::AllMeet { .. } => panic!("the single edge defeats the basic walk"),
        }
    }

    #[test]
    fn solo_lasso_is_the_euler_tour_for_basic_walks() {
        let t = line(6);
        let fsa = bw(&t);
        let solo = SoloLasso::tabulate(&t, &fsa, 0);
        // §2.2: period 2(n−1), entered immediately.
        assert_eq!(solo.period, 10);
        assert_eq!(solo.stem, 0);
        for r in 1..=40u64 {
            assert_eq!(solo.position(r), solo.position(r + 10));
        }
        assert_eq!(solo.first_visit(5), Some(5));
    }
}
