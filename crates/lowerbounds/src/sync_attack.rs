//! The Theorem 4.2 adversary: for any `K`-state automaton, a
//! 2-edge-colored line of length `O(K^K)` on which two copies starting
//! **simultaneously** from adjacent (non-perfectly-symmetrizable) nodes
//! never meet. Hence simultaneous-start rendezvous on the `n`-node line
//! needs `Ω(log log n)` bits.
//!
//! Construction (§4.2): the transition digraph of `π' = π(·, 2)` decomposes
//! into circuits `C_1 … C_r`; let `γ = lcm(|C_i|)`. Place the two copies on
//! adjacent nodes of the infinite line — their trajectories are mirror
//! images. Find `t0` with displacement `≥ 2γ + K`, the circuit `C_i` the
//! state then lives on, and the circuit's *extreme position* `u_i` (the
//! within-period high-water mark in the drift direction), first reached at
//! round `τ ∈ (t0, t0 + |C_i|]`. With `x = |pos(τ)|`, `x' = |pos(τ + 2γ)|`
//! (`> x`), the finite line is `x` edges, the start edge `e`, and `x'`
//! edges. The delay-`2γ` alignment makes the copies bounce at opposite ends
//! and cross — never meet — by the Parity Lemma (4.4) and Lemmas 4.5–4.8.

use crate::infinite_line::{classify, InfiniteRun, LineBehavior};
use rvz_agent::line_fsa::{LineFsa, StateId};
use rvz_sim::{run_pair, Outcome, PairConfig};
use rvz_trees::generators::colored_line;
use rvz_trees::{NodeId, Tree};

/// The circuit decomposition of the `π'` transition digraph.
#[derive(Debug, Clone)]
pub struct PiPrimeAnalysis {
    /// Length of the circuit each state eventually enters.
    pub circuit_of: Vec<u32>,
    /// The distinct circuit lengths.
    pub circuit_lengths: Vec<u32>,
    /// `γ = lcm(|C_1|, …, |C_r|)`.
    pub gamma: u64,
}

/// Decomposes the functional graph of `π'` into its circuits.
pub fn analyze_pi_prime(fsa: &LineFsa) -> PiPrimeAnalysis {
    let k = fsa.num_states();
    // Find, for every state, the length of the cycle it falls into.
    let mut on_cycle_len = vec![0u32; k];
    let mut color = vec![0u8; k]; // 0 = white, 1 = in progress, 2 = done
    for s0 in 0..k as StateId {
        if color[s0 as usize] != 0 {
            continue;
        }
        // Walk until we hit something processed or a repeat in this walk.
        let mut path = Vec::new();
        let mut index = std::collections::HashMap::new();
        let mut s = s0;
        loop {
            if color[s as usize] == 2 {
                break;
            }
            if let Some(&i) = index.get(&s) {
                // Fresh cycle found: states path[i..] form it.
                let len = (path.len() - i) as u32;
                for &c in &path[i..] {
                    on_cycle_len[c as usize] = len;
                }
                break;
            }
            index.insert(s, path.len());
            path.push(s);
            color[s as usize] = 1;
            s = fsa.pi_prime(s);
        }
        // Tail states inherit the cycle they lead to.
        let target = on_cycle_len[s as usize];
        for &c in path.iter().rev() {
            if on_cycle_len[c as usize] == 0 {
                on_cycle_len[c as usize] = target;
            }
            color[c as usize] = 2;
        }
    }
    let mut lengths: Vec<u32> = Vec::new();
    // Distinct lengths of actual cycles (states s with s on a cycle:
    // π'^len(s) == s).
    for s in 0..k as StateId {
        let len = on_cycle_len[s as usize];
        let mut t = s;
        for _ in 0..len {
            t = fsa.pi_prime(t);
        }
        if t == s && !lengths.contains(&len) {
            lengths.push(len);
        }
    }
    lengths.sort_unstable();
    let gamma = lengths.iter().fold(1u64, |acc, &l| lcm(acc, l as u64));
    PiPrimeAnalysis { circuit_of: on_cycle_len, circuit_lengths: lengths, gamma }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// A verified simultaneous-start adversarial instance.
#[derive(Debug, Clone)]
pub struct SyncAttack {
    pub line: Tree,
    /// Adjacent starts (the two extremities of the edge `e`).
    pub start_a: NodeId,
    pub start_b: NodeId,
    pub kind: SyncAttackKind,
    pub gamma: u64,
    pub verified_rounds: u64,
    /// Crossings observed during verification (the copies pass through the
    /// same edge, which is exactly what the Parity Lemma predicts instead
    /// of meetings).
    pub crossings: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncAttackKind {
    BoundedRange {
        d: i64,
    },
    /// The `x` / `x'` construction.
    Asymmetric {
        x: i64,
        x_prime: i64,
        t0: u64,
        tau: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncAttackError {
    MeetingHappened {
        round: u64,
    },
    /// γ (or the resulting instance) exceeds the configured size budget.
    TooLarge {
        gamma: u64,
    },
}

/// Builds and verifies the Theorem 4.2 instance. `max_gamma` caps the
/// construction size (the instance has `Θ(γ + K)` edges and the
/// verification horizon is polynomial in that).
pub fn sync_attack(fsa: &LineFsa, max_gamma: u64) -> Result<SyncAttack, SyncAttackError> {
    let k = fsa.num_states() as u64;
    let analysis = analyze_pi_prime(fsa);
    let gamma = analysis.gamma;
    if gamma > max_gamma {
        return Err(SyncAttackError::TooLarge { gamma });
    }

    // Pick the parity for which the drift is NEGATIVE (the two parities are
    // mirror trajectories, so exactly one of them drifts negative if the
    // automaton drifts at all).
    type Traj = Vec<(u64, StateId, i64)>;
    let mut chosen: Option<(u8, Traj)> = None;
    match classify(fsa, 0) {
        LineBehavior::Bounded { min_pos, max_pos } => {
            let d = max_pos.abs().max(min_pos.abs());
            let edges = (4 * d + 4) as usize;
            let line = colored_line(edges + 1, 0);
            let (a, b) = ((d + 1) as NodeId, (3 * d + 2) as NodeId);
            return verify(fsa, line, a, b, SyncAttackKind::BoundedRange { d }, gamma, k);
        }
        LineBehavior::Drifts { .. } => {
            // Determine drift sign on parity 0 by simulating past the burn-in.
            for parity in [0u8, 1] {
                let horizon = burn_in(k, gamma);
                let traj: Traj = InfiniteRun::new(fsa, parity)
                    .take(horizon as usize)
                    .map(|a| (a.round, a.state, a.pos))
                    .collect();
                if traj.last().expect("nonempty").2 < 0 {
                    chosen = Some((parity, traj));
                    break;
                }
            }
        }
    }
    let (parity, traj) = chosen.expect("a drifting automaton drifts negative on one parity");

    // t0: first round at (negative-side) distance ≥ 2γ + K from the start.
    // (The drift is negative by the parity choice; transient up-excursions
    // on the positive side are irrelevant to the construction.)
    let threshold = (2 * gamma + k) as i64;
    let &(t0, s_i, pos_t0) = traj
        .iter()
        .find(|&&(_, _, p)| p <= -threshold)
        .expect("burn-in horizon reaches the threshold");
    let _ = pos_t0;
    let ci_len = analysis.circuit_of[s_i as usize] as u64;
    debug_assert!(ci_len >= 1, "after t0 > K steps the state is on a circuit");

    // Extreme position over one *position-period* starting at t0. The state
    // is periodic with period |C_i|, but a move's direction also depends on
    // the position parity, so the position dynamics repeat with period
    // dividing 2|C_i| — hence 2γ (this is why the paper aligns everything
    // on 2γ). Over [t0, t0 + 2γ] the net displacement is strictly negative,
    // so the window minimum u_i < pos(t0) is a global minimum of the whole
    // trajectory so far, and τ = the first round attaining it — the first
    // time the agent would touch the endpoint placed at distance x.
    let window = &traj[(t0 as usize - 1)..(t0 + 2 * gamma) as usize];
    let u_i = window.iter().map(|&(_, _, p)| p).min().expect("window nonempty");
    let &(tau, _, _) =
        window.iter().skip(1).find(|&&(_, _, p)| p == u_i).expect("extreme attained after t0");
    let x = -u_i; // = |u_i|, drift negative
    let tau_prime = tau + 2 * gamma;
    let x_prime = -traj[tau_prime as usize - 1].2;
    assert!(x_prime > x, "Lemma: x' must exceed x (x={x}, x'={x_prime})");

    // The finite line: x edges | e | x' edges; copies at the ends of e.
    let l = x + x_prime + 1;
    let a_node = x as NodeId;
    let b_node = (x + 1) as NodeId;
    // Coloring: finite edge j ↔ infinite edge (j − x): generator parity
    // g ≡ parity − x (mod 2).
    let g = (parity as i64 - x).rem_euclid(2) as usize;
    let line = colored_line(l as usize + 1, g);
    verify(fsa, line, a_node, b_node, SyncAttackKind::Asymmetric { x, x_prime, t0, tau }, gamma, k)
}

/// Burn-in horizon: enough rounds to reach displacement 2γ + K (a drifting
/// automaton advances at least one edge per K+1 rounds once on its circuit)
/// and then the 2γ extreme window plus the 2γ look-ahead to τ'.
fn burn_in(k: u64, gamma: u64) -> u64 {
    (2 * gamma + k + 2) * (k + 1) * 2 + 6 * gamma + 4 * k + 64
}

fn verify(
    fsa: &LineFsa,
    line: Tree,
    a: NodeId,
    b: NodeId,
    kind: SyncAttackKind,
    gamma: u64,
    k: u64,
) -> Result<SyncAttack, SyncAttackError> {
    assert!(!rvz_trees::perfectly_symmetrizable(&line, a, b), "attack instance must be feasible");
    let n = line.num_nodes() as u64;
    let horizon = (20 * n * (gamma + k) + 100_000).min(30_000_000);
    let mut agent_a = fsa.runner();
    let mut agent_b = fsa.runner();
    let run = run_pair(&line, a, b, &mut agent_a, &mut agent_b, PairConfig::simultaneous(horizon));
    match run.outcome {
        Outcome::Met { round, .. } => Err(SyncAttackError::MeetingHappened { round }),
        Outcome::Timeout { rounds } => Ok(SyncAttack {
            line,
            start_a: a,
            start_b: b,
            kind,
            gamma,
            verified_rounds: rounds,
            crossings: run.crossings,
        }),
    }
}

impl SyncAttack {
    pub fn line_edges(&self) -> usize {
        self.line.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pi_prime_analysis_finds_circuits() {
        // Two 2-cycles: 0↔1 and 2↔3 … plus a 3-cycle 4→5→6→4.
        let delta = vec![[1, 1], [0, 0], [3, 3], [2, 2], [5, 5], [6, 6], [4, 4]];
        let fsa = LineFsa::from_rows(delta, vec![0; 7], 0);
        let a = analyze_pi_prime(&fsa);
        assert_eq!(a.circuit_lengths, vec![2, 3]);
        assert_eq!(a.gamma, 6);
        assert_eq!(a.circuit_of[0], 2);
        assert_eq!(a.circuit_of[4], 3);
    }

    #[test]
    fn tail_states_inherit_cycles() {
        // 0 → 1 → 2 → 1 (tail 0, cycle {1,2}).
        let delta = vec![[1, 1], [2, 2], [1, 1]];
        let fsa = LineFsa::from_rows(delta, vec![0; 3], 0);
        let a = analyze_pi_prime(&fsa);
        assert_eq!(a.circuit_lengths, vec![2]);
        assert_eq!(a.gamma, 2);
        assert_eq!(a.circuit_of, vec![2, 2, 2]);
    }

    #[test]
    fn defeats_the_shuttle_simultaneously() {
        let fsa = LineFsa::shuttle();
        let attack = sync_attack(&fsa, 1 << 20).expect("shuttle defeated");
        assert!(matches!(attack.kind, SyncAttackKind::Asymmetric { .. }));
        // The shuttle drifts to its endpoint and oscillates there: the two
        // copies end up pinned at opposite ends (x ≠ x′ apart), never
        // meeting. (Crossings are only guaranteed for agents that keep
        // traversing; see `defeats_random_automata` for those.)
        assert!(attack.line_edges() >= 3);
    }

    #[test]
    fn defeats_random_automata() {
        let mut rng = StdRng::seed_from_u64(2718);
        let mut asym = 0;
        for k in 1..=5usize {
            for _ in 0..30 {
                let fsa = LineFsa::random(k, 0.25, &mut rng);
                match sync_attack(&fsa, 10_000) {
                    Ok(attack) => {
                        if matches!(attack.kind, SyncAttackKind::Asymmetric { .. }) {
                            asym += 1;
                        }
                    }
                    Err(SyncAttackError::TooLarge { .. }) => {} // γ cap: skip
                    Err(e) => panic!("K={k}: {e:?} disproves Thm 4.2?!"),
                }
            }
        }
        assert!(asym > 0);
    }

    #[test]
    fn x_prime_exceeds_x() {
        let fsa = LineFsa::shuttle();
        let attack = sync_attack(&fsa, 1 << 20).unwrap();
        if let SyncAttackKind::Asymmetric { x, x_prime, .. } = attack.kind {
            assert!(x_prime > x);
            assert_eq!(attack.line_edges() as i64, x + x_prime + 1);
        } else {
            panic!("expected asymmetric kind");
        }
    }
}
