//! Multi-agent synchronous execution: the *gathering* generalization the
//! paper lists as the natural extension of rendezvous (§1.3, refs
//! [20, 28, 33, 37]). `k` identical agents start on distinct nodes with
//! per-agent delays; gathering = all `k` co-located at a round boundary.

use crate::runner::Cursor;
use rvz_agent::model::Agent;
use rvz_trees::{NodeId, Tree};

/// Configuration of a `k`-agent run.
#[derive(Debug, Clone)]
pub struct MultiConfig {
    /// Per-agent start delays (0 = active from round 1).
    pub delays: Vec<u64>,
    pub max_rounds: u64,
}

impl MultiConfig {
    pub fn simultaneous(k: usize, max_rounds: u64) -> Self {
        MultiConfig { delays: vec![0; k], max_rounds }
    }
}

/// Outcome of a multi-agent run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiOutcome {
    /// All agents co-located at `node` at the end of `round`.
    Gathered {
        round: u64,
        node: NodeId,
    },
    Timeout {
        rounds: u64,
    },
}

/// Result details.
#[derive(Debug, Clone)]
pub struct MultiRun {
    pub outcome: MultiOutcome,
    pub final_positions: Vec<NodeId>,
    /// Rounds at which *some* (not necessarily all) pair first met, per
    /// unordered pair index `(i, j), i < j`, flattened row-major. `None` if
    /// that pair never co-located.
    pub pair_meetings: Vec<Option<u64>>,
}

/// Runs `k` agents; `agents.len() == starts.len() == cfg.delays.len()`.
pub fn run_multi(
    t: &Tree,
    starts: &[NodeId],
    agents: &mut [&mut dyn Agent],
    cfg: &MultiConfig,
) -> MultiRun {
    let k = starts.len();
    assert_eq!(agents.len(), k);
    assert_eq!(cfg.delays.len(), k);
    let mut cursors: Vec<Cursor> = starts.iter().map(|&s| Cursor::new(s)).collect();
    let pair_count = k * (k - 1) / 2;
    let mut pair_meetings: Vec<Option<u64>> = vec![None; pair_count];
    let pair_idx = |i: usize, j: usize| {
        debug_assert!(i < j);
        // Index of (i, j) in the row-major upper triangle.
        i * (2 * k - i - 1) / 2 + (j - i - 1)
    };

    let check = |cursors: &[Cursor], round: u64, pair_meetings: &mut [Option<u64>]| {
        let mut all = true;
        for i in 0..k {
            for j in (i + 1)..k {
                if cursors[i].node == cursors[j].node {
                    pair_meetings[pair_idx(i, j)].get_or_insert(round);
                } else {
                    all = false;
                }
            }
        }
        all
    };

    if check(&cursors, 0, &mut pair_meetings) {
        return MultiRun {
            outcome: MultiOutcome::Gathered { round: 0, node: cursors[0].node },
            final_positions: cursors.iter().map(|c| c.node).collect(),
            pair_meetings,
        };
    }
    for round in 1..=cfg.max_rounds {
        for (i, agent) in agents.iter_mut().enumerate() {
            if round > cfg.delays[i] {
                let action = agent.act(cursors[i].obs(t));
                cursors[i].apply(t, action);
            }
        }
        if check(&cursors, round, &mut pair_meetings) {
            return MultiRun {
                outcome: MultiOutcome::Gathered { round, node: cursors[0].node },
                final_positions: cursors.iter().map(|c| c.node).collect(),
                pair_meetings,
            };
        }
    }
    MultiRun {
        outcome: MultiOutcome::Timeout { rounds: cfg.max_rounds },
        final_positions: cursors.iter().map(|c| c.node).collect(),
        pair_meetings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_agent::model::{bw_exit, Action, Obs};
    use rvz_trees::generators::{colored_line, line, spider, star};

    struct BasicWalker;

    impl Agent for BasicWalker {
        fn act(&mut self, obs: Obs) -> Action {
            Action::Move(bw_exit(obs.entry, obs.degree))
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    struct Sitter;

    impl Agent for Sitter {
        fn act(&mut self, _obs: Obs) -> Action {
            Action::Stay
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    #[test]
    fn three_walkers_gather_on_sitter() {
        let t = line(7);
        let mut a = BasicWalker;
        let mut b = BasicWalker;
        let mut c = Sitter;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut a, &mut b, &mut c];
        // Walkers from both leaves sweep the line; the sitter sits at 3.
        let run = run_multi(&t, &[0, 6, 3], &mut agents, &MultiConfig::simultaneous(3, 200));
        // Walkers from 0 and 6 move toward increasing/decreasing…
        // both visit node 3 repeatedly; gathering requires all three at 3
        // in the SAME round — which happens iff the walkers synchronize.
        // From symmetric leaves with simultaneous start they stay mirrored:
        // both reach 3 simultaneously at round 3… wait, 0→3 is 3 moves and
        // 6→3 is 3 moves: gathered at round 3.
        assert_eq!(run.outcome, MultiOutcome::Gathered { round: 3, node: 3 });
        assert!(run.pair_meetings.iter().all(|m| m.is_some()));
    }

    #[test]
    fn pairwise_meetings_recorded_without_gathering() {
        let t = line(6);
        let mut a = BasicWalker;
        let mut b = Sitter;
        let mut c = Sitter;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut a, &mut b, &mut c];
        let run = run_multi(&t, &[0, 2, 5], &mut agents, &MultiConfig::simultaneous(3, 4));
        // The walker reaches the first sitter (node 2) at round 2 but the
        // far sitter is never reached within 4 rounds.
        assert_eq!(run.outcome, MultiOutcome::Timeout { rounds: 4 });
        assert_eq!(run.pair_meetings[0], Some(2)); // (0,1)
        assert_eq!(run.pair_meetings[1], None); // (0,2)
        assert_eq!(run.pair_meetings[2], None); // (1,2)
    }

    #[test]
    fn delays_respected() {
        let t = star(4);
        let mut a = BasicWalker;
        let mut b = Sitter;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut a, &mut b];
        let run = run_multi(
            &t,
            &[1, 0],
            &mut agents,
            &MultiConfig { delays: vec![5, 0], max_rounds: 20 },
        );
        // The walker is frozen for 5 rounds, then moves to the hub (node 0)
        // where the sitter lives: meet at round 6.
        assert_eq!(run.outcome, MultiOutcome::Gathered { round: 6, node: 0 });
    }

    #[test]
    fn initial_colocated_gathering() {
        let t = line(3);
        let mut a = Sitter;
        let mut b = Sitter;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut a, &mut b];
        let run = run_multi(&t, &[1, 1], &mut agents, &MultiConfig::simultaneous(2, 10));
        assert_eq!(run.outcome, MultiOutcome::Gathered { round: 0, node: 1 });
    }

    #[test]
    fn budget_exhaustion_reports_timeout_and_final_positions() {
        // Two sitters apart can never gather: the run must burn exactly the
        // budget, report `Timeout { rounds }`, keep everyone in place, and
        // leave every pair meeting unset.
        let t = line(5);
        let mut a = Sitter;
        let mut b = Sitter;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut a, &mut b];
        let run = run_multi(&t, &[0, 4], &mut agents, &MultiConfig::simultaneous(2, 7));
        assert_eq!(run.outcome, MultiOutcome::Timeout { rounds: 7 });
        assert_eq!(run.final_positions, vec![0, 4]);
        assert_eq!(run.pair_meetings, vec![None]);
    }

    #[test]
    fn three_walkers_gather_on_a_spider_with_delays() {
        // ISSUE 3 satellite: a ≥3-agent case on a spider. Two basic
        // walkers from leg tips plus a sitter at the hub. A tip walker's
        // Euler tour passes the hub at local steps 3, 9 and 15 of its
        // 18-round period, so delaying walker A by 6 aligns its first hub
        // visit (global round 9) with walker B's second: gathering at 9.
        let t = spider(3, 3); // hub 0; legs of length 3
        let mut a = BasicWalker;
        let mut b = BasicWalker;
        let mut c = Sitter;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut a, &mut b, &mut c];
        let tip_a = 3; // end of the first leg
        let tip_b = 6; // end of the second leg
        let run = run_multi(
            &t,
            &[tip_a, tip_b, 0],
            &mut agents,
            &MultiConfig { delays: vec![6, 0, 0], max_rounds: 100 },
        );
        assert_eq!(run.outcome, MultiOutcome::Gathered { round: 9, node: 0 });
        // The undelayed walker reaches the hub sitter first (round 3):
        // pair (1,2) met before the full gathering.
        assert_eq!(run.pair_meetings[pair_index(3, 1, 2)], Some(3));
        assert_eq!(run.pair_meetings[pair_index(3, 0, 1)], Some(9));
        assert_eq!(run.pair_meetings[pair_index(3, 0, 2)], Some(9));
    }

    /// Row-major upper-triangle index of pair `(i, j)`, `i < j`, among `k`
    /// agents — mirrors the internal layout `run_multi` documents.
    fn pair_index(k: usize, i: usize, j: usize) -> usize {
        i * (2 * k - i - 1) / 2 + (j - i - 1)
    }

    #[test]
    fn meeting_is_colocation_at_a_round_boundary_not_crossing() {
        // Two walkers swapping the endpoints of a single edge cross inside
        // it forever; gathering semantics must never fire (§2.1: meeting is
        // co-location at the end of a round).
        let t = colored_line(2, 0); // a single edge
        let mut a = BasicWalker;
        let mut b = BasicWalker;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut a, &mut b];
        let run = run_multi(&t, &[0, 1], &mut agents, &MultiConfig::simultaneous(2, 50));
        assert_eq!(run.outcome, MultiOutcome::Timeout { rounds: 50 });
        assert_eq!(run.pair_meetings, vec![None]);
    }

    #[test]
    fn four_agent_pair_meetings_use_the_upper_triangle_layout() {
        // k = 4: six pairs; a walker sweeping the line meets each sitter in
        // distance order, and the sitter pairs never co-locate.
        let t = line(7);
        let mut w = BasicWalker;
        let mut s1 = Sitter;
        let mut s2 = Sitter;
        let mut s3 = Sitter;
        let mut agents: Vec<&mut dyn Agent> = vec![&mut w, &mut s1, &mut s2, &mut s3];
        let run = run_multi(&t, &[0, 2, 4, 6], &mut agents, &MultiConfig::simultaneous(4, 5));
        assert_eq!(run.outcome, MultiOutcome::Timeout { rounds: 5 });
        assert_eq!(run.pair_meetings.len(), 6);
        assert_eq!(run.pair_meetings[pair_index(4, 0, 1)], Some(2));
        assert_eq!(run.pair_meetings[pair_index(4, 0, 2)], Some(4));
        assert_eq!(run.pair_meetings[pair_index(4, 0, 3)], None, "line end not reached in 5");
        for (i, j) in [(1, 2), (1, 3), (2, 3)] {
            assert_eq!(run.pair_meetings[pair_index(4, i, j)], None, "sitters ({i},{j})");
        }
    }
}
