//! # rvz-sim
//!
//! The synchronous-round simulator of the paper's §2.1 model: one or two
//! identical agents walk an anonymous port-labeled tree; the adversary
//! chooses the port labeling, the initial positions and (in the
//! arbitrary-delay scenario) the start delay θ. Rendezvous is *being at the
//! same node at the end of the same round* — crossing inside an edge does
//! not count (Lemma 4.8 depends on this), though crossings are detected and
//! reported for the lower-bound instrumentation.

pub mod multi;
pub mod runner;
pub mod trace;

pub use multi::{run_multi, MultiConfig, MultiOutcome, MultiRun};
pub use runner::{
    run_pair, run_pair_fsa, run_single, Cursor, Outcome, PairConfig, PairRun, SingleRun,
};
pub use trace::{delay_scan, replay_pair, Replay, TraceRecorder, Trajectory};
