//! # rvz-sim
//!
//! The synchronous-round simulator of the paper's §2.1 model: one, two,
//! or `k` identical agents walk an anonymous port-labeled tree; the
//! adversary chooses the port labeling, the initial positions and *when
//! the agents run* — the start delay θ of the arbitrary-delay scenario,
//! a full eventually-periodic activation [`Schedule`] (per-round delay
//! faults à la Chalopin et al.), or its k-lane generalization
//! [`EnsembleSchedule`]. Rendezvous is *being at the same node at the
//! end of the same round* — crossing inside an edge does not count
//! (Lemma 4.8 depends on this), though crossings are detected and
//! reported for the lower-bound instrumentation. Gathering (all `k`
//! co-located at a round boundary, [`run_ensemble`]) is the k-agent
//! generalization; rendezvous is its `k = 2` case.
//!
//! ```
//! use rvz_sim::Schedule;
//!
//! // The arbitrary-delay scenario is the schedule that stalls agent B for
//! // θ rounds: round 3 is the first in which both agents act.
//! let theta = Schedule::start_delay(2);
//! assert_eq!(theta.active(2), (true, false));
//! assert_eq!(theta.active(3), (true, true));
//! // Only lane-symmetric schedules treat the agents interchangeably
//! // (the sweep's orbit quotient may swap start pairs exactly then).
//! assert!(Schedule::simultaneous().lane_symmetric());
//! assert!(!theta.lane_symmetric());
//! ```

pub mod batch;
pub mod cancel;
pub mod runner;
pub mod schedule;
pub mod trace;

pub use batch::{
    run_batch_fsa, run_batch_fsa_ensemble, run_batch_fsa_scheduled, BatchLane, EnsembleBatchLane,
    LaneOutcome,
};
pub use runner::{
    pair_index, run_ensemble, run_ensemble_fsa, run_ensemble_with, run_pair, run_pair_fsa,
    run_pair_scheduled, run_pair_scheduled_fsa, run_single, Cursor, EnsembleRun, Outcome,
    PairConfig, PairRun, SingleRun,
};
pub use schedule::{ActivationIndex, EnsembleSchedule, Schedule};
pub use trace::{
    delay_scan, gathering_scan, replay_ensemble, replay_pair, replay_pair_scheduled, schedule_scan,
    EnsembleReplay, Replay, TraceRecorder, Trajectory,
};
