//! Trace record/replay: tabulate an agent's deterministic trajectory once,
//! then answer every adversarial schedule against it by timeline merge.
//!
//! The paper's agents are deterministic and oblivious: the node an agent
//! occupies after `k` activations is a pure function of `(tree, start,
//! agent)` — the peer never influences it (meeting is co-location, not
//! interaction), and the adversary's start delay θ merely *shifts* agent
//! B's timeline by θ rounds. So a `(delay, pair)` question never needs the
//! agents stepped again: record each trajectory once ([`TraceRecorder`]),
//! then decide meeting/crossing by a two-pointer merge over the two
//! run-length–encoded timelines ([`replay_pair`]), or sweep a whole delay
//! column in one call ([`delay_scan`]).
//!
//! Three properties make the merge cheap:
//!
//! * **Run-length encoding.** A [`Trajectory`] stores maximal constant-node
//!   runs, so the long passive windows of schedule-based agents (e.g. the
//!   delay-robust baseline, whose period is ≫ its 4n-round active window)
//!   cost one entry, and the merge jumps joint-stay spans in O(1): inside a
//!   span neither agent moves, so no meeting (positions are unequal and
//!   constant) and no crossing (a crossing requires both agents to move)
//!   can occur.
//! * **Fixed-point tails.** An agent that reports [`Agent::halted`] (e.g.
//!   the Theorem-4.1 agent parked in its wait-forever stage) freezes its
//!   timeline: the suffix costs O(1) storage and the merge can declare
//!   `Timeout` without walking to the round budget — even when the budget
//!   is in the billions.
//! * **Prefix stability.** Recording more rounds never changes the rounds
//!   already recorded, so trajectories can be extended on demand
//!   ([`TraceRecorder::record_to`]) and cached across questions; replay
//!   results are independent of how eagerly the recording grew.
//!
//! [`replay_pair`] reproduces [`crate::run_pair`] *exactly* — outcome,
//! meeting round, crossing count, final cursors (entry ports reconstructed
//! from the node timeline; on a tree, a move always changes the node, so
//! `entry = None` iff the last action was a stay) and optional traces. The
//! differential property test in `tests/property_tests.rs` pins this
//! equivalence across random trees, starts, delays and agent variants.

use crate::runner::{pair_index, Cursor, EnsembleRun, Outcome, PairConfig, PairRun};
use crate::schedule::{ActivationIndex, EnsembleSchedule, Schedule};
use rvz_agent::model::Agent;
use rvz_trees::{NodeId, Port, Tree};

/// One maximal constant-node run of a trajectory: the agent sits at `node`
/// from the round after the previous run's `end` through `end` inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    pub node: NodeId,
    /// Last round (1-based) covered by this run.
    pub end: u64,
}

/// A memory-metering change point: the agent reported `bits` after its
/// `acts`-th activation (and, until the next mark, after every later one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitsMark {
    pub acts: u64,
    pub bits: u64,
}

/// A recorded single-agent timeline: the node occupied after every round,
/// run-length encoded, plus the memory-meter change points. `fixed` marks a
/// fixed-point tail: the agent halted, so the last node (and the last bits
/// mark) extend to every future round.
#[derive(Debug, Clone)]
pub struct Trajectory {
    start: NodeId,
    runs: Vec<Run>,
    /// Recorded horizon: positions are known for rounds `0..=rounds`.
    rounds: u64,
    fixed: bool,
    bits: Vec<BitsMark>,
}

impl Trajectory {
    /// An empty trajectory parked at `start`; `initial_bits` is the meter
    /// reading before any activation (what a never-started agent reports).
    pub fn new(start: NodeId, initial_bits: u64) -> Self {
        Trajectory {
            start,
            runs: Vec::new(),
            rounds: 0,
            fixed: false,
            bits: vec![BitsMark { acts: 0, bits: initial_bits }],
        }
    }

    pub fn start(&self) -> NodeId {
        self.start
    }

    /// Rounds recorded so far (positions known for `0..=rounds()`).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// `true` when the timeline is frozen: the agent halted, so every round
    /// beyond [`Trajectory::rounds`] repeats the last node.
    pub fn is_fixed(&self) -> bool {
        self.fixed
    }

    /// Can every round up to `horizon` be answered from this recording?
    pub fn decided_to(&self, horizon: u64) -> bool {
        self.fixed || self.rounds >= horizon
    }

    /// Number of RLE runs (diagnostics; the merge cost is proportional to
    /// the runs overlapping the scanned range, not to the rounds).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Largest node id the timeline ever occupies (`O(runs)`). Lets a
    /// loader range-check a deserialized trajectory against its tree
    /// before anything replays it.
    pub fn max_node(&self) -> NodeId {
        self.runs.iter().map(|r| r.node).fold(self.start, NodeId::max)
    }

    fn last_node(&self) -> NodeId {
        self.runs.last().map_or(self.start, |r| r.node)
    }

    fn push(&mut self, node: NodeId) {
        self.rounds += 1;
        match self.runs.last_mut() {
            Some(run) if run.node == node => run.end = self.rounds,
            _ => self.runs.push(Run { node, end: self.rounds }),
        }
    }

    fn mark_bits(&mut self, bits: u64) {
        let last = self.bits.last().expect("initial mark").bits;
        if bits != last {
            self.bits.push(BitsMark { acts: self.rounds, bits });
        }
    }

    /// Node occupied after `round` (0 = the start, before any action), or
    /// `None` when the round is beyond the recorded horizon of a non-fixed
    /// trajectory.
    pub fn position(&self, round: u64) -> Option<NodeId> {
        if round == 0 {
            return Some(self.start);
        }
        if round > self.rounds {
            return self.fixed.then(|| self.last_node());
        }
        let i = self.runs.partition_point(|r| r.end < round);
        Some(self.runs[i].node)
    }

    /// First round (≥ 0) at which the recorded agent stands on `node`, if
    /// it does within the decided horizon. On a fixed-tail trajectory the
    /// answer is definitive; on an open tail a `None` only means "not
    /// within the recording". The delayed-start scenario asks exactly
    /// this about the active agent versus the parked agent's home — the
    /// same question the exact decider's solo lasso answers budget-free
    /// (`rvz_lowerbounds::decide::SoloLasso::first_visit`; the two are
    /// cross-checked in `tests/exact_decider.rs`).
    pub fn first_visit(&self, node: NodeId) -> Option<u64> {
        if self.start == node {
            return Some(0);
        }
        let mut prev_end = 0;
        for run in &self.runs {
            if run.node == node {
                return Some(prev_end + 1);
            }
            prev_end = run.end;
        }
        None
    }

    /// Meter reading after `acts` activations. Beyond the recorded horizon
    /// the last mark applies (valid for fixed tails, where the contract of
    /// [`Agent::halted`] freezes the meter).
    pub fn bits_at(&self, acts: u64) -> u64 {
        let i = self.bits.partition_point(|m| m.acts <= acts);
        self.bits[i - 1].bits
    }

    /// The explicit node timeline for global rounds `0..=upto` of an agent
    /// whose start was delayed by `shift` rounds (tests / trace output; the
    /// merge itself never materializes this).
    fn materialize(&self, upto: u64, shift: u64) -> Vec<NodeId> {
        (0..=upto)
            .map(|r| self.position(r.saturating_sub(shift)).expect("within recorded horizon"))
            .collect()
    }

    /// Serializes the recording into the versioned little-endian RLE wire
    /// form [`Trajectory::from_bytes`] reads back. The encoding is
    /// self-delimiting (every vector is length-prefixed) so callers can
    /// frame it however they like; integrity checking (checksums) is the
    /// caller's job — this layer only guarantees structural validity.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + self.runs.len() * 12 + self.bits.len() * 16);
        out.extend_from_slice(&Self::WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.rounds.to_le_bytes());
        out.push(self.fixed as u8);
        out.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for run in &self.runs {
            out.extend_from_slice(&run.node.to_le_bytes());
            out.extend_from_slice(&run.end.to_le_bytes());
        }
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        for mark in &self.bits {
            out.extend_from_slice(&mark.acts.to_le_bytes());
            out.extend_from_slice(&mark.bits.to_le_bytes());
        }
        out
    }

    /// Wire-format version tag of [`Trajectory::to_bytes`].
    pub const WIRE_VERSION: u32 = 1;

    /// Deserializes [`Trajectory::to_bytes`] output, validating every
    /// structural invariant the recorder maintains — a corrupted body that
    /// slipped past the caller's checksum is rejected here rather than
    /// replayed: run ends strictly increasing and covering exactly
    /// `1..=rounds`, the meter marks starting at activation 0 and strictly
    /// increasing within the horizon, no consecutive runs on one node, and
    /// no trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trajectory, String> {
        let mut r = WireReader { bytes, pos: 0 };
        let version = r.u32()?;
        if version != Self::WIRE_VERSION {
            return Err(format!("unsupported trajectory wire version {version}"));
        }
        let start = r.u32()?;
        let rounds = r.u64()?;
        let fixed = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("bad fixed flag {other}")),
        };
        let num_runs = r.u32()? as usize;
        if num_runs as u64 > rounds {
            return Err("more runs than rounds".into());
        }
        let mut runs = Vec::with_capacity(num_runs.min(1 << 16));
        let mut prev_end = 0u64;
        let mut prev_node: Option<NodeId> = None;
        for _ in 0..num_runs {
            let node = r.u32()?;
            let end = r.u64()?;
            if end <= prev_end {
                return Err("run ends must be strictly increasing".into());
            }
            if prev_node == Some(node) {
                return Err("consecutive runs on one node must be merged".into());
            }
            prev_end = end;
            prev_node = Some(node);
            runs.push(Run { node, end });
        }
        if prev_end != rounds {
            return Err("runs must cover exactly 1..=rounds".into());
        }
        let num_marks = r.u32()? as usize;
        if num_marks == 0 {
            return Err("a trajectory carries at least the initial meter mark".into());
        }
        let mut bits = Vec::with_capacity(num_marks.min(1 << 16));
        let mut prev_acts: Option<u64> = None;
        for _ in 0..num_marks {
            let acts = r.u64()?;
            let mark_bits = r.u64()?;
            match prev_acts {
                None if acts != 0 => return Err("first meter mark must be at activation 0".into()),
                Some(prev) if acts <= prev => {
                    return Err("meter marks must be strictly increasing".into())
                }
                _ => {}
            }
            if acts > rounds {
                return Err("meter mark beyond the recorded horizon".into());
            }
            prev_acts = Some(acts);
            bits.push(BitsMark { acts, bits: mark_bits });
        }
        if r.pos != bytes.len() {
            return Err("trailing bytes after trajectory".into());
        }
        Ok(Trajectory { start, runs, rounds, fixed, bits })
    }
}

/// Bounds-checked little-endian cursor for [`Trajectory::from_bytes`].
struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl WireReader<'_> {
    fn take(&mut self, len: usize) -> Result<&[u8], String> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| "truncated trajectory".to_string())?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Records an agent's solo trajectory incrementally: owns the agent and its
/// cursor so the recording can be extended on demand without re-stepping
/// the prefix.
#[derive(Debug, Clone)]
pub struct TraceRecorder<A> {
    agent: A,
    cursor: Cursor,
    traj: Trajectory,
    /// Which meter to record (variants differ: measured vs charged bits).
    bits_fn: fn(&A) -> u64,
}

impl<A: Agent> TraceRecorder<A> {
    /// A recorder parked at `start`; nothing is stepped until
    /// [`TraceRecorder::record_to`].
    pub fn new(start: NodeId, agent: A, bits_fn: fn(&A) -> u64) -> Self {
        let traj = Trajectory::new(start, bits_fn(&agent));
        TraceRecorder { agent, cursor: Cursor::new(start), traj, bits_fn }
    }

    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    /// Extends the recording through round `rounds` (no-op if already
    /// there, or if the agent halted earlier — the fixed tail answers every
    /// later round).
    pub fn record_to(&mut self, t: &Tree, rounds: u64) {
        while self.traj.rounds < rounds && !self.traj.fixed {
            if self.traj.rounds & 0xFFF == 0 {
                crate::cancel::checkpoint();
            }
            let action = self.agent.act(self.cursor.obs(t));
            self.cursor.apply(t, action);
            self.traj.push(self.cursor.node);
            self.traj.mark_bits((self.bits_fn)(&self.agent));
            if self.agent.halted() {
                self.traj.fixed = true;
            }
        }
    }
}

/// Replay verdict: either the full [`PairRun`] (bit-for-bit what
/// [`crate::run_pair`] returns), or a request for longer recordings.
#[derive(Debug, Clone)]
pub enum Replay {
    Decided(PairRun),
    /// The merge ran past a recorded horizon before deciding: record agent
    /// A to at least `a_rounds` rounds (and B to `b_rounds`) and retry.
    NeedMore {
        a_rounds: u64,
        b_rounds: u64,
    },
}

/// A trajectory viewed at a start-delay offset: local round `l` of the
/// underlying recording answers global round `l + shift`, and rounds
/// `0..=shift` are parked at the start (the delayed agent sits at home and
/// can be met there, per the §2.1 scenario).
struct Lane<'a> {
    traj: &'a Trajectory,
    shift: u64,
    idx: usize,
}

impl<'a> Lane<'a> {
    fn new(traj: &'a Trajectory, shift: u64) -> Self {
        Lane { traj, shift, idx: 0 }
    }

    /// Node at global round `r` plus the last global round through which
    /// that node provably persists (the jump target for joint-stay spans).
    /// `None` when `r` is beyond the recorded horizon of an open tail.
    /// Calls must be monotone in `r` (the run index only advances).
    fn locate(&mut self, r: u64) -> Option<(NodeId, u64)> {
        let l = r.saturating_sub(self.shift);
        if l == 0 {
            return Some((self.traj.start, self.shift));
        }
        if l > self.traj.rounds {
            return self.traj.fixed.then(|| (self.traj.last_node(), u64::MAX));
        }
        let runs = &self.traj.runs;
        while runs[self.idx].end < l {
            self.idx += 1;
        }
        let run = runs[self.idx];
        let end = if run.end == self.traj.rounds && self.traj.fixed {
            u64::MAX
        } else {
            run.end.saturating_add(self.shift)
        };
        Some((run.node, end))
    }
}

/// The port by which an agent that moved `prev → cur` entered `cur` (the
/// unique tree edge between them, read off the CSR adjacency).
fn entry_port_from(t: &Tree, prev: NodeId, cur: NodeId) -> Port {
    t.neighbors(cur)
        .find(|&(_, v, _)| v == prev)
        .map(|(p, _, _)| p)
        .expect("consecutive trajectory nodes are adjacent")
}

/// Final cursor of an agent at global round `r`, reconstructed from its
/// timeline: on a tree every move changes the node, so the entry port is
/// `None` iff the position did not change in round `r`.
fn cursor_at(t: &Tree, traj: &Trajectory, shift: u64, r: u64) -> Cursor {
    let pos = |r: u64| traj.position(r.saturating_sub(shift)).expect("decided range");
    let node = pos(r);
    let entry = if r == 0 || pos(r - 1) == node {
        None
    } else {
        Some(entry_port_from(t, pos(r - 1), node))
    };
    Cursor { node, entry }
}

/// Builds the [`PairRun`] for a decided merge ending at global round `r`.
fn finish(
    t: &Tree,
    ta: &Trajectory,
    tb: &Trajectory,
    cfg: PairConfig,
    outcome: Outcome,
    r: u64,
    crossings: u64,
) -> PairRun {
    PairRun {
        outcome,
        crossings,
        final_a: cursor_at(t, ta, 0, r),
        final_b: cursor_at(t, tb, cfg.delay, r),
        trace_a: cfg.record_traces.then(|| ta.materialize(r, 0)),
        trace_b: cfg.record_traces.then(|| tb.materialize(r, cfg.delay)),
    }
}

/// Decides a two-agent run from recorded trajectories alone — no agent is
/// stepped. Agent B's timeline is shifted by `cfg.delay`. Returns exactly
/// what [`crate::run_pair`] returns on the same instance, or
/// [`Replay::NeedMore`] when a recording is too short to decide.
///
/// Cost: O(runs overlapping the decided range + rounds in which either
/// agent moves), not O(rounds) — joint-stay spans are jumped, and two
/// fixed tails settle a timeout instantly whatever the budget.
pub fn replay_pair(t: &Tree, ta: &Trajectory, tb: &Trajectory, cfg: PairConfig) -> Replay {
    let budget = cfg.max_rounds;
    if ta.start == tb.start {
        let run = finish(t, ta, tb, cfg, Outcome::Met { round: 0, node: ta.start }, 0, 0);
        return Replay::Decided(run);
    }
    let mut lane_a = Lane::new(ta, 0);
    let mut lane_b = Lane::new(tb, cfg.delay);
    let mut prev_a = ta.start;
    let mut prev_b = tb.start;
    let mut crossings = 0u64;
    let mut r = 0u64;
    while r < budget {
        r += 1;
        if r & 0xFFF == 0 {
            crate::cancel::checkpoint();
        }
        // A lane that is already decided through round r reports 0 — the
        // caller must not grow (re-step) a recording that was long enough.
        let need = |r: u64, ta: &Trajectory, tb: &Trajectory| Replay::NeedMore {
            a_rounds: if ta.decided_to(r) { 0 } else { r },
            b_rounds: {
                let l = r.saturating_sub(cfg.delay);
                if tb.decided_to(l) {
                    0
                } else {
                    l
                }
            },
        };
        let Some((na, ea)) = lane_a.locate(r) else {
            return need(r, ta, tb);
        };
        let Some((nb, eb)) = lane_b.locate(r) else {
            return need(r, ta, tb);
        };
        if na == prev_b && nb == prev_a && na != nb {
            crossings += 1;
        }
        if na == nb {
            let run = finish(t, ta, tb, cfg, Outcome::Met { round: r, node: na }, r, crossings);
            return Replay::Decided(run);
        }
        prev_a = na;
        prev_b = nb;
        // Both agents sit still through min(ea, eb): no moves, hence no
        // crossings and no meeting (unequal constant positions) — jump.
        r = r.max(ea.min(eb).min(budget));
    }
    let run = finish(t, ta, tb, cfg, Outcome::Timeout { rounds: budget }, budget, crossings);
    Replay::Decided(run)
}

/// Answers an entire delay column for one recorded pair: one
/// [`replay_pair`] verdict per `(delay, max_rounds)` entry, in order.
///
/// Each delay is one diagonal of the joint `(round_a, round_b)` offset
/// lattice, and each diagonal is merged independently over the shared run
/// lists — a column costs one merge *per delay* (each O(runs overlapping
/// its decided range)), with the agents never stepped: the two recordings
/// are shared across all offsets, which is where the win over per-cell
/// stepping comes from. The sweep executor reaches the same sharing
/// through its trace store (one [`replay_pair`] per cell against cached
/// recordings); this entry point is the column-at-once convenience API.
pub fn delay_scan(
    t: &Tree,
    ta: &Trajectory,
    tb: &Trajectory,
    columns: &[(u64, u64)],
) -> Vec<Replay> {
    columns
        .iter()
        .map(|&(delay, max_rounds)| {
            let cfg = PairConfig { delay, max_rounds, record_traces: false };
            replay_pair(t, ta, tb, cfg)
        })
        .collect()
}

/// A trajectory viewed through a [`Schedule`]: the recording is indexed
/// by *activation count* (the frozen semantics makes an agent's k-th
/// activation schedule-independent), and the [`ActivationIndex`] converts
/// the merge's global round clock into local activation counts — the
/// schedule-aware generalization of the shift arithmetic in [`Lane`].
struct SchedLane<'a> {
    traj: &'a Trajectory,
    idx: &'a ActivationIndex,
    run_idx: usize,
}

impl<'a> SchedLane<'a> {
    fn new(traj: &'a Trajectory, idx: &'a ActivationIndex) -> Self {
        SchedLane { traj, idx, run_idx: 0 }
    }

    /// Node at global round `r` plus the last global round through which
    /// that node provably persists (frozen rounds extend a run's span
    /// past its activation-count end). `None` beyond the recorded horizon
    /// of an open tail. Calls must be monotone in `r`.
    fn locate(&mut self, r: u64) -> Option<(NodeId, u64)> {
        let l = self.idx.acts_at(r);
        if l == 0 {
            return Some((self.traj.start, self.idx.frozen_through(0)));
        }
        if l > self.traj.rounds {
            return self.traj.fixed.then(|| (self.traj.last_node(), u64::MAX));
        }
        let runs = &self.traj.runs;
        while runs[self.run_idx].end < l {
            self.run_idx += 1;
        }
        let run = runs[self.run_idx];
        let end = if run.end == self.traj.rounds && self.traj.fixed {
            u64::MAX
        } else {
            self.idx.frozen_through(run.end)
        };
        Some((run.node, end))
    }
}

/// One lane of the ensemble merge: pure start-delay lanes run on
/// [`Lane`]'s constant-shift arithmetic (the common case — simultaneous
/// and θ-delayed lanes — where the general index's per-round cycle
/// div/mod and binary searches would dominate the merge), everything
/// else on [`SchedLane`]. Both produce identical `(node, span_end)`
/// answers on the lanes the shift form admits
/// ([`ActivationIndex::as_pure_shift`]), so the split is invisible in
/// output.
enum MergeLane<'a> {
    Shift(Lane<'a>),
    Sched(SchedLane<'a>),
}

impl<'a> MergeLane<'a> {
    fn new(traj: &'a Trajectory, idx: &'a ActivationIndex) -> Self {
        match idx.as_pure_shift() {
            Some(shift) => MergeLane::Shift(Lane::new(traj, shift)),
            None => MergeLane::Sched(SchedLane::new(traj, idx)),
        }
    }

    fn locate(&mut self, r: u64) -> Option<(NodeId, u64)> {
        match self {
            MergeLane::Shift(lane) => lane.locate(r),
            MergeLane::Sched(lane) => lane.locate(r),
        }
    }
}

/// Final cursor of a scheduled agent at global round `r`: position and
/// entry come from the cursor its latest activation left behind (frozen
/// rounds change nothing, so the comparison runs on *local* activation
/// counts, not global rounds).
fn cursor_at_scheduled(t: &Tree, traj: &Trajectory, idx: &ActivationIndex, r: u64) -> Cursor {
    let l = idx.acts_at(r);
    let node = traj.position(l).expect("decided range");
    let entry = if l == 0 {
        None
    } else {
        let prev = traj.position(l - 1).expect("decided range");
        if prev == node {
            None
        } else {
            Some(entry_port_from(t, prev, node))
        }
    };
    Cursor { node, entry }
}

/// Builds the [`PairRun`] for a decided scheduled merge ending at global
/// round `r`.
#[allow(clippy::too_many_arguments)]
fn finish_scheduled(
    t: &Tree,
    ta: &Trajectory,
    tb: &Trajectory,
    (idx_a, idx_b): (&ActivationIndex, &ActivationIndex),
    record_traces: bool,
    outcome: Outcome,
    r: u64,
    crossings: u64,
) -> PairRun {
    let materialize = |traj: &Trajectory, idx: &ActivationIndex| {
        (0..=r).map(|g| traj.position(idx.acts_at(g)).expect("decided range")).collect()
    };
    PairRun {
        outcome,
        crossings,
        final_a: cursor_at_scheduled(t, ta, idx_a, r),
        final_b: cursor_at_scheduled(t, tb, idx_b, r),
        trace_a: record_traces.then(|| materialize(ta, idx_a)),
        trace_b: record_traces.then(|| materialize(tb, idx_b)),
    }
}

/// Decides a two-agent run under an arbitrary activation [`Schedule`]
/// from recorded trajectories alone — no agent is stepped. Returns
/// exactly what [`crate::run_pair_scheduled`] returns on the same
/// instance, or [`Replay::NeedMore`] when a recording is too short
/// (the reported counts are *activation* counts — exactly what
/// [`TraceRecorder::record_to`] takes, since a solo recording advances
/// one activation per recorded round).
///
/// This is why schedules ride on the unchanged trace store: the frozen
/// semantics makes a solo trajectory a pure function of `(tree, start,
/// agent)` indexed by activation count, so one recording answers every
/// schedule — the merge only re-times it through the
/// [`ActivationIndex`]es.
pub fn replay_pair_scheduled(
    t: &Tree,
    ta: &Trajectory,
    tb: &Trajectory,
    schedule: &Schedule,
    max_rounds: u64,
    record_traces: bool,
) -> Replay {
    let idx_a = schedule.index_a();
    let idx_b = schedule.index_b();
    let idx = (&idx_a, &idx_b);
    if ta.start == tb.start {
        let outcome = Outcome::Met { round: 0, node: ta.start };
        return Replay::Decided(finish_scheduled(t, ta, tb, idx, record_traces, outcome, 0, 0));
    }
    let mut lane_a = SchedLane::new(ta, &idx_a);
    let mut lane_b = SchedLane::new(tb, &idx_b);
    let mut prev_a = ta.start;
    let mut prev_b = tb.start;
    let mut crossings = 0u64;
    let mut r = 0u64;
    while r < max_rounds {
        r += 1;
        if r & 0xFFF == 0 {
            crate::cancel::checkpoint();
        }
        // As in [`replay_pair`]: a lane already decided through round r
        // reports 0 — the caller must not re-step a sufficient recording.
        let need = |r: u64| {
            let lane = |idx: &ActivationIndex, traj: &Trajectory| {
                let l = idx.acts_at(r);
                if traj.decided_to(l) {
                    0
                } else {
                    l
                }
            };
            Replay::NeedMore { a_rounds: lane(&idx_a, ta), b_rounds: lane(&idx_b, tb) }
        };
        let Some((na, ea)) = lane_a.locate(r) else {
            return need(r);
        };
        let Some((nb, eb)) = lane_b.locate(r) else {
            return need(r);
        };
        if na == prev_b && nb == prev_a && na != nb {
            crossings += 1;
        }
        if na == nb {
            let outcome = Outcome::Met { round: r, node: na };
            return Replay::Decided(finish_scheduled(
                t,
                ta,
                tb,
                idx,
                record_traces,
                outcome,
                r,
                crossings,
            ));
        }
        prev_a = na;
        prev_b = nb;
        // Neither cursor changes through min(ea, eb): frozen agents and
        // stay-runs alike produce no moves, hence no crossing and no
        // meeting (unequal constant positions) — jump.
        r = r.max(ea.min(eb).min(max_rounds));
    }
    let outcome = Outcome::Timeout { rounds: max_rounds };
    Replay::Decided(finish_scheduled(t, ta, tb, idx, record_traces, outcome, max_rounds, crossings))
}

/// Ensemble replay verdict: either the full [`EnsembleRun`] (bit-for-bit
/// what [`crate::run_ensemble`] returns), or a per-lane request for
/// longer recordings (activation counts; 0 = that lane is long enough).
#[derive(Debug, Clone)]
pub enum EnsembleReplay {
    Decided(EnsembleRun),
    NeedMore { rounds: Vec<u64> },
}

/// Decides a k-agent gathering run under an [`EnsembleSchedule`] from
/// recorded solo trajectories alone — no agent is stepped. The store
/// keys stay per-agent: trajectories are pure functions of `(tree,
/// start, agent)` indexed by activation count, so the same recordings
/// that answer every two-agent schedule answer every k-lane ensemble —
/// the merge re-times each through its lane's [`ActivationIndex`] and
/// generalizes the O(1) joint-stay span jump to k cursors (inside a span
/// no lane moves, so no crossing, no new pair co-location, and no
/// gathering can first occur there).
///
/// Returns exactly what [`crate::run_ensemble`] returns on the same
/// instance — outcome, crossings, pair meetings, final cursors and
/// optional traces — or [`EnsembleReplay::NeedMore`] when a recording is
/// too short (per-lane *activation* counts, exactly what
/// [`TraceRecorder::record_to`] takes).
pub fn replay_ensemble(
    t: &Tree,
    trajs: &[&Trajectory],
    schedule: &EnsembleSchedule,
    max_rounds: u64,
    record_traces: bool,
) -> EnsembleReplay {
    let k = trajs.len();
    assert_eq!(schedule.lanes(), k, "the schedule must cover exactly the ensemble's lanes");
    assert!(k >= 2, "an ensemble needs at least two agents");
    let indices: Vec<ActivationIndex> = (0..k).map(|lane| schedule.index(lane)).collect();
    let mut pair_meetings: Vec<Option<u64>> = vec![None; k * (k - 1) / 2];

    // Records first co-locations for this round and answers whether the
    // whole ensemble is gathered — the same rule as the stepping core.
    let check = |nodes: &[NodeId], round: u64, pair_meetings: &mut [Option<u64>]| {
        let mut all = true;
        for i in 0..k {
            for j in (i + 1)..k {
                if nodes[i] == nodes[j] {
                    pair_meetings[pair_index(k, i, j)].get_or_insert(round);
                } else {
                    all = false;
                }
            }
        }
        all
    };

    let finish = |outcome: Outcome, r: u64, crossings: u64, pair_meetings: Vec<Option<u64>>| {
        let finals = trajs
            .iter()
            .zip(&indices)
            .map(|(tr, idx)| cursor_at_scheduled(t, tr, idx, r))
            .collect();
        let traces = record_traces.then(|| {
            trajs
                .iter()
                .zip(&indices)
                .map(|(tr, idx)| {
                    (0..=r).map(|g| tr.position(idx.acts_at(g)).expect("decided range")).collect()
                })
                .collect()
        });
        EnsembleReplay::Decided(EnsembleRun { outcome, crossings, finals, traces, pair_meetings })
    };

    let starts: Vec<NodeId> = trajs.iter().map(|tr| tr.start()).collect();
    if check(&starts, 0, &mut pair_meetings) {
        let node = starts[0];
        return finish(Outcome::Met { round: 0, node }, 0, 0, pair_meetings);
    }

    let mut lanes: Vec<MergeLane> =
        trajs.iter().zip(&indices).map(|(tr, idx)| MergeLane::new(tr, idx)).collect();
    let mut prev = starts.clone();
    let mut nodes: Vec<NodeId> = vec![0; k];
    let mut crossings = 0u64;
    let mut r = 0u64;
    while r < max_rounds {
        r += 1;
        if r & 0xFFF == 0 {
            crate::cancel::checkpoint();
        }
        // A lane already decided through round r reports 0 — the caller
        // must not re-step a recording that was long enough.
        let mut span_end = u64::MAX;
        let mut missing = false;
        for (i, lane) in lanes.iter_mut().enumerate() {
            match lane.locate(r) {
                Some((node, end)) => {
                    nodes[i] = node;
                    span_end = span_end.min(end);
                }
                None => {
                    missing = true;
                    break;
                }
            }
        }
        if missing {
            let rounds = trajs
                .iter()
                .zip(&indices)
                .map(|(tr, idx)| {
                    let l = idx.acts_at(r);
                    if tr.decided_to(l) {
                        0
                    } else {
                        l
                    }
                })
                .collect();
            return EnsembleReplay::NeedMore { rounds };
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if nodes[i] == prev[j] && nodes[j] == prev[i] && nodes[i] != nodes[j] {
                    crossings += 1;
                }
            }
        }
        if check(&nodes, r, &mut pair_meetings) {
            let node = nodes[0];
            return finish(Outcome::Met { round: r, node }, r, crossings, pair_meetings);
        }
        prev.copy_from_slice(&nodes);
        // No lane's cursor changes through span_end: no moves, hence no
        // crossing, no new pair co-location, and no gathering — jump.
        r = r.max(span_end.min(max_rounds));
    }
    finish(Outcome::Timeout { rounds: max_rounds }, max_rounds, crossings, pair_meetings)
}

/// Answers an entire per-lane delay column for one recorded ensemble:
/// one [`replay_ensemble`] verdict per `(delays, max_rounds)` entry, in
/// order — the k-lane sibling of [`delay_scan`], sharing the same `k`
/// recordings across every delay vector in the column. Each delay vector
/// is the start-delay schedule freezing lane `i` through round
/// `delays[i]`.
pub fn gathering_scan(
    t: &Tree,
    trajs: &[&Trajectory],
    columns: &[(Vec<u64>, u64)],
) -> Vec<EnsembleReplay> {
    columns
        .iter()
        .map(|(delays, max_rounds)| {
            assert_eq!(delays.len(), trajs.len(), "one delay per lane");
            let schedule = EnsembleSchedule::start_delays(delays);
            replay_ensemble(t, trajs, &schedule, *max_rounds, false)
        })
        .collect()
}

/// Answers an entire schedule column for one recorded pair: one
/// [`replay_pair_scheduled`] verdict per `(schedule, max_rounds)` entry,
/// in order — the schedule-axis sibling of [`delay_scan`], sharing the
/// same two recordings across every schedule in the column.
pub fn schedule_scan(
    t: &Tree,
    ta: &Trajectory,
    tb: &Trajectory,
    columns: &[(Schedule, u64)],
) -> Vec<Replay> {
    columns
        .iter()
        .map(|(schedule, max_rounds)| {
            replay_pair_scheduled(t, ta, tb, schedule, *max_rounds, false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_pair, run_pair_scheduled};
    use rvz_agent::model::{bw_exit, Action, Obs};
    use rvz_trees::generators::{line, spider, star};

    #[derive(Clone, Default)]
    struct BasicWalker;

    impl Agent for BasicWalker {
        fn act(&mut self, obs: Obs) -> Action {
            Action::Move(bw_exit(obs.entry, obs.degree))
        }
        fn memory_bits(&self) -> u64 {
            0
        }
    }

    /// Walks for `moves` rounds, then parks forever (and says so).
    struct WalkThenHalt {
        moves: u64,
    }

    impl Agent for WalkThenHalt {
        fn act(&mut self, obs: Obs) -> Action {
            if self.moves == 0 {
                return Action::Stay;
            }
            self.moves -= 1;
            Action::Move(bw_exit(obs.entry, obs.degree))
        }
        fn memory_bits(&self) -> u64 {
            0
        }
        fn halted(&self) -> bool {
            self.moves == 0
        }
    }

    fn record<A: Agent>(t: &Tree, start: NodeId, agent: A, rounds: u64) -> Trajectory {
        let mut rec = TraceRecorder::new(start, agent, |_| 0);
        rec.record_to(t, rounds);
        rec.trajectory().clone()
    }

    fn assert_matches_direct<A: Agent + Default>(
        t: &Tree,
        a: NodeId,
        b: NodeId,
        cfg: PairConfig,
        horizon: u64,
    ) {
        let ta = record(t, a, A::default(), horizon);
        let tb = record(t, b, A::default(), horizon);
        let Replay::Decided(replayed) = replay_pair(t, &ta, &tb, cfg) else {
            panic!("horizon {horizon} must decide the run");
        };
        let mut x = A::default();
        let mut y = A::default();
        let direct = run_pair(t, a, b, &mut x, &mut y, cfg);
        assert_eq!(replayed.outcome, direct.outcome);
        assert_eq!(replayed.crossings, direct.crossings);
        assert_eq!(replayed.final_a, direct.final_a);
        assert_eq!(replayed.final_b, direct.final_b);
        assert_eq!(replayed.trace_a, direct.trace_a);
        assert_eq!(replayed.trace_b, direct.trace_b);
    }

    #[test]
    fn rle_compresses_stays_and_replays_positions() {
        let t = star(5);
        let traj = record(&t, 2, WalkThenHalt { moves: 3 }, 100);
        // 2 → hub(0) → leaf → hub, then parked: ≤3 runs + fixed tail.
        assert!(traj.is_fixed());
        assert_eq!(traj.rounds(), 3, "halt detected at the last move");
        assert!(traj.num_runs() <= 3);
        assert_eq!(traj.position(0), Some(2));
        assert_eq!(traj.position(1), Some(0));
        assert_eq!(traj.position(1_000_000), traj.position(3), "fixed tail extends");
    }

    #[test]
    fn replay_matches_direct_run_with_and_without_delay() {
        let t = line(9);
        for delay in [0u64, 1, 2, 5, 50] {
            for (a, b) in [(0u32, 5u32), (0, 1), (3, 8)] {
                let cfg = PairConfig { delay, max_rounds: 60, record_traces: true };
                assert_matches_direct::<BasicWalker>(&t, a, b, cfg, 60);
            }
        }
    }

    #[test]
    fn replay_counts_crossings_exactly() {
        // Odd-distance walkers shuttle and cross forever without meeting.
        let t = line(2);
        let cfg = PairConfig { delay: 0, max_rounds: 25, record_traces: false };
        assert_matches_direct::<BasicWalker>(&t, 0, 1, cfg, 25);
    }

    #[test]
    fn fixed_tails_settle_huge_budgets_in_o1() {
        let t = spider(3, 4);
        let ta = record(&t, 1, WalkThenHalt { moves: 2 }, 10);
        let tb = record(&t, 9, WalkThenHalt { moves: 1 }, 10);
        assert!(ta.is_fixed() && tb.is_fixed());
        // Budget in the billions: the merge must settle from the tails.
        let cfg = PairConfig::delayed(7, 2_000_000_000);
        match replay_pair(&t, &ta, &tb, cfg) {
            Replay::Decided(run) => {
                assert_eq!(run.outcome, Outcome::Timeout { rounds: cfg.max_rounds })
            }
            Replay::NeedMore { .. } => panic!("fixed tails must decide"),
        }
    }

    #[test]
    fn open_tails_ask_for_more_rounds() {
        let t = line(9);
        let ta = record(&t, 0, BasicWalker, 10);
        let tb = record(&t, 8, BasicWalker, 10);
        match replay_pair(&t, &ta, &tb, PairConfig::simultaneous(500)) {
            Replay::NeedMore { a_rounds, b_rounds } => {
                assert!(a_rounds > 10 && a_rounds <= 500);
                assert!(b_rounds <= a_rounds);
            }
            Replay::Decided(run) => {
                // Legal only if it met within the recorded horizon.
                assert!(run.outcome.round().unwrap_or(u64::MAX) <= 10);
            }
        }
    }

    #[test]
    fn delayed_agent_is_met_at_home_via_replay() {
        let t = line(9);
        let ta = record(&t, 0, BasicWalker, 100);
        let tb = record(&t, 6, BasicWalker, 100);
        let verdicts = delay_scan(&t, &ta, &tb, &[(0, 100), (1_000, 100)]);
        for v in verdicts {
            let Replay::Decided(run) = v else { panic!("recorded horizon decides") };
            assert!(run.outcome.met());
        }
    }

    #[test]
    fn first_visit_reads_the_rle_timeline() {
        let t = line(9);
        let traj = record(&t, 0, BasicWalker, 20);
        assert_eq!(traj.first_visit(0), Some(0), "the start is visited at round 0");
        for node in 1..=8u32 {
            // A basic walk from an endpoint reaches node v at round v.
            assert_eq!(traj.first_visit(node), Some(node as u64), "node {node}");
        }
        let parked = record(&t, 3, WalkThenHalt { moves: 0 }, 50);
        assert!(parked.is_fixed());
        assert_eq!(parked.first_visit(3), Some(0));
        assert_eq!(parked.first_visit(4), None, "a parked agent visits nothing else");
    }

    #[test]
    fn scheduled_replay_matches_direct_scheduled_stepping() {
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(3),
            Schedule::intermittent(2, 0),
            Schedule::intermittent(3, 1),
            Schedule::crash_after(2),
            Schedule::adversarial(0xA11CE, 5, 4),
        ];
        for t in [line(9), spider(3, 3), star(6)] {
            let n = t.num_nodes() as NodeId;
            for sched in &schedules {
                for (a, b) in [(0, n - 1), (1, n / 2), (n - 1, 0)] {
                    if a == b {
                        continue;
                    }
                    let budget = 64u64;
                    let ta = record(&t, a, BasicWalker, budget);
                    let tb = record(&t, b, BasicWalker, budget);
                    let Replay::Decided(replayed) =
                        replay_pair_scheduled(&t, &ta, &tb, sched, budget, true)
                    else {
                        panic!("a full-budget recording must decide");
                    };
                    let mut x = BasicWalker;
                    let mut y = BasicWalker;
                    let direct = run_pair_scheduled(&t, a, b, &mut x, &mut y, sched, budget, true);
                    assert_eq!(replayed.outcome, direct.outcome, "{sched:?} ({a},{b})");
                    assert_eq!(replayed.crossings, direct.crossings, "{sched:?} ({a},{b})");
                    assert_eq!(replayed.final_a, direct.final_a, "{sched:?} ({a},{b})");
                    assert_eq!(replayed.final_b, direct.final_b, "{sched:?} ({a},{b})");
                    assert_eq!(replayed.trace_a, direct.trace_a, "{sched:?} ({a},{b})");
                    assert_eq!(replayed.trace_b, direct.trace_b, "{sched:?} ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn scheduled_replay_asks_for_activations_not_rounds() {
        // Under intermittent(4, 0) agent B is activated once per 4 rounds:
        // a short B recording must be grown by *activation* count, so the
        // NeedMore figure is about a quarter of the round horizon.
        let t = line(30);
        let sched = Schedule::intermittent(4, 0);
        let ta = record(&t, 0, BasicWalker, 200);
        let tb = record(&t, 29, BasicWalker, 2);
        match replay_pair_scheduled(&t, &ta, &tb, &sched, 200, false) {
            Replay::NeedMore { a_rounds, b_rounds } => {
                assert_eq!(a_rounds, 0, "A's recording is long enough");
                assert!(b_rounds > 2 && b_rounds <= 50, "B grows by activations: {b_rounds}");
            }
            Replay::Decided(run) => {
                panic!("2 recorded activations cannot decide 200 rounds: {:?}", run.outcome)
            }
        }
    }

    #[test]
    fn crashed_lane_settles_huge_budgets_from_the_schedule() {
        // After B's crash both lanes are eventually constant (A is a
        // halting walker): a billion-round budget must settle without the
        // recordings covering it.
        let t = spider(3, 4);
        let ta = record(&t, 1, WalkThenHalt { moves: 2 }, 10);
        let tb = record(&t, 9, BasicWalker, 8);
        assert!(ta.is_fixed() && !tb.is_fixed());
        let sched = Schedule::crash_after(5);
        match replay_pair_scheduled(&t, &ta, &tb, &sched, 3_000_000_000, false) {
            Replay::Decided(run) => match run.outcome {
                Outcome::Met { .. } => {}
                Outcome::Timeout { rounds } => assert_eq!(rounds, 3_000_000_000),
            },
            Replay::NeedMore { a_rounds, b_rounds } => {
                panic!("crashed lane must decide, asked for ({a_rounds}, {b_rounds})")
            }
        }
    }

    #[test]
    fn schedule_scan_shares_one_recording_across_the_column() {
        let t = line(9);
        let ta = record(&t, 0, BasicWalker, 120);
        let tb = record(&t, 6, BasicWalker, 120);
        let columns = [
            (Schedule::simultaneous(), 100u64),
            (Schedule::start_delay(1), 100),
            (Schedule::intermittent(2, 0), 100),
            (Schedule::crash_after(1), 100),
        ];
        let verdicts = schedule_scan(&t, &ta, &tb, &columns);
        assert_eq!(verdicts.len(), columns.len());
        for (v, (sched, budget)) in verdicts.iter().zip(&columns) {
            let Replay::Decided(run) = v else { panic!("recorded horizon decides") };
            let mut x = BasicWalker;
            let mut y = BasicWalker;
            let direct = run_pair_scheduled(&t, 0, 6, &mut x, &mut y, sched, *budget, false);
            assert_eq!(run.outcome, direct.outcome, "{sched:?}");
        }
    }

    #[test]
    fn ensemble_replay_matches_direct_ensemble_stepping() {
        use crate::runner::run_ensemble_fsa;
        // The k-lane merge must be bit-identical to the k-lane stepper —
        // outcome, crossings, pair meetings, finals and traces — across
        // schedule classes, including the k = 2 case (which must also
        // match the pair merge).
        struct CloneWalker;
        impl Agent for CloneWalker {
            fn act(&mut self, obs: Obs) -> Action {
                Action::Move(bw_exit(obs.entry, obs.degree))
            }
            fn memory_bits(&self) -> u64 {
                0
            }
        }
        for t in [line(9), spider(3, 3), star(6)] {
            let n = t.num_nodes() as NodeId;
            for k in [2usize, 3] {
                let schedules = [
                    EnsembleSchedule::simultaneous(k),
                    EnsembleSchedule::start_delays(
                        &(0..k as u64).map(|i| 2 * i).collect::<Vec<_>>(),
                    ),
                    EnsembleSchedule::crash_last_after(k, 3),
                    EnsembleSchedule::intermittent_last(k, 2, 1),
                ];
                let tuples: Vec<Vec<NodeId>> = if k == 2 {
                    vec![vec![0, n - 1], vec![1, n / 2]]
                } else {
                    vec![vec![0, n / 2, n - 1], vec![n - 1, 0, n / 2]]
                };
                for sched in &schedules {
                    for starts in &tuples {
                        let budget = 64u64;
                        let recs: Vec<Trajectory> =
                            starts.iter().map(|&s| record(&t, s, BasicWalker, budget)).collect();
                        let refs: Vec<&Trajectory> = recs.iter().collect();
                        let EnsembleReplay::Decided(replayed) =
                            replay_ensemble(&t, &refs, sched, budget, true)
                        else {
                            panic!("a full-budget recording must decide");
                        };
                        let mut agents: Vec<CloneWalker> = (0..k).map(|_| CloneWalker).collect();
                        let direct = run_ensemble_fsa(&t, starts, &mut agents, sched, budget, true);
                        assert_eq!(replayed.outcome, direct.outcome, "{sched:?} {starts:?}");
                        assert_eq!(replayed.crossings, direct.crossings, "{sched:?} {starts:?}");
                        assert_eq!(replayed.pair_meetings, direct.pair_meetings);
                        assert_eq!(replayed.finals, direct.finals, "{sched:?} {starts:?}");
                        assert_eq!(replayed.traces, direct.traces, "{sched:?} {starts:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn ensemble_replay_at_k2_matches_the_pair_merge() {
        let t = line(11);
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(3),
            Schedule::intermittent(3, 1),
            Schedule::crash_after(2),
        ];
        for sched in &schedules {
            let ta = record(&t, 0, BasicWalker, 80);
            let tb = record(&t, 9, BasicWalker, 80);
            let ens = EnsembleSchedule::from_pair(sched);
            let EnsembleReplay::Decided(kr) = replay_ensemble(&t, &[&ta, &tb], &ens, 80, true)
            else {
                panic!("decided");
            };
            let Replay::Decided(pr) = replay_pair_scheduled(&t, &ta, &tb, sched, 80, true) else {
                panic!("decided");
            };
            assert_eq!(kr.outcome, pr.outcome, "{sched:?}");
            assert_eq!(kr.crossings, pr.crossings);
            assert_eq!(kr.finals[0], pr.final_a);
            assert_eq!(kr.finals[1], pr.final_b);
            let traces = kr.traces.expect("recorded");
            assert_eq!(Some(&traces[0]), pr.trace_a.as_ref());
            assert_eq!(Some(&traces[1]), pr.trace_b.as_ref());
        }
    }

    #[test]
    fn ensemble_replay_asks_for_per_lane_activations() {
        // Lane 2 is intermittent (1 activation per 2 rounds) and its
        // recording is short: the merge must ask to grow exactly that
        // lane, by activation count.
        let t = line(30);
        let sched = EnsembleSchedule::intermittent_last(3, 2, 0);
        let ta = record(&t, 0, BasicWalker, 200);
        let tb = record(&t, 15, BasicWalker, 200);
        let tc = record(&t, 29, BasicWalker, 2);
        match replay_ensemble(&t, &[&ta, &tb, &tc], &sched, 200, false) {
            EnsembleReplay::NeedMore { rounds } => {
                assert_eq!(rounds[0], 0, "lane 0 is long enough");
                assert_eq!(rounds[1], 0, "lane 1 is long enough");
                assert!(rounds[2] > 2 && rounds[2] <= 100, "lane 2 grows by activations");
            }
            EnsembleReplay::Decided(run) => {
                panic!("2 recorded activations cannot decide 200 rounds: {:?}", run.outcome)
            }
        }
    }

    #[test]
    fn ensemble_fixed_tails_settle_huge_budgets() {
        // All lanes eventually constant: a billion-round budget settles
        // from the k-cursor span jump without recordings covering it.
        let t = spider(3, 4);
        let ta = record(&t, 4, WalkThenHalt { moves: 2 }, 10);
        let tb = record(&t, 8, WalkThenHalt { moves: 1 }, 10);
        let tc = record(&t, 12, WalkThenHalt { moves: 1 }, 10);
        let sched = EnsembleSchedule::simultaneous(3);
        match replay_ensemble(&t, &[&ta, &tb, &tc], &sched, 2_000_000_000, false) {
            EnsembleReplay::Decided(run) => {
                assert_eq!(run.outcome, Outcome::Timeout { rounds: 2_000_000_000 });
            }
            EnsembleReplay::NeedMore { .. } => panic!("fixed tails must decide"),
        }
    }

    #[test]
    fn gathering_scan_answers_delay_columns_for_k_lanes() {
        use crate::runner::run_ensemble_with;
        let t = line(9);
        let recs: Vec<Trajectory> =
            [0u32, 4, 8].iter().map(|&s| record(&t, s, BasicWalker, 150)).collect();
        let refs: Vec<&Trajectory> = recs.iter().collect();
        let columns: Vec<(Vec<u64>, u64)> =
            vec![(vec![0, 0, 0], 100), (vec![0, 3, 0], 100), (vec![5, 0, 2], 100)];
        let verdicts = gathering_scan(&t, &refs, &columns);
        assert_eq!(verdicts.len(), columns.len());
        for (v, (delays, budget)) in verdicts.iter().zip(&columns) {
            let EnsembleReplay::Decided(run) = v else { panic!("recorded horizon decides") };
            let mut agents = [BasicWalker, BasicWalker, BasicWalker];
            let sched = EnsembleSchedule::start_delays(delays);
            let direct = run_ensemble_with(
                &t,
                &[0, 4, 8],
                |lane, obs| agents[lane].act(obs),
                &sched,
                *budget,
                false,
            );
            assert_eq!(run.outcome, direct.outcome, "delays {delays:?}");
            assert_eq!(run.pair_meetings, direct.pair_meetings, "delays {delays:?}");
        }
    }

    #[test]
    fn bits_marks_follow_the_meter() {
        struct Counting {
            acts: u64,
        }
        impl Agent for Counting {
            fn act(&mut self, _obs: Obs) -> Action {
                self.acts += 1;
                Action::Stay
            }
            fn memory_bits(&self) -> u64 {
                self.acts / 3
            }
        }
        let t = line(4);
        let mut rec = TraceRecorder::new(0, Counting { acts: 0 }, |a| a.memory_bits());
        rec.record_to(&t, 10);
        let traj = rec.trajectory();
        for acts in 0..=10u64 {
            assert_eq!(traj.bits_at(acts), acts / 3, "after {acts} activations");
        }
        assert_eq!(traj.num_runs(), 1, "ten stays are one run");
    }

    #[test]
    fn trajectory_wire_round_trips() {
        let t = line(7);
        let mut rec = TraceRecorder::new(2, BasicWalker, |_| 5);
        rec.record_to(&t, 40);
        let traj = rec.trajectory();
        let bytes = traj.to_bytes();
        let back = Trajectory::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.start(), traj.start());
        assert_eq!(back.rounds(), traj.rounds());
        assert_eq!(back.is_fixed(), traj.is_fixed());
        for r in 0..=traj.rounds() {
            assert_eq!(back.position(r), traj.position(r), "round {r}");
            assert_eq!(back.bits_at(r), traj.bits_at(r), "acts {r}");
        }
        // And the re-encoding is byte-identical (canonical form).
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn trajectory_wire_rejects_corruption_without_panicking() {
        let t = line(6);
        let mut rec = TraceRecorder::new(0, BasicWalker, |_| 1);
        rec.record_to(&t, 25);
        let bytes = rec.trajectory().to_bytes();
        // Every truncation must be an error, never a panic or a bogus value.
        for len in 0..bytes.len() {
            assert!(Trajectory::from_bytes(&bytes[..len]).is_err(), "truncated at {len}");
        }
        // Single-bit flips either fail validation or decode to a trajectory
        // that still satisfies the structural invariants (flips confined to
        // a node id or a meter value are semantically wrong but structurally
        // fine — catching those is the caller's checksum's job).
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                if let Ok(traj) = Trajectory::from_bytes(&bad) {
                    assert!(traj.position(traj.rounds()).is_some());
                }
            }
        }
    }
}
