//! Batched structure-of-arrays stepping for the explicit automaton.
//!
//! The sweep's basic-walk grids are dominated by *short same-instance
//! cells*: every `(delay, pair)` combination on one tree runs the same
//! dense [`Fsa`] table over the same CSR adjacency for an exact
//! `θ + 4(n−1) + 2` horizon. Stepping those cells one at a time pays the
//! per-cell dispatch (runner construction, closure boxing, cache-cold
//! table walks) far more often than it pays simulation. This module fuses
//! them: one kernel call advances *many lanes* — one lane per (pair,
//! delay) or (pair, schedule-phase) combination — through the shared tree
//! and transition table, one round per outer iteration.
//!
//! Lane state is kept in flat parallel `Vec`s (state, node, entry,
//! started), not per-lane structs: the inner loop reads and writes
//! contiguous arrays with no per-pair dispatch, which is what lets the
//! compiler keep the hot fields in cache (and vectorize the bookkeeping)
//! across lanes.
//!
//! Semantics are pinned to [`crate::run_pair_fsa`] lane by lane — same
//! round-0 meeting rule, same first-activation convention, same crossing
//! detection, same budget/timeout accounting — by the unit tests below
//! and by the sweep's differential tests: a batched cell must be
//! byte-identical to its per-cell run.

use crate::cancel;
use crate::schedule::{EnsembleSchedule, Schedule};
use rvz_agent::{Fsa, StateId};
use rvz_trees::{NodeId, Tree};

/// One lane of a batched run: a start pair with its own activation delay
/// and round budget (lanes of one call may mix delays freely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLane {
    pub start_a: NodeId,
    pub start_b: NodeId,
    /// Agent B's start delay θ (0 = simultaneous start). Ignored by the
    /// scheduled entry point, where the shared schedule carries the
    /// timing.
    pub delay: u64,
    /// Round budget; a lane that has not met by this round times out.
    pub budget: u64,
}

/// Per-lane outcome — exactly the `(met, rounds, crossings)` triple the
/// sweep's row assembler consumes from a [`crate::PairRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutcome {
    pub met: bool,
    /// Meeting round (`None` on timeout; `Some(0)` = identical starts).
    pub round: Option<u64>,
    pub crossings: u64,
}

/// `entry` lane encoding of "no entry port" (after a null move or before
/// the first move) — `Option<Port>` flattened to one flat `u32` array.
const NO_ENTRY: u32 = u32::MAX;

/// Runs every lane under the start-delay activation pattern (agent A from
/// round 1, agent B from round `delay + 1`): the batched equivalent of
/// one [`crate::run_pair_fsa`] call per lane with
/// `PairConfig::delayed(lane.delay, lane.budget)`, both agents stepping
/// `fsa`. Outcomes are returned in lane order.
pub fn run_batch_fsa(t: &Tree, fsa: &Fsa, lanes: &[BatchLane]) -> Vec<LaneOutcome> {
    run_lanes(t, fsa, lanes, |round, delay| (true, round > delay))
}

/// Runs every lane under one shared activation [`Schedule`] (the frozen
/// semantics of [`crate::run_pair_scheduled`]): the per-round activation
/// pair is computed once and applied to all lanes, so lanes are (pair,
/// schedule-phase) combinations of a single scheduled sub-grid. Lane
/// delays are ignored; budgets still apply per lane.
pub fn run_batch_fsa_scheduled(
    t: &Tree,
    fsa: &Fsa,
    schedule: &Schedule,
    lanes: &[BatchLane],
) -> Vec<LaneOutcome> {
    run_lanes(t, fsa, lanes, |round, _delay| schedule.active(round))
}

/// The shared lane loop. `active(round, lane_delay)` mirrors
/// [`crate::run_pair_fsa`]'s activation closure; it must be pure in its
/// arguments (lanes at the same round and delay get the same flags).
fn run_lanes(
    t: &Tree,
    fsa: &Fsa,
    lanes: &[BatchLane],
    active: impl Fn(u64, u64) -> (bool, bool),
) -> Vec<LaneOutcome> {
    let m = lanes.len();
    // Structure-of-arrays lane state: one flat array per field.
    let mut node_a: Vec<NodeId> = lanes.iter().map(|l| l.start_a).collect();
    let mut node_b: Vec<NodeId> = lanes.iter().map(|l| l.start_b).collect();
    let mut entry_a: Vec<u32> = vec![NO_ENTRY; m];
    let mut entry_b: Vec<u32> = vec![NO_ENTRY; m];
    let mut state_a: Vec<StateId> = vec![fsa.s0; m];
    let mut state_b: Vec<StateId> = vec![fsa.s0; m];
    let mut started_a: Vec<bool> = vec![false; m];
    let mut started_b: Vec<bool> = vec![false; m];
    let mut crossings: Vec<u64> = vec![0; m];
    let mut out: Vec<LaneOutcome> = vec![LaneOutcome { met: false, round: None, crossings: 0 }; m];

    // Round 0: identical starts meet before anyone acts; zero-budget lanes
    // with distinct starts time out without stepping — exactly the
    // per-pair loop's entry conditions.
    let mut live: Vec<u32> = Vec::with_capacity(m);
    let mut max_budget = 0u64;
    for (i, lane) in lanes.iter().enumerate() {
        if lane.start_a == lane.start_b {
            out[i] = LaneOutcome { met: true, round: Some(0), crossings: 0 };
        } else if lane.budget == 0 {
            out[i] = LaneOutcome { met: false, round: None, crossings: 0 };
        } else {
            live.push(i as u32);
            max_budget = max_budget.max(lane.budget);
        }
    }

    for round in 1..=max_budget {
        if round & 0xFFF == 0 {
            cancel::checkpoint();
        }
        live.retain(|&lane| {
            let i = lane as usize;
            let prev_a = node_a[i];
            let prev_b = node_b[i];
            let (on_a, on_b) = active(round, lanes[i].delay);
            if on_a {
                step_lane_agent(
                    t,
                    fsa,
                    &mut state_a[i],
                    &mut started_a[i],
                    &mut node_a[i],
                    &mut entry_a[i],
                );
            }
            if on_b {
                step_lane_agent(
                    t,
                    fsa,
                    &mut state_b[i],
                    &mut started_b[i],
                    &mut node_b[i],
                    &mut entry_b[i],
                );
            }
            let (a, b) = (node_a[i], node_b[i]);
            if a == prev_b && b == prev_a && a != b {
                crossings[i] += 1;
            }
            if a == b {
                out[i] = LaneOutcome { met: true, round: Some(round), crossings: crossings[i] };
                return false;
            }
            if round >= lanes[i].budget {
                out[i] = LaneOutcome { met: false, round: None, crossings: crossings[i] };
                return false;
            }
            true
        });
        if live.is_empty() {
            break;
        }
    }
    out
}

/// One lane of a batched k-agent run: a start tuple sharing the call's
/// ensemble schedule, with its own round budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleBatchLane {
    /// One start per agent; length must equal the schedule's lane count.
    pub starts: Vec<NodeId>,
    /// Round budget; a lane that has not gathered by this round times out.
    pub budget: u64,
}

/// Runs every lane under one shared [`EnsembleSchedule`] — the k-agent
/// generalization of [`run_batch_fsa_scheduled`], pinned tuple-by-tuple
/// to [`crate::run_ensemble_fsa`]: same round-0 gathering rule, same
/// first-activation convention, same pairwise crossing detection, same
/// budget accounting. `met`/`round` in the returned [`LaneOutcome`]s
/// report *gathering* (all `k` co-located at a round boundary).
pub fn run_batch_fsa_ensemble(
    t: &Tree,
    fsa: &Fsa,
    schedule: &EnsembleSchedule,
    lanes: &[EnsembleBatchLane],
) -> Vec<LaneOutcome> {
    let k = schedule.lanes();
    let m = lanes.len();
    for lane in lanes {
        assert_eq!(lane.starts.len(), k, "every lane must carry one start per schedule lane");
    }
    // Structure-of-arrays slot state: lane i's agent j lives at flat
    // index i * k + j in each array.
    let mut node: Vec<NodeId> = lanes.iter().flat_map(|l| l.starts.iter().copied()).collect();
    let mut entry: Vec<u32> = vec![NO_ENTRY; m * k];
    let mut state: Vec<StateId> = vec![fsa.s0; m * k];
    let mut started: Vec<bool> = vec![false; m * k];
    let mut crossings: Vec<u64> = vec![0; m];
    let mut out: Vec<LaneOutcome> = vec![LaneOutcome { met: false, round: None, crossings: 0 }; m];

    // Round 0: identical start tuples gather before anyone acts;
    // zero-budget lanes with distinct starts time out without stepping.
    let mut live: Vec<u32> = Vec::with_capacity(m);
    let mut max_budget = 0u64;
    for (i, lane) in lanes.iter().enumerate() {
        if lane.starts.iter().all(|&s| s == lane.starts[0]) {
            out[i] = LaneOutcome { met: true, round: Some(0), crossings: 0 };
        } else if lane.budget == 0 {
            out[i] = LaneOutcome { met: false, round: None, crossings: 0 };
        } else {
            live.push(i as u32);
            max_budget = max_budget.max(lane.budget);
        }
    }

    let mut prev: Vec<NodeId> = vec![0; k];
    for round in 1..=max_budget {
        if round & 0xFFF == 0 {
            cancel::checkpoint();
        }
        let flags = schedule.active(round);
        live.retain(|&lane| {
            let i = lane as usize;
            let base = i * k;
            prev.copy_from_slice(&node[base..base + k]);
            for (j, &on) in flags.iter().enumerate() {
                if on {
                    let s = base + j;
                    step_lane_agent(
                        t,
                        fsa,
                        &mut state[s],
                        &mut started[s],
                        &mut node[s],
                        &mut entry[s],
                    );
                }
            }
            let cur = &node[base..base + k];
            let mut gathered = true;
            for a in 0..k {
                for b in (a + 1)..k {
                    if cur[a] == prev[b] && cur[b] == prev[a] && cur[a] != cur[b] {
                        crossings[i] += 1;
                    }
                    if cur[a] != cur[b] {
                        gathered = false;
                    }
                }
            }
            if gathered {
                out[i] = LaneOutcome { met: true, round: Some(round), crossings: crossings[i] };
                return false;
            }
            if round >= lanes[i].budget {
                out[i] = LaneOutcome { met: false, round: None, crossings: crossings[i] };
                return false;
            }
            true
        });
        if live.is_empty() {
            break;
        }
    }
    out
}

/// One agent activation on one lane: the runner's step rule (first
/// activation emits the current state's action without transitioning;
/// later ones transition on the observation first) followed by the
/// cursor's move rule, inlined over the flat lane arrays.
#[inline]
fn step_lane_agent(
    t: &Tree,
    fsa: &Fsa,
    state: &mut StateId,
    started: &mut bool,
    node: &mut NodeId,
    entry: &mut u32,
) {
    let degree = t.degree(*node);
    if *started {
        let e = (*entry != NO_ENTRY).then_some(*entry);
        *state = fsa.transition(*state, e, degree);
    } else {
        *started = true;
    }
    match fsa.action(*state).port(degree) {
        None => *entry = NO_ENTRY,
        Some(p) => {
            *entry = t.entry_port(*node, p);
            *node = t.neighbor(*node, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_pair_fsa, run_pair_scheduled_fsa, PairConfig, PairRun};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rvz_trees::generators::{line, random_tree, spider, star};

    fn lane_of(run: &PairRun) -> LaneOutcome {
        LaneOutcome { met: run.outcome.met(), round: run.outcome.round(), crossings: run.crossings }
    }

    /// The one-pair-at-a-time reference: every lane of a batch must equal
    /// its own `run_pair_fsa` call exactly.
    fn reference(t: &Tree, fsa: &Fsa, lanes: &[BatchLane]) -> Vec<LaneOutcome> {
        lanes
            .iter()
            .map(|l| {
                let mut a = fsa.runner();
                let mut b = fsa.runner();
                let run = run_pair_fsa(
                    t,
                    l.start_a,
                    l.start_b,
                    &mut a,
                    &mut b,
                    PairConfig::delayed(l.delay, l.budget),
                );
                lane_of(&run)
            })
            .collect()
    }

    fn budget_for(n: usize, delay: u64) -> u64 {
        delay + 4 * (n as u64 - 1) + 2
    }

    #[test]
    fn batch_matches_run_pair_fsa_on_lines_and_stars() {
        for t in [line(9), star(6), spider(3, 4)] {
            let fsa = Fsa::basic_walk(t.max_degree().max(1));
            let n = t.num_nodes();
            let mut lanes = Vec::new();
            for a in 0..n as NodeId {
                for b in 0..n as NodeId {
                    for delay in [0u64, 1, 3, 2 * n as u64] {
                        lanes.push(BatchLane {
                            start_a: a,
                            start_b: b,
                            delay,
                            budget: budget_for(n, delay),
                        });
                    }
                }
            }
            assert_eq!(run_batch_fsa(&t, &fsa, &lanes), reference(&t, &fsa, &lanes));
        }
    }

    #[test]
    fn batch_matches_run_pair_fsa_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        for _ in 0..20 {
            let n = rng.gen_range(2..40);
            let t = random_tree(n, &mut rng);
            let fsa = Fsa::basic_walk(t.max_degree().max(1));
            let lanes: Vec<BatchLane> = (0..24)
                .map(|_| {
                    let delay = rng.gen_range(0..3 * n as u64);
                    BatchLane {
                        start_a: rng.gen_range(0..n as NodeId),
                        start_b: rng.gen_range(0..n as NodeId),
                        delay,
                        budget: budget_for(n, delay),
                    }
                })
                .collect();
            assert_eq!(run_batch_fsa(&t, &fsa, &lanes), reference(&t, &fsa, &lanes), "n={n}");
        }
    }

    #[test]
    fn batch_handles_round_zero_meetings_and_zero_budgets() {
        let t = line(5);
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        let lanes = [
            BatchLane { start_a: 2, start_b: 2, delay: 0, budget: 10 },
            BatchLane { start_a: 0, start_b: 4, delay: 0, budget: 0 },
            BatchLane { start_a: 3, start_b: 3, delay: 7, budget: 0 },
        ];
        let got = run_batch_fsa(&t, &fsa, &lanes);
        assert_eq!(got[0], LaneOutcome { met: true, round: Some(0), crossings: 0 });
        assert_eq!(got[1], LaneOutcome { met: false, round: None, crossings: 0 });
        assert_eq!(got[2], LaneOutcome { met: true, round: Some(0), crossings: 0 });
        assert_eq!(got, reference(&t, &fsa, &lanes));
    }

    #[test]
    fn batch_counts_crossings_like_the_pair_loop() {
        // Two basic walkers on a single edge shuttle forever, crossing
        // inside the edge every round — the canonical crossings workload.
        let t = line(2);
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        let lanes = [BatchLane { start_a: 0, start_b: 1, delay: 0, budget: 9 }];
        let got = run_batch_fsa(&t, &fsa, &lanes);
        assert_eq!(got, reference(&t, &fsa, &lanes));
        assert!(!got[0].met);
        assert!(got[0].crossings > 0);
    }

    #[test]
    fn scheduled_batch_matches_run_pair_scheduled_fsa() {
        let mut rng = StdRng::seed_from_u64(0x5C4ED);
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(3),
            Schedule::intermittent(2, 0),
            Schedule::intermittent(3, 1),
            Schedule::crash_after(4),
            Schedule::adversarial(17, 4, 4),
        ];
        for _ in 0..8 {
            let n = rng.gen_range(2..24);
            let t = random_tree(n, &mut rng);
            let fsa = Fsa::basic_walk(t.max_degree().max(1));
            for sched in &schedules {
                let budget = sched.prefix_len() + sched.cycle_len() * (4 * (n as u64 - 1) + 2);
                let lanes: Vec<BatchLane> = (0..12)
                    .map(|_| BatchLane {
                        start_a: rng.gen_range(0..n as NodeId),
                        start_b: rng.gen_range(0..n as NodeId),
                        delay: 0,
                        budget,
                    })
                    .collect();
                let got = run_batch_fsa_scheduled(&t, &fsa, sched, &lanes);
                let want: Vec<LaneOutcome> = lanes
                    .iter()
                    .map(|l| {
                        let mut a = fsa.runner();
                        let mut b = fsa.runner();
                        let run = run_pair_scheduled_fsa(
                            &t, l.start_a, l.start_b, &mut a, &mut b, sched, l.budget, false,
                        );
                        lane_of(&run)
                    })
                    .collect();
                assert_eq!(got, want, "n={n}");
            }
        }
    }

    #[test]
    fn ensemble_batch_matches_run_ensemble_fsa() {
        use crate::run_ensemble_fsa;
        use crate::schedule::EnsembleSchedule;
        let mut rng = StdRng::seed_from_u64(0xE45E);
        for k in [2usize, 3, 4] {
            let schedules = [
                EnsembleSchedule::simultaneous(k),
                EnsembleSchedule::start_delays(&(0..k as u64).collect::<Vec<_>>()),
                EnsembleSchedule::crash_last_after(k, 3),
                EnsembleSchedule::intermittent_last(k, 2, 0),
            ];
            for _ in 0..6 {
                let n = rng.gen_range(2..20);
                let t = random_tree(n, &mut rng);
                let fsa = Fsa::basic_walk(t.max_degree().max(1));
                for sched in &schedules {
                    let budget = sched.prefix_len() + sched.cycle_len() * (4 * (n as u64 - 1) + 2);
                    let lanes: Vec<EnsembleBatchLane> = (0..10)
                        .map(|_| EnsembleBatchLane {
                            starts: (0..k).map(|_| rng.gen_range(0..n as NodeId)).collect(),
                            budget,
                        })
                        .collect();
                    let got = run_batch_fsa_ensemble(&t, &fsa, sched, &lanes);
                    let want: Vec<LaneOutcome> = lanes
                        .iter()
                        .map(|l| {
                            let mut agents: Vec<_> = (0..k).map(|_| fsa.runner()).collect();
                            let run = run_ensemble_fsa(
                                &t,
                                &l.starts,
                                &mut agents,
                                sched,
                                l.budget,
                                false,
                            );
                            LaneOutcome {
                                met: run.outcome.met(),
                                round: run.outcome.round(),
                                crossings: run.crossings,
                            }
                        })
                        .collect();
                    assert_eq!(got, want, "k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn two_lane_ensemble_batch_matches_the_pair_batch() {
        use crate::schedule::EnsembleSchedule;
        let t = line(10);
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        for sched in
            [Schedule::start_delay(2), Schedule::intermittent(3, 1), Schedule::crash_after(3)]
        {
            let budget = sched.prefix_len() + sched.cycle_len() * (4 * 9 + 2);
            let pair_lanes: Vec<BatchLane> = (0..10u32)
                .map(|a| BatchLane { start_a: a, start_b: 9 - a, delay: 0, budget })
                .collect();
            let ens_lanes: Vec<EnsembleBatchLane> = pair_lanes
                .iter()
                .map(|l| EnsembleBatchLane { starts: vec![l.start_a, l.start_b], budget })
                .collect();
            assert_eq!(
                run_batch_fsa_ensemble(&t, &fsa, &EnsembleSchedule::from_pair(&sched), &ens_lanes),
                run_batch_fsa_scheduled(&t, &fsa, &sched, &pair_lanes),
            );
        }
    }

    #[test]
    fn mixed_delay_lanes_share_one_kernel_call() {
        // The point of the lane layout: wildly different delays (hence
        // budgets and lifetimes) in one call, each decided independently.
        let t = line(12);
        let fsa = Fsa::basic_walk(t.max_degree().max(1));
        let lanes: Vec<BatchLane> = [0u64, 1, 5, 100, 1000]
            .into_iter()
            .flat_map(|delay| {
                [(0u32, 11u32), (3, 8), (2, 9)].into_iter().map(move |(a, b)| BatchLane {
                    start_a: a,
                    start_b: b,
                    delay,
                    budget: budget_for(12, delay),
                })
            })
            .collect();
        assert_eq!(run_batch_fsa(&t, &fsa, &lanes), reference(&t, &fsa, &lanes));
    }
}
