//! Eventually-periodic activation schedules — the adversary's full power
//! over *when* agents run.
//!
//! The paper's arbitrary-delay scenario gives the adversary one knob: a
//! start delay θ that holds agent B at home for the first θ rounds. The
//! delay-fault literature (Chalopin et al., *Rendezvous in Networks in
//! Spite of Delay Faults*) generalizes the knob to per-round faults: in
//! every round the adversary decides, per agent, whether that agent is
//! *activated* (observes and acts) or *frozen* (its cursor — node and
//! entry port — is untouched and it perceives nothing). A [`Schedule`]
//! captures the eventually-periodic fragment of that power: explicit
//! per-round flags for a finite prefix, then a cycle repeated forever.
//! Eventual periodicity is what keeps every downstream question decidable
//! — the exact decider extends its product construction by the cycle
//! position (`rvz_lowerbounds::decide::decide_pair_scheduled`), and the
//! trace-replay engine answers schedule cells against unchanged solo
//! recordings ([`crate::trace::replay_pair_scheduled`]).
//!
//! The frozen semantics is chosen so that an agent's trajectory *as a
//! function of its activation count* is schedule-independent: the k-th
//! activation of a deterministic agent sees exactly the observation it
//! would see in an uninterrupted solo run. That invariant is what lets
//! one [`crate::trace::Trajectory`] recording serve every schedule
//! ([`ActivationIndex`] maps global rounds to activation counts and
//! back), and it makes [`Schedule::start_delay`] literally the legacy
//! scenario: a prefix of `(true, false)` rounds, then both agents forever.
//!
//! Round indices are 1-based throughout, matching the simulator: round 0
//! is the initial placement (before any activation), and
//! [`Schedule::active`]`(r)` answers for rounds `r ≥ 1`.

/// An eventually-periodic activation schedule for a two-agent run: which
/// agents the adversary activates each round. Entry `(a, b)` activates
/// agent A iff `a` and agent B iff `b`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Activation flags for rounds `1..=prefix.len()`.
    pub prefix: Vec<(bool, bool)>,
    /// Flags repeated forever after the prefix; never empty.
    pub cycle: Vec<(bool, bool)>,
}

impl Schedule {
    /// Materialization cap for the constructors that unroll a round count
    /// into explicit prefix entries ([`Schedule::start_delay`],
    /// [`Schedule::crash_after`]). Delays beyond it have no schedule form
    /// — use the compact `PairConfig::delayed` path, which carries θ as a
    /// single integer.
    pub const MAX_MATERIALIZED_PREFIX: u64 = 1 << 22;

    /// A schedule from explicit parts. The cycle must be non-empty (the
    /// prefix may be).
    pub fn new(prefix: Vec<(bool, bool)>, cycle: Vec<(bool, bool)>) -> Self {
        assert!(!cycle.is_empty(), "schedule cycle must be non-empty");
        Schedule { prefix, cycle }
    }

    /// Both agents every round — the simultaneous-start scenario.
    pub fn simultaneous() -> Self {
        Schedule::new(Vec::new(), vec![(true, true)])
    }

    /// The legacy start-delay scenario as a schedule: agent A runs from
    /// round 1, agent B from round `theta + 1`.
    pub fn start_delay(theta: u64) -> Self {
        assert!(
            theta <= Self::MAX_MATERIALIZED_PREFIX,
            "start_delay({theta}) would materialize a {theta}-entry prefix; \
             use PairConfig::delayed for delays past MAX_MATERIALIZED_PREFIX"
        );
        Schedule::new(vec![(true, false); theta as usize], vec![(true, true)])
    }

    /// Agent A every round; agent B only in rounds `r` with
    /// `(r - 1) mod period == phase` — the adversary slows one agent to a
    /// `1/period` duty cycle. `intermittent(1, 0)` is
    /// [`Schedule::simultaneous`].
    pub fn intermittent(period: u64, phase: u64) -> Self {
        assert!(period >= 1, "intermittent period must be at least 1");
        assert!(phase < period, "intermittent phase must be below the period");
        Schedule::new(Vec::new(), (0..period).map(|i| (true, i == phase)).collect())
    }

    /// Both agents for `rounds` rounds, then agent B crashes (is never
    /// activated again) while A keeps running — the crash-fault scenario.
    pub fn crash_after(rounds: u64) -> Self {
        assert!(
            rounds <= Self::MAX_MATERIALIZED_PREFIX,
            "crash_after({rounds}) would materialize a {rounds}-entry prefix"
        );
        Schedule::new(vec![(true, true); rounds as usize], vec![(true, false)])
    }

    /// A seeded adversarial sample: uniformly random flags over a prefix
    /// of length `≤ max_prefix` and a cycle of length `1..=max_cycle`,
    /// deterministic in `seed`. A cycle that activates nobody is patched
    /// to `(true, true)` in its first slot so the sampled run cannot
    /// freeze forever (the all-frozen tail is a legal but trivial
    /// adversary — every pair with distinct starts never meets).
    pub fn adversarial(seed: u64, max_prefix: usize, max_cycle: usize) -> Self {
        assert!(max_cycle >= 1, "cycle needs at least one slot to sample");
        let mut state = seed;
        let mut next = move || {
            // splitmix64: the same deterministic stream the sweep's
            // per-cell seeding uses; no RNG dependency.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let flag = |bits: u64| (bits & 1 != 0, bits & 2 != 0);
        let p = (next() % (max_prefix as u64 + 1)) as usize;
        let c = (1 + next() % max_cycle as u64) as usize;
        let prefix = (0..p).map(|_| flag(next())).collect();
        let mut cycle: Vec<(bool, bool)> = (0..c).map(|_| flag(next())).collect();
        if cycle.iter().all(|&(a, b)| !a && !b) {
            cycle[0] = (true, true);
        }
        Schedule::new(prefix, cycle)
    }

    pub fn prefix_len(&self) -> u64 {
        self.prefix.len() as u64
    }

    pub fn cycle_len(&self) -> u64 {
        self.cycle.len() as u64
    }

    /// Activation flags for round `round ≥ 1`.
    #[inline]
    pub fn active(&self, round: u64) -> (bool, bool) {
        debug_assert!(round >= 1, "round 0 is the initial placement, nobody acts");
        let p = self.prefix.len() as u64;
        if round <= p {
            self.prefix[(round - 1) as usize]
        } else {
            self.cycle[((round - 1 - p) % self.cycle.len() as u64) as usize]
        }
    }

    /// `Some(θ)` when this schedule is exactly the legacy start-delay
    /// scenario (A-only for θ rounds, then both forever) — the special
    /// case the θ-indexed fast paths answer without a schedule walk.
    pub fn as_start_delay(&self) -> Option<u64> {
        (self.cycle == [(true, true)] && self.prefix.iter().all(|&f| f == (true, false)))
            .then_some(self.prefix.len() as u64)
    }

    /// `true` when the two lanes see identical activation flags every
    /// round (simultaneous, lockstep, any global-stall pattern). For such
    /// schedules swapping the agents merely relabels the lanes, so the
    /// rendezvous verdict for `(a, b)` equals the verdict for `(b, a)` —
    /// the swap half of the sweep's start-pair orbit quotient is sound
    /// exactly on this class.
    pub fn lane_symmetric(&self) -> bool {
        self.prefix.iter().chain(&self.cycle).all(|&(a, b)| a == b)
    }

    /// Activation arithmetic for agent A.
    pub fn index_a(&self) -> ActivationIndex {
        ActivationIndex::new(self, false)
    }

    /// Activation arithmetic for agent B.
    pub fn index_b(&self) -> ActivationIndex {
        ActivationIndex::new(self, true)
    }
}

/// One agent's activation arithmetic under a [`Schedule`]: cumulative
/// activation counts over the prefix and one cycle, answering both
/// directions of the round ↔ activation-count correspondence in
/// O(log(prefix + cycle)). This is the "schedule-aware cursor
/// advancement" the trace-replay merge runs on: a solo
/// [`crate::trace::Trajectory`] is indexed by activation count, and the
/// merge's global clock is rounds.
#[derive(Debug, Clone)]
pub struct ActivationIndex {
    /// `prefix_cum[i]` = activations in rounds `1..=i`; length `p + 1`.
    prefix_cum: Vec<u64>,
    /// `cycle_cum[i]` = activations in the first `i` cycle slots; length
    /// `c + 1`.
    cycle_cum: Vec<u64>,
}

impl ActivationIndex {
    fn new(s: &Schedule, second: bool) -> Self {
        let pick = |f: (bool, bool)| if second { f.1 } else { f.0 };
        let cum = |flags: &[(bool, bool)]| {
            let mut v = Vec::with_capacity(flags.len() + 1);
            v.push(0u64);
            for &f in flags {
                v.push(v.last().expect("seeded") + u64::from(pick(f)));
            }
            v
        };
        ActivationIndex { prefix_cum: cum(&s.prefix), cycle_cum: cum(&s.cycle) }
    }

    /// Activations per full cycle.
    pub fn per_cycle(&self) -> u64 {
        *self.cycle_cum.last().expect("cycle_cum seeded")
    }

    /// Number of activations in rounds `1..=round` (0 at round 0).
    pub fn acts_at(&self, round: u64) -> u64 {
        let p = (self.prefix_cum.len() - 1) as u64;
        if round <= p {
            return self.prefix_cum[round as usize];
        }
        let c = (self.cycle_cum.len() - 1) as u64;
        let past = round - p;
        self.prefix_cum[p as usize]
            .saturating_add((past / c).saturating_mul(self.per_cycle()))
            .saturating_add(self.cycle_cum[(past % c) as usize])
    }

    /// Global round of the `k`-th activation (`k ≥ 1`), or `None` when
    /// the agent is activated fewer than `k` times ever (it crashed, or
    /// the cycle never activates it).
    pub fn round_of_act(&self, k: u64) -> Option<u64> {
        debug_assert!(k >= 1, "activation counts are 1-based");
        let p = (self.prefix_cum.len() - 1) as u64;
        let in_prefix = self.prefix_cum[p as usize];
        if k <= in_prefix {
            return Some(self.prefix_cum.partition_point(|&v| v < k) as u64);
        }
        let per = self.per_cycle();
        if per == 0 {
            return None;
        }
        let c = (self.cycle_cum.len() - 1) as u64;
        let rem = k - in_prefix; // ≥ 1
        let full = (rem - 1) / per;
        let within = rem - full * per; // 1..=per
        let slot = self.cycle_cum.partition_point(|&v| v < within) as u64;
        Some(p.saturating_add(full.saturating_mul(c)).saturating_add(slot))
    }

    /// Last global round at which the activation count is still below
    /// `k + 1` — i.e. through which an agent frozen after its `k`-th
    /// activation provably keeps its cursor. `u64::MAX` when activation
    /// `k + 1` never happens.
    pub fn frozen_through(&self, k: u64) -> u64 {
        match self.round_of_act(k.saturating_add(1)) {
            Some(r) => r - 1,
            None => u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_symmetry_matches_the_flag_pattern() {
        assert!(Schedule::simultaneous().lane_symmetric());
        assert!(Schedule::new(Vec::new(), vec![(true, true), (false, false)]).lane_symmetric());
        assert!(!Schedule::start_delay(1).lane_symmetric());
        assert!(!Schedule::intermittent(2, 0).lane_symmetric());
        assert!(!Schedule::crash_after(3).lane_symmetric());
        // θ = 0 start delay has an empty prefix and a both-on cycle.
        assert!(Schedule::start_delay(0).lane_symmetric());
    }

    /// Brute-force activation count straight off `Schedule::active`.
    fn brute_acts(s: &Schedule, second: bool, round: u64) -> u64 {
        (1..=round)
            .filter(|&r| {
                let (a, b) = s.active(r);
                if second {
                    b
                } else {
                    a
                }
            })
            .count() as u64
    }

    #[test]
    fn constructors_have_the_advertised_shapes() {
        assert_eq!(Schedule::simultaneous().as_start_delay(), Some(0));
        assert_eq!(Schedule::start_delay(0), Schedule::simultaneous());
        assert_eq!(Schedule::start_delay(3).as_start_delay(), Some(3));
        assert_eq!(Schedule::intermittent(1, 0), Schedule::simultaneous());
        assert_eq!(Schedule::intermittent(2, 1).as_start_delay(), None);
        assert_eq!(Schedule::crash_after(4).as_start_delay(), None);
        // intermittent activates B exactly once per period, at the phase.
        let s = Schedule::intermittent(3, 1);
        for r in 1..=12u64 {
            assert_eq!(s.active(r), (true, (r - 1) % 3 == 1), "round {r}");
        }
        // crash_after freezes B from round rounds+1 on.
        let s = Schedule::crash_after(2);
        assert_eq!(s.active(2), (true, true));
        assert_eq!(s.active(3), (true, false));
        assert_eq!(s.active(1_000_000), (true, false));
    }

    #[test]
    fn active_is_periodic_past_the_prefix() {
        let s = Schedule::new(
            vec![(false, true), (true, false)],
            vec![(true, true), (false, false), (true, false)],
        );
        for r in 3..=40u64 {
            assert_eq!(s.active(r), s.active(r + 3), "round {r}");
        }
        assert_eq!(s.active(1), (false, true));
        assert_eq!(s.active(2), (true, false));
    }

    #[test]
    fn activation_index_matches_brute_force_counting() {
        let schedules = [
            Schedule::simultaneous(),
            Schedule::start_delay(5),
            Schedule::intermittent(3, 2),
            Schedule::crash_after(4),
            Schedule::new(vec![(false, false); 3], vec![(true, false), (false, true)]),
            Schedule::adversarial(0xFEED, 6, 5),
        ];
        for s in &schedules {
            for (second, idx) in [(false, s.index_a()), (true, s.index_b())] {
                for round in 0..=50u64 {
                    assert_eq!(
                        idx.acts_at(round),
                        brute_acts(s, second, round),
                        "{s:?} second={second} round={round}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_of_act_inverts_acts_at() {
        let schedules = [
            Schedule::start_delay(4),
            Schedule::intermittent(4, 1),
            Schedule::crash_after(3),
            Schedule::adversarial(7, 5, 4),
        ];
        for s in &schedules {
            for idx in [s.index_a(), s.index_b()] {
                for k in 1..=30u64 {
                    match idx.round_of_act(k) {
                        Some(r) => {
                            assert_eq!(idx.acts_at(r), k, "{s:?} k={k}: round {r}");
                            assert_eq!(idx.acts_at(r - 1), k - 1, "{s:?} k={k}: activation round");
                        }
                        None => {
                            // Bounded activations: the count plateaus.
                            assert!(idx.acts_at(1 << 20) < k, "{s:?} k={k}");
                        }
                    }
                }
                // frozen_through is the round before the next activation.
                for k in 0..=10u64 {
                    let end = idx.frozen_through(k);
                    if end != u64::MAX {
                        assert_eq!(idx.acts_at(end), k);
                        assert_eq!(idx.acts_at(end + 1), k + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn crashed_agent_has_finitely_many_activations() {
        let idx = Schedule::crash_after(3).index_b();
        assert_eq!(idx.round_of_act(3), Some(3));
        assert_eq!(idx.round_of_act(4), None);
        assert_eq!(idx.frozen_through(3), u64::MAX);
        assert_eq!(idx.acts_at(1 << 40), 3);
    }

    #[test]
    fn adversarial_sampler_is_deterministic_and_live() {
        let a = Schedule::adversarial(42, 8, 6);
        let b = Schedule::adversarial(42, 8, 6);
        assert_eq!(a, b, "same seed, same schedule");
        for seed in 0..64u64 {
            let s = Schedule::adversarial(seed, 8, 6);
            assert!(!s.cycle.is_empty());
            assert!(
                s.cycle.iter().any(|&(a, b)| a || b),
                "sampled cycle must activate someone (seed {seed})"
            );
            assert!(s.prefix.len() <= 8 && s.cycle.len() <= 6);
        }
    }

    #[test]
    #[should_panic(expected = "cycle must be non-empty")]
    fn empty_cycles_are_rejected() {
        let _ = Schedule::new(vec![(true, true)], Vec::new());
    }
}
